// Benchmark harness: one benchmark per paper figure (Fig 1-7) plus the
// quantitative tables T-A..T-F and the ablations DESIGN.md §5 calls out.
// EXPERIMENTS.md records the measured numbers; cmd/cnbench prints the same
// rows as formatted tables.
package cn_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cn"
	"cn/internal/discovery"
	"cn/internal/floyd"
	"cn/internal/tuplespace"
	"cn/internal/workloads"
)

func init() {
	pubRegistry.MustRegister("bench.EchoLoop", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			for {
				_, data, err := ctx.Recv()
				if err != nil {
					return nil // job cancelled: clean exit
				}
				if err := ctx.SendClient(data); err != nil {
					return err
				}
			}
		})
	})
}

// benchCluster boots a cluster + client for benchmarks.
func benchCluster(b *testing.B, nodes int) (*cn.Cluster, *cn.Client) {
	b.Helper()
	c, err := cn.StartCluster(cn.ClusterOptions{Nodes: nodes, Registry: pubRegistry, MemoryMB: 64000})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		c.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cl.Close()
		c.Close()
	})
	return c, cl
}

func noopSpec(name string, deps ...string) *cn.TaskSpec {
	return &cn.TaskSpec{
		Name:      name,
		Class:     "pub.Noop",
		DependsOn: deps,
		Req:       cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
	}
}

// forkJoinSpecs builds a split -> W workers -> join no-op job.
func forkJoinSpecs(workers int) []*cn.TaskSpec {
	specs := []*cn.TaskSpec{noopSpec("split")}
	var names []string
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("w%d", i)
		names = append(names, name)
		specs = append(specs, noopSpec(name, "split"))
	}
	specs = append(specs, noopSpec("join", names...))
	return specs
}

// --- Figure benches -------------------------------------------------------

// BenchmarkFig1ServerBoot measures booting and stopping the Figure 1
// component stack (4 CN servers + discovery groups).
func BenchmarkFig1ServerBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cn.StartCluster(cn.ClusterOptions{Nodes: 4, Registry: pubRegistry})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkFig2CNXRoundTrip measures encoding + parsing the Figure 2
// transitive-closure descriptor.
func BenchmarkFig2CNXRoundTrip(b *testing.B) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		b.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		b.Fatal(err)
	}
	doc, err := cn.ModelToCNX(model, cn.TransformOptions{Port: 5666})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := doc.EncodeString()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cn.ParseCNX(strings.NewReader(s)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ExplicitRun measures executing the Figure 3 shape (split,
// five concurrent workers, join) as a CN job.
func BenchmarkFig3ExplicitRun(b *testing.B) {
	_, cl := benchCluster(b, 4)
	ctx := context.Background()
	specs := forkJoinSpecs(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cn.RunJob(ctx, cl, fmt.Sprintf("fig3-%d", i), specs, nil)
		if err != nil || res.Failed {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkFig4TaggedValueCodec measures extracting the Figure 4 task
// configuration (params + requirements) from tagged values.
func BenchmarkFig4TaggedValueCodec(b *testing.B) {
	tags := cn.TaskTags("tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask", 1000, "RUN_AS_THREAD_IN_TM")
	tags.SetParam(0, "Integer", "2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tags.Params(); err != nil {
			b.Fatal(err)
		}
		if _, err := tags.Requirements(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5DynamicRun measures dynamic-invocation expansion plus
// execution with a run-time worker count of 4.
func BenchmarkFig5DynamicRun(b *testing.B) {
	_, cl := benchCluster(b, 4)
	g, err := cn.NewActivity("fig5").
		Initial("i").
		DynamicAction("worker", cn.TaskTags("", "pub.Noop", 10, "RUN_AS_THREAD_IN_TM"), "*", "load").
		Final("f").
		Flows("i", "worker", "f").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	model := cn.NewClientModel("Fig5")
	if err := model.AddJob(g); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := cn.RunModelOnCluster(ctx, cl, model, cn.TransformOptions{Args: cn.FixedArgs(4)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if results["fig5"].Failed {
			b.Fatal("job failed")
		}
	}
}

// BenchmarkFig6Pipeline measures the full transformation chain of Figure 6:
// model -> XMI -> parse -> model -> CNX -> generated Go client.
func BenchmarkFig6Pipeline(b *testing.B) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		b.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xdoc, err := cn.ModelToXMI(model)
		if err != nil {
			b.Fatal(err)
		}
		xmlText, err := xdoc.WriteString()
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := cn.ParseXMI(strings.NewReader(xmlText))
		if err != nil {
			b.Fatal(err)
		}
		m2, err := cn.XMIToModel(parsed)
		if err != nil {
			b.Fatal(err)
		}
		doc, err := cn.ModelToCNX(m2, cn.TransformOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cn.GenerateClient(doc, cn.GenerateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7XMIParse measures parsing the Figure 7 XMI document shape.
func BenchmarkFig7XMIParse(b *testing.B) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		b.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		b.Fatal(err)
	}
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		b.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(xmlText)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cn.ParseXMI(strings.NewReader(xmlText)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T-A: parallel Floyd speedup ------------------------------------------

// BenchmarkFloydWorkers runs the guiding example at N=96 with 1..8 CN
// workers plus the sequential and in-process-goroutine baselines. The
// paper's qualitative claim — row decomposition parallelizes Floyd across
// the cluster — shows as decreasing time per op with workers, with CN
// messaging overhead visible against the in-process baseline.
func BenchmarkFloydWorkers(b *testing.B) {
	const n = 96
	m := floyd.RandomGraph(n, 0.3, 9, 17)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			floyd.Sequential(m)
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inprocess/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				floyd.ParallelInProcess(m, w)
			}
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cn/workers=%d", w), func(b *testing.B) {
			_, cl := benchCluster(b, 4)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := floyd.Run(ctx, cl, m, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T-A2: compute-bound scaling (Monte-Carlo pi) ---------------------------

// BenchmarkMonteCarloWorkers splits a fixed 2M-sample Monte-Carlo π
// estimation across 1..8 CN workers. Per-task compute dominates messaging
// here, so time per op should fall near-linearly with workers — the
// counterpart to the communication-bound Floyd study above.
func BenchmarkMonteCarloWorkers(b *testing.B) {
	const total = 2_000_000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			_, cl := benchCluster(b, 4)
			ctx := context.Background()
			per := int64(total / w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := workloads.RunMonteCarloPi(ctx, cl, w, per, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T-G: batch placement vs per-task placement ------------------------------

// BenchmarkBatchPlacement measures job admission (create job + create all
// tasks, no execution) of a 32-task job whose tasks share one archive, at
// 1/8/32 nodes. "pertask" is the pre-directory behavior — offer caching
// disabled, one CreateTask round trip (and one solicitation round) per
// task. "batch" is one CreateTasks call: one solicitation round for the
// whole set plus parallel batched assignments, with the archive traveling
// at most once per node. Reported metrics: solicitation rounds per
// admitted job and archive blob transfers per admitted job.
func BenchmarkBatchPlacement(b *testing.B) {
	const tasks = 32
	buildArchive := func(b *testing.B) *cn.Archive {
		ar, err := cn.NewArchive("bench.jar", "pub.Noop").
			AddFile("payload.bin", make([]byte, 64<<10)).Build()
		if err != nil {
			b.Fatal(err)
		}
		return ar
	}
	taskSpecs := func() []*cn.TaskSpec {
		specs := make([]*cn.TaskSpec, tasks)
		for i := range specs {
			specs[i] = noopSpec(fmt.Sprintf("t%d", i))
			specs[i].Archive = "bench.jar"
		}
		return specs
	}
	admit := func(b *testing.B, cl *cn.Client, i int, batch bool, ar *cn.Archive) {
		b.Helper()
		job, err := cl.CreateJob(fmt.Sprintf("adm-%d", i), cn.JobRequirements{})
		if err != nil {
			b.Fatal(err)
		}
		specs := taskSpecs()
		archives := map[string]*cn.Archive{ar.Name: ar}
		if batch {
			if _, err := job.CreateTasks(specs, archives); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, s := range specs {
				if err := job.CreateTask(s, ar); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := job.Cancel("admission bench"); err != nil {
			b.Fatal(err)
		}
	}
	for _, nodes := range []int{1, 8, 32} {
		for _, mode := range []struct {
			name  string
			batch bool
			ttl   time.Duration
		}{
			{"pertask", false, -1}, // fresh solicitation round per task
			{"batch", true, 0},     // directory-cached batch placement
		} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode.name, nodes), func(b *testing.B) {
				c, err := cn.StartCluster(cn.ClusterOptions{
					Nodes: nodes, Registry: pubRegistry,
					MemoryMB: 64000, PlacementTTL: mode.ttl,
				})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
				if err != nil {
					c.Close()
					b.Fatal(err)
				}
				b.Cleanup(func() { cl.Close(); c.Close() })
				ar := buildArchive(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					admit(b, cl, i, mode.batch, ar)
				}
				b.StopTimer()
				st := c.PlacementStats()
				b.ReportMetric(float64(st.SolicitRounds)/float64(b.N), "rounds/job")
				b.ReportMetric(float64(c.BlobTransfers())/float64(b.N), "uploads/job")
			})
		}
	}
}

// --- T-B: discovery latency vs cluster size --------------------------------

// BenchmarkDiscoveryNodes measures one multicast JobManager discovery round
// (first-responder policy) against growing cluster sizes.
func BenchmarkDiscoveryNodes(b *testing.B) {
	for _, nodes := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			_, cl := benchCluster(b, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.DiscoverWith(discovery.FirstResponder{}, cn.JobRequirements{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T-C: message round-trip latency ---------------------------------------

// BenchmarkMessaging measures the client -> JobManager -> task -> JobManager
// -> client round trip for 1 KB user payloads (the conduit path of the
// paper's message model).
func BenchmarkMessaging(b *testing.B) {
	_, cl := benchCluster(b, 3)
	job, err := cl.CreateJob("echo", cn.JobRequirements{})
	if err != nil {
		b.Fatal(err)
	}
	spec := &cn.TaskSpec{Name: "echo", Class: "bench.EchoLoop",
		Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM}}
	if err := job.CreateTask(spec, nil); err != nil {
		b.Fatal(err)
	}
	if err := job.Start(); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	ctx := context.Background()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := job.SendMessage("echo", payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := job.GetMessage(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = job.Cancel("bench done")
}

// --- T-D: transform throughput vs model size --------------------------------

// BenchmarkXMI2CNXSize measures the XMI2CNX transformation against models
// of 10..500 worker states.
func BenchmarkXMI2CNXSize(b *testing.B) {
	for _, tasks := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			g, err := floyd.BuildModel(tasks)
			if err != nil {
				b.Fatal(err)
			}
			model := cn.NewClientModel("TransClosure")
			if err := model.AddJob(g); err != nil {
				b.Fatal(err)
			}
			xdoc, err := cn.ModelToXMI(model)
			if err != nil {
				b.Fatal(err)
			}
			xmlText, err := xdoc.WriteString()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(xmlText)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out strings.Builder
				if err := cn.XMI2CNX(strings.NewReader(xmlText), &out, cn.TransformOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T-E: tuple space --------------------------------------------------------

// BenchmarkTupleSpace measures the Linda-style coordination primitives the
// paper mentions as CN's second intertask mechanism.
func BenchmarkTupleSpace(b *testing.B) {
	b.Run("out-inp", func(b *testing.B) {
		s := tuplespace.New()
		for i := 0; i < b.N; i++ {
			if err := s.Out(tuplespace.Tuple{"k", i}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.InP(tuplespace.Template{"k", tuplespace.Wildcard}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("out-rdp", func(b *testing.B) {
		s := tuplespace.New()
		if err := s.Out(tuplespace.Tuple{"k", 0}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RdP(tuplespace.Template{"k", tuplespace.Wildcard}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocking-handoff", func(b *testing.B) {
		s := tuplespace.New()
		ctx := context.Background()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				if _, err := s.In(ctx, tuplespace.Template{"h", tuplespace.Wildcard}); err != nil {
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Out(tuplespace.Tuple{"h", i}); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	})
}

// --- T-F: scheduling overhead vs plain goroutines ----------------------------

// BenchmarkSchedulingOverhead compares dispatching 8 no-op tasks through
// the full CN stack (discovery already done; placement, archive-less
// assignment, dependency scheduling, events) against spawning 8 goroutines
// directly — the framework-overhead figure a CN adopter cares about.
func BenchmarkSchedulingOverhead(b *testing.B) {
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for t := 0; t < 8; t++ {
				wg.Add(1)
				go func() { defer wg.Done() }()
			}
			wg.Wait()
		}
	})
	b.Run("cn", func(b *testing.B) {
		_, cl := benchCluster(b, 4)
		ctx := context.Background()
		specs := make([]*cn.TaskSpec, 8)
		for t := 0; t < 8; t++ {
			specs[t] = noopSpec(fmt.Sprintf("t%d", t))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cn.RunJob(ctx, cl, fmt.Sprintf("ovh-%d", i), specs, nil)
			if err != nil || res.Failed {
				b.Fatalf("res=%+v err=%v", res, err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkForkJoinCollapse compares dependency analysis on a fork/join
// pseudostate graph against the equivalent direct-edge graph.
func BenchmarkForkJoinCollapse(b *testing.B) {
	withPseudo, err := floyd.BuildModel(32)
	if err != nil {
		b.Fatal(err)
	}
	// Direct-edge equivalent: lift the lowered CNX back into a model
	// (CNXToModel emits direct action-to-action transitions).
	model := cn.NewClientModel("TC")
	if err := model.AddJob(withPseudo); err != nil {
		b.Fatal(err)
	}
	doc, err := cn.ModelToCNX(model, cn.TransformOptions{})
	if err != nil {
		b.Fatal(err)
	}
	lifted, err := cn.CNXToModel(doc)
	if err != nil {
		b.Fatal(err)
	}
	direct := lifted.Jobs[0]
	b.Run("pseudostates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := withPseudo.Dependencies(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-edges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := direct.Dependencies(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectionPolicy compares JobManager selection policies on a
// 16-node cluster.
func BenchmarkSelectionPolicy(b *testing.B) {
	policies := []cn.Policy{
		discovery.FirstResponder{},
		discovery.BestFit{},
		discovery.LeastLoaded{},
		discovery.NewRandom(1),
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			_, cl := benchCluster(b, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.DiscoverWith(p, cn.JobRequirements{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransport compares the in-memory fabric against TCP loopback
// for the same no-op job.
func BenchmarkTransport(b *testing.B) {
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: pubRegistry, TCP: tcp})
			if err != nil {
				b.Fatal(err)
			}
			cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
			if err != nil {
				c.Close()
				b.Fatal(err)
			}
			b.Cleanup(func() { cl.Close(); c.Close() })
			ctx := context.Background()
			specs := forkJoinSpecs(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cn.RunJob(ctx, cl, fmt.Sprintf("tr-%d", i), specs, nil)
				if err != nil || res.Failed {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkRunModel compares RUN_AS_THREAD_IN_TM against RUN_AS_PROCESS
// execution of the same job.
func BenchmarkRunModel(b *testing.B) {
	for _, rm := range []cn.RunModel{cn.RunAsThreadInTM, cn.RunAsProcess} {
		b.Run(rm.String(), func(b *testing.B) {
			_, cl := benchCluster(b, 3)
			ctx := context.Background()
			specs := forkJoinSpecs(3)
			for _, s := range specs {
				s.Req.RunModel = rm
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cn.RunJob(ctx, cl, fmt.Sprintf("rm-%d", i), specs, nil)
				if err != nil || res.Failed {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkTransitiveClosureBaseline reports the Warshall boolean closure
// against full APSP at N=96 (the "transitive closure" framing of §2).
func BenchmarkTransitiveClosureBaseline(b *testing.B) {
	m := floyd.RandomGraph(96, 0.3, 9, 17)
	b.Run("warshall-closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			floyd.Closure(m)
		}
	})
	b.Run("floyd-apsp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			floyd.Sequential(m)
		}
	})
}
