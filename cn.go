// Package cn is the public API of the Computational Neighborhood (CN), a
// Go reproduction of "A Model-Driven Approach to Job/Task Composition in
// Cluster Computing" (Mehta, Kanitkar, Läufer, Thiruvathukal — IPDPS 2007).
//
// CN is "a framework to define and execute tasks in a parallel program
// transparently on the various nodes in the cluster and collate the final
// results". The package exposes three layers:
//
//   - The cluster runtime: StartCluster boots CN servers (JobManager +
//     TaskManager per node, discovered over multicast); Connect returns
//     the client-side CN API factory (CreateJob / CreateTask / Start /
//     GetMessage / SendMessage).
//
//   - The composition model: activity graphs (NewActivity) with action
//     states, fork/join pseudostates, tagged values and dynamic
//     invocation, mirroring UML activity diagrams.
//
//   - The model-driven pipeline: ParseXMI / WriteXMI, ModelToCNX /
//     CNXToModel, ParseCNX, XMI2CNX, and GenerateClient (CNX2Go), which
//     turn a UML model exported as XMI into a CNX descriptor and then
//     into a runnable Go client program.
//
// The quickstart in examples/quickstart shows the five-line path from a
// descriptor to results.
package cn

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"cn/internal/api"
	"cn/internal/archive"
	"cn/internal/cluster"
	"cn/internal/cnx"
	"cn/internal/codegen"
	"cn/internal/core"
	"cn/internal/dataplane"
	"cn/internal/discovery"
	"cn/internal/dot"
	"cn/internal/jobmgr"
	"cn/internal/placement"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/transform"
	"cn/internal/transport"
	"cn/internal/tuplespace"
	"cn/internal/xmi"
)

// Task is the interface a CN task class implements (the unit of work).
type Task = task.Task

// TaskFunc adapts a function to the Task interface.
type TaskFunc = task.Func

// TaskContext is the view a running task has of the CN system.
type TaskContext = task.Context

// TaskSpec describes one task instance inside a job.
type TaskSpec = task.Spec

// Param is one typed task parameter.
type Param = task.Param

// Requirements is a task's resource demand block.
type Requirements = task.Requirements

// RunModel selects how a TaskManager executes a task.
type RunModel = task.RunModel

// Registry maps task class names to factories (the class-loader stand-in).
type Registry = task.Registry

// Archive is a task archive (the JAR-file stand-in).
type Archive = archive.Archive

// JobRequirements are the client's demands on a hosting JobManager.
type JobRequirements = protocol.JobRequirements

// Client is an initialized CN API handle.
type Client = api.Client

// Job is a handle on one CN job.
type Job = api.Job

// Result is a job's terminal status.
type Result = api.Result

// Event is a task lifecycle notification.
type Event = api.Event

// Space is the client-side handle on a job's coordination tuple space
// (Job.Space); tasks reach the same space through their TaskContext's
// Out/In/Rd/InP/RdP.
type Space = api.Space

// Tuple is an ordered sequence of scalar fields stored in a job's tuple
// space.
type Tuple = tuplespace.Tuple

// Template is a tuple pattern: concrete values, Wildcard, or TypeOf
// placeholders.
type Template = tuplespace.Template

// Wildcard matches any field value of any type in a template.
var Wildcard = tuplespace.Wildcard

// ErrNoMatch is returned by the non-blocking tuple-space probes (InP/RdP)
// when no stored tuple matches the template.
var ErrNoMatch = tuplespace.ErrNoMatch

// ErrSpaceClosed is returned by tuple-space operations once the job's
// space closed (the job reached a terminal state).
var ErrSpaceClosed = tuplespace.ErrClosed

// TypeOf returns a template placeholder matching any field with the same
// dynamic type as sample (e.g. TypeOf(0) matches any int).
func TypeOf(sample any) any { return tuplespace.TypeOf(sample) }

// ClientOptions configures Connect.
type ClientOptions = api.Options

// Policy selects among JobManager offers during discovery.
type Policy = discovery.Policy

// ActivityGraph is a UML activity graph modeling one CN job.
type ActivityGraph = core.Graph

// ActivityBuilder is the fluent activity-graph construction API.
type ActivityBuilder = core.Builder

// TaggedValues carries UML tagged values on an action state.
type TaggedValues = core.TaggedValues

// ClientModel is a client composed of one or more job activity graphs.
type ClientModel = core.Client

// ArgProvider supplies run-time argument lists for dynamic invocation.
type ArgProvider = core.ArgProvider

// CNXDocument is a parsed CNX client descriptor.
type CNXDocument = cnx.Document

// XMIDocument is a parsed XMI (UML model interchange) file.
type XMIDocument = xmi.Document

// TransformOptions configures the model-to-CNX lowering.
type TransformOptions = transform.Options

// Run models.
const (
	RunAsThreadInTM = task.RunAsThreadInTM
	RunAsProcess    = task.RunAsProcess
	RunLocal        = task.RunLocal
)

// Parameter types.
const (
	TypeString  = task.TypeString
	TypeInteger = task.TypeInteger
	TypeLong    = task.TypeLong
	TypeDouble  = task.TypeDouble
	TypeBoolean = task.TypeBoolean
)

// Well-known tagged-value keys (paper Figure 4).
const (
	TagJar      = core.TagJar
	TagClass    = core.TagClass
	TagMemory   = core.TagMemory
	TagRunModel = core.TagRunModel
)

// RegisterTask binds a task class in the process-wide registry, the way a
// Java deployment would place a JAR on every node's classpath.
func RegisterTask(class string, factory func() Task) error {
	return task.Register(class, factory)
}

// NewRegistry returns an isolated class registry (used by tests and
// embedded deployments that must not touch process-global state).
func NewRegistry() *Registry { return task.NewRegistry() }

// NewArchive starts building a task archive with the given file name and
// task class.
func NewArchive(name, taskClass string) *archive.Builder {
	return archive.NewBuilder(name, taskClass)
}

// ClusterOptions configures StartCluster.
type ClusterOptions struct {
	// Nodes is the number of CN servers to boot (0 = 4).
	Nodes int
	// MemoryMB is each node's task capacity (0 = 8000).
	MemoryMB int
	// Registry resolves task classes on every node (nil = the global
	// registry populated by RegisterTask).
	Registry *Registry
	// TCP selects real loopback sockets instead of the in-memory fabric.
	TCP bool
	// PlacementTTL bounds each JobManager's cached TaskManager offers
	// (0 = placement default TTL; negative disables offer caching so every
	// placement performs a fresh multicast round, the pre-directory
	// behavior).
	PlacementTTL time.Duration
	// AssignTimeout bounds each JobManager's batch-assignment round trips
	// (0 = 5s).
	AssignTimeout time.Duration
	// HeartbeatInterval is each TaskManager's beat cadence and the basis
	// for failure-detection leases (0 = 500ms; negative disables
	// heartbeating and failure detection).
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter override the failure-detection lease
	// windows (0 = 3× / 6× the heartbeat interval). A suspect node is
	// excluded from new placements; a dead node's in-flight tasks are
	// re-placed on survivors.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// MaxTaskRetries bounds how many times one task may be re-placed after
	// node deaths, failed dispatches, or straggler speculation
	// (0 = 2; negative disables recovery).
	MaxTaskRetries int
	// CheckpointEvery is each JobManager's cadence for replicating hosted
	// jobs' control state to its peers; when a manager dies, a surviving
	// peer adopts its checkpointed jobs and drives them to completion
	// (0 = the heartbeat interval; negative — or disabled heartbeating —
	// disables checkpointing and failover).
	CheckpointEvery time.Duration
	// StragglerAfter enables speculative execution: a running task whose
	// progress has stalled this long gets a duplicate on another node,
	// first result wins (0 = disabled).
	StragglerAfter time.Duration
	// Latency/Jitter/Loss/Seed configure the in-memory fabric's link model.
	Latency time.Duration
	Jitter  time.Duration
	Loss    float64
	Seed    int64
	// Logf receives server diagnostics; nil disables logging.
	Logf func(format string, args ...any)
	// Log receives structured server diagnostics; nil falls back to Logf.
	Log *slog.Logger
	// TraceSample is each node's distributed-trace root sampling
	// probability (0 = the 1-in-8 default; negative disables tracing).
	TraceSample float64
}

// Cluster is a running CN deployment.
type Cluster struct {
	inner *cluster.Cluster
}

// StartCluster boots a simulated CN cluster: N nodes, each running a
// CNServer (JobManager + TaskManager) joined to the discovery multicast
// groups.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	tp := cluster.TransportMem
	if opts.TCP {
		tp = cluster.TransportTCP
	}
	inner, err := cluster.Start(cluster.Config{
		Nodes:             opts.Nodes,
		MemoryMB:          opts.MemoryMB,
		Transport:         tp,
		PlacementTTL:      opts.PlacementTTL,
		AssignTimeout:     opts.AssignTimeout,
		HeartbeatInterval: opts.HeartbeatInterval,
		SuspectAfter:      opts.SuspectAfter,
		DeadAfter:         opts.DeadAfter,
		MaxTaskRetries:    opts.MaxTaskRetries,
		CheckpointEvery:   opts.CheckpointEvery,
		StragglerAfter:    opts.StragglerAfter,
		Latency:           opts.Latency,
		Jitter:            opts.Jitter,
		Loss:              opts.Loss,
		Seed:              opts.Seed,
		Registry:          opts.Registry,
		Logf:              opts.Logf,
		Log:               opts.Log,
		TraceSample:       opts.TraceSample,
	})
	if err != nil {
		return nil, fmt.Errorf("cn: %w", err)
	}
	return &Cluster{inner: inner}, nil
}

// Nodes returns the live node names.
func (c *Cluster) Nodes() []string { return c.inner.Nodes() }

// KillNode abruptly removes a node (failure injection).
func (c *Cluster) KillNode(node string) error { return c.inner.KillNode(node) }

// Network exposes the cluster fabric for advanced clients.
func (c *Cluster) Network() transport.Network { return c.inner.Network() }

// PlacementStats aggregates every JobManager's resource-directory counters
// (solicitation rounds, cache hits, invalidations).
func (c *Cluster) PlacementStats() placement.Stats { return c.inner.PlacementStats() }

// JobProgress is a hosted job's schedule census as reported by its
// JobManager (task states, retries, tuple-space op counts).
type JobProgress = jobmgr.Progress

// JobProgress reports a hosted job's census from its hosting JobManager;
// ok is false when the node is dead or the job unknown.
func (c *Cluster) JobProgress(jmNode, jobID string) (JobProgress, bool) {
	return c.inner.JobProgress(jmNode, jobID)
}

// BlobTransfers counts distinct archive blobs transferred to TaskManagers
// across the cluster — with content addressing, at most one per digest per
// node regardless of how many tasks share the archive.
func (c *Cluster) BlobTransfers() int64 { return c.inner.BlobTransfers() }

// DataplaneBytes sums the TaskManagers' direct TM→TM data-plane transfer
// counters: payload bytes served to peer nodes and pulled from them. These
// are the shuffle bytes that bypass the JobManagers entirely.
func (c *Cluster) DataplaneBytes() (served, fetched int64) {
	return c.inner.DataplaneBytes()
}

// TraceSpan is one recorded interval of a job's distributed trace.
type TraceSpan = trace.Span

// NewTracer builds a sampling tracer for client-side roots; pass it in
// ClientOptions so job submissions open a client-born "job.submit" span
// (sample 0 = the 1-in-8 default; negative never self-samples).
func NewTracer(node string, sample float64) *trace.Tracer {
	return trace.New(trace.Config{Node: node, Sample: sample})
}

// JobTrace returns the assembled span timeline for a hosted job from
// whichever live JobManager holds it (the adopter, after a failover).
func (c *Cluster) JobTrace(jobID string) ([]TraceSpan, bool) {
	return c.inner.JobTrace(jobID)
}

// DataplaneStats is the cluster-wide data-plane broker census.
type DataplaneStats = dataplane.StatsSnapshot

// DataplaneStats sums every JobManager's data-plane broker counters
// (adverts, resolves, parks, and bytes served from inline copies).
func (c *Cluster) DataplaneStats() DataplaneStats {
	return c.inner.DataplaneStats()
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.inner.Stop() }

// Connect initializes the CN API against a cluster ("Initialize CN API
// (using the factory)").
func Connect(c *Cluster, opts ClientOptions) (*Client, error) {
	cl, err := api.Initialize(c.inner.Network(), opts)
	if err != nil {
		return nil, fmt.Errorf("cn: %w", err)
	}
	return cl, nil
}

// NewActivity starts building an activity graph (one job) with the given
// name — the programmatic equivalent of drawing the UML activity diagram.
func NewActivity(name string) *ActivityBuilder { return core.NewBuilder(name) }

// Tags builds a TaggedValues map from alternating key/value strings.
func Tags(kv ...string) TaggedValues { return core.Tags(kv...) }

// TaskTags builds the standard tag set for a CN task.
func TaskTags(jar, class string, memoryMB int, runModel string) TaggedValues {
	return core.TaskTags(jar, class, memoryMB, runModel)
}

// NewClientModel creates a client model with no jobs.
func NewClientModel(name string) *ClientModel { return core.NewClient(name) }

// FixedArgs returns an ArgProvider producing n index-parameterized
// invocations for dynamic action states.
func FixedArgs(n int) ArgProvider { return core.FixedArgs(n) }

// ParseCNX parses a CNX client descriptor.
func ParseCNX(r io.Reader) (*CNXDocument, error) { return cnx.Parse(r) }

// ParseXMI parses an XMI document.
func ParseXMI(r io.Reader) (*XMIDocument, error) { return xmi.Parse(r) }

// ModelToXMI serializes a client model as an XMI document (what a UML tool
// would export).
func ModelToXMI(m *ClientModel) (*XMIDocument, error) { return transform.ToXMI(m) }

// XMIToModel lifts a parsed XMI document into a client model.
func XMIToModel(d *XMIDocument) (*ClientModel, error) { return transform.FromXMI(d) }

// ModelToCNX lowers a client model to a CNX descriptor (dynamic states are
// expanded through opts.Args).
func ModelToCNX(m *ClientModel, opts TransformOptions) (*CNXDocument, error) {
	return transform.ModelToCNX(m, opts)
}

// CNXToModel lifts a CNX descriptor back into a client model.
func CNXToModel(d *CNXDocument) (*ClientModel, error) { return transform.CNXToModel(d) }

// XMI2CNX runs the paper's end-to-end transformation: XMI in, CNX out.
func XMI2CNX(r io.Reader, w io.Writer, opts TransformOptions) error {
	return transform.XMI2CNX(r, w, opts)
}

// GenerateOptions configures GenerateClient.
type GenerateOptions = codegen.Options

// GenerateClient emits a complete Go client program for a CNX descriptor —
// the paper's CNX2Java step, targeting Go ("CNX2Go").
func GenerateClient(doc *CNXDocument, opts GenerateOptions) ([]byte, error) {
	return codegen.Generate(doc, opts)
}

// ActivityDOT renders an activity graph as Graphviz DOT (the paper's
// Figures 3 and 5 as machine-readable diagrams).
func ActivityDOT(g *ActivityGraph) string { return dot.Activity(g) }

// JobDOT renders a CNX job's dependency DAG as Graphviz DOT.
func JobDOT(j *cnx.Job) string { return dot.Job(j) }

// RunDescriptor executes every job of a CNX descriptor on the cluster the
// client is connected to, in declaration order, and returns the per-job
// results keyed by job name. Archives maps archive file names to built
// archives; tasks whose archive name is absent run against pre-deployed
// classes.
func RunDescriptor(ctx context.Context, client *Client, doc *CNXDocument, archives map[string]*Archive) (map[string]*Result, error) {
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("cn: run descriptor: %w", err)
	}
	results := make(map[string]*Result, len(doc.Client.Jobs))
	for ji := range doc.Client.Jobs {
		job := &doc.Client.Jobs[ji]
		specs, err := job.Specs()
		if err != nil {
			return nil, fmt.Errorf("cn: run descriptor: %w", err)
		}
		res, err := RunJob(ctx, client, job.Name, specs, archives)
		if err != nil {
			return nil, fmt.Errorf("cn: run descriptor: job %q: %w", job.Name, err)
		}
		results[job.Name] = res
	}
	return results, nil
}

// RunJob creates a job from specs, starts it, and waits for termination.
// The whole task set is submitted as one batch, so placement costs a
// single solicitation round and each archive travels once per node.
func RunJob(ctx context.Context, client *Client, name string, specs []*TaskSpec, archives map[string]*Archive) (*Result, error) {
	j, err := client.CreateJob(name, JobRequirements{})
	if err != nil {
		return nil, err
	}
	if _, err := j.CreateTasks(specs, archives); err != nil {
		return nil, err
	}
	return j.Run(ctx)
}

// RunModelOnCluster lowers a client model to CNX and executes it — the
// one-call version of the paper's pipeline for models already in memory.
func RunModelOnCluster(ctx context.Context, client *Client, m *ClientModel, opts TransformOptions, archives map[string]*Archive) (map[string]*Result, error) {
	doc, err := ModelToCNX(m, opts)
	if err != nil {
		return nil, err
	}
	return RunDescriptor(ctx, client, doc, archives)
}
