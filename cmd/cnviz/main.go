// Command cnviz renders CN composition artifacts as Graphviz DOT: either a
// CNX descriptor's dependency DAGs or an XMI model's activity diagrams
// (reproducing the paper's Figure 3/5 visuals).
//
// Usage:
//
//	cnviz -in client.cnx            # job dependency DAG(s)
//	cnviz -in model.xmi -xmi        # activity diagram(s)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnviz: ")
	var (
		in    = flag.String("in", "", "input file (required)")
		isXMI = flag.Bool("xmi", false, "input is XMI; render activity diagrams")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	if *isXMI {
		doc, err := cn.ParseXMI(f)
		if err != nil {
			log.Fatal(err)
		}
		model, err := cn.XMIToModel(doc)
		if err != nil {
			log.Fatal(err)
		}
		for _, job := range model.Jobs {
			fmt.Print(cn.ActivityDOT(job))
		}
		return
	}
	doc, err := cn.ParseCNX(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		log.Fatal(err)
	}
	for i := range doc.Client.Jobs {
		fmt.Print(cn.JobDOT(&doc.Client.Jobs[i]))
	}
}
