// Experiment T-J: the binary wire codec vs the gob baseline.
//
// The micro section measures, per hot message kind, the encoded payload
// size and the combined encode+decode cost of the hand-rolled binary codec
// against the pre-refactor behavior (a fresh reflection-based gob encoder
// per payload, which re-transmits full type descriptors on every message).
// The end-to-end section re-runs the 32-task batch admission and a
// tuple-space bag drain with the process-wide codec toggled, so the wire
// win is demonstrated on the full protocol stack, not just in isolation.
// Results are printed and snapshotted to BENCH_wire.json.

package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"cn"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/wire"
)

// wireKindRow is one message kind's micro measurement.
type wireKindRow struct {
	Kind       string  `json:"kind"`
	GobBytes   int     `json:"gob_bytes"`
	BinBytes   int     `json:"bin_bytes"`
	GobNsPerOp float64 `json:"gob_ns_op"`
	BinNsPerOp float64 `json:"bin_ns_op"`
}

// wireE2ERow is one end-to-end scenario under one codec.
type wireE2ERow struct {
	Scenario  string  `json:"scenario"`
	Codec     string  `json:"codec"`
	MedianMS  float64 `json:"median_ms,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// wireSnapshot is the BENCH_wire.json document.
type wireSnapshot struct {
	Experiment  string        `json:"experiment"`
	GeneratedAt time.Time     `json:"generated_at"`
	Kinds       []wireKindRow `json:"kinds"`
	E2E         []wireE2ERow  `json:"e2e"`
}

// wireBodies returns the per-kind micro corpus: realistic bodies for the
// protocol's hot message kinds.
func wireBodies() []struct {
	kind string
	body any
} {
	spec := func(name string) *task.Spec {
		return &task.Spec{
			Name: name, Class: "bench.Noop", Archive: "bench.jar",
			Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
		}
	}
	beats := make([]protocol.TaskBeat, 8)
	for i := range beats {
		beats[i] = protocol.TaskBeat{JobID: "node1-job1", Task: fmt.Sprintf("t%02d", i), Running: true, Progress: uint64(i * 13)}
	}
	items := make([]protocol.TaskCreate, 8)
	for i := range items {
		items[i] = protocol.TaskCreate{Spec: spec(fmt.Sprintf("t%02d", i)), Archive: protocol.ArchiveRef{Name: "bench.jar", Digest: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}}
	}
	return []struct {
		kind string
		body any
	}{
		{"HEARTBEAT", &protocol.Heartbeat{Node: "node1", Seq: 42, Beats: beats}},
		{"HEARTBEAT_ACK", &protocol.HeartbeatAck{Node: "node1", Seq: 42}},
		{"ASSIGN_TASKS", &protocol.AssignTasksReq{JobID: "node1-job1", JobManager: "node1", ClientNode: "client-1", Items: items}},
		{"TASKS_ASSIGNED", &protocol.AssignTasksResp{Fetched: 1}},
		{"TS_OUT", &protocol.TSOpReq{JobID: "node1-job1", FromTask: "w1", ParkMS: 1000,
			Fields: []protocol.TSField{{Kind: protocol.TSString, S: "work"}, {Kind: protocol.TSInt, I: 7}}}},
		{"TS_REPLY", &protocol.TSOpResp{OK: true,
			Fields: []protocol.TSField{{Kind: protocol.TSString, S: "res"}, {Kind: protocol.TSInt, I: 7}}}},
		{"TASK_COMPLETED", &protocol.TaskEvent{JobID: "node1-job1", Task: "t03", Node: "node2"}},
		{"USER", &protocol.UserPayload{JobID: "node1-job1", FromTask: "t03", ToTask: "client", Data: make([]byte, 256)}},
		{"JM_OFFER", &protocol.JMOffer{Node: "node1", FreeMemoryMB: 64000, ActiveJobs: 2}},
		{"TASK_OFFER", &protocol.TMOffer{Node: "node1", FreeMemoryMB: 64000, RunningTasks: 3}},
		{"EXEC_TASK", &protocol.ExecTaskReq{JobID: "node1-job1", Task: "t03"}},
		{"FETCH_BLOB", &protocol.FetchBlobReq{JobID: "node1-job1", Digests: []string{"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}}},
	}
}

// gobEncode mirrors the pre-refactor EncodePayload: fresh encoder, full
// type descriptor, every call.
func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// measureKind times encode+decode round trips for one body under both
// codecs.
func measureKind(kind string, body any, iters int) wireKindRow {
	fresh := func() any { return reflect.New(reflect.TypeOf(body).Elem()).Interface() }

	binEnc, err := wire.Default.Marshal(body)
	if err != nil {
		log.Fatalf("%s: %v", kind, err)
	}
	gobEnc := gobEncode(body)

	start := time.Now()
	for i := 0; i < iters; i++ {
		enc, err := wire.Default.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		if err := wire.Default.Unmarshal(enc, fresh()); err != nil {
			log.Fatal(err)
		}
	}
	binNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		enc := gobEncode(body)
		if err := gob.NewDecoder(bytes.NewReader(enc)).Decode(fresh()); err != nil {
			log.Fatal(err)
		}
	}
	gobNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	return wireKindRow{
		Kind:       kind,
		GobBytes:   len(gobEnc),
		BinBytes:   len(binEnc),
		GobNsPerOp: gobNs,
		BinNsPerOp: binNs,
	}
}

// withCodec runs f under the named payload codec and restores the binary
// codec afterwards. Nothing else may be using the fabric while the codec
// is switched; each scenario boots and tears down its own cluster inside f.
func withCodec(name string, f func()) {
	switch name {
	case "gob":
		msg.SetCodec(nil)
	case "binary":
		msg.SetCodec(wire.Default)
	default:
		log.Fatalf("unknown codec %q", name)
	}
	defer msg.SetCodec(wire.Default)
	f()
}

// admission32 measures the median 32-task batch admission on an 8-node
// cluster (the T-G batch configuration) under the active codec.
func admission32(reps int) time.Duration {
	const tasks = 32
	c, err := cn.StartCluster(cn.ClusterOptions{Nodes: 8, Registry: newRegistry(), MemoryMB: 64000})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ar, err := cn.NewArchive("bench.jar", "bench.Noop").
		AddFile("payload.bin", make([]byte, 64<<10)).Build()
	if err != nil {
		log.Fatal(err)
	}
	jobs := 0
	return timeIt(reps, func() {
		job, err := cl.CreateJob(fmt.Sprintf("wire-adm-%d", jobs), cn.JobRequirements{})
		if err != nil {
			log.Fatal(err)
		}
		specs := make([]*cn.TaskSpec, tasks)
		for i := range specs {
			specs[i] = &cn.TaskSpec{
				Name: fmt.Sprintf("t%d", i), Class: "bench.Noop", Archive: ar.Name,
				Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
			}
		}
		if _, err := job.CreateTasks(specs, map[string]*cn.Archive{ar.Name: ar}); err != nil {
			log.Fatal(err)
		}
		if err := job.Cancel("wire admission bench"); err != nil {
			log.Fatal(err)
		}
		jobs++
	})
}

// tuplespaceOps measures wire tuple-space throughput (ops/sec) with 4
// workers draining a 128-item bag under the active codec.
func tuplespaceOps(reps int) float64 {
	const items = 128
	const workers = 4
	c, cl := startCluster(4)
	defer c.Close()
	defer cl.Close()
	job, err := cl.CreateJob("wire-ts", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, workers)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("w%d", i), Class: "bench.TSWorker",
			Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
		}
	}
	if _, err := job.CreateTasks(specs, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	space := job.Space()
	start := time.Now()
	for r := 0; r < reps; r++ {
		pending := make(map[int]bool, items)
		for i := 0; i < items; i++ {
			pending[i] = true
			if err := space.Out(cn.Tuple{"work", i}); err != nil {
				log.Fatal(err)
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for len(pending) > 0 {
			if time.Now().After(deadline) {
				log.Fatalf("wire tuplespace bench stalled; %d items outstanding", len(pending))
			}
			ictx, icancel := context.WithTimeout(context.Background(), 5*time.Second)
			tu, err := space.In(ictx, cn.Template{"res", cn.TypeOf(0)})
			icancel()
			if err != nil {
				for v := range pending {
					if err := space.Out(cn.Tuple{"work", v}); err != nil {
						log.Fatal(err)
					}
				}
				continue
			}
			delete(pending, tu[1].(int))
		}
	}
	dur := time.Since(start)
	prog, ok := c.JobProgress(job.JMNode, job.ID)
	if !ok {
		log.Fatalf("no census for job %s", job.ID)
	}
	for i := 0; i < workers; i++ {
		if err := space.Out(cn.Tuple{"work", -1}); err != nil {
			log.Fatal(err)
		}
	}
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := job.Wait(wctx); err != nil {
		log.Fatal(err)
	}
	return float64(prog.TSOps) / dur.Seconds()
}

// wireTable is experiment T-J: binary codec vs gob baseline, micro and
// end-to-end, snapshotted to BENCH_wire.json.
func wireTable(reps int, outPath string) {
	header("T-J  Binary wire codec vs gob baseline")
	snap := wireSnapshot{Experiment: "T-J wire codec", GeneratedAt: time.Now().UTC()}

	iters := 2000 * reps
	fmt.Printf("%-16s %10s %10s %8s %12s %12s %9s\n",
		"kind", "gob B", "bin B", "ratio", "gob ns/op", "bin ns/op", "speedup")
	for _, c := range wireBodies() {
		row := measureKind(c.kind, c.body, iters)
		snap.Kinds = append(snap.Kinds, row)
		fmt.Printf("%-16s %10d %10d %7.1fx %12.0f %12.0f %8.1fx\n",
			row.Kind, row.GobBytes, row.BinBytes,
			float64(row.GobBytes)/float64(row.BinBytes),
			row.GobNsPerOp, row.BinNsPerOp,
			row.GobNsPerOp/row.BinNsPerOp)
	}

	fmt.Printf("\n%-24s %10s %14s %14s\n", "scenario", "codec", "median", "ops/sec")
	for _, codec := range []string{"gob", "binary"} {
		withCodec(codec, func() {
			d := admission32(reps)
			snap.E2E = append(snap.E2E, wireE2ERow{Scenario: "admission-32task-8node", Codec: codec,
				MedianMS: float64(d) / float64(time.Millisecond)})
			fmt.Printf("%-24s %10s %14v %14s\n", "admission-32task-8node", codec, d, "-")
		})
	}
	for _, codec := range []string{"gob", "binary"} {
		withCodec(codec, func() {
			ops := tuplespaceOps(reps)
			snap.E2E = append(snap.E2E, wireE2ERow{Scenario: "tuplespace-4worker", Codec: codec, OpsPerSec: ops})
			fmt.Printf("%-24s %10s %14s %14.0f\n", "tuplespace-4worker", codec, "-", ops)
		})
	}

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot written to %s\n", outPath)
}
