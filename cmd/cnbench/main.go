// Command cnbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: the parallel Floyd speedup study (T-A), discovery
// latency vs cluster size (T-B), message round-trip latency (T-C),
// transform throughput vs model size (T-D), and the batch placement study
// (T-G), whose numbers are also snapshotted to BENCH_placement.json so the
// perf trajectory is recorded. Run with -exp=all (default) or a single
// experiment id.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"cn"
	"cn/internal/discovery"
	"cn/internal/floyd"
	"cn/internal/jobstore"
	"cn/internal/metrics"
	"cn/internal/trace"
	"cn/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnbench: ")
	var (
		exp   = flag.String("exp", "all", "experiment: floyd | montecarlo | discovery | messaging | transform | placement | recovery | tuplespace | wire | durability | shuffle | trace | transport | all")
		reps  = flag.Int("reps", 5, "repetitions per configuration")
		out   = flag.String("placement-out", "BENCH_placement.json", "path for the placement experiment's JSON snapshot")
		rout  = flag.String("recovery-out", "BENCH_recovery.json", "path for the recovery experiment's JSON snapshot")
		tout  = flag.String("tuplespace-out", "BENCH_tuplespace.json", "path for the tuplespace experiment's JSON snapshot")
		wout  = flag.String("wire-out", "BENCH_wire.json", "path for the wire-codec experiment's JSON snapshot")
		dout  = flag.String("durability-out", "BENCH_durability.json", "path for the durability experiment's JSON snapshot")
		sout  = flag.String("shuffle-out", "BENCH_shuffle.json", "path for the shuffle data-plane experiment's JSON snapshot")
		trout = flag.String("trace-out", "BENCH_trace.json", "path for the tracing-overhead experiment's JSON snapshot")
		tpout = flag.String("transport-out", "BENCH_transport.json", "path for the transport-pipelining experiment's JSON snapshot")
	)
	flag.Parse()

	switch *exp {
	case "floyd":
		floydTable(*reps)
	case "montecarlo":
		monteCarloTable(*reps)
	case "discovery":
		discoveryTable(*reps)
	case "messaging":
		messagingTable(*reps)
	case "transform":
		transformTable(*reps)
	case "placement":
		placementTable(*reps, *out)
	case "recovery":
		recoveryTable(*reps, *rout)
	case "tuplespace":
		tuplespaceTable(*reps, *tout)
	case "wire":
		wireTable(*reps, *wout)
	case "durability":
		durabilityTable(*reps, *dout)
	case "shuffle":
		shuffleTable(*reps, *sout)
	case "trace":
		traceTable(*reps, *trout)
	case "transport":
		transportTable(*reps, *tpout)
	case "all":
		floydTable(*reps)
		monteCarloTable(*reps)
		discoveryTable(*reps)
		messagingTable(*reps)
		transformTable(*reps)
		placementTable(*reps, *out)
		recoveryTable(*reps, *rout)
		tuplespaceTable(*reps, *tout)
		wireTable(*reps, *wout)
		durabilityTable(*reps, *dout)
		shuffleTable(*reps, *sout)
		traceTable(*reps, *trout)
		transportTable(*reps, *tpout)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// monteCarloTable is experiment T-A2: compute-bound scaling. A fixed total
// of 4M samples is split across W workers; unlike the communication-bound
// small-N Floyd study, this shows the near-linear speedup CN delivers when
// per-task compute dominates messaging.
func monteCarloTable(reps int) {
	header("T-A2  Monte-Carlo pi, 4M total samples (compute-bound scaling)")
	const total = 4_000_000
	c, cl := startCluster(4)
	defer c.Close()
	defer cl.Close()
	ctx := context.Background()
	var base time.Duration
	fmt.Printf("%-14s %12s %10s\n", "workers", "median", "speedup")
	for _, w := range []int{1, 2, 4, 8} {
		per := int64(total / w)
		d := timeIt(reps, func() {
			if _, err := workloads.RunMonteCarloPi(ctx, cl, w, per, 7); err != nil {
				log.Fatal(err)
			}
		})
		if w == 1 {
			base = d
		}
		fmt.Printf("%-14d %12v %9.2fx\n", w, d, float64(base)/float64(d))
	}
}

func newRegistry() *cn.Registry {
	reg := cn.NewRegistry()
	floyd.MustRegister(reg)
	workloads.MustRegister(reg)
	reg.MustRegister("bench.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})
	// bench.Sleep simulates a short compute burst; it polls Done so a
	// cancelled copy (a recovery loser) exits promptly.
	reg.MustRegister("bench.Sleep", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			deadline := time.Now().Add(60 * time.Millisecond)
			for time.Now().Before(deadline) {
				if ctx.Done() {
					return nil
				}
				time.Sleep(2 * time.Millisecond)
			}
			return nil
		})
	})
	// bench.SleepLong is the durability experiment's victim workload: long
	// enough that the JobManager kill always lands mid-job, polling Done so
	// cancelled copies exit promptly.
	reg.MustRegister("bench.SleepLong", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			deadline := time.Now().Add(400 * time.Millisecond)
			for time.Now().Before(deadline) {
				if ctx.Done() {
					return nil
				}
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		})
	})
	// bench.TSWorker is the tuple-space experiment's replicated worker: it
	// steals ("work", v) items from the job's space and answers with
	// ("res", v); a negative item is the poison pill.
	reg.MustRegister("bench.TSWorker", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			for {
				t, err := ctx.In(cn.Template{"work", cn.TypeOf(0)})
				if err != nil {
					return nil // space closed at teardown
				}
				v := t[1].(int)
				if v < 0 {
					return nil
				}
				if err := ctx.Out(cn.Tuple{"res", v}); err != nil {
					return err
				}
			}
		})
	})
	// bench.Shuffle is the data-plane all-to-all worker: it publishes its
	// own output, then pulls every peer's straight from the producing
	// nodes. Params: [0] worker count, [1] payload bytes.
	reg.MustRegister("bench.Shuffle", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			peers, size, err := shuffleParams(ctx)
			if err != nil {
				return err
			}
			if err := ctx.Put("shuf/"+ctx.TaskName(), shufflePayload(ctx.TaskName(), size)); err != nil {
				return err
			}
			for i := 1; i <= peers; i++ {
				data, err := ctx.Get(context.Background(), fmt.Sprintf("shuf/s%d", i))
				if err != nil {
					return err
				}
				if len(data) != size {
					return fmt.Errorf("bench.Shuffle: s%d: got %d bytes, want %d", i, len(data), size)
				}
			}
			return nil
		})
	})
	// bench.Relay is the pre-data-plane baseline: the same all-to-all
	// moved as USER mailbox messages, every payload relaying through the
	// JobManager (producer -> JM -> consumer mailbox). Params as
	// bench.Shuffle.
	reg.MustRegister("bench.Relay", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			peers, size, err := shuffleParams(ctx)
			if err != nil {
				return err
			}
			payload := shufflePayload(ctx.TaskName(), size)
			for i := 1; i <= peers; i++ {
				if err := ctx.Send(fmt.Sprintf("s%d", i), payload); err != nil {
					return err
				}
			}
			for i := 0; i < peers; i++ {
				_, data, err := ctx.Recv()
				if err != nil {
					return err
				}
				if len(data) != size {
					return fmt.Errorf("bench.Relay: got %d bytes, want %d", len(data), size)
				}
			}
			return nil
		})
	})
	reg.MustRegister("bench.Echo", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			for {
				_, data, err := ctx.Recv()
				if err != nil {
					return nil
				}
				if err := ctx.SendClient(data); err != nil {
					return err
				}
			}
		})
	})
	return reg
}

func startCluster(nodes int) (*cn.Cluster, *cn.Client) {
	c, err := cn.StartCluster(cn.ClusterOptions{Nodes: nodes, Registry: newRegistry(), MemoryMB: 64000})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	return c, cl
}

// timeIt runs f reps times and returns the median duration.
func timeIt(reps int, f func()) time.Duration {
	h := metrics.NewHistogram(reps + 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		h.ObserveDuration(time.Since(start))
	}
	return time.Duration(h.Quantile(0.5) * float64(time.Millisecond))
}

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

// floydTable is experiment T-A: parallel Floyd speedup vs worker count.
func floydTable(reps int) {
	header("T-A  Parallel Floyd all-pairs shortest paths (N=96, 4-node cluster)")
	const n = 96
	m := floyd.RandomGraph(n, 0.3, 9, 17)
	seq := timeIt(reps, func() { floyd.Sequential(m) })
	fmt.Printf("%-24s %12s %10s\n", "configuration", "median", "speedup")
	fmt.Printf("%-24s %12v %10s\n", "sequential", seq, "1.00x")
	for _, w := range []int{1, 2, 4, 8} {
		d := timeIt(reps, func() { floyd.ParallelInProcess(m, w) })
		fmt.Printf("%-24s %12v %9.2fx\n", fmt.Sprintf("in-process w=%d", w), d, float64(seq)/float64(d))
	}
	c, cl := startCluster(4)
	defer c.Close()
	defer cl.Close()
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 8} {
		d := timeIt(reps, func() {
			if _, err := floyd.Run(ctx, cl, m, w); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-24s %12v %9.2fx\n", fmt.Sprintf("cn w=%d", w), d, float64(seq)/float64(d))
	}
}

// discoveryTable is experiment T-B: discovery latency vs cluster size.
func discoveryTable(reps int) {
	header("T-B  JobManager multicast discovery latency")
	fmt.Printf("%-10s %16s %16s\n", "nodes", "first-responder", "best-fit(all)")
	for _, nodes := range []int{1, 4, 16, 64} {
		c, cl := startCluster(nodes)
		first := timeIt(reps, func() {
			if _, _, err := cl.DiscoverWith(discovery.FirstResponder{}, cn.JobRequirements{}); err != nil {
				log.Fatal(err)
			}
		})
		best := timeIt(reps, func() {
			if _, _, err := cl.DiscoverWith(discovery.BestFit{}, cn.JobRequirements{}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-10d %16v %16v\n", nodes, first, best)
		cl.Close()
		c.Close()
	}
}

// messagingTable is experiment T-C: user message round-trip latency.
func messagingTable(reps int) {
	header("T-C  User message round trip (client -> JM -> task -> JM -> client)")
	c, cl := startCluster(3)
	defer c.Close()
	defer cl.Close()
	job, err := cl.CreateJob("echo", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	if err := job.CreateTask(&cn.TaskSpec{
		Name: "echo", Class: "bench.Echo",
		Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
	}, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("%-12s %14s %14s\n", "payload", "median RTT", "msgs/sec")
	for _, size := range []int{64, 1024, 65536} {
		payload := make([]byte, size)
		const rounds = 200
		d := timeIt(reps, func() {
			for i := 0; i < rounds; i++ {
				if err := job.SendMessage("echo", payload); err != nil {
					log.Fatal(err)
				}
				if _, _, err := job.GetMessage(ctx); err != nil {
					log.Fatal(err)
				}
			}
		})
		perMsg := d / rounds
		fmt.Printf("%-12s %14v %14.0f\n", fmt.Sprintf("%dB", size), perMsg, float64(time.Second)/float64(perMsg))
	}
	_ = job.Cancel("bench done")
}

// placementRow is one configuration's measurement in the T-G study.
type placementRow struct {
	Mode         string  `json:"mode"`  // "pertask" or "batch"
	Nodes        int     `json:"nodes"` // cluster size
	Tasks        int     `json:"tasks"` // tasks per admitted job
	MedianMS     float64 `json:"median_admission_ms"`
	RoundsPerJob float64 `json:"solicit_rounds_per_job"`
	UploadsTotal int64   `json:"archive_uploads_total"`
	JobsAdmitted int     `json:"jobs_admitted"`
}

// localityRow is one phase of the cold-vs-warm re-admission study.
type localityRow struct {
	Phase          string  `json:"phase"` // "cold" or "warm"
	Nodes          int     `json:"nodes"`
	Tasks          int     `json:"tasks"`
	MedianMS       float64 `json:"median_admission_ms"`
	ArchiveUploads float64 `json:"archive_uploads_per_job"`
	WarmHits       int64   `json:"warm_hits"`
	BytesSavedPct  float64 `json:"archive_bytes_saved_pct"`
}

// placementSnapshot is the BENCH_placement.json document.
type placementSnapshot struct {
	Experiment  string         `json:"experiment"`
	GeneratedAt time.Time      `json:"generated_at"`
	Rows        []placementRow `json:"rows"`
	Locality    []localityRow  `json:"locality,omitempty"`
}

// placementTable is experiment T-G: admission of a 32-task single-archive
// job, per-task placement (one solicitation round per task, the
// pre-directory behavior) vs batch placement (one round for the whole
// set). Results are printed and snapshotted as JSON for trend tracking.
func placementTable(reps int, outPath string) {
	header("T-G  Batch placement vs per-task placement (32-task job admission)")
	const tasks = 32
	snap := placementSnapshot{Experiment: "T-G batch placement", GeneratedAt: time.Now().UTC()}
	fmt.Printf("%-10s %8s %14s %14s %16s\n", "mode", "nodes", "median", "rounds/job", "uploads(total)")
	for _, nodes := range []int{1, 8, 32} {
		for _, mode := range []struct {
			name  string
			batch bool
			ttl   time.Duration
		}{
			{"pertask", false, -1},
			{"batch", true, 0},
		} {
			c, err := cn.StartCluster(cn.ClusterOptions{
				Nodes: nodes, Registry: newRegistry(),
				MemoryMB: 64000, PlacementTTL: mode.ttl,
			})
			if err != nil {
				log.Fatal(err)
			}
			cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
			if err != nil {
				log.Fatal(err)
			}
			ar, err := cn.NewArchive("bench.jar", "bench.Noop").
				AddFile("payload.bin", make([]byte, 64<<10)).Build()
			if err != nil {
				log.Fatal(err)
			}
			jobs := 0
			d := timeIt(reps, func() {
				job, err := cl.CreateJob(fmt.Sprintf("adm-%d", jobs), cn.JobRequirements{})
				if err != nil {
					log.Fatal(err)
				}
				specs := make([]*cn.TaskSpec, tasks)
				for i := range specs {
					specs[i] = &cn.TaskSpec{
						Name: fmt.Sprintf("t%d", i), Class: "bench.Noop", Archive: ar.Name,
						Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
					}
				}
				if mode.batch {
					if _, err := job.CreateTasks(specs, map[string]*cn.Archive{ar.Name: ar}); err != nil {
						log.Fatal(err)
					}
				} else {
					for _, s := range specs {
						if err := job.CreateTask(s, ar); err != nil {
							log.Fatal(err)
						}
					}
				}
				if err := job.Cancel("admission bench"); err != nil {
					log.Fatal(err)
				}
				jobs++
			})
			row := placementRow{
				Mode:         mode.name,
				Nodes:        nodes,
				Tasks:        tasks,
				MedianMS:     float64(d) / float64(time.Millisecond),
				RoundsPerJob: float64(c.PlacementStats().SolicitRounds) / float64(jobs),
				UploadsTotal: c.BlobTransfers(),
				JobsAdmitted: jobs,
			}
			snap.Rows = append(snap.Rows, row)
			fmt.Printf("%-10s %8d %14v %14.2f %16d\n",
				mode.name, nodes, d, row.RoundsPerJob, row.UploadsTotal)
			cl.Close()
			c.Close()
		}
	}
	placementLocality(reps, &snap)
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot written to %s\n", outPath)
}

// placementLocality is the cold-vs-warm half of the placement study: admit
// a 32-task single-archive job on a cold 8-node cluster (the archive ships
// to every chosen node), then re-admit jobs wanting the same digest. The
// locality scorer sees every node advertising the digest, so warm
// re-admission should beat cold and the archive should not cross the wire
// again — the bytes-saved percentage the snapshot records.
func placementLocality(reps int, snap *placementSnapshot) {
	const nodes, tasks = 8, 32
	header("T-G2  Cold vs warm re-admission (archive already resident)")
	// Per-round solicitation (negative TTL) so every admission scores
	// against offers that reflect the nodes' current blob caches.
	c, err := cn.StartCluster(cn.ClusterOptions{
		Nodes: nodes, Registry: newRegistry(),
		MemoryMB: 64000, PlacementTTL: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ar, err := cn.NewArchive("bench.jar", "bench.Noop").
		AddFile("payload.bin", make([]byte, 64<<10)).Build()
	if err != nil {
		log.Fatal(err)
	}
	jobs := 0
	admit := func() {
		job, err := cl.CreateJob(fmt.Sprintf("loc-%d", jobs), cn.JobRequirements{})
		if err != nil {
			log.Fatal(err)
		}
		jobs++
		specs := make([]*cn.TaskSpec, tasks)
		for i := range specs {
			specs[i] = &cn.TaskSpec{
				Name: fmt.Sprintf("t%d", i), Class: "bench.Noop", Archive: ar.Name,
				Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
			}
		}
		if _, err := job.CreateTasks(specs, map[string]*cn.Archive{ar.Name: ar}); err != nil {
			log.Fatal(err)
		}
		if err := job.Cancel("locality bench"); err != nil {
			log.Fatal(err)
		}
	}

	// Cold: a single admission on the fresh cluster — later repetitions
	// would find the caches warm, so this phase is one measurement.
	coldD := timeIt(1, admit)
	coldUploads := c.BlobTransfers()
	coldStats := c.PlacementStats()

	warmStart := jobs
	warmD := timeIt(reps, admit)
	warmJobs := jobs - warmStart
	warmUploads := c.BlobTransfers() - coldUploads
	warmStats := c.PlacementStats()

	savedPct := 100.0
	if coldUploads > 0 {
		savedPct = 100 * (1 - float64(warmUploads)/float64(warmJobs)/float64(coldUploads))
	}
	rows := []localityRow{
		{Phase: "cold", Nodes: nodes, Tasks: tasks,
			MedianMS:       float64(coldD) / float64(time.Millisecond),
			ArchiveUploads: float64(coldUploads),
			WarmHits:       coldStats.WarmHits},
		{Phase: "warm", Nodes: nodes, Tasks: tasks,
			MedianMS:       float64(warmD) / float64(time.Millisecond),
			ArchiveUploads: float64(warmUploads) / float64(warmJobs),
			WarmHits:       warmStats.WarmHits - coldStats.WarmHits,
			BytesSavedPct:  savedPct},
	}
	snap.Locality = append(snap.Locality, rows...)
	fmt.Printf("%-10s %8s %14s %16s %12s %12s\n",
		"phase", "nodes", "median", "uploads/job", "warm hits", "saved %")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %14v %16.2f %12d %11.1f%%\n",
			r.Phase, r.Nodes, time.Duration(r.MedianMS*float64(time.Millisecond)),
			r.ArchiveUploads, r.WarmHits, r.BytesSavedPct)
	}
}

// recoveryRow is one heartbeat-interval configuration's measurement in the
// T-H study.
type recoveryRow struct {
	HeartbeatMS  float64 `json:"heartbeat_ms"`
	SuspectMS    float64 `json:"suspect_ms"`
	DeadMS       float64 `json:"dead_ms"`
	Nodes        int     `json:"nodes"`
	Tasks        int     `json:"tasks"`
	BaselineMS   float64 `json:"baseline_job_ms"`
	KilledMS     float64 `json:"killed_job_ms"`
	RecoveryMS   float64 `json:"time_to_recover_ms"`
	RetriesFinal int     `json:"retries_last_run"`
}

// recoverySnapshot is the BENCH_recovery.json document.
type recoverySnapshot struct {
	Experiment  string        `json:"experiment"`
	GeneratedAt time.Time     `json:"generated_at"`
	Rows        []recoveryRow `json:"rows"`
}

// recoveryJob runs one 32-task job on a fresh cluster with the given
// heartbeat interval, optionally power-cutting a worker mid-flight, and
// returns the job's start-to-done duration plus the client-observed retry
// count. Each run boots its own cluster: a killed node stays dead.
func recoveryJob(hb time.Duration, tasks int, kill bool) (time.Duration, int) {
	c, err := cn.StartCluster(cn.ClusterOptions{
		Nodes: 8, Registry: newRegistry(), MemoryMB: 64000,
		HeartbeatInterval: hb, MaxTaskRetries: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	job, err := cl.CreateJob("recovery", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, tasks)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("r%02d", i), Class: "bench.Sleep",
			Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
		}
	}
	placements, err := job.CreateTasks(specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	victim := ""
	for _, node := range placements {
		if node != job.JMNode {
			victim = node
			break
		}
	}
	start := time.Now()
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	if kill && victim != "" {
		time.Sleep(15 * time.Millisecond)
		if err := c.KillNode(victim); err != nil {
			log.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil || res.Failed {
		log.Fatalf("recovery job: res=%+v err=%v", res, err)
	}
	return time.Since(start), job.Progress().Retried
}

// recoveryTable is experiment T-H: time-to-recover vs heartbeat interval.
// An 8-node cluster runs a 32-task job; a worker hosting tasks is
// power-cut 15ms in. Time-to-recover is the killed run's duration minus
// the no-kill baseline — the price of detection (≈ DeadAfter = 6×interval)
// plus re-placement and re-execution.
func recoveryTable(reps int, outPath string) {
	header("T-H  Failure recovery: 32-task job, 8 nodes, worker killed mid-run")
	const tasks = 32
	snap := recoverySnapshot{Experiment: "T-H failure recovery", GeneratedAt: time.Now().UTC()}
	fmt.Printf("%-14s %12s %12s %14s %10s\n", "heartbeat", "baseline", "with kill", "recovery", "retries")
	for _, hb := range []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	} {
		// Mean of the job window only (cluster boot excluded), so baseline
		// and killed runs are directly comparable.
		var retries int
		var baseMS, killMS float64
		for i := 0; i < reps; i++ {
			d, _ := recoveryJob(hb, tasks, false)
			baseMS += float64(d) / float64(time.Millisecond)
		}
		baseMS /= float64(reps)
		for i := 0; i < reps; i++ {
			d, r := recoveryJob(hb, tasks, true)
			killMS += float64(d) / float64(time.Millisecond)
			retries = r
		}
		killMS /= float64(reps)
		row := recoveryRow{
			HeartbeatMS:  float64(hb) / float64(time.Millisecond),
			SuspectMS:    float64(3*hb) / float64(time.Millisecond),
			DeadMS:       float64(6*hb) / float64(time.Millisecond),
			Nodes:        8,
			Tasks:        tasks,
			BaselineMS:   baseMS,
			KilledMS:     killMS,
			RecoveryMS:   killMS - baseMS,
			RetriesFinal: retries,
		}
		snap.Rows = append(snap.Rows, row)
		fmt.Printf("%-14v %11.1fms %11.1fms %13.1fms %10d\n",
			hb, row.BaselineMS, row.KilledMS, row.RecoveryMS, row.RetriesFinal)
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot written to %s\n", outPath)
}

// tuplespaceRow is one worker-count configuration's measurement in the
// T-I study.
type tuplespaceRow struct {
	Workers     int     `json:"workers"`
	Nodes       int     `json:"nodes"`
	Items       int     `json:"items"`
	TSOps       int     `json:"ts_ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	WakeupP50MS float64 `json:"wakeup_p50_ms"`
	WakeupP99MS float64 `json:"wakeup_p99_ms"`
}

// tuplespaceSnapshot is the BENCH_tuplespace.json document.
type tuplespaceSnapshot struct {
	Experiment  string          `json:"experiment"`
	GeneratedAt time.Time       `json:"generated_at"`
	Rows        []tuplespaceRow `json:"rows"`
}

// tuplespaceTable is experiment T-I: tuple-space coordination throughput
// and blocking-op wakeup latency vs worker count. A replicated worker
// pool steals ("work", v) items from the job's space over the wire and
// answers ("res", v). Throughput drains a full bag; wakeup latency is the
// round trip of one Out into a pool of parked In waiters (client Out →
// worker wakes → worker Out → client In). Op counts come from the
// JobManager's ts_ops census, so the figure is the wire truth, not an
// estimate.
func tuplespaceTable(reps int, outPath string) {
	header("T-I  Tuple-space coordination: bag drain + blocked-In wakeup (4-node cluster)")
	const items = 256
	const wakeupRounds = 50
	snap := tuplespaceSnapshot{Experiment: "T-I tuplespace coordination", GeneratedAt: time.Now().UTC()}
	fmt.Printf("%-10s %10s %12s %14s %14s\n", "workers", "ts_ops", "ops/sec", "wakeup p50", "wakeup p99")
	for _, w := range []int{1, 2, 4, 8} {
		c, cl := startCluster(4)
		job, err := cl.CreateJob(fmt.Sprintf("ts-%d", w), cn.JobRequirements{})
		if err != nil {
			log.Fatal(err)
		}
		specs := make([]*cn.TaskSpec, w)
		for i := range specs {
			specs[i] = &cn.TaskSpec{
				Name: fmt.Sprintf("w%d", i), Class: "bench.TSWorker",
				Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
			}
		}
		if _, err := job.CreateTasks(specs, nil); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(); err != nil {
			log.Fatal(err)
		}
		space := job.Space()
		ctx := context.Background()
		// Tuple delivery is at-most-once; like every bag-of-tasks client,
		// the bench drains under a per-attempt deadline and re-seeds
		// unanswered items so a rare lost reply costs a retry, not a hang.
		drain := func(pending map[int]bool) {
			deadline := time.Now().Add(60 * time.Second)
			for len(pending) > 0 {
				if time.Now().After(deadline) {
					log.Fatalf("tuplespace bench stalled; %d items outstanding", len(pending))
				}
				ictx, icancel := context.WithTimeout(ctx, 5*time.Second)
				tu, err := space.In(ictx, cn.Template{"res", cn.TypeOf(0)})
				icancel()
				if err != nil {
					for v := range pending {
						if err := space.Out(cn.Tuple{"work", v}); err != nil {
							log.Fatal(err)
						}
					}
					continue
				}
				delete(pending, tu[1].(int)) // duplicate answers just miss
			}
		}

		// Throughput: seed the whole bag, drain every result.
		start := time.Now()
		for r := 0; r < reps; r++ {
			pending := make(map[int]bool, items)
			for i := 0; i < items; i++ {
				pending[i] = true
				if err := space.Out(cn.Tuple{"work", i}); err != nil {
					log.Fatal(err)
				}
			}
			drain(pending)
		}
		thDur := time.Since(start)
		prog, ok := c.JobProgress(job.JMNode, job.ID)
		if !ok {
			log.Fatalf("no census for job %s", job.ID)
		}

		// Wakeup latency: with the bag empty every worker is parked in In;
		// one Out must wake exactly one of them.
		h := metrics.NewHistogram(wakeupRounds + 1)
		for r := 0; r < wakeupRounds; r++ {
			v := items*reps + r
			t0 := time.Now()
			if err := space.Out(cn.Tuple{"work", v}); err != nil {
				log.Fatal(err)
			}
			drain(map[int]bool{v: true})
			h.ObserveDuration(time.Since(t0))
		}

		// Poison the pool and let the job terminate (closing the space).
		for i := 0; i < w; i++ {
			if err := space.Out(cn.Tuple{"work", -1}); err != nil {
				log.Fatal(err)
			}
		}
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		if _, err := job.Wait(wctx); err != nil {
			log.Fatal(err)
		}
		cancel()

		row := tuplespaceRow{
			Workers:     w,
			Nodes:       4,
			Items:       items * reps,
			TSOps:       prog.TSOps,
			OpsPerSec:   float64(prog.TSOps) / thDur.Seconds(),
			WakeupP50MS: h.Quantile(0.5),
			WakeupP99MS: h.Quantile(0.99),
		}
		snap.Rows = append(snap.Rows, row)
		fmt.Printf("%-10d %10d %12.0f %12.2fms %12.2fms\n",
			w, row.TSOps, row.OpsPerSec, row.WakeupP50MS, row.WakeupP99MS)
		cl.Close()
		c.Close()
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot written to %s\n", outPath)
}

// durabilityAppendRow is one fsync-mode configuration's WAL append latency.
type durabilityAppendRow struct {
	Mode    string  `json:"mode"` // "fsync" or "nosync"
	Records int     `json:"records"`
	P50US   float64 `json:"append_p50_us"`
	P99US   float64 `json:"append_p99_us"`
}

// durabilityReplayRow is one log-size configuration's cold replay cost.
type durabilityReplayRow struct {
	Records  int     `json:"records"`
	WALBytes int64   `json:"wal_bytes"`
	ReplayMS float64 `json:"replay_ms"`
}

// durabilityFailoverRow summarizes the JobManager failover study.
type durabilityFailoverRow struct {
	Nodes        int     `json:"nodes"`
	Tasks        int     `json:"tasks"`
	CheckpointMS float64 `json:"checkpoint_every_ms"`
	AdoptMeanMS  float64 `json:"time_to_adopt_mean_ms"`
	AdoptMaxMS   float64 `json:"time_to_adopt_max_ms"`
	FinishMeanMS float64 `json:"kill_to_finish_mean_ms"`
	RetriesFinal int     `json:"retries_last_run"`
	Runs         int     `json:"runs"`
}

// durabilitySnapshot is the BENCH_durability.json document.
type durabilitySnapshot struct {
	Experiment  string                `json:"experiment"`
	GeneratedAt time.Time             `json:"generated_at"`
	Append      []durabilityAppendRow `json:"append"`
	Replay      []durabilityReplayRow `json:"replay"`
	Failover    durabilityFailoverRow `json:"failover"`
}

// durabilityWAL opens a WAL in a fresh scratch directory and returns a
// cleanup that removes it.
func durabilityWAL(nosync bool) (*jobstore.WAL, func()) {
	dir, err := os.MkdirTemp("", "cnbench-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	w, err := jobstore.OpenWAL(dir, jobstore.WALOptions{NoSync: nosync})
	if err != nil {
		log.Fatal(err)
	}
	return w, func() {
		w.Close()
		os.RemoveAll(dir)
	}
}

func durabilityPut(w *jobstore.WAL, i int, body []byte) {
	if err := w.Put(&jobstore.PersistedJob{
		ID: fmt.Sprintf("job-%d", i+1), Seq: int64(i + 1),
		Sub:   jobstore.Submission{Format: jobstore.FormatCNX, Body: body, Label: "bench"},
		State: jobstore.StateQueued,
	}); err != nil {
		log.Fatal(err)
	}
}

// durabilityFailover runs one JM-kill round: a 4-node cluster hosts a job
// of long tasks, the hosting JobManager is power-cut mid-job, and the run
// reports kill-to-adoption (the client observing its handle re-pointed)
// and kill-to-finish latencies plus the final retry count.
func durabilityFailover(tasks int, checkpoint time.Duration) (adopt, finish time.Duration, retried int) {
	c, err := cn.StartCluster(cn.ClusterOptions{
		Nodes: 4, Registry: newRegistry(), MemoryMB: 64000,
		HeartbeatInterval: 10 * time.Millisecond,
		MaxTaskRetries:    3,
		CheckpointEvery:   checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	job, err := cl.CreateJob("durable", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, tasks)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("d%02d", i), Class: "bench.SleepLong",
			Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
		}
	}
	if _, err := job.CreateTasks(specs, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	origin := job.Manager()
	// Let at least two checkpoint ticks replicate the started schedule.
	time.Sleep(50 * time.Millisecond)
	t0 := time.Now()
	if err := c.KillNode(origin); err != nil {
		log.Fatal(err)
	}
	for job.Manager() == origin {
		if time.Since(t0) > 30*time.Second {
			log.Fatal("durability: adoption never observed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	adopt = time.Since(t0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil || res.Failed {
		log.Fatalf("durability job after failover: res=%+v err=%v", res, err)
	}
	return adopt, time.Since(t0), job.Progress().Retried
}

// durabilityTable is experiment T-J: the durable control plane's costs.
// Left side: what persistence charges the submit path (WAL append latency
// with and without fsync) and the reboot path (cold replay vs log size).
// Right side: what failover delivers — time from JobManager power-cut to
// the client observing adoption, and to the job finishing on the survivor.
func durabilityTable(reps int, outPath string) {
	header("T-J  Durable control plane: WAL append/replay + JobManager failover")
	snap := durabilitySnapshot{Experiment: "T-J durability", GeneratedAt: time.Now().UTC()}
	body := make([]byte, 512)

	const appends = 512
	fmt.Printf("%-10s %10s %14s %14s\n", "mode", "records", "append p50", "append p99")
	for _, mode := range []struct {
		name   string
		nosync bool
	}{{"fsync", false}, {"nosync", true}} {
		w, cleanup := durabilityWAL(mode.nosync)
		h := metrics.NewHistogram(appends + 1)
		for i := 0; i < appends; i++ {
			t0 := time.Now()
			durabilityPut(w, i, body)
			h.ObserveDuration(time.Since(t0))
		}
		cleanup()
		row := durabilityAppendRow{
			Mode: mode.name, Records: appends,
			P50US: h.Quantile(0.5) * 1000, P99US: h.Quantile(0.99) * 1000,
		}
		snap.Append = append(snap.Append, row)
		fmt.Printf("%-10s %10d %12.0fµs %12.0fµs\n", row.Mode, row.Records, row.P50US, row.P99US)
	}

	fmt.Printf("\n%-10s %12s %12s\n", "records", "wal bytes", "replay")
	for _, n := range []int{1024, 4096, 16384} {
		dir, err := os.MkdirTemp("", "cnbench-wal-*")
		if err != nil {
			log.Fatal(err)
		}
		w, err := jobstore.OpenWAL(dir, jobstore.WALOptions{NoSync: true})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			durabilityPut(w, i, body)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		var size int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			if fi, err := e.Info(); err == nil {
				size += fi.Size()
			}
		}
		t0 := time.Now()
		w2, err := jobstore.OpenWAL(dir, jobstore.WALOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pjs, err := w2.Load()
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		if len(pjs) != n {
			log.Fatalf("replayed %d of %d records", len(pjs), n)
		}
		w2.Close()
		os.RemoveAll(dir)
		row := durabilityReplayRow{Records: n, WALBytes: size, ReplayMS: float64(d) / float64(time.Millisecond)}
		snap.Replay = append(snap.Replay, row)
		fmt.Printf("%-10d %12d %11.2fms\n", row.Records, row.WALBytes, row.ReplayMS)
	}

	const tasks = 8
	checkpoint := 20 * time.Millisecond
	var adoptSum, adoptMax, finishSum time.Duration
	var retries int
	for i := 0; i < reps; i++ {
		adopt, finish, r := durabilityFailover(tasks, checkpoint)
		adoptSum += adopt
		finishSum += finish
		if adopt > adoptMax {
			adoptMax = adopt
		}
		retries = r
	}
	snap.Failover = durabilityFailoverRow{
		Nodes: 4, Tasks: tasks,
		CheckpointMS: float64(checkpoint) / float64(time.Millisecond),
		AdoptMeanMS:  float64(adoptSum) / float64(reps) / float64(time.Millisecond),
		AdoptMaxMS:   float64(adoptMax) / float64(time.Millisecond),
		FinishMeanMS: float64(finishSum) / float64(reps) / float64(time.Millisecond),
		RetriesFinal: retries,
		Runs:         reps,
	}
	fmt.Printf("\n%-28s %12s %12s %12s\n", "failover (kill JM mid-job)", "adopt mean", "adopt max", "finish mean")
	fmt.Printf("%-28s %10.1fms %10.1fms %10.1fms\n",
		fmt.Sprintf("%d nodes, %d tasks, ckpt %v", 4, tasks, checkpoint),
		snap.Failover.AdoptMeanMS, snap.Failover.AdoptMaxMS, snap.Failover.FinishMeanMS)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot written to %s\n", outPath)
}

// shuffleParams reads the shuffle workers' shared parameter list.
func shuffleParams(ctx cn.TaskContext) (peers, size int, err error) {
	ps := ctx.Params()
	if len(ps) < 2 {
		return 0, 0, fmt.Errorf("shuffle worker: want 2 params, have %d", len(ps))
	}
	if peers, err = ps[0].Int(); err != nil {
		return 0, 0, err
	}
	if size, err = ps[1].Int(); err != nil {
		return 0, 0, err
	}
	return peers, size, nil
}

// shufflePayload is deterministic per worker, so every worker's output has
// a distinct digest — no cross-key dedup in the node blob caches.
func shufflePayload(name string, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = name[i%len(name)] ^ byte(i)
	}
	return b
}

// shuffleIntParam formats an integer task parameter for the shuffle specs.
func shuffleIntParam(v int) cn.Param {
	return cn.Param{Type: cn.TypeInteger, Value: strconv.Itoa(v)}
}

// shuffleRow is one (mode, cluster size) measurement in the T-K study.
type shuffleRow struct {
	Mode           string  `json:"mode"`  // "sendrelay" or "dataplane"
	Nodes          int     `json:"nodes"` // cluster size
	Workers        int     `json:"workers"`
	ShuffleBytes   int64   `json:"shuffle_bytes_per_run"`
	MedianMS       float64 `json:"median_ms"`
	ThroughputMBs  float64 `json:"throughput_mb_per_sec"`
	JMPayloadBytes int64   `json:"jm_payload_bytes_per_run"`
	TMDirectBytes  int64   `json:"tm_direct_bytes_per_run"`
}

// shuffleSnapshot is the BENCH_shuffle.json document.
type shuffleSnapshot struct {
	Experiment     string       `json:"experiment"`
	GeneratedAt    time.Time    `json:"generated_at"`
	PayloadBytes   int          `json:"payload_bytes"`
	Rows           []shuffleRow `json:"rows"`
	Speedup1to8    float64      `json:"dataplane_throughput_gain_1_to_8_nodes"`
	JMReductionPct float64      `json:"jm_payload_reduction_pct_8_nodes"`
}

// runShuffleJob admits and runs one all-to-all job of `workers` tasks of
// the given class, waiting for every worker to finish.
func runShuffleJob(cl *cn.Client, class string, workers, size, run int) {
	job, err := cl.CreateJob(fmt.Sprintf("shuf-%d", run), cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, workers)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("s%d", i+1), Class: class,
			Params: []cn.Param{shuffleIntParam(workers), shuffleIntParam(size)},
			Req:    cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
		}
	}
	if _, err := job.CreateTasks(specs, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil || res.Failed {
		log.Fatalf("shuffle job (%s, %d workers): res=%+v err=%v", class, workers, res, err)
	}
}

// shuffleTable is experiment T-K: an all-to-all shuffle (weak scaling, 4
// workers per node, 64 KiB per output) over the direct task-to-task data
// plane vs the Send-relay baseline. The dataplane rows measure the
// JobManager's payload bytes directly (the broker's inline-copy counter —
// the only payload bytes a manager ever serves); the sendrelay rows charge
// the JM the full shuffle volume, which is exact by construction: every
// USER payload routes producer -> JM -> consumer mailbox. TM-direct bytes
// are the payload bytes that moved producer-node -> consumer-node without
// touching the manager (same-node consumers hit the shared blob cache and
// cost no wire at all).
func shuffleTable(reps int, outPath string) {
	header("T-K  All-to-all shuffle: direct data plane vs Send relay (4 workers/node, 64KiB outputs)")
	const size = 64 << 10
	snap := shuffleSnapshot{Experiment: "T-K shuffle data plane", GeneratedAt: time.Now().UTC(), PayloadBytes: size}
	fmt.Printf("%-11s %6s %8s %12s %10s %16s %16s\n",
		"mode", "nodes", "workers", "median", "MB/s", "JM bytes/run", "TM-direct/run")
	var dpTh1, dpTh8 float64
	var jmSend8, jmDP8 int64
	for _, nodes := range []int{1, 2, 4, 8} {
		workers := 4 * nodes
		shuffleBytes := int64(workers) * int64(workers) * size
		for _, mode := range []struct {
			name  string
			class string
		}{{"sendrelay", "bench.Relay"}, {"dataplane", "bench.Shuffle"}} {
			c, cl := startCluster(nodes)
			runs := 0
			d := timeIt(reps, func() {
				runShuffleJob(cl, mode.class, workers, size, runs)
				runs++
			})
			row := shuffleRow{
				Mode: mode.name, Nodes: nodes, Workers: workers,
				ShuffleBytes:  shuffleBytes,
				MedianMS:      float64(d) / float64(time.Millisecond),
				ThroughputMBs: float64(shuffleBytes) / (1 << 20) / d.Seconds(),
			}
			if mode.name == "dataplane" {
				_, fetched := c.DataplaneBytes()
				row.JMPayloadBytes = c.DataplaneStats().InlineBytes / int64(runs)
				row.TMDirectBytes = fetched / int64(runs)
				if nodes == 1 {
					dpTh1 = row.ThroughputMBs
				}
				if nodes == 8 {
					dpTh8 = row.ThroughputMBs
					jmDP8 = row.JMPayloadBytes
				}
			} else {
				row.JMPayloadBytes = shuffleBytes
				if nodes == 8 {
					jmSend8 = row.JMPayloadBytes
				}
			}
			snap.Rows = append(snap.Rows, row)
			fmt.Printf("%-11s %6d %8d %12v %10.0f %16d %16d\n",
				row.Mode, row.Nodes, row.Workers, d, row.ThroughputMBs,
				row.JMPayloadBytes, row.TMDirectBytes)
			cl.Close()
			c.Close()
		}
	}
	if dpTh1 > 0 {
		snap.Speedup1to8 = dpTh8 / dpTh1
	}
	if jmSend8 > 0 {
		snap.JMReductionPct = 100 * (1 - float64(jmDP8)/float64(jmSend8))
	}
	fmt.Printf("\ndataplane throughput gain 1->8 nodes: %.2fx; JM payload byte reduction at 8 nodes: %.1f%%\n",
		snap.Speedup1to8, snap.JMReductionPct)
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", outPath)
}

// traceRow is one sampling mode's measurement in the T-L tracing study.
type traceRow struct {
	Mode            string  `json:"mode"`   // "off", "sampled", "always"
	Sample          float64 `json:"sample"` // root sampling probability
	AdmissionP50us  float64 `json:"admission_p50_us"`
	AdmissionP95us  float64 `json:"admission_p95_us"`
	ShuffleMedianMS float64 `json:"shuffle_median_ms"`
}

// traceSnapshot is the BENCH_trace.json document.
type traceSnapshot struct {
	Experiment           string     `json:"experiment"`
	GeneratedAt          time.Time  `json:"generated_at"`
	AdmissionsPerMode    int        `json:"admissions_per_mode"`
	AdmissionTasks       int        `json:"admission_tasks_per_job"`
	ShuffleWorkers       int        `json:"shuffle_workers"`
	ShufflePayloadBytes  int        `json:"shuffle_payload_bytes"`
	Rows                 []traceRow `json:"rows"`
	AdmissionOverheadPct float64    `json:"admission_overhead_pct_at_default_rate"`
	AlwaysOverheadPct    float64    `json:"admission_overhead_pct_always_on"`
}

// admitJob measures one job admission — CreateJob through the Start ack,
// the window where trace contexts are minted, stamped on every control
// message, and client spans are drained into the StartJobReq. The job
// itself (noop tasks) runs and is reaped outside the timed window.
func admitJob(cl *cn.Client, tasks, run int) time.Duration {
	start := time.Now()
	job, err := cl.CreateJob(fmt.Sprintf("adm-%d", run), cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, tasks)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("t%d", i+1), Class: "bench.Noop",
			Req: cn.Requirements{MemoryMB: 10, RunModel: cn.RunAsThreadInTM},
		}
	}
	if _, err := job.CreateTasks(specs, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if res, err := job.Wait(ctx); err != nil || res.Failed {
		log.Fatalf("admission job %d: res=%+v err=%v", run, res, err)
	}
	return elapsed
}

// traceTable is experiment T-L: what does distributed tracing cost? The
// same admission and shuffle workloads run with tracing off (negative
// sample), at the default 1-in-8 rate, and always-on; the acceptance
// target is <= 5% admission overhead at the default rate. Tracing rides
// the existing wire envelope (three uvarints when a context is present,
// nothing when absent), so the off row doubles as the regression
// baseline for the envelope change itself.
func traceTable(reps int, outPath string) {
	header("T-L  Distributed tracing overhead: admission + shuffle, off / sampled / always")
	const (
		admissionTasks = 4
		shuffleWorkers = 8
		shuffleSize    = 64 << 10
		nodes          = 4
	)
	admissions := 20 * reps
	snap := traceSnapshot{
		Experiment: "T-L tracing overhead", GeneratedAt: time.Now().UTC(),
		AdmissionsPerMode: admissions, AdmissionTasks: admissionTasks,
		ShuffleWorkers: shuffleWorkers, ShufflePayloadBytes: shuffleSize,
	}
	fmt.Printf("%-9s %8s %14s %14s %14s\n", "mode", "sample", "admit p50", "admit p95", "shuffle median")
	var offP50 float64
	for _, mode := range []struct {
		name   string
		sample float64 // cluster knob: negative disables, 0 = default 1/8
		client float64 // client root sampling for the same mode
	}{{"off", -1, -1}, {"sampled", 0, 0.125}, {"always", 1, 1}} {
		c, err := cn.StartCluster(cn.ClusterOptions{
			Nodes: nodes, Registry: newRegistry(), MemoryMB: 64000,
			TraceSample: mode.sample,
		})
		if err != nil {
			log.Fatal(err)
		}
		var tracer *trace.Tracer
		if mode.sample >= 0 {
			tracer = cn.NewTracer("bench-client", mode.client)
		}
		cl, err := cn.Connect(c, cn.ClientOptions{
			DiscoveryWindow: 20 * time.Millisecond, Tracer: tracer,
		})
		if err != nil {
			log.Fatal(err)
		}
		h := metrics.NewHistogram(admissions + 1)
		for run := 0; run < admissions; run++ {
			h.ObserveDuration(admitJob(cl, admissionTasks, run))
		}
		runs := 0
		d := timeIt(reps, func() {
			runShuffleJob(cl, "bench.Shuffle", shuffleWorkers, shuffleSize, runs)
			runs++
		})
		row := traceRow{
			Mode: mode.name, Sample: mode.client,
			AdmissionP50us:  h.Quantile(0.5) * 1000,
			AdmissionP95us:  h.Quantile(0.95) * 1000,
			ShuffleMedianMS: float64(d) / float64(time.Millisecond),
		}
		snap.Rows = append(snap.Rows, row)
		switch mode.name {
		case "off":
			offP50 = row.AdmissionP50us
		case "sampled":
			if offP50 > 0 {
				snap.AdmissionOverheadPct = 100 * (row.AdmissionP50us - offP50) / offP50
			}
		case "always":
			if offP50 > 0 {
				snap.AlwaysOverheadPct = 100 * (row.AdmissionP50us - offP50) / offP50
			}
		}
		fmt.Printf("%-9s %8.3f %12.0fus %12.0fus %12.2fms\n",
			row.Mode, row.Sample, row.AdmissionP50us, row.AdmissionP95us, row.ShuffleMedianMS)
		cl.Close()
		c.Close()
	}
	fmt.Printf("\nadmission p50 overhead vs off: %.1f%% at default rate (target <= 5%%), %.1f%% always-on\n",
		snap.AdmissionOverheadPct, snap.AlwaysOverheadPct)
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", outPath)
}

// transformTable is experiment T-D: XMI2CNX throughput vs model size.
func transformTable(reps int) {
	header("T-D  XMI2CNX transformation vs model size")
	fmt.Printf("%-12s %12s %14s\n", "tasks", "XMI bytes", "median")
	for _, tasks := range []int{10, 100, 500} {
		g, err := floyd.BuildModel(tasks)
		if err != nil {
			log.Fatal(err)
		}
		model := cn.NewClientModel("TransClosure")
		if err := model.AddJob(g); err != nil {
			log.Fatal(err)
		}
		xdoc, err := cn.ModelToXMI(model)
		if err != nil {
			log.Fatal(err)
		}
		xmlText, err := xdoc.WriteString()
		if err != nil {
			log.Fatal(err)
		}
		d := timeIt(reps, func() {
			var out strings.Builder
			if err := cn.XMI2CNX(strings.NewReader(xmlText), &out, cn.TransformOptions{}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-12d %12d %14v\n", tasks, len(xmlText), d)
	}
}
