// Experiment T-M: the pipelined transport vs its serialized baseline.
//
// Coalescing section: S concurrent streams blast small frames at one
// destination over the pipelined TCP fabric; the writer drains the shared
// per-connection queue in writev batches, so the syscall cost per frame
// (writes-per-frame = flushes/sent) falls as concurrency rises.
//
// Priority section: heartbeat probes cross the same connection as two
// dozen saturating 256 KiB blob streams. Serialized sends queue the heartbeat
// behind every in-flight chunk write (the pre-pipeline behavior: one
// mutex across the write syscall); the pipelined control lane overtakes
// the queued bulk, so the lease renewal's tail latency survives the
// storm. Results are printed and snapshotted to BENCH_transport.json.

package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
	"cn/internal/transport"
)

// transportCoalesceRow is one stream-count configuration's measurement.
type transportCoalesceRow struct {
	Streams        int     `json:"streams"`
	Frames         int     `json:"frames"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	WritesPerFrame float64 `json:"writes_per_frame"`
}

// transportHeartbeatRow is one send-path mode's heartbeat latency under
// the blob storm.
type transportHeartbeatRow struct {
	Mode   string  `json:"mode"` // "serialized" or "pipelined"
	Probes int     `json:"probes"`
	P50MS  float64 `json:"heartbeat_p50_ms"`
	P99MS  float64 `json:"heartbeat_p99_ms"`
}

// transportSnapshot is the BENCH_transport.json document.
type transportSnapshot struct {
	Experiment       string                  `json:"experiment"`
	GeneratedAt      time.Time               `json:"generated_at"`
	Coalescing       []transportCoalesceRow  `json:"coalescing"`
	Heartbeat        []transportHeartbeatRow `json:"heartbeat_under_storm"`
	P99ImprovementX  float64                 `json:"heartbeat_p99_improvement_x"`
	WritesPerFrame16 float64                 `json:"writes_per_frame_16_streams"`
}

// transportCoalesceRun measures one stream count on a fresh fabric.
func transportCoalesceRun(streams, perStream int) transportCoalesceRow {
	n := transport.NewTCPNetwork()
	defer n.Close()
	var got atomic.Int64
	src, err := n.Attach("src", func(*msg.Message) {})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := n.Attach("dst", func(*msg.Message) { got.Add(1) }); err != nil {
		log.Fatal(err)
	}
	total := streams * perStream
	payload := make([]byte, 256)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				// Bulk-lane frames: a full queue paces the senders through
				// backpressure instead of shedding load, so delivery is total
				// and throughput is honest.
				if err := src.Send("dst", msg.New(msg.KindUser, msg.Address{Node: "src"}, msg.Address{Node: "dst"}, payload)); err != nil {
					log.Fatalf("coalesce send: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(60 * time.Second)
	for got.Load() < int64(total) {
		if time.Now().After(deadline) {
			log.Fatalf("coalesce run stalled: %d of %d frames delivered", got.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	sent, flushes := n.Stats().Sent.Load(), n.Stats().Flushes.Load()
	return transportCoalesceRow{
		Streams:        streams,
		Frames:         total,
		FramesPerSec:   float64(total) / elapsed.Seconds(),
		WritesPerFrame: float64(flushes) / float64(sent),
	}
}

// transportHeartbeatRun measures heartbeat latency through one send-path
// mode while two dozen goroutines keep 256 KiB blob chunks flowing to the
// same destination. Each probe carries its send timestamp; the receiver's
// handler clocks the one-way delay.
func transportHeartbeatRun(mode string, probes int, interval time.Duration) transportHeartbeatRow {
	n := transport.NewTCPNetwork()
	n.SetPipelining(mode == "pipelined")
	// Both modes get the same bounded send buffer: bytes already in the
	// kernel drain in order regardless of lanes, so an unbounded SO_SNDBUF
	// would bury the heartbeat under megabytes of absorbed bulk in either
	// mode and measure bufferbloat, not the send path.
	n.SetSendBuffer(64 << 10)
	defer n.Close()

	var mu sync.Mutex
	var lats []time.Duration
	if _, err := n.Attach("jm", func(m *msg.Message) {
		if m.Kind == msg.KindHeartbeat && len(m.Payload) == 8 {
			sentAt := time.Unix(0, int64(binary.BigEndian.Uint64(m.Payload)))
			mu.Lock()
			lats = append(lats, time.Since(sentAt))
			mu.Unlock()
		}
	}); err != nil {
		log.Fatal(err)
	}
	tm, err := n.Attach("tm", func(*msg.Message) {})
	if err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	chunk := make([]byte, 256<<10)
	for w := 0; w < 24; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Backpressure (bulk lane full) is expected under saturation;
				// the storm just keeps pushing.
				_ = tm.Send("jm", msg.New(msg.KindBlobChunk, msg.Address{Node: "tm"}, msg.Address{Node: "jm"}, chunk))
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the storm reach saturation

	for i := 0; i < probes; i++ {
		ts := make([]byte, 8)
		binary.BigEndian.PutUint64(ts, uint64(time.Now().UnixNano()))
		if err := tm.Send("jm", msg.New(msg.KindHeartbeat, msg.Address{Node: "tm"}, msg.Address{Node: "jm"}, ts)); err != nil {
			log.Fatalf("heartbeat probe: %v", err)
		}
		time.Sleep(interval)
	}
	// Collect stragglers still crossing the congested connection.
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		have := len(lats)
		mu.Unlock()
		if have >= probes || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(lats) < probes*9/10 {
		log.Fatalf("%s: only %d of %d heartbeat probes arrived", mode, len(lats), probes)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	return transportHeartbeatRow{Mode: mode, Probes: len(lats), P50MS: q(0.5), P99MS: q(0.99)}
}

// transportTable is experiment T-M: frame coalescing throughput and the
// control lane's heartbeat-tail win over the serialized baseline.
func transportTable(reps int, outPath string) {
	header("T-M  Pipelined transport: writev coalescing + control-lane priority under bulk storm")
	snap := transportSnapshot{Experiment: "T-M transport pipelining", GeneratedAt: time.Now().UTC()}

	perStream := 500 * reps
	fmt.Printf("%-10s %10s %14s %18s\n", "streams", "frames", "frames/sec", "writes/frame")
	for _, s := range []int{1, 4, 16} {
		row := transportCoalesceRun(s, perStream)
		snap.Coalescing = append(snap.Coalescing, row)
		if s == 16 {
			snap.WritesPerFrame16 = row.WritesPerFrame
		}
		fmt.Printf("%-10d %10d %14.0f %18.3f\n", row.Streams, row.Frames, row.FramesPerSec, row.WritesPerFrame)
	}

	probes := 100 * reps
	fmt.Printf("\n%-12s %8s %16s %16s\n", "mode", "probes", "heartbeat p50", "heartbeat p99")
	var serP99, pipP99 float64
	for _, mode := range []string{"serialized", "pipelined"} {
		row := transportHeartbeatRun(mode, probes, 3*time.Millisecond)
		snap.Heartbeat = append(snap.Heartbeat, row)
		switch mode {
		case "serialized":
			serP99 = row.P99MS
		case "pipelined":
			pipP99 = row.P99MS
		}
		fmt.Printf("%-12s %8d %14.3fms %14.3fms\n", row.Mode, row.Probes, row.P50MS, row.P99MS)
	}
	if pipP99 > 0 {
		snap.P99ImprovementX = serP99 / pipP99
	}
	fmt.Printf("\nheartbeat p99 improvement (serialized/pipelined): %.1fx; writes/frame at 16 streams: %.3f\n",
		snap.P99ImprovementX, snap.WritesPerFrame16)

	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", outPath)
}
