// Command xmi2cnx is the paper's XMI2CNX transformation as a CLI: it reads
// a UML activity model in XMI format and writes the corresponding CNX
// client descriptor.
//
// Usage:
//
//	xmi2cnx [-in model.xmi] [-out client.cnx] [-invocations N] [-port P] [-log FILE]
//
// With no -in/-out it filters stdin to stdout. Dynamic invocation states
// are expanded to N invocations (default 4).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xmi2cnx: ")
	var (
		in          = flag.String("in", "", "input XMI file (default stdin)")
		out         = flag.String("out", "", "output CNX file (default stdout)")
		invocations = flag.Int("invocations", 4, "dynamic invocation expansion count")
		port        = flag.Int("port", 0, "client port attribute")
		logFile     = flag.String("log", "", "client log attribute")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	opts := cn.TransformOptions{
		Args: cn.FixedArgs(*invocations),
		Port: *port,
		Log:  *logFile,
	}
	if err := cn.XMI2CNX(r, w, opts); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
