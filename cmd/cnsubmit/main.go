// Command cnsubmit submits a model or descriptor to a running cnportal —
// the remote path of the paper's web-portal deployment configuration.
//
// Usage:
//
//	cnsubmit -portal http://localhost:8080 -in model.xmi            # run XMI
//	cnsubmit -portal http://localhost:8080 -in client.cnx -cnx      # run CNX
//	cnsubmit -portal http://localhost:8080 -in model.xmi -transform # XMI->CNX only
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnsubmit: ")
	var (
		portalURL   = flag.String("portal", "http://localhost:8080", "portal base URL")
		in          = flag.String("in", "", "input file (required)")
		isCNX       = flag.Bool("cnx", false, "input is CNX rather than XMI")
		transform   = flag.Bool("transform", false, "transform only; do not execute")
		invocations = flag.Int("invocations", 4, "dynamic invocation expansion count")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	body, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	var path string
	switch {
	case *transform && !*isCNX:
		path = "/api/xmi2cnx"
	case *transform && *isCNX:
		path = "/api/cnx2go"
	case *isCNX:
		path = "/api/run-cnx"
	default:
		path = "/api/run"
	}
	url := fmt.Sprintf("%s%s?invocations=%d", strings.TrimRight(*portalURL, "/"), path, *invocations)
	resp, err := http.Post(url, "application/xml", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("portal returned %s: %s", resp.Status, out)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
