// Command cnsubmit is the remote client of a running cnportal: it submits
// models and descriptors, transforms them, and drives the async job
// lifecycle (submit, poll, fetch results, abort).
//
// Usage:
//
//	cnsubmit -portal http://localhost:8080 -in model.xmi                 # run XMI synchronously
//	cnsubmit -portal http://localhost:8080 -in client.cnx -cnx           # run CNX synchronously
//	cnsubmit -portal http://localhost:8080 -in model.xmi -transform      # XMI->CNX only
//	cnsubmit -portal http://localhost:8080 -in model.xmi -async          # queue, print job id
//	cnsubmit -portal http://localhost:8080 -in model.xmi -async -wait    # queue, poll, print result
//	cnsubmit -portal http://localhost:8080 -status job-3                 # one job's status
//	cnsubmit -portal http://localhost:8080 -list -state running          # list jobs
//	cnsubmit -portal http://localhost:8080 -abort job-3                  # abort/forget a job
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

var (
	portalURL   = flag.String("portal", "http://localhost:8080", "portal base URL")
	in          = flag.String("in", "", "input file (required for submissions)")
	isCNX       = flag.Bool("cnx", false, "input is CNX rather than XMI")
	transform   = flag.Bool("transform", false, "transform only; do not execute")
	invocations = flag.Int("invocations", 4, "dynamic invocation expansion count")
	async       = flag.Bool("async", false, "submit to the job queue instead of running synchronously")
	wait        = flag.Bool("wait", false, "with -async: poll until terminal and print the result")
	poll        = flag.Duration("poll", 500*time.Millisecond, "poll interval for -wait")
	label       = flag.String("label", "", "job label for -async submissions")
	status      = flag.String("status", "", "print the given job's status and exit")
	list        = flag.Bool("list", false, "list jobs and exit")
	stateFilter = flag.String("state", "", "with -list: filter by state (queued|compiling|running|done|failed|aborted)")
	abort       = flag.String("abort", "", "abort (or forget) the given job and exit")
)

func base() string { return strings.TrimRight(*portalURL, "/") }

// get issues a GET and returns the body, failing on non-2xx.
func get(path string) []byte {
	resp, err := http.Get(base() + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("portal returned %s: %s", resp.Status, body)
	}
	return body
}

func printJSON(raw []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		fmt.Println(string(raw))
		return
	}
	fmt.Println(buf.String())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnsubmit: ")
	flag.Parse()

	switch {
	case *status != "":
		printJSON(get("/api/jobs/" + url.PathEscape(*status)))
		return
	case *list:
		path := "/api/jobs"
		if *stateFilter != "" {
			path += "?state=" + url.QueryEscape(*stateFilter)
		}
		printJSON(get(path))
		return
	case *abort != "":
		req, err := http.NewRequest(http.MethodDelete, base()+"/api/jobs/"+url.PathEscape(*abort), nil)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			log.Fatalf("portal returned %s: %s", resp.Status, body)
		}
		printJSON(body)
		return
	}

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	body, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}

	if *async || *wait {
		if *transform {
			log.Fatal("-transform only runs synchronously; drop -async/-wait")
		}
		submitAsync(body)
		return
	}

	var path string
	switch {
	case *transform && !*isCNX:
		path = "/api/xmi2cnx"
	case *transform && *isCNX:
		path = "/api/cnx2go"
	case *isCNX:
		path = "/api/run-cnx"
	default:
		path = "/api/run"
	}
	u := fmt.Sprintf("%s%s?invocations=%d", base(), path, *invocations)
	resp, err := http.Post(u, "application/xml", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("portal returned %s: %s", resp.Status, out)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// jobRecord is the subset of the portal's job record the client needs.
type jobRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "aborted"
}

// submitAsync queues the document and optionally polls to completion.
func submitAsync(body []byte) {
	format := "xmi"
	if *isCNX {
		format = "cnx"
	}
	u := fmt.Sprintf("%s/api/jobs?format=%s&invocations=%d", base(), format, *invocations)
	if *label != "" {
		u += "&label=" + url.QueryEscape(*label)
	}
	resp, err := http.Post(u, "application/xml", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("portal returned %s: %s", resp.Status, raw)
	}
	var rec jobRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		log.Fatal(err)
	}
	if !*wait {
		printJSON(raw)
		return
	}

	log.Printf("job %s queued, polling every %s", rec.ID, *poll)
	for !terminal(rec.State) {
		time.Sleep(*poll)
		statusRaw := get("/api/jobs/" + url.PathEscape(rec.ID))
		if err := json.Unmarshal(statusRaw, &rec); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("job %s %s", rec.ID, rec.State)
	printJSON(get("/api/jobs/" + url.PathEscape(rec.ID) + "/result"))
	if rec.State != "done" {
		os.Exit(1)
	}
}
