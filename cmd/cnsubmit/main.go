// Command cnsubmit is the remote client of a running cnportal: it submits
// models and descriptors, transforms them, and drives the async job
// lifecycle (submit, poll, fetch results, abort).
//
// Usage:
//
//	cnsubmit -portal http://localhost:8080 -in model.xmi                 # run XMI synchronously
//	cnsubmit -portal http://localhost:8080 -in client.cnx -cnx           # run CNX synchronously
//	cnsubmit -portal http://localhost:8080 -in model.xmi -transform      # XMI->CNX only
//	cnsubmit -portal http://localhost:8080 -in model.xmi -async          # queue, print job id
//	cnsubmit -portal http://localhost:8080 -in model.xmi -async -wait    # queue, poll, print result
//	cnsubmit -portal http://localhost:8080 -async a.xmi b.xmi c.xmi      # batch: queue several models
//	cnsubmit -portal http://localhost:8080 -status job-3                 # one job's status
//	cnsubmit -portal http://localhost:8080 -list -state running          # list jobs
//	cnsubmit -portal http://localhost:8080 -abort job-3                  # abort/forget a job
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

var (
	portalURL   = flag.String("portal", "http://localhost:8080", "portal base URL")
	in          = flag.String("in", "", "input file (required for submissions)")
	isCNX       = flag.Bool("cnx", false, "input is CNX rather than XMI")
	transform   = flag.Bool("transform", false, "transform only; do not execute")
	invocations = flag.Int("invocations", 4, "dynamic invocation expansion count")
	async       = flag.Bool("async", false, "submit to the job queue instead of running synchronously")
	wait        = flag.Bool("wait", false, "with -async: poll until terminal and print the result")
	poll        = flag.Duration("poll", 500*time.Millisecond, "poll interval for -wait")
	label       = flag.String("label", "", "job label for -async submissions")
	status      = flag.String("status", "", "print the given job's status and exit")
	list        = flag.Bool("list", false, "list jobs and exit")
	stateFilter = flag.String("state", "", "with -list: filter by state (queued|compiling|running|done|failed|aborted)")
	abort       = flag.String("abort", "", "abort (or forget) the given job and exit")
)

func base() string { return strings.TrimRight(*portalURL, "/") }

// get issues a GET and returns the body, failing on non-2xx.
func get(path string) []byte {
	body, status := tryGet(path)
	if status/100 != 2 {
		log.Fatalf("portal returned %d: %s", status, body)
	}
	return body
}

// tryGet issues a GET and returns the body and status without dying on
// non-2xx answers (pollers must tolerate TTL-evicted records).
func tryGet(path string) ([]byte, int) {
	resp, err := http.Get(base() + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body, resp.StatusCode
}

func printJSON(raw []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		fmt.Println(string(raw))
		return
	}
	fmt.Println(buf.String())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnsubmit: ")
	flag.Parse()

	switch {
	case *status != "":
		printJSON(get("/api/jobs/" + url.PathEscape(*status)))
		return
	case *list:
		path := "/api/jobs"
		if *stateFilter != "" {
			path += "?state=" + url.QueryEscape(*stateFilter)
		}
		printJSON(get(path))
		return
	case *abort != "":
		req, err := http.NewRequest(http.MethodDelete, base()+"/api/jobs/"+url.PathEscape(*abort), nil)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			log.Fatalf("portal returned %s: %s", resp.Status, body)
		}
		printJSON(body)
		return
	}

	// Inputs: -in plus any positional file arguments (a batch).
	inputs := flag.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	if len(inputs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *async || *wait {
		if *transform {
			log.Fatal("-transform only runs synchronously; drop -async/-wait")
		}
		submitBatch(inputs)
		return
	}
	if len(inputs) > 1 {
		log.Fatal("multiple inputs require -async (batch submission)")
	}
	body, err := os.ReadFile(inputs[0])
	if err != nil {
		log.Fatal(err)
	}

	var path string
	switch {
	case *transform && !*isCNX:
		path = "/api/xmi2cnx"
	case *transform && *isCNX:
		path = "/api/cnx2go"
	case *isCNX:
		path = "/api/run-cnx"
	default:
		path = "/api/run"
	}
	u := fmt.Sprintf("%s%s?invocations=%d", base(), path, *invocations)
	resp, err := http.Post(u, "application/xml", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("portal returned %s: %s", resp.Status, out)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// jobRecord is the subset of the portal's job record the client needs.
type jobRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "aborted"
}

// submitBatch queues every input document, then optionally polls the whole
// batch to completion. The portal executes each submission's task sets as
// batched CreateTasks calls, so a queued model costs one placement round
// per job rather than one per task.
func submitBatch(inputs []string) {
	format := "xmi"
	if *isCNX {
		format = "cnx"
	}
	recs := make([]jobRecord, 0, len(inputs))
	for _, path := range inputs {
		body, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		u := fmt.Sprintf("%s/api/jobs?format=%s&invocations=%d", base(), format, *invocations)
		jobLabel := *label
		if jobLabel == "" && len(inputs) > 1 {
			jobLabel = path
		}
		if jobLabel != "" {
			u += "&label=" + url.QueryEscape(jobLabel)
		}
		resp, err := http.Post(u, "application/xml", strings.NewReader(string(body)))
		if err != nil {
			log.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("portal returned %s for %s: %s", resp.Status, path, raw)
		}
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			log.Fatal(err)
		}
		recs = append(recs, rec)
		if !*wait {
			printJSON(raw)
		}
	}
	if !*wait {
		return
	}

	log.Printf("%d job(s) queued, polling every %s", len(recs), *poll)
	failed := false
	for i := range recs {
		rec := &recs[i]
		evicted := false
		for !terminal(rec.State) {
			time.Sleep(*poll)
			statusRaw, status := tryGet("/api/jobs/" + url.PathEscape(rec.ID))
			if status == http.StatusNotFound {
				// The record outlived its result TTL while we were
				// polling a sibling; the job is long terminal but its
				// outcome is unknown, which must not read as success.
				log.Printf("job %s: record evicted before its outcome could be read (raise -result-ttl)", rec.ID)
				evicted = true
				failed = true
				break
			}
			if status/100 != 2 {
				log.Fatalf("portal returned %d: %s", status, statusRaw)
			}
			if err := json.Unmarshal(statusRaw, rec); err != nil {
				log.Fatal(err)
			}
		}
		if evicted {
			continue
		}
		log.Printf("job %s %s", rec.ID, rec.State)
		// The terminal state is known; a result record evicted in the
		// polling gap must not abort the rest of the batch.
		resultRaw, status := tryGet("/api/jobs/" + url.PathEscape(rec.ID) + "/result")
		switch {
		case status == http.StatusNotFound:
			log.Printf("job %s: result evicted before it could be read (raise -result-ttl)", rec.ID)
		case status/100 != 2:
			log.Fatalf("portal returned %d: %s", status, resultRaw)
		default:
			printJSON(resultRaw)
		}
		if rec.State != "done" {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
