// Command cntrace renders a CN job's distributed trace as a text span
// tree with per-span Gantt bars. The input is the portal's
// GET /api/jobs/{id}/trace response — fetched live from a portal URL, or
// read from a file / stdin for captured traces.
//
// Usage:
//
//	cntrace http://localhost:8080/api/jobs/{id}/trace
//	cntrace -f trace.json
//	curl -s .../api/jobs/j1/trace | cntrace
//
// Output: one line per span, indented by parent/child causality, with the
// span's node, duration, a proportional bar positioned on the trace's
// time axis, and any error text. Orphan spans (parent missing from the
// capture, e.g. evicted from a ring buffer) root their own subtree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cn/internal/trace"
)

// traceDoc mirrors the portal's TraceResponse body; a bare span array is
// accepted too so captures of other shapes keep working.
type traceDoc struct {
	ID    string       `json:"id"`
	Spans []trace.Span `json:"spans"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cntrace: ")
	var (
		file  = flag.String("f", "", "read the trace JSON from this file instead of a URL ('-' = stdin)")
		width = flag.Int("width", 48, "Gantt bar column width in characters")
	)
	flag.Parse()

	raw, err := readInput(*file, flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Spans) == 0 {
		log.Fatal("trace has no spans (job untraced, unsampled, or evicted)")
	}
	render(os.Stdout, doc, *width)
}

func readInput(file, url string) ([]byte, error) {
	switch {
	case file == "-":
		return io.ReadAll(os.Stdin)
	case file != "":
		return os.ReadFile(file)
	case url != "":
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}
	// No arguments: read a piped trace from stdin.
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		return io.ReadAll(os.Stdin)
	}
	return nil, fmt.Errorf("no input: pass a portal trace URL, -f FILE, or pipe JSON to stdin")
}

func parse(raw []byte) (*traceDoc, error) {
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err == nil && len(doc.Spans) > 0 {
		return &doc, nil
	}
	var spans []trace.Span
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("input is neither a portal trace response nor a span array: %w", err)
	}
	return &traceDoc{Spans: spans}, nil
}

// render prints the span forest: children indented under parents, each
// line carrying a Gantt bar on the shared trace time axis.
func render(w io.Writer, doc *traceDoc, width int) {
	if width < 8 {
		width = 8
	}
	spans := append([]trace.Span(nil), doc.Spans...)
	trace.SortSpans(spans)

	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	children := make(map[uint64][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}

	start := spans[0].Start
	end := start
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if e := s.Start.Add(s.Dur); e.After(end) {
			end = e
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Nanosecond
	}

	if doc.ID != "" {
		fmt.Fprintf(w, "trace %s: %d spans, %s total\n", doc.ID, len(spans), total.Round(time.Microsecond))
	} else {
		fmt.Fprintf(w, "trace: %d spans, %s total\n", len(spans), total.Round(time.Microsecond))
	}

	// Stable label column: size to the deepest indent + longest name.
	labelW := 0
	var measure func(idx, depth int)
	measure = func(idx, depth int) {
		if n := 2*depth + len(label(spans[idx])); n > labelW {
			labelW = n
		}
		for _, c := range children[spans[idx].ID] {
			measure(c, depth+1)
		}
	}
	for _, r := range roots {
		measure(r, 0)
	}

	var print func(idx, depth int)
	print = func(idx, depth int) {
		s := spans[idx]
		pad := strings.Repeat("  ", depth) + label(s)
		fmt.Fprintf(w, "%-*s %10s  %s", labelW, pad, s.Dur.Round(time.Microsecond), bar(s, start, total, width))
		if s.Node != "" {
			fmt.Fprintf(w, "  @%s", s.Node)
		}
		if s.Err != "" {
			fmt.Fprintf(w, "  !%s", s.Err)
		}
		fmt.Fprintln(w)
		kids := children[s.ID]
		sort.Slice(kids, func(a, b int) bool { return spans[kids[a]].Start.Before(spans[kids[b]].Start) })
		for _, c := range kids {
			print(c, depth+1)
		}
	}
	for _, r := range roots {
		print(r, 0)
	}
}

func label(s trace.Span) string {
	if s.Task != "" {
		return s.Name + "(" + s.Task + ")"
	}
	return s.Name
}

// bar renders the span's position and extent on the trace's time axis.
func bar(s trace.Span, start time.Time, total time.Duration, width int) string {
	off := int(float64(s.Start.Sub(start)) / float64(total) * float64(width))
	length := int(float64(s.Dur) / float64(total) * float64(width))
	if length < 1 {
		length = 1
	}
	if off >= width {
		off = width - 1
	}
	if off+length > width {
		length = width - off
	}
	return "[" + strings.Repeat(" ", off) + strings.Repeat("=", length) +
		strings.Repeat(" ", width-off-length) + "]"
}
