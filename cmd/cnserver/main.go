// Command cnserver boots CN servers — the paper's deployment where "CN
// Servers run on the various nodes of the cluster". In this reproduction
// the cluster fabric is in-process, so one cnserver invocation hosts all N
// nodes (over the simulated fabric or TCP loopback sockets) and stays up
// until interrupted; pair it with -http to also expose the portal.
//
// Usage:
//
//	cnserver [-nodes N] [-tcp] [-memory MB] [-http :8080] [-log-level info]
//	         [-trace-sample 0.125] [-debug] [-v]
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"

	"cn"
	"cn/internal/cluster"
	"cn/internal/floyd"
	"cn/internal/logging"
	"cn/internal/portal"
	"cn/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnserver: ")
	var (
		nodes      = flag.Int("nodes", 4, "number of CN server nodes")
		tcp        = flag.Bool("tcp", false, "use TCP loopback sockets instead of the in-memory fabric")
		memoryMB   = flag.Int("memory", 8000, "per-node task capacity in MB")
		httpAddr   = flag.String("http", "", "also serve the web portal on this address")
		heartbeat  = flag.Duration("heartbeat", 0, "TaskManager heartbeat interval (0 = 500ms; negative disables failure detection)")
		assignWait = flag.Duration("assign-timeout", 0, "JobManager batch-assignment round-trip timeout (0 = 5s)")
		maxRetries = flag.Int("max-task-retries", 0, "per-task re-placement budget after node failures (0 = 2; negative disables recovery)")
		straggler  = flag.Duration("straggler-after", 0, "speculatively re-run tasks whose progress stalls this long (0 = disabled)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		sample     = flag.Float64("trace-sample", 0, "distributed-trace root sampling probability (0 = 0.125 default; negative disables tracing)")
		debug      = flag.Bool("debug", false, "mount net/http/pprof on the portal mux (needs -http)")
		verbose    = flag.Bool("v", false, "log server diagnostics")
	)
	flag.Parse()

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	slogger := logging.Default(level)

	reg := cn.NewRegistry()
	floyd.MustRegister(reg)
	workloads.MustRegister(reg)
	reg.MustRegister("cn.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})

	var logf func(string, ...any)
	if *verbose {
		logf = log.Printf
	}
	tp := cluster.TransportMem
	if *tcp {
		tp = cluster.TransportTCP
	}
	c, err := cluster.Start(cluster.Config{
		Nodes:             *nodes,
		Transport:         tp,
		MemoryMB:          *memoryMB,
		Registry:          reg,
		AssignTimeout:     *assignWait,
		HeartbeatInterval: *heartbeat,
		MaxTaskRetries:    *maxRetries,
		StragglerAfter:    *straggler,
		Logf:              logf,
		Log:               slogger,
		TraceSample:       *sample,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	log.Printf("cluster up: nodes %v", c.Nodes())

	if *httpAddr != "" {
		p, err := portal.New(portal.Config{
			Cluster:     c,
			Logf:        logf,
			Log:         slogger,
			TraceSample: *sample,
			Debug:       *debug,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		go func() {
			log.Printf("portal listening on %s", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, p.Handler()); err != nil {
				log.Fatal(err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("shutting down")
}
