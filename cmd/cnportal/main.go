// Command cnportal boots a CN cluster and serves the prototype web portal
// on top of it, the paper's "other deployment configuration ... through a
// web portal so that the user does not need to log on to the subnet".
//
// Usage:
//
//	cnportal [-addr :8080] [-nodes N] [-v]
package main

import (
	"flag"
	"log"
	"net/http"

	"cn"
	"cn/internal/cluster"
	"cn/internal/floyd"
	"cn/internal/portal"
	"cn/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnportal: ")
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		nodes   = flag.Int("nodes", 4, "cluster size")
		verbose = flag.Bool("v", false, "log cluster diagnostics")
	)
	flag.Parse()

	reg := cn.NewRegistry()
	floyd.MustRegister(reg)
	workloads.MustRegister(reg)
	reg.MustRegister("cn.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})

	var logf func(string, ...any)
	if *verbose {
		logf = log.Printf
	}
	c, err := cluster.Start(cluster.Config{Nodes: *nodes, Registry: reg, Logf: logf})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	p, err := portal.New(portal.Config{Cluster: c, Logf: logf})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	log.Printf("cluster up (%d nodes), portal listening on %s", *nodes, *addr)
	if err := http.ListenAndServe(*addr, p.Handler()); err != nil {
		log.Fatal(err)
	}
}
