// Command cnportal boots a CN cluster and serves the web portal on top of
// it, the paper's "other deployment configuration ... through a web portal
// so that the user does not need to log on to the subnet" — extended with
// the asynchronous job service (queued submission, lifecycle REST API,
// metrics).
//
// Usage:
//
//	cnportal [-addr :8080] [-nodes N] [-workers W] [-queue Q] [-result-ttl 15m] [-data-dir DIR]
//	         [-log-level info] [-trace-sample 0.125] [-debug] [-v]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"cn"
	"cn/internal/cluster"
	"cn/internal/floyd"
	"cn/internal/logging"
	"cn/internal/portal"
	"cn/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnportal: ")
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		nodes      = flag.Int("nodes", 4, "cluster size")
		workers    = flag.Int("workers", 4, "async job execution pool size")
		queue      = flag.Int("queue", 64, "submission queue depth before 429s")
		resultTTL  = flag.Duration("result-ttl", 15*time.Minute, "how long terminal job records are kept")
		dataDir    = flag.String("data-dir", "", "directory for the durable job log; queued/running jobs replay after a restart (empty = in-memory only)")
		heartbeat  = flag.Duration("heartbeat", 0, "TaskManager heartbeat interval (0 = 500ms; negative disables failure detection)")
		maxRetries = flag.Int("max-task-retries", 0, "per-task re-placement budget after node failures (0 = 2; negative disables recovery)")
		straggler  = flag.Duration("straggler-after", 0, "speculatively re-run tasks whose progress stalls this long (0 = disabled)")
		assignWait = flag.Duration("assign-timeout", 0, "JobManager batch-assignment round-trip timeout (0 = 5s)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		sample     = flag.Float64("trace-sample", 0, "distributed-trace root sampling probability (0 = 0.125 default; negative disables tracing)")
		debug      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		verbose    = flag.Bool("v", false, "log cluster diagnostics")
	)
	flag.Parse()

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	slogger := logging.Default(level)

	reg := cn.NewRegistry()
	floyd.MustRegister(reg)
	workloads.MustRegister(reg)
	reg.MustRegister("cn.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})

	var logf func(string, ...any)
	if *verbose {
		logf = log.Printf
	}
	c, err := cluster.Start(cluster.Config{
		Nodes:             *nodes,
		Registry:          reg,
		AssignTimeout:     *assignWait,
		HeartbeatInterval: *heartbeat,
		MaxTaskRetries:    *maxRetries,
		StragglerAfter:    *straggler,
		Logf:              logf,
		Log:               slogger,
		TraceSample:       *sample,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	p, err := portal.New(portal.Config{
		Cluster:     c,
		Workers:     *workers,
		QueueDepth:  *queue,
		ResultTTL:   *resultTTL,
		DataDir:     *dataDir,
		Logf:        logf,
		Log:         slogger,
		TraceSample: *sample,
		Debug:       *debug,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	log.Printf("cluster up (%d nodes), portal listening on %s (%d workers, queue %d)",
		*nodes, *addr, *workers, *queue)
	if err := http.ListenAndServe(*addr, p.Handler()); err != nil {
		log.Fatal(err)
	}
}
