// Command cnx2go is the CNX2Java analog for Go: it reads a CNX client
// descriptor and emits a complete, runnable Go client program using the
// public cn API.
//
// Usage:
//
//	cnx2go [-in client.cnx] [-out main.go] [-nodes N] [-module PATH]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnx2go: ")
	var (
		in     = flag.String("in", "", "input CNX file (default stdin)")
		out    = flag.String("out", "", "output Go file (default stdout)")
		nodes  = flag.Int("nodes", 4, "embedded cluster size in the generated program")
		module = flag.String("module", "cn", "import path of the cn package")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	source := "stdin"
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
		source = *in
	}
	doc, err := cn.ParseCNX(r)
	if err != nil {
		log.Fatal(err)
	}
	src, err := cn.GenerateClient(doc, cn.GenerateOptions{
		ClusterNodes: *nodes,
		ModulePath:   *module,
		Source:       source,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if _, err := os.Stdout.Write(src); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
