// Command cnrun executes a CNX descriptor (or an XMI model, transforming
// it first) on an embedded CN cluster with the standard task classes
// (transitive closure + workloads) pre-deployed, and prints per-job
// results.
//
// Usage:
//
//	cnrun -in client.cnx [-xmi] [-nodes N] [-invocations N] [-timeout D] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"cn"
	"cn/internal/floyd"
	"cn/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnrun: ")
	var (
		in          = flag.String("in", "", "input descriptor file (required)")
		isXMI       = flag.Bool("xmi", false, "input is XMI; run XMI2CNX first")
		nodes       = flag.Int("nodes", 4, "cluster size")
		invocations = flag.Int("invocations", 4, "dynamic invocation expansion count")
		graphSize   = flag.Int("n", 32, "input graph size for transitive-closure jobs")
		timeout     = flag.Duration("timeout", 60*time.Second, "execution timeout")
		verbose     = flag.Bool("v", false, "log cluster diagnostics")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Dynamic states expand through their run-time argument expression:
	// the transitive-closure model's "rowBlocks" yields full TCTask
	// argument lists; anything else gets index-only parameters.
	args := func(expr string) ([][]cn.Param, error) {
		if expr == "rowBlocks" {
			return floyd.DynamicArgs(*invocations)(expr)
		}
		return cn.FixedArgs(*invocations)(expr)
	}

	var doc *cn.CNXDocument
	if *isXMI {
		var out strings.Builder
		if err := cn.XMI2CNX(f, &out, cn.TransformOptions{Args: args}); err != nil {
			log.Fatal(err)
		}
		doc, err = cn.ParseCNX(strings.NewReader(out.String()))
	} else {
		doc, err = cn.ParseCNX(f)
	}
	if err != nil {
		log.Fatal(err)
	}

	reg := cn.NewRegistry()
	floyd.MustRegister(reg)
	workloads.MustRegister(reg)
	reg.MustRegister("cn.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})

	var logf func(string, ...any)
	if *verbose {
		logf = log.Printf
	}
	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: *nodes, Registry: reg, Logf: logf})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Transitive-closure clients need the input matrix fed to their split
	// task; detect them and drive the guiding example directly.
	if job := transclosureJob(doc); job != nil {
		runTransclosure(ctx, client, *graphSize, *invocations)
		return
	}

	results, err := cn.RunDescriptor(ctx, client, doc, nil)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		res := results[name]
		status := "completed"
		if res.Failed {
			status = "FAILED: " + res.Err
			failed = true
		}
		fmt.Printf("job %-16s %-10s %s\n", name, res.JobID, status)
		for task, errText := range res.TaskErrs {
			fmt.Printf("  task %s: %s\n", task, errText)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// transclosureJob returns the descriptor's job when it is the paper's
// transitive-closure client (identified by the TaskSplit class), or nil.
func transclosureJob(doc *cn.CNXDocument) *cn.TaskSpec {
	for ji := range doc.Client.Jobs {
		job := &doc.Client.Jobs[ji]
		for ti := range job.Tasks {
			if job.Tasks[ti].Class == floyd.ClassTaskSplit {
				s, err := job.Tasks[ti].Spec()
				if err == nil {
					return s
				}
			}
		}
	}
	return nil
}

// runTransclosure drives the guiding example: generate a random graph,
// execute the CN job, and verify against the sequential baseline.
func runTransclosure(ctx context.Context, client *cn.Client, n, workers int) {
	m := floyd.RandomGraph(n, 0.25, 9, 42)
	fmt.Printf("transitive-closure client detected: running Floyd APSP on a %d-node graph with %d workers\n", n, workers)
	start := time.Now()
	got, err := floyd.Run(ctx, client, m, workers)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if !got.Equal(floyd.Sequential(m)) {
		log.Fatal("result differs from sequential Floyd-Warshall")
	}
	fmt.Printf("completed in %v; result verified against sequential baseline\n", elapsed)
}
