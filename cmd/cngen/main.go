// Command cngen fabricates the paper's example artifacts so the other
// tools have inputs to chew on: the Figure 2 CNX descriptor, the Figure 3
// explicit-concurrency XMI model, and the Figure 5 dynamic-invocation XMI
// model, all for the transitive-closure guiding example.
//
// Usage:
//
//	cngen [-dir DIR] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cn"
	"cn/internal/floyd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cngen: ")
	var (
		dir     = flag.String("dir", ".", "output directory")
		workers = flag.Int("workers", 5, "worker count for the explicit model")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Figure 3 model (explicit concurrency) and its Figure 2 descriptor.
	g, err := floyd.BuildModel(*workers)
	if err != nil {
		log.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		log.Fatal(err)
	}
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		log.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		log.Fatal(err)
	}
	write(*dir, "fig3-transclosure.xmi", xmlText)

	cdoc, err := cn.ModelToCNX(model, cn.TransformOptions{Port: 5666, Log: "CN_Client.log"})
	if err != nil {
		log.Fatal(err)
	}
	cnxText, err := cdoc.EncodeString()
	if err != nil {
		log.Fatal(err)
	}
	write(*dir, "fig2-transclosure.cnx", cnxText)
	write(*dir, "fig3-transclosure.dot", cn.ActivityDOT(g))

	// Figure 5 model (dynamic invocation).
	dynGraph, err := floyd.BuildDynamicModel()
	if err != nil {
		log.Fatal(err)
	}
	dynModel := cn.NewClientModel("TransClosureDynamic")
	if err := dynModel.AddJob(dynGraph); err != nil {
		log.Fatal(err)
	}
	dynXMI, err := cn.ModelToXMI(dynModel)
	if err != nil {
		log.Fatal(err)
	}
	dynText, err := dynXMI.WriteString()
	if err != nil {
		log.Fatal(err)
	}
	write(*dir, "fig5-transclosure-dynamic.xmi", dynText)
	write(*dir, "fig5-transclosure-dynamic.dot", cn.ActivityDOT(dynGraph))
}

func write(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
}
