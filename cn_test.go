// Package cn tests exercise the public API end to end and reproduce, at
// the API level, each figure of the paper (see DESIGN.md §4).
package cn_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"cn"
	"cn/internal/floyd"
	"cn/internal/workloads"
)

// pubRegistry carries the public-API test task classes.
var pubRegistry = func() *cn.Registry {
	r := cn.NewRegistry()
	r.MustRegister("pub.Echo", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	r.MustRegister("pub.Noop", func() cn.Task {
		return cn.TaskFunc(func(cn.TaskContext) error { return nil })
	})
	floyd.MustRegister(r)
	workloads.MustRegister(r)
	return r
}()

func startPublic(t *testing.T, nodes int) (*cn.Cluster, *cn.Client) {
	t.Helper()
	c, err := cn.StartCluster(cn.ClusterOptions{Nodes: nodes, Registry: pubRegistry, MemoryMB: 16000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return c, cl
}

func pubCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// echoTags builds tagged values for the pub.Echo class.
func echoTags() cn.TaggedValues {
	return cn.TaskTags("", "pub.Echo", 100, "RUN_AS_THREAD_IN_TM")
}

// TestFig1ComponentInventory reproduces Figure 1: every CN framework
// component exists and cooperates — CN servers on the nodes, the CN API
// factory, JobManager discovery over multicast, TaskManager execution.
func TestFig1ComponentInventory(t *testing.T) {
	c, cl := startPublic(t, 4)
	if got := len(c.Nodes()); got != 4 {
		t.Fatalf("cluster nodes = %d", got)
	}
	// Discovery: all four JobManagers respond to a multicast solicit.
	_, offers, err := cl.Discover(cn.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 4 {
		t.Errorf("JobManager offers = %d, want 4", len(offers))
	}
	// Job + Task managers: a trivial job flows through create/start/collate.
	res, err := cn.RunJob(pubCtx(t), cl, "inventory", []*cn.TaskSpec{
		{Name: "t", Class: "pub.Noop", Req: cn.Requirements{MemoryMB: 50, RunModel: cn.RunAsThreadInTM}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Errorf("inventory job failed: %+v", res)
	}
}

// TestFig2DescriptorGolden reproduces Figure 2: the CNX client descriptor
// generated for the five-worker transitive closure job has exactly the
// paper's structure (task names, classes, jars, depends lists, task-req
// blocks, typed params).
func TestFig2DescriptorGolden(t *testing.T) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		t.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	doc, err := cn.ModelToCNX(model, cn.TransformOptions{Port: 5666})
	if err != nil {
		t.Fatal(err)
	}
	out, err := doc.EncodeString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`class="TransClosure"`,
		`port="5666"`,
		`name="tctask0" jar="tasksplit.jar" class="org.jhpc.cn2.transcloser.TaskSplit"`,
		`name="tctask5" jar="tctask.jar" class="org.jhpc.cn2.trnsclsrtask.TCTask" depends="tctask0"`,
		`name="tctask999" jar="taskjoin.jar" class="org.jhpc.cn2.transcloser.TaskJoin" depends="tctask1,tctask2,tctask3,tctask4,tctask5"`,
		`<memory>1000</memory>`,
		`<runmodel>RUN_AS_THREAD_IN_TM</runmodel>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("descriptor missing %q\n%s", want, out)
		}
	}
	// The worker's pvalue0 (Figure 4 cross-check): tctask2 carries 2.
	w2 := doc.Client.Jobs[0].Task("tctask2")
	spec, err := w2.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := spec.Params[0].Int(); v != 2 {
		t.Errorf("tctask2 pvalue0 = %d, want 2", v)
	}
}

// TestFig3ExplicitConcurrency reproduces Figure 3: an activity diagram with
// a splitter, five concurrent workers between fork/join pseudostates, and a
// joiner, executed on a live cluster with the split-first/join-last
// ordering the diagram prescribes.
func TestFig3ExplicitConcurrency(t *testing.T) {
	_, cl := startPublic(t, 4)
	b := cn.NewActivity("fig3").
		Initial("initial").
		Action("split", echoTags()).
		Fork("fork")
	var workers []string
	for i := 1; i <= 5; i++ {
		name := "w" + string(rune('0'+i))
		workers = append(workers, name)
		b.Action(name, echoTags())
	}
	g := b.Join("joinbar").
		Action("join", echoTags()).
		Final("final").
		Flows("initial", "split", "fork").
		FanOut("fork", workers...).
		FanIn("joinbar", workers...).
		Flows("joinbar", "join", "final").
		MustBuild()
	model := cn.NewClientModel("Fig3")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	doc, err := cn.ModelToCNX(model, cn.TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Execute via the job API so messages can be observed.
	specs, err := doc.Client.Jobs[0].Specs()
	if err != nil {
		t.Fatal(err)
	}
	job, err := cl.CreateJob("fig3", cn.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := job.CreateTask(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := pubCtx(t)
	var order []string
	for len(order) < 7 {
		from, _, err := job.GetMessage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, from)
	}
	if order[0] != "split" || order[len(order)-1] != "join" {
		t.Errorf("execution order = %v", order)
	}
	res, err := job.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// The DOT rendering carries the diagram's pseudostates.
	d := cn.ActivityDOT(g)
	if !strings.Contains(d, "fork") || !strings.Contains(d, "joinbar") {
		t.Error("DOT output missing pseudostates")
	}
}

// TestFig4TaggedValues reproduces Figure 4: the tagged values of worker
// TCTask2 (jar, class, memory, runmodel, ptype0/pvalue0 = 2) survive the
// model -> XMI -> model round trip.
func TestFig4TaggedValues(t *testing.T) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		t.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		t.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	// The serialized XMI carries the Figure 4 values as TaggedValue
	// elements referencing TagDefinitions.
	for _, want := range []string{
		`dataValue="1000"`,
		`dataValue="RUN_AS_THREAD_IN_TM"`,
		`dataValue="tctask.jar"`,
		`dataValue="org.jhpc.cn2.trnsclsrtask.TCTask"`,
		`dataValue="2"`,
	} {
		if !strings.Contains(xmlText, want) {
			t.Errorf("XMI missing %q", want)
		}
	}
	parsed, err := cn.ParseXMI(strings.NewReader(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	model2, err := cn.XMIToModel(parsed)
	if err != nil {
		t.Fatal(err)
	}
	n := model2.Job("transclosure").Node("tctask2")
	if n.Tagged.Get(cn.TagJar) != "tctask.jar" {
		t.Errorf("jar = %q", n.Tagged.Get(cn.TagJar))
	}
	if n.Tagged.Get(cn.TagMemory) != "1000" {
		t.Errorf("memory = %q", n.Tagged.Get(cn.TagMemory))
	}
	params, err := n.Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := params[0].Int(); v != 2 {
		t.Errorf("pvalue0 = %d, want 2", v)
	}
}

// TestFig5DynamicInvocation reproduces Figure 5: the dynamic-invocation
// model leaves the worker count open until run time; the run-time argument
// expression then expands it, and the job executes.
func TestFig5DynamicInvocation(t *testing.T) {
	_, cl := startPublic(t, 3)
	g, err := cn.NewActivity("fig5").
		Initial("i").
		DynamicAction("worker", echoTags(), "*", "load").
		Final("f").
		Flows("i", "worker", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	model := cn.NewClientModel("Fig5")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	// "dependent on system load or other external factors": here the
	// run-time expression yields 3 invocations.
	results, err := cn.RunModelOnCluster(pubCtx(t), cl, model,
		cn.TransformOptions{Args: cn.FixedArgs(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := results["fig5"]
	if res == nil || res.Failed {
		t.Fatalf("res = %+v", res)
	}
	// Re-lowering with a different multiplicity changes the task count.
	doc5, err := cn.ModelToCNX(model, cn.TransformOptions{Args: cn.FixedArgs(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc5.Client.Jobs[0].Tasks); got != 5 {
		t.Errorf("5 invocations produced %d tasks", got)
	}
	// Zero invocations leave the job empty, which a CNX descriptor cannot
	// express — the lowering must reject it rather than emit an invalid
	// document.
	if _, err := cn.ModelToCNX(model, cn.TransformOptions{Args: cn.FixedArgs(0)}); err == nil {
		t.Error("empty expansion produced a descriptor")
	}
}

// TestFig6PipelineEndToEnd reproduces Figure 6: UML model -> XMI export ->
// XMI2CNX -> CNX2Go code generation -> deployment -> execution, each stage
// feeding the next.
func TestFig6PipelineEndToEnd(t *testing.T) {
	_, cl := startPublic(t, 3)
	// Stage 1: the UML model (activity diagram).
	g := cn.NewActivity("fig6").
		Initial("i").
		Action("a", echoTags()).
		Action("b", echoTags()).
		Final("f").
		Flows("i", "a", "b", "f").
		MustBuild()
	model := cn.NewClientModel("Fig6Client")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	// Stage 2: export as XMI.
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		t.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	// Stage 3: XMI -> CNX.
	var cnxText strings.Builder
	if err := cn.XMI2CNX(strings.NewReader(xmlText), &cnxText, cn.TransformOptions{}); err != nil {
		t.Fatal(err)
	}
	doc, err := cn.ParseCNX(strings.NewReader(cnxText.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 4: CNX -> Go client program.
	src, err := cn.GenerateClient(doc, cn.GenerateOptions{Source: "fig6.xmi"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `CreateJob("fig6"`) {
		t.Error("generated client missing job creation")
	}
	// Stages 5-6: deploy and execute (the descriptor path, equivalent to
	// running the generated program).
	results, err := cn.RunDescriptor(pubCtx(t), cl, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := results["fig6"]; res == nil || res.Failed {
		t.Fatalf("res = %+v", res)
	}
}

// TestFig7XMIRoundTrip reproduces Figure 7: the XMI fragment for TCTask2 —
// an ActionState carrying four TaggedValues that reference TagDefinitions —
// parses and re-serializes without loss through the public API.
func TestFig7XMIRoundTrip(t *testing.T) {
	g, err := floyd.BuildModel(5)
	if err != nil {
		t.Fatal(err)
	}
	model := cn.NewClientModel("TransClosure")
	if err := model.AddJob(g); err != nil {
		t.Fatal(err)
	}
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		t.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<UML:ActionState",
		"<UML:TaggedValue",
		"<UML:TaggedValue.type>",
		"<UML:TagDefinition xmi.idref=",
		"<UML:Transition.source>",
		"<UML:Transition.target>",
	} {
		if !strings.Contains(xmlText, want) {
			t.Errorf("XMI missing element %q", want)
		}
	}
	re, err := cn.ParseXMI(strings.NewReader(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	again, err := re.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	if xmlText != again {
		t.Error("XMI write/parse/write is not a fixed point")
	}
}

// TestPublicFloydEndToEnd runs the guiding example through the public API.
func TestPublicFloydEndToEnd(t *testing.T) {
	c, err := cn.StartCluster(cn.ClusterOptions{Nodes: 4, Registry: pubRegistry, MemoryMB: 32000})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := cn.Connect(c, cn.ClientOptions{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := floyd.RandomGraph(24, 0.25, 9, 11)
	got, err := floyd.Run(pubCtx(t), cl, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(floyd.Sequential(m)) {
		t.Error("public-API Floyd result differs from sequential baseline")
	}
}

// TestKillNodeThroughPublicAPI exercises failure injection.
func TestKillNodeThroughPublicAPI(t *testing.T) {
	c, cl := startPublic(t, 3)
	nodes := c.Nodes()
	if err := c.KillNode(nodes[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(nodes[2]); err == nil {
		t.Error("double kill accepted")
	}
	res, err := cn.RunJob(pubCtx(t), cl, "survivors", []*cn.TaskSpec{
		{Name: "t", Class: "pub.Noop", Req: cn.Requirements{MemoryMB: 50, RunModel: cn.RunAsThreadInTM}},
	}, nil)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestArchivePublicAPI builds and ships an archive through RunJob.
func TestArchivePublicAPI(t *testing.T) {
	_, cl := startPublic(t, 2)
	ar, err := cn.NewArchive("echo.jar", "pub.Echo").Version("1.0").Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cn.RunJob(pubCtx(t), cl, "archived", []*cn.TaskSpec{
		{Name: "t", Class: "pub.Echo", Archive: "echo.jar",
			Req: cn.Requirements{MemoryMB: 50, RunModel: cn.RunAsThreadInTM}},
	}, map[string]*cn.Archive{"echo.jar": ar})
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
