package cn_test

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"cn"
)

// ExampleConnect walks the paper's §3 API sequence end to end: boot a
// cluster, initialize the CN API, create a job of dependent tasks, run it,
// and read a task's message.
func ExampleConnect() {
	registry := cn.NewRegistry()
	registry.MustRegister("example.Hello", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			return ctx.SendClient([]byte("hello from " + ctx.TaskName()))
		})
	})

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 2, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	specs := []*cn.TaskSpec{
		{Name: "first", Class: "example.Hello",
			Req: cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}},
		{Name: "second", Class: "example.Hello", DependsOn: []string{"first"},
			Req: cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}},
	}
	result, err := cn.RunJob(ctx, client, "greetings", specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("failed:", result.Failed)
	// Output:
	// failed: false
}

// ExampleJob_Space coordinates a job through its tuple space — the
// paper's second coordination mechanism ("CN also supports communication
// via tuple spaces"). The client seeds work into the space hosted by the
// job's JobManager; a worker task steals it with a blocking In, answers
// with Out, and the client collects the result from the same space. No
// task is ever addressed directly.
func ExampleJob_Space() {
	registry := cn.NewRegistry()
	registry.MustRegister("example.Doubler", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			t, err := ctx.In(cn.Template{"work", cn.TypeOf(0)})
			if err != nil {
				return err
			}
			if err := ctx.Out(cn.Tuple{"result", 2 * t[1].(int)}); err != nil {
				return err
			}
			// Park until the client drained the result: the space closes
			// with the job, so the last worker must not exit first.
			_, err = ctx.Rd(cn.Template{"stop"})
			return err
		})
	})

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 2, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	job, err := client.CreateJob("doubling", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	spec := &cn.TaskSpec{Name: "doubler", Class: "example.Doubler",
		Req: cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}}
	if err := job.CreateTask(spec, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}

	space := job.Space()
	if err := space.Out(cn.Tuple{"work", 21}); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	t, err := space.In(ctx, cn.Template{"result", cn.TypeOf(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", t[1])
	if err := space.Out(cn.Tuple{"stop"}); err != nil {
		log.Fatal(err)
	}
	if _, err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// result: 42
}

// ExampleParseCNX parses a CNX descriptor (the paper's Figure 2 format)
// and inspects the composition.
func ExampleParseCNX() {
	const descriptor = `<cn2>
  <client class="TransClosure">
    <job name="closure">
      <task name="seed" class="org.jhpc.TCTask"/>
      <task name="expand" class="org.jhpc.TCTask" depends="seed"/>
      <task name="collect" class="org.jhpc.TCTask" depends="expand"/>
    </job>
  </client>
</cn2>`
	doc, err := cn.ParseCNX(strings.NewReader(descriptor))
	if err != nil {
		log.Fatal(err)
	}
	job := doc.Client.Jobs[0]
	fmt.Println(doc.Client.Class, job.Name, len(job.Tasks))
	order, err := job.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(order, " -> "))
	// Output:
	// TransClosure closure 3
	// seed -> expand -> collect
}

// ExampleNewActivity composes a UML activity graph programmatically and
// lowers it to a CNX descriptor — the in-memory half of the paper's
// model-driven pipeline.
func ExampleNewActivity() {
	graph, err := cn.NewActivity("pipeline").
		Initial("start").
		Action("extract", cn.TaskTags("", "etl.Extract", 200, "RUN_AS_THREAD_IN_TM")).
		Action("load", cn.TaskTags("", "etl.Load", 200, "RUN_AS_THREAD_IN_TM")).
		Final("end").
		Flows("start", "extract", "load", "end").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	model := cn.NewClientModel("ETL")
	if err := model.AddJob(graph); err != nil {
		log.Fatal(err)
	}
	doc, err := cn.ModelToCNX(model, cn.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, task := range doc.Client.Jobs[0].Tasks {
		fmt.Printf("%s class=%s depends=[%s]\n", task.Name, task.Class, task.Depends)
	}
	// Output:
	// extract class=etl.Extract depends=[]
	// load class=etl.Load depends=[extract]
}

// ExampleXMI2CNX runs the end-to-end document transformation: a UML model
// exported as XMI in, an executable CNX descriptor out.
func ExampleXMI2CNX() {
	graph, err := cn.NewActivity("hello").
		Initial("i").
		Action("greet", cn.TaskTags("", "demo.Greet", 100, "RUN_AS_THREAD_IN_TM")).
		Final("f").
		Flows("i", "greet", "f").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	model := cn.NewClientModel("Hello")
	if err := model.AddJob(graph); err != nil {
		log.Fatal(err)
	}
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		log.Fatal(err)
	}
	xmiText, err := xdoc.WriteString()
	if err != nil {
		log.Fatal(err)
	}

	var cnxOut strings.Builder
	if err := cn.XMI2CNX(strings.NewReader(xmiText), &cnxOut, cn.TransformOptions{}); err != nil {
		log.Fatal(err)
	}
	doc, err := cn.ParseCNX(strings.NewReader(cnxOut.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(doc.Client.Class, doc.Client.Jobs[0].Tasks[0].Class)
	// Output:
	// Hello demo.Greet
}

// ExampleGenerateClient emits a runnable Go client program from a CNX
// descriptor — the paper's CNX2Java step, targeting Go.
func ExampleGenerateClient() {
	const descriptor = `<cn2><client class="Gen"><job name="g">
	  <task name="work" class="gen.Work"/>
	</job></client></cn2>`
	doc, err := cn.ParseCNX(strings.NewReader(descriptor))
	if err != nil {
		log.Fatal(err)
	}
	src, err := cn.GenerateClient(doc, cn.GenerateOptions{Source: "example"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Contains(string(src), "package main"))
	fmt.Println(strings.Contains(string(src), `"gen.Work"`))
	// Output:
	// true
	// true
}
