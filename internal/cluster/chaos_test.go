package cluster_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/tuplespace"
)

// chaosRegistry deploys the failure-injection workloads.
func chaosRegistry() *task.Registry {
	r := task.NewRegistry()
	// chaos.Work simulates a short compute burst, then reports its own
	// name to the client. Re-running it is idempotent from the test's
	// point of view (the client dedupes by task name).
	r.MustRegister("chaos.Work", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			deadline := time.Now().Add(40 * time.Millisecond)
			for time.Now().Before(deadline) {
				if ctx.Done() {
					return task.ErrStopped
				}
				time.Sleep(2 * time.Millisecond)
			}
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	// chaos.Hang blocks until its mailbox closes (cancellation or node
	// death) — the workload that can only finish by being killed.
	r.MustRegister("chaos.Hang", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			_, _, err := ctx.Recv()
			return err
		})
	})
	return r
}

func chaosSpec(name, class string, memMB int) *task.Spec {
	return &task.Spec{
		Name:  name,
		Class: class,
		Req:   task.Requirements{MemoryMB: memMB, RunModel: task.RunAsThreadInTM},
	}
}

// fastHealth is the chaos suite's aggressive failure-detection tuning.
func fastHealth(cfg cluster.Config) cluster.Config {
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.SuspectAfter = 50 * time.Millisecond
	cfg.DeadAfter = 100 * time.Millisecond
	return cfg
}

// TestChaosKillNodeMidJobRecovers is the subsystem's acceptance test: a
// 32-task job survives a worker being power-cut mid-flight. The dead
// node's tasks are detected via lease expiry, re-placed on survivors
// (archive blobs re-fetch by digest), and the job completes with every
// task's result delivered and a non-zero retry count reported.
func TestChaosKillNodeMidJobRecovers(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          5,
		MemoryMB:       64000,
		Registry:       chaosRegistry(),
		MaxTaskRetries: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Host the job on node1 so the killed worker is never the JobManager
	// (JobManager failover is a separate concern; this subsystem recovers
	// TaskManager deaths).
	j, err := cl.CreateJobOn("node1", "chaos", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 32
	specs := make([]*task.Spec, tasks)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("w%02d", i), "chaos.Work", 100)
	}
	placements, err := j.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a victim that hosts tasks and is not the JobManager's node.
	victim := ""
	victimTasks := 0
	byNode := make(map[string]int)
	for _, node := range placements {
		byNode[node]++
	}
	for node, n := range byNode {
		if node != "node1" && n > victimTasks {
			victim, victimTasks = node, n
		}
	}
	if victim == "" {
		t.Fatalf("no non-JM node hosts tasks: %v", byNode)
	}

	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	// Power-cut the victim while its tasks are mid-execution.
	time.Sleep(15 * time.Millisecond)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after node kill: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of recovering: %+v", res)
	}

	// Every task's result must have arrived (re-runs may duplicate; the
	// terminal event ordering guarantees at least one copy is queued).
	seen := make(map[string]bool)
	for {
		from, _, ok, err := j.TryGetMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[from] = true
	}
	for i := 0; i < tasks; i++ {
		name := fmt.Sprintf("w%02d", i)
		if !seen[name] {
			t.Errorf("no result from task %s", name)
		}
	}

	if got := j.Progress().Retried; got == 0 {
		t.Error("client observed no TASK_RETRIED events after a node kill")
	}
	if prog, ok := c.Server("node1").JobManager().JobProgress(j.ID); !ok || prog.Retried == 0 {
		t.Errorf("JobManager reports no retries: %+v ok=%v", prog, ok)
	}
	t.Logf("killed %s (%d tasks); client retries=%d", victim, victimTasks, j.Progress().Retried)
}

// TestChaosRetryBudgetExhaustionFailsJob kills workers until the retry
// budget runs out: the job must fail with a budget-exhaustion error
// instead of hanging on unrecoverable tasks.
func TestChaosRetryBudgetExhaustionFailsJob(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          3,
		MemoryMB:       4000,
		Registry:       chaosRegistry(),
		MaxTaskRetries: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "budget", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	// Oversized tasks: the whole set fits only when every node
	// participates, so after two kills the survivors cannot absorb the
	// orphans even once, let alone within a budget of 1.
	const tasks = 6
	specs := make([]*task.Spec, tasks)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("h%d", i), "chaos.Hang", 1500)
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	if err := c.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	// Give the first recovery wave time to land on node3, then cut it too.
	time.Sleep(300 * time.Millisecond)
	if err := c.KillNode("node3"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job hung instead of failing: %v", err)
	}
	if !res.Failed {
		t.Fatalf("job should have failed after retry budget exhaustion: %+v", res)
	}
	found := false
	for _, errText := range res.TaskErrs {
		if strings.Contains(errText, "retry budget") || strings.Contains(errText, "re-placement failed") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no recovery error recorded: %v", res.TaskErrs)
	}
}

// TestChaosUnstartedAssignmentsRecover kills a node between task creation
// and job start: the orphaned (never-executed) assignments must be
// re-placed so the job still runs to completion.
func TestChaosUnstartedAssignmentsRecover(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          4,
		MemoryMB:       64000,
		Registry:       chaosRegistry(),
		MaxTaskRetries: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "prestart", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*task.Spec, 8)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("p%d", i), "chaos.Work", 100)
	}
	placements, err := j.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, node := range placements {
		if node != "node1" {
			victim = node
			break
		}
	}
	if victim == "" {
		t.Skip("all tasks landed on the JobManager's node")
	}
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	// Wait for the lease to lapse and recovery to re-place before starting.
	time.Sleep(250 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
}

// TestChaosSpeculativeRetryBeatsStraggler enables the speculation knob: a
// task whose progress sync stalls gets a twin on another node; the twin's
// result wins and the job completes even though the original never does.
func TestChaosSpeculativeRetryBeatsStraggler(t *testing.T) {
	var instances atomic.Int64
	reg := task.NewRegistry()
	// The first instance stalls forever (a wedged straggler); any later
	// instance — the speculative twin — completes immediately.
	reg.MustRegister("chaos.StallOnce", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			if instances.Add(1) == 1 {
				for !ctx.Done() {
					time.Sleep(2 * time.Millisecond)
				}
				return task.ErrStopped
			}
			return ctx.SendClient([]byte("done by " + ctx.NodeName()))
		})
	})

	cfg := fastHealth(cluster.Config{
		Nodes:          3,
		MemoryMB:       64000,
		Registry:       reg,
		MaxTaskRetries: 2,
	})
	cfg.StragglerAfter = 80 * time.Millisecond
	c, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "straggler", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks([]*task.Spec{chaosSpec("slow", "chaos.StallOnce", 100)}, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	if got := j.Progress().Retried; got == 0 {
		t.Error("no TASK_RETRIED event observed for the straggler")
	}
	// The winning copy's output must have been delivered.
	from, data, ok, err := j.TryGetMessage()
	if err != nil || !ok {
		t.Fatalf("no result message (ok=%v err=%v)", ok, err)
	}
	if from != "slow" || !strings.HasPrefix(string(data), "done by ") {
		t.Errorf("unexpected result %q from %q", data, from)
	}
}

// TestPlacementDirectoryEvictsDepartedNodes verifies the discovery-departure
// satellite: cached offers from a node that cleanly left the fabric are
// evicted from the placement directory instead of being served until the
// TTL lapses.
func TestPlacementDirectoryEvictsDepartedNodes(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:        3,
		MemoryMB:     64000,
		Registry:     chaosRegistry(),
		PlacementTTL: time.Hour, // the TTL alone would serve stale offers forever
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Warm node1's directory with all three nodes.
	j, err := cl.CreateJobOn("node1", "warm", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks([]*task.Spec{chaosSpec("warm", "chaos.Work", 10)}, nil); err != nil {
		t.Fatal(err)
	}

	if err := c.KillNode("node3"); err != nil {
		t.Fatal(err)
	}

	// A post-departure placement must not choose node3 even though its
	// offer is still fresh under the 1h TTL.
	j2, err := cl.CreateJobOn("node1", "after", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*task.Spec, 6)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("a%d", i), "chaos.Work", 10)
	}
	placements, err := j2.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for taskName, node := range placements {
		if node == "node3" {
			t.Errorf("task %s placed on departed node3", taskName)
		}
	}
	if ev := c.PlacementStats().Evictions; ev == 0 {
		t.Error("placement directory recorded no evictions after a departure")
	}
}

// TestHeartbeatAckReleasesUnknownJobAssignments: when a JobManager no
// longer tracks a job (evicted), its ack tells the TaskManager to release
// the job's leftover assignments.
func TestHeartbeatAckReleasesUnknownJobAssignments(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:        2,
		MemoryMB:     4000,
		Registry:     chaosRegistry(),
		TombstoneTTL: 40 * time.Millisecond, // abandon fast
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "abandoned", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks([]*task.Spec{chaosSpec("t1", "chaos.Hang", 1000)}, nil); err != nil {
		t.Fatal(err)
	}
	// Never start the job: the JobManager's janitor treats it as
	// abandoned and evicts it; the next heartbeat round's ack flags the
	// job as unknown and the TaskManagers release the reservation.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		full := true
		for _, node := range c.Nodes() {
			if c.Server(node).TaskManager().FreeMemoryMB() != 4000 {
				full = false
			}
		}
		if full {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("abandoned job's reservation never released")
}

// TestChaosWorkerKilledMidInDrainsSpace extends the suite to the
// coordination layer: replicated workers steal work items from the job's
// tuple space with blocking In; a worker node is power-cut while its
// workers are parked mid-In. The orphaned worker tasks are re-placed on
// survivors, the fresh instances transparently reconnect to the same
// space (same JobManager, fresh wire calls), tuples taken by stale
// waiters whose reply could not be delivered are put back, and the client
// re-seeds any item lost in a worker's In→Out window — so the bag drains
// completely and the job still finishes.
func TestChaosWorkerKilledMidInDrainsSpace(t *testing.T) {
	reg := task.NewRegistry()
	reg.MustRegister("chaos.TSWorker", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			for {
				tu, err := ctx.In(tuplespace.Template{"work", tuplespace.TypeOf(0)})
				if err != nil {
					return nil // space closed or node dying
				}
				v := tu[1].(int)
				if v < 0 {
					return nil // poison pill
				}
				// A short compute burst widens the In→Out window the kill
				// can land in.
				time.Sleep(2 * time.Millisecond)
				if err := ctx.Out(tuplespace.Tuple{"done", v}); err != nil {
					return err
				}
			}
		})
	})

	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          4,
		MemoryMB:       64000,
		Registry:       reg,
		MaxTaskRetries: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "ts-chaos", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, items = 3, 40
	specs := make([]*task.Spec, workers)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("w%d", i), "chaos.TSWorker", 100)
	}
	placements, err := j.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, node := range placements {
		if node != "node1" {
			victim = node
			break
		}
	}
	if victim == "" {
		t.Fatalf("no non-JM node hosts workers: %v", placements)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	space := j.Space()
	pending := make(map[int]bool, items)
	for i := 0; i < items; i++ {
		pending[i] = true
		if err := space.Out(tuplespace.Tuple{"work", i}); err != nil {
			t.Fatal(err)
		}
	}
	// Cut the victim while its workers are mid-steal (parked in In or
	// inside the In→Out compute window).
	time.Sleep(10 * time.Millisecond)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}

	// Drain; items lost in a dead worker's In→Out window are re-seeded
	// after a quiet period (duplicate answers are skipped).
	deadline := time.Now().Add(30 * time.Second)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bag never drained; %d items outstanding", len(pending))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		tu, err := space.In(ctx, tuplespace.Template{"done", tuplespace.TypeOf(0)})
		cancel()
		if err != nil {
			for v := range pending {
				if err := space.Out(tuplespace.Tuple{"work", v}); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		delete(pending, tu[1].(int))
	}

	for i := 0; i < workers; i++ {
		if err := space.Out(tuplespace.Tuple{"work", -1}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after mid-In kill: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of recovering: %+v", res)
	}
	if got := j.Progress().Retried; got == 0 {
		t.Error("no TASK_RETRIED events after killing a worker node")
	}
}
