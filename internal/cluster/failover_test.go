package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/tuplespace"
)

// failoverConfig layers the checkpoint knob onto the chaos tuning: peer
// JobManagers replicate job state every 20ms and declare an origin dead
// after 6 missed ticks, so failover lands well inside test deadlines.
func failoverConfig(nodes int, reg *task.Registry) cluster.Config {
	cfg := fastHealth(cluster.Config{
		Nodes:          nodes,
		MemoryMB:       64000,
		Registry:       reg,
		MaxTaskRetries: 3,
	})
	cfg.CheckpointEvery = 20 * time.Millisecond
	return cfg
}

// failoverRegistry's workload runs long enough that the JobManager kill
// always lands mid-job, and reports its own name so the test can verify
// every task's result survived the failover (re-runs may duplicate).
func failoverRegistry() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("failover.Work", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			deadline := time.Now().Add(150 * time.Millisecond)
			for time.Now().Before(deadline) {
				if ctx.Done() {
					return task.ErrStopped
				}
				time.Sleep(2 * time.Millisecond)
			}
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	return r
}

// TestFailoverJMKilledMidJobAdoptedBySurvivor is the failover subsystem's
// acceptance test: the node hosting a job's JobManager is power-cut while
// the job's tasks are mid-execution. Surviving JobManagers hold the job's
// replicated checkpoints, detect the death by checkpoint-lease expiry,
// elect the smallest survivor as adopter, re-point the live assignments,
// re-place the orphans (including everything that ran on the dead node
// itself), and drive the job to completion — with the client's handle
// transparently following the move.
func TestFailoverJMKilledMidJobAdoptedBySurvivor(t *testing.T) {
	c, err := cluster.Start(failoverConfig(4, failoverRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "failover", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 16
	specs := make([]*task.Spec, tasks)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("w%02d", i), "failover.Work", 100)
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	// Let at least two checkpoint ticks replicate the started schedule,
	// then power-cut the manager mid-job (tasks run ~150ms).
	time.Sleep(50 * time.Millisecond)
	if err := c.KillNode("node1"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after its JobManager died: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of being adopted: %+v", res)
	}

	// The handle followed the adoption to the elected survivor (the
	// lexicographically smallest surviving JobManager).
	if got := j.Manager(); got != "node2" {
		t.Errorf("job manager after failover = %s, want node2", got)
	}

	// Every task's result arrived despite the mid-flight manager death
	// (at-least-once execution: duplicates are fine, absences are not).
	seen := make(map[string]bool)
	for {
		from, _, ok, err := j.TryGetMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[from] = true
	}
	for i := 0; i < tasks; i++ {
		name := fmt.Sprintf("w%02d", i)
		if !seen[name] {
			t.Errorf("no result from task %s after failover", name)
		}
	}
	t.Logf("job adopted by %s; %d/%d results, %d retries", j.Manager(), len(seen), tasks, j.Progress().Retried)
}

// TestFailoverParkedInWaitersFollowAdoption kills the JobManager while
// worker tasks are parked in blocking In against the job's tuple space.
// The parked calls fail when the manager dies; the workers retry, the
// adopter restores the space from the last checkpoint and re-points the
// assignments, and the retried In operations land on the survivor. The
// client re-seeds any item lost in the failover window, so the bag drains
// and the job completes.
func TestFailoverParkedInWaitersFollowAdoption(t *testing.T) {
	reg := task.NewRegistry()
	reg.MustRegister("failover.TSWorker", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			for {
				tu, err := ctx.In(tuplespace.Template{"work", tuplespace.TypeOf(0)})
				if err != nil {
					if ctx.Done() {
						return task.ErrStopped
					}
					// The owning JobManager may have just died; once the
					// adopter re-points this assignment the retry reaches
					// the survivor's copy of the space.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				v := tu[1].(int)
				if v < 0 {
					return nil // poison pill
				}
				time.Sleep(2 * time.Millisecond)
				for {
					if err := ctx.Out(tuplespace.Tuple{"done", v}); err == nil {
						break
					}
					if ctx.Done() {
						return task.ErrStopped
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		})
	})

	c, err := cluster.Start(failoverConfig(4, reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "ts-failover", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, items = 3, 20
	specs := make([]*task.Spec, workers)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("w%d", i), "failover.TSWorker", 100)
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	space := j.Space()
	pending := make(map[int]bool, items)
	for i := 0; i < items; i++ {
		pending[i] = true
		if err := space.Out(tuplespace.Tuple{"work", i}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the checkpointer a tick to replicate the seeded space with the
	// workers parked mid-In, then cut the manager.
	time.Sleep(50 * time.Millisecond)
	if err := c.KillNode("node1"); err != nil {
		t.Fatal(err)
	}

	// Drain the bag through the failover. Operations against the dead
	// manager fail until the adoption lands; on any error the client
	// re-seeds the outstanding items (the space reverts to the last
	// checkpoint, so items taken-but-unanswered in the kill window need
	// re-seeding; duplicates produce duplicate answers, which dedupe).
	deadline := time.Now().Add(30 * time.Second)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bag never drained after failover; %d items outstanding", len(pending))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		tu, err := space.In(ctx, tuplespace.Template{"done", tuplespace.TypeOf(0)})
		cancel()
		if err != nil {
			for v := range pending {
				if err := space.Out(tuplespace.Tuple{"work", v}); err != nil {
					break // manager still moving; retry next round
				}
			}
			continue
		}
		delete(pending, tu[1].(int))
	}

	for i := 0; i < workers; i++ {
		for {
			if err := space.Out(tuplespace.Tuple{"work", -1}); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after mid-In manager death: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of being adopted: %+v", res)
	}
	if got := j.Manager(); got != "node2" {
		t.Errorf("job manager after failover = %s, want node2", got)
	}
}
