// Package cluster provides the simulated CN deployment harness: it boots N
// CN servers on a shared fabric — the stand-in for the paper's "CN Servers
// run on the various nodes of the cluster" deployment — and offers failure
// injection and teardown for tests and benchmarks.
package cluster

import (
	"fmt"
	"log/slog"
	"time"

	"cn/internal/dataplane"
	"cn/internal/jobmgr"
	"cn/internal/metrics"
	"cn/internal/placement"
	"cn/internal/server"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/transport"
)

// Transport selects the fabric implementation.
type Transport int

// Fabric choices.
const (
	// TransportMem is the in-memory simulated network (default).
	TransportMem Transport = iota
	// TransportTCP uses real loopback sockets.
	TransportTCP
)

// Config parametrizes a simulated cluster.
type Config struct {
	// Nodes is the number of CN servers to boot (0 = 4).
	Nodes int
	// NodePrefix names nodes prefix1..prefixN (default "node").
	NodePrefix string
	// MemoryMB is each node's task capacity (0 = taskmgr default).
	MemoryMB int
	// MaxJobs caps jobs per JobManager (0 = jobmgr default).
	MaxJobs int
	// Transport selects the fabric.
	Transport Transport
	// Latency, Jitter, Loss, Seed configure the mem fabric's link model.
	Latency time.Duration
	Jitter  time.Duration
	Loss    float64
	Seed    int64
	// Registry resolves task classes on every node (nil = task.Global).
	Registry *task.Registry
	// PlacementTTL bounds each JobManager's cached TaskManager offers
	// (0 = placement default; negative disables offer caching).
	PlacementTTL time.Duration
	// AssignTimeout bounds each JobManager's batch-assignment round trips
	// (0 = jobmgr default).
	AssignTimeout time.Duration
	// TombstoneTTL bounds finished-job tombstone retention per JobManager
	// (0 = jobmgr default; negative keeps tombstones forever).
	TombstoneTTL time.Duration
	// HeartbeatInterval is each TaskManager's beat cadence and each
	// JobManager's lease sizing basis (0 = health default; negative
	// disables heartbeating and failure detection).
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter override the lease windows
	// (0 = 3× / 6× the heartbeat interval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// MaxTaskRetries bounds per-task re-placement by each JobManager's
	// recovery engine (0 = jobmgr default; negative disables recovery).
	MaxTaskRetries int
	// StragglerAfter enables speculative re-execution of running tasks
	// whose progress sync stalls this long (0 = disabled).
	StragglerAfter time.Duration
	// CheckpointEvery is each JobManager's peer-checkpoint cadence for
	// failover (0 = heartbeat interval; negative disables checkpointing
	// and job adoption).
	CheckpointEvery time.Duration
	// Logf receives server diagnostics; nil disables logging.
	Logf func(format string, args ...any)
	// Log is the structured logger every node's managers attach to; when
	// nil, records are bridged through Logf.
	Log *slog.Logger
	// TraceSample is each node's root-sampling probability
	// (0 = trace.DefaultSample; negative disables tracing cluster-wide).
	TraceSample float64
}

// Cluster is a set of running CN servers on one fabric.
type Cluster struct {
	cfg     Config
	network transport.Network
	servers map[string]*server.Server
	order   []string
	reg     *metrics.Registry
}

// Start boots the cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.NodePrefix == "" {
		cfg.NodePrefix = "node"
	}
	var net transport.Network
	switch cfg.Transport {
	case TransportMem:
		net = transport.NewMemNetwork(transport.MemConfig{
			Latency: cfg.Latency,
			Jitter:  cfg.Jitter,
			Loss:    cfg.Loss,
			Seed:    cfg.Seed,
		})
	case TransportTCP:
		tn := transport.NewTCPNetwork()
		tn.SetLogf(cfg.Logf)
		net = tn
	default:
		return nil, fmt.Errorf("cluster: unknown transport %d", cfg.Transport)
	}
	c := &Cluster{
		cfg:     cfg,
		network: net,
		servers: make(map[string]*server.Server, cfg.Nodes),
		reg:     metrics.NewRegistry(),
	}
	for i := 1; i <= cfg.Nodes; i++ {
		name := fmt.Sprintf("%s%d", cfg.NodePrefix, i)
		srv, err := server.Start(net, server.Config{
			Node:              name,
			MemoryMB:          cfg.MemoryMB,
			MaxJobs:           cfg.MaxJobs,
			Registry:          cfg.Registry,
			PlacementTTL:      cfg.PlacementTTL,
			AssignTimeout:     cfg.AssignTimeout,
			TombstoneTTL:      cfg.TombstoneTTL,
			HeartbeatInterval: cfg.HeartbeatInterval,
			SuspectAfter:      cfg.SuspectAfter,
			DeadAfter:         cfg.DeadAfter,
			MaxTaskRetries:    cfg.MaxTaskRetries,
			StragglerAfter:    cfg.StragglerAfter,
			CheckpointEvery:   cfg.CheckpointEvery,
			Logf:              cfg.Logf,
			Log:               cfg.Log,
			TraceSample:       cfg.TraceSample,
		})
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: start %s: %w", name, err)
		}
		c.servers[name] = srv
		c.order = append(c.order, name)
	}
	return c, nil
}

// Network exposes the fabric so clients can attach.
func (c *Cluster) Network() transport.Network { return c.network }

// Metrics exposes the harness metric registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Nodes returns the live node names in boot order.
func (c *Cluster) Nodes() []string {
	out := make([]string, 0, len(c.order))
	for _, n := range c.order {
		if _, ok := c.servers[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Server returns the named node's server, or nil after it was killed.
func (c *Cluster) Server(node string) *server.Server { return c.servers[node] }

// JobProgress reports a hosted job's schedule census from its hosting
// JobManager; ok is false when the node is dead or the job unknown.
func (c *Cluster) JobProgress(jmNode, jobID string) (jobmgr.Progress, bool) {
	srv, ok := c.servers[jmNode]
	if !ok {
		return jobmgr.Progress{}, false
	}
	return srv.JobManager().JobProgress(jobID)
}

// PlacementStats sums every live JobManager's resource-directory counters.
func (c *Cluster) PlacementStats() placement.Stats {
	var agg placement.Stats
	for _, name := range c.order {
		srv, ok := c.servers[name]
		if !ok {
			continue
		}
		s := srv.JobManager().PlacementStats()
		agg.SolicitRounds += s.SolicitRounds
		agg.CacheHits += s.CacheHits
		agg.Invalidations += s.Invalidations
		agg.Evictions += s.Evictions
		agg.WarmHits += s.WarmHits
		agg.ColdMisses += s.ColdMisses
		agg.BytesSaved += s.BytesSaved
	}
	return agg
}

// WireStats snapshots the fabric's transport counters: messages and
// encoded bytes on the wire, per-kind send counts, and inbound frame
// errors. Both fabric implementations account encoded frame sizes, so the
// figure is comparable between simulated and TCP deployments.
func (c *Cluster) WireStats() transport.WireSnapshot {
	type statser interface{ Stats() *transport.Stats }
	if s, ok := c.network.(statser); ok {
		return s.Stats().Wire()
	}
	return transport.WireSnapshot{}
}

// BlobTransfers sums every live TaskManager's distinct archive-blob
// insertions — the cluster's archive-bytes-on-the-wire figure.
func (c *Cluster) BlobTransfers() int64 {
	var n int64
	for _, name := range c.order {
		if srv, ok := c.servers[name]; ok {
			n += srv.TaskManager().BlobCache().Transfers()
		}
	}
	return n
}

// DataplaneStats sums every live JobManager's data-plane broker counters:
// location adverts, resolves and parks, and the payload bytes the managers
// served from inline copies (the only data-plane bytes that touch a
// JobManager at all).
func (c *Cluster) DataplaneStats() dataplane.StatsSnapshot {
	var agg dataplane.StatsSnapshot
	for _, name := range c.order {
		if srv, ok := c.servers[name]; ok {
			agg = agg.Add(srv.JobManager().DataplaneStats())
		}
	}
	return agg
}

// DataplaneBytes sums the live TaskManagers' direct TM→TM data-plane
// transfer counters: payload bytes served to peers and pulled from them.
// Compared against WireStats' JobManager traffic, this is the tentpole
// figure — shuffle bytes that bypass the managers entirely.
func (c *Cluster) DataplaneBytes() (served, fetched int64) {
	for _, name := range c.order {
		if srv, ok := c.servers[name]; ok {
			served += srv.TaskManager().DataServedBytes()
			fetched += srv.TaskManager().DataFetchedBytes()
		}
	}
	return served, fetched
}

// JobTrace assembles a job's span timeline by asking every live
// JobManager — across failover the adopter holds the merged record, so
// the first node that knows the job answers.
func (c *Cluster) JobTrace(jobID string) ([]trace.Span, bool) {
	for _, name := range c.order {
		srv, ok := c.servers[name]
		if !ok {
			continue
		}
		if spans, ok := srv.JobManager().JobTrace(jobID); ok {
			return spans, true
		}
	}
	return nil, false
}

// CacheStats sums the live TaskManagers' digest-cache hit/miss counters
// (archives and data-plane blobs share each node's cache).
func (c *Cluster) CacheStats() (hits, misses int64) {
	for _, name := range c.order {
		if srv, ok := c.servers[name]; ok {
			cache := srv.TaskManager().BlobCache()
			hits += cache.Hits()
			misses += cache.Misses()
		}
	}
	return hits, misses
}

// KillNode abruptly removes a node from the cluster (failure injection):
// its endpoint detaches before its managers stop, so messages in flight to
// and from the node are dropped, like a machine losing power. Surviving
// JobManagers detect the death by heartbeat-lease expiry and re-place the
// node's in-flight tasks.
func (c *Cluster) KillNode(node string) error {
	srv, ok := c.servers[node]
	if !ok {
		return fmt.Errorf("cluster: kill %s: unknown or already dead node", node)
	}
	delete(c.servers, node)
	return srv.Kill()
}

// Stop shuts down every server and the fabric.
func (c *Cluster) Stop() {
	for name, srv := range c.servers {
		_ = srv.Close()
		delete(c.servers, name)
	}
	_ = c.network.Close()
}
