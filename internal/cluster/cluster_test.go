package cluster

import (
	"testing"
	"time"

	"cn/internal/task"
)

func testRegistry() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("cluster.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}

func TestStartDefaults(t *testing.T) {
	c, err := Start(Config{Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Errorf("default nodes = %v", nodes)
	}
	if nodes[0] != "node1" || nodes[3] != "node4" {
		t.Errorf("names = %v", nodes)
	}
	if c.Network() == nil || c.Metrics() == nil {
		t.Error("accessors returned nil")
	}
}

func TestStartCustomPrefix(t *testing.T) {
	c, err := Start(Config{Nodes: 2, NodePrefix: "rack", Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := c.Nodes(); got[0] != "rack1" || got[1] != "rack2" {
		t.Errorf("nodes = %v", got)
	}
	if c.Server("rack1") == nil {
		t.Error("Server lookup failed")
	}
	if c.Server("ghost") != nil {
		t.Error("ghost server found")
	}
}

func TestKillNode(t *testing.T) {
	c, err := Start(Config{Nodes: 3, Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 2 {
		t.Errorf("nodes after kill = %v", c.Nodes())
	}
	if err := c.KillNode("node2"); err == nil {
		t.Error("double kill accepted")
	}
	if err := c.KillNode("ghost"); err == nil {
		t.Error("killing unknown node accepted")
	}
}

func TestStopIdempotent(t *testing.T) {
	c, err := Start(Config{Nodes: 2, Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // must not panic
	if len(c.Nodes()) != 0 {
		t.Errorf("nodes after stop = %v", c.Nodes())
	}
}

func TestBadTransport(t *testing.T) {
	if _, err := Start(Config{Transport: Transport(99), Registry: testRegistry()}); err == nil {
		t.Error("bad transport accepted")
	}
}

func TestTCPCluster(t *testing.T) {
	c, err := Start(Config{Nodes: 2, Transport: TransportTCP, Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Nodes()) != 2 {
		t.Errorf("nodes = %v", c.Nodes())
	}
}

func TestLinkModelCluster(t *testing.T) {
	c, err := Start(Config{
		Nodes:    2,
		Registry: testRegistry(),
		Latency:  time.Millisecond,
		Jitter:   time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Nodes()) != 2 {
		t.Errorf("nodes = %v", c.Nodes())
	}
}
