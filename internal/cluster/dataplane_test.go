package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
)

// dpSize is well above protocol.DataInlineMax, so every shuffle payload
// takes the TM→TM chunk-fetch path and dies with its producing node.
const dpSize = 64 << 10

// dpPayload derives a producer's output deterministically from its task
// name, so a recovered producer re-publishes byte-identical content.
func dpPayload(name string, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = name[i%len(name)] ^ byte(i)
	}
	return b
}

// dataplaneRegistry deploys the shuffle workloads.
func dataplaneRegistry() *task.Registry {
	r := task.NewRegistry()
	// dp.Produce publishes one dpSize output under data/<own name>.
	r.MustRegister("dp.Produce", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			return ctx.Put("data/"+ctx.TaskName(), dpPayload(ctx.TaskName(), dpSize))
		})
	})
	// dp.Consume waits for the client's go signal, then pulls and verifies
	// every producer's output. Params: [0] producer count.
	r.MustRegister("dp.Consume", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			producers, err := task.IntParam(ctx.Params(), 0)
			if err != nil {
				return err
			}
			if _, _, err := ctx.Recv(); err != nil {
				return err
			}
			for i := 1; i <= producers; i++ {
				name := fmt.Sprintf("p%d", i)
				data, err := ctx.Get(context.Background(), "data/"+name)
				if err != nil {
					return fmt.Errorf("get %s: %w", name, err)
				}
				if !bytes.Equal(data, dpPayload(name, dpSize)) {
					return fmt.Errorf("payload mismatch for %s", name)
				}
			}
			return ctx.SendClient([]byte("ok"))
		})
	})
	// dp.Shuffle is the all-to-all stage: publish one output, then pull and
	// verify every peer's. Params: [0] peer count, [1] own index.
	r.MustRegister("dp.Shuffle", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			peers, err := task.IntParam(ctx.Params(), 0)
			if err != nil {
				return err
			}
			if err := ctx.Put("shuffle/"+ctx.TaskName(), dpPayload(ctx.TaskName(), dpSize)); err != nil {
				return err
			}
			for i := 1; i <= peers; i++ {
				name := fmt.Sprintf("s%d", i)
				data, err := ctx.Get(context.Background(), "shuffle/"+name)
				if err != nil {
					return fmt.Errorf("get %s: %w", name, err)
				}
				if !bytes.Equal(data, dpPayload(name, dpSize)) {
					return fmt.Errorf("payload mismatch for %s", name)
				}
			}
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	return r
}

func dpSpec(name, class string, params ...task.Param) *task.Spec {
	return &task.Spec{
		Name:   name,
		Class:  class,
		Params: params,
		Req:    task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
	}
}

func intP(v int) task.Param {
	return task.Param{Type: task.TypeInteger, Value: fmt.Sprintf("%d", v)}
}

// TestDataplaneShuffleStorm is the data plane's concurrency storm: an
// all-to-all shuffle where every task publishes one 64KiB output and pulls
// every peer's, all resolves racing the adverts. Under -race this is the
// data plane's data-race check end to end (broker park/wake, chunk fetch,
// shared cache). It also asserts the tentpole's byte economics: payload
// bytes move TM→TM, none relay through a JobManager advert.
func TestDataplaneShuffleStorm(t *testing.T) {
	const peers = 8
	c, err := cluster.Start(cluster.Config{
		Nodes:    4,
		MemoryMB: 64000,
		Registry: dataplaneRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "shuffle-storm", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*task.Spec, peers)
	for i := range specs {
		specs[i] = dpSpec(fmt.Sprintf("s%d", i+1), "dp.Shuffle", intP(peers), intP(i+1))
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := j.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("shuffle job failed: %+v", res)
	}

	dp := c.DataplaneStats()
	if dp.Puts != peers {
		t.Errorf("broker puts = %d, want %d", dp.Puts, peers)
	}
	// peers^2 gets total; same-node gets are cache hits, cross-node gets
	// resolve — either way no payload relays through the JobManager.
	if dp.InlineBytes != 0 {
		t.Errorf("JobManager served %d inline bytes for %d-byte payloads", dp.InlineBytes, dpSize)
	}
	served, fetched := c.DataplaneBytes()
	if fetched == 0 || served == 0 {
		t.Errorf("no TM→TM transfer despite cross-node shuffle (served=%d fetched=%d)", served, fetched)
	}
	if fetched%dpSize != 0 {
		t.Errorf("fetched %d bytes, not a multiple of the %d-byte payload", fetched, dpSize)
	}
	hits, misses := c.CacheStats()
	t.Logf("storm: %d puts, %d resolves (%d parked); %d bytes TM→TM; cache %d hits / %d misses",
		dp.Puts, dp.Resolves, dp.Parks, fetched, hits, misses)
}

// TestDataplaneChaosProducerNodeKilledBeforeGet power-cuts the node holding
// three published 64KiB outputs before the consumer pulls them — before the
// node's lease even lapses. The consumer's first fetch fails, its stale
// hint makes the JobManager drop the dead advert and re-run the completed
// producers, the fresh adverts wake the parked resolves, and the consumer
// completes with byte-identical payloads.
func TestDataplaneChaosProducerNodeKilledBeforeGet(t *testing.T) {
	const producers = 3
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          5,
		MemoryMB:       64000,
		Registry:       dataplaneRegistry(),
		MaxTaskRetries: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "dp-chaos", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*task.Spec, 0, producers+1)
	for i := 1; i <= producers; i++ {
		specs = append(specs, dpSpec(fmt.Sprintf("p%d", i), "dp.Produce"))
	}
	cons := dpSpec("cons", "dp.Consume", intP(producers))
	for i := 1; i <= producers; i++ {
		cons.DependsOn = append(cons.DependsOn, fmt.Sprintf("p%d", i))
	}
	specs = append(specs, cons)
	placements, err := j.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The victim must host at least one producer and neither the
	// JobManager (failover is the next test's concern) nor the consumer.
	victim := ""
	for i := 1; i <= producers; i++ {
		node := placements[fmt.Sprintf("p%d", i)]
		if node != "node1" && node != placements["cons"] {
			victim = node
			break
		}
	}
	if victim == "" {
		t.Fatalf("no killable producer node: %v", placements)
	}

	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for every producer to complete (their adverts are published);
	// the consumer is parked in Recv waiting for the go signal.
	deadline := time.Now().Add(20 * time.Second)
	for j.Progress().Completed < producers {
		if time.Now().After(deadline) {
			t.Fatalf("producers never completed: %+v", j.Progress())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	// Release the consumer immediately — its fetches race well ahead of
	// the dead node's lease expiry, so the stale-hint path must carry the
	// recovery, not the heartbeat monitor.
	if err := j.SendMessage("cons", []byte("go")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after producer node kill: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of recovering: %+v", res)
	}
	ok := false
	for {
		from, data, more, err := j.TryGetMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if from == "cons" && string(data) == "ok" {
			ok = true
		}
	}
	if !ok {
		t.Error("consumer never verified the recovered payloads")
	}
	if got := j.Progress().Retried; got == 0 {
		t.Error("no TASK_RETRIED events: lost producers were not re-run")
	}
	t.Logf("killed %s; retries=%d", victim, j.Progress().Retried)
}

// TestDataplaneFailoverResolveAfterAdoption kills the JobManager after the
// producers published and before the consumer resolves. The adopter must
// answer the consumer's resolves from the checkpointed location table — and
// re-run producers whose outputs died with the origin node (the origin's
// TaskManager was serving them).
func TestDataplaneFailoverResolveAfterAdoption(t *testing.T) {
	const producers = 3
	c, err := cluster.Start(failoverConfig(4, dataplaneRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "dp-failover", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*task.Spec, 0, producers+1)
	for i := 1; i <= producers; i++ {
		specs = append(specs, dpSpec(fmt.Sprintf("p%d", i), "dp.Produce"))
	}
	cons := dpSpec("cons", "dp.Consume", intP(producers))
	for i := 1; i <= producers; i++ {
		cons.DependsOn = append(cons.DependsOn, fmt.Sprintf("p%d", i))
	}
	specs = append(specs, cons)
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for j.Progress().Completed < producers {
		if time.Now().After(deadline) {
			t.Fatalf("producers never completed: %+v", j.Progress())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let a checkpoint tick replicate the location table, then cut the
	// manager while the consumer is parked in Recv.
	time.Sleep(100 * time.Millisecond)
	if err := c.KillNode("node1"); err != nil {
		t.Fatal(err)
	}
	// Wait for a survivor to adopt the job, then release the consumer; its
	// resolves land at the adopter.
	adopted := false
	for time.Now().Before(deadline) {
		if _, ok := c.Server("node2").JobManager().JobProgress(j.ID); ok {
			adopted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !adopted {
		t.Fatal("no survivor adopted the job")
	}
	for time.Now().Before(deadline) {
		if err := j.SendMessage("cons", []byte("go")); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after JobManager death: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of being adopted: %+v", res)
	}
	ok := false
	for {
		from, data, more, err := j.TryGetMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if from == "cons" && string(data) == "ok" {
			ok = true
		}
	}
	if !ok {
		t.Error("consumer never verified the payloads after adoption")
	}
	t.Logf("adopted by %s; retries=%d", j.Manager(), j.Progress().Retried)
}
