package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/archive"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
)

// TestChaosRecoveryPrefersArchiveWarmNode is the locality scorer's chaos
// acceptance test: when a task's node is power-cut, recovery re-placement
// must land on the surviving node that already holds the job's archive in
// its blob cache — chosen over colder nodes with identical capacity — and
// the archive must not travel the wire again. The warm node is picked with
// the HIGHEST node name among the survivors, so a win can only be
// explained by the resident-digest score, never by the name tie-break.
func TestChaosRecoveryPrefersArchiveWarmNode(t *testing.T) {
	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          4,
		MemoryMB:       64000,
		Registry:       chaosRegistry(),
		MaxTaskRetries: 3,
		// Disable offer caching so the recovery round solicits fresh
		// offers — the cached pre-kill round predates the warm seeding
		// below and would advertise every survivor as cold.
		PlacementTTL: -1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ar, err := archive.NewBuilder("warm.jar", "chaos.Hang").
		AddFile("payload.bin", make([]byte, 64<<10)).Build()
	if err != nil {
		t.Fatal(err)
	}

	// Host the job away from the likely placement target so the victim is
	// never the JobManager's node.
	j, err := cl.CreateJobOn("node2", "warmth", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	spec := &task.Spec{
		Name: "h0", Class: "chaos.Hang", Archive: ar.Name,
		Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
	}
	placements, err := j.CreateTasks([]*task.Spec{spec},
		map[string]*archive.Archive{ar.Name: ar})
	if err != nil {
		t.Fatal(err)
	}
	victim := placements["h0"]
	if victim == "" {
		t.Fatalf("task unplaced: %v", placements)
	}
	if victim == "node2" {
		t.Fatalf("task landed on the JobManager node; cannot kill it: %v", placements)
	}

	// Pre-seed the archive on the survivor with the highest name; every
	// other survivor stays cold.
	warm := ""
	for _, n := range []string{"node1", "node3", "node4"} {
		if n != victim && n > warm {
			warm = n
		}
	}
	if err := c.Server(warm).TaskManager().BlobCache().Put(ar); err != nil {
		t.Fatal(err)
	}

	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	// The victim's cache (and its transfer count) left the aggregate with
	// it; any growth from here means the archive crossed the wire again.
	transfersAfterKill := c.BlobTransfers()

	deadline := time.Now().Add(15 * time.Second)
	for j.Progress().Retried == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no TASK_RETRIED event after node kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for c.Server(warm).TaskManager().RunningTasks() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("re-placed task never ran on warm node %s", warm)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range []string{"node1", "node3", "node4"} {
		if n == victim || n == warm {
			continue
		}
		if got := c.Server(n).TaskManager().RunningTasks(); got != 0 {
			t.Errorf("cold node %s runs %d tasks; re-placement ignored warmth", n, got)
		}
	}
	if got := c.BlobTransfers(); got != transfersAfterKill {
		t.Errorf("archive re-shipped during recovery: transfers %d -> %d", transfersAfterKill, got)
	}
	if ps := c.PlacementStats(); ps.WarmHits == 0 {
		t.Errorf("placement stats recorded no warm hit: %+v", ps)
	}
	if err := j.Cancel(fmt.Sprintf("locality test done; recovered on %s", warm)); err != nil {
		t.Fatal(err)
	}
}
