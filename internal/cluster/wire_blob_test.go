package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/archive"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/wire"
)

// bigArchive builds an archive whose serialized size exceeds the transport
// frame limit, so it can only travel chunked. The payload is pseudo-random
// (incompressible) to defeat zip deflate.
func bigArchive(t *testing.T, class string) *archive.Archive {
	t.Helper()
	payload := make([]byte, wire.MaxFrameBytes+wire.MaxFrameBytes/4)
	rand.New(rand.NewSource(7)).Read(payload)
	ar, err := archive.NewBuilder("big.jar", class).AddFile("model.bin", payload).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Bytes()) <= wire.MaxFrameBytes {
		t.Fatalf("archive is %d bytes, need > MaxFrameBytes %d", len(ar.Bytes()), wire.MaxFrameBytes)
	}
	return ar
}

// TestTCPMultiChunkArchiveDistributesAndRecovers is the blob-streaming
// acceptance test: an archive larger than MaxFrameBytes is uploaded to the
// JobManager chunk by chunk, distributed to TaskManagers via chunked
// digest pulls, digest-verified, and executed — on a real-socket TCP
// cluster. A worker is then power-cut mid-job and the re-placed tasks
// re-fetch the same multi-chunk blob on a surviving node.
func TestTCPMultiChunkArchiveDistributesAndRecovers(t *testing.T) {
	const class = "wire.BigWork"
	reg := task.NewRegistry()
	reg.MustRegister(class, func() task.Task {
		return task.Func(func(ctx task.Context) error {
			deadline := time.Now().Add(40 * time.Millisecond)
			for time.Now().Before(deadline) {
				if ctx.Done() {
					return task.ErrStopped
				}
				time.Sleep(2 * time.Millisecond)
			}
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})

	c, err := cluster.Start(fastHealth(cluster.Config{
		Nodes:          4,
		Transport:      cluster.TransportTCP,
		MemoryMB:       64000,
		Registry:       reg,
		MaxTaskRetries: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ar := bigArchive(t, class)
	j, err := cl.CreateJobOn("node1", "bigblob", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 8
	specs := make([]*task.Spec, tasks)
	for i := range specs {
		specs[i] = &task.Spec{
			Name: fmt.Sprintf("b%02d", i), Class: class, Archive: ar.Name,
			Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
		}
	}
	placements, err := j.CreateTasks(specs, map[string]*archive.Archive{ar.Name: ar})
	if err != nil {
		t.Fatalf("multi-chunk archive admission failed: %v", err)
	}
	if got := c.BlobTransfers(); got == 0 {
		t.Fatal("no blob transfers recorded; archive never reached a TaskManager")
	}
	// Every chosen node digest-verified the reassembled archive into its
	// cache.
	for _, node := range placements {
		if srv := c.Server(node); srv != nil && !srv.TaskManager().BlobCache().Has(ar.Digest()) {
			t.Errorf("node %s lacks blob %.12s… after assignment", node, ar.Digest())
		}
	}

	victim := ""
	for _, node := range placements {
		if node != "node1" {
			victim = node
			break
		}
	}
	if victim == "" {
		t.Skip("all tasks placed on the JobManager node; no victim to kill")
	}

	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after node kill: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of recovering: %+v", res)
	}
	seen := make(map[string]bool)
	for {
		from, _, ok, err := j.TryGetMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[from] = true
	}
	for i := 0; i < tasks; i++ {
		if name := fmt.Sprintf("b%02d", i); !seen[name] {
			t.Errorf("no result from task %s", name)
		}
	}
	t.Logf("archive %d bytes (> %d frame limit), killed %s, retries=%d",
		len(ar.Bytes()), wire.MaxFrameBytes, victim, j.Progress().Retried)
}

// TestTCPManySmallArchivesAggregateOverFrameLimit: individually-inlineable
// archives whose AGGREGATE exceeds MaxFrameBytes must still admit — the
// inline budget is per message, not per blob, so the overflow is
// chunk-streamed on upload and announced by size on fetch.
func TestTCPManySmallArchivesAggregateOverFrameLimit(t *testing.T) {
	const class = "wire.SmallWork"
	reg := task.NewRegistry()
	reg.MustRegister(class, func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	c, err := cluster.Start(cluster.Config{
		Nodes:     3,
		Transport: cluster.TransportTCP,
		MemoryMB:  64000,
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// 12 distinct ~100 KiB incompressible archives: each under
	// MaxInlineBlob, together well past MaxFrameBytes.
	const n = 12
	rng := rand.New(rand.NewSource(11))
	archives := make(map[string]*archive.Archive, n)
	specs := make([]*task.Spec, n)
	total := 0
	for i := 0; i < n; i++ {
		payload := make([]byte, 100<<10)
		rng.Read(payload)
		name := fmt.Sprintf("small%02d.jar", i)
		ar, err := archive.NewBuilder(name, class).AddFile("data.bin", payload).Build()
		if err != nil {
			t.Fatal(err)
		}
		archives[name] = ar
		total += len(ar.Bytes())
		specs[i] = &task.Spec{
			Name: fmt.Sprintf("s%02d", i), Class: class, Archive: name,
			Req: task.Requirements{MemoryMB: 10, RunModel: task.RunAsThreadInTM},
		}
	}
	if total <= wire.MaxFrameBytes {
		t.Fatalf("aggregate archives %d bytes, need > MaxFrameBytes %d", total, wire.MaxFrameBytes)
	}

	j, err := cl.CreateJobOn("node1", "manysmall", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	placements, err := j.CreateTasks(specs, archives)
	if err != nil {
		t.Fatalf("aggregate-over-limit admission failed: %v", err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		node := placements[name]
		if node == "" {
			t.Fatalf("task %s unplaced: %v", name, placements)
		}
		ar := archives[fmt.Sprintf("small%02d.jar", i)]
		if !c.Server(node).TaskManager().BlobCache().Has(ar.Digest()) {
			t.Errorf("node %s lacks blob for %s", node, name)
		}
	}
	if err := j.Cancel("aggregate admission test done"); err != nil {
		t.Fatal(err)
	}
}

// TestWireStatsObservable: the cluster-level wire snapshot must reflect
// real traffic — non-zero bytes and per-kind counters — on the TCP fabric.
func TestWireStatsObservable(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Nodes: 2, Transport: cluster.TransportTCP, Registry: task.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Discover(protocol.JobRequirements{}); err != nil {
		t.Fatal(err)
	}
	snap := c.WireStats()
	if snap.Sent == 0 || snap.BytesSent == 0 {
		t.Errorf("no traffic accounted: %+v", snap)
	}
	if snap.ByKind["JM_SOLICIT"] == 0 {
		t.Errorf("discovery solicitation not counted by kind: %v", snap.ByKind)
	}
}
