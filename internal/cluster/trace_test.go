package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/workloads"
)

// traceClient builds an api client whose own tracer always samples, so
// every submitted job gets a client-born "job.submit" root span.
func traceClient(t *testing.T, c *cluster.Cluster) *api.Client {
	t.Helper()
	cl, err := api.Initialize(c.Network(), api.Options{
		DiscoveryWindow: 20 * time.Millisecond,
		Tracer:          trace.New(trace.Config{Node: "client", Sample: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// spanIndex maps span IDs and names for assertion convenience.
type spanIndex struct {
	byID   map[uint64]trace.Span
	byName map[string][]trace.Span
}

func indexSpans(spans []trace.Span) spanIndex {
	ix := spanIndex{
		byID:   make(map[uint64]trace.Span, len(spans)),
		byName: make(map[string][]trace.Span, len(spans)),
	}
	for _, s := range spans {
		ix.byID[s.ID] = s
		ix.byName[s.Name] = append(ix.byName[s.Name], s)
	}
	return ix
}

// root returns the trace's single root span (Parent == 0) and fails the
// test if there is not exactly one.
func (ix spanIndex) root(t *testing.T) trace.Span {
	t.Helper()
	var roots []trace.Span
	for _, s := range ix.byID {
		if s.Parent == 0 {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("trace has %d roots, want exactly 1: %+v", len(roots), roots)
	}
	return roots[0]
}

// TestTraceWordCountConnectedTree is the tracing tentpole's acceptance
// test: a 4-node map/reduce job (word count over the TM-to-TM data
// plane) sampled at 1.0 yields ONE connected span tree — client submit,
// JM scheduling, every task execution, and every shuffle Put/Get all
// share the client root's trace ID and parent into spans present in the
// capture.
func TestTraceWordCountConnectedTree(t *testing.T) {
	reg := task.NewRegistry()
	workloads.MustRegister(reg)
	c, err := cluster.Start(cluster.Config{
		Nodes:       4,
		MemoryMB:    16000,
		Registry:    reg,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl := traceClient(t, c)

	const mappers = 4
	specs, err := workloads.WordCountSpecs(mappers)
	if err != nil {
		t.Fatal(err)
	}
	j, err := cl.CreateJobOn("node1", "wordcount", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	const text = "the quick brown fox\njumps over the lazy dog\nthe dog barks\nthe fox runs"
	if err := j.SendMessage("split", []byte(text)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("wordcount failed: %+v", res)
	}

	// Terminal task events (carrying the TMs' spans) race the client's
	// completion notification by a beat; poll until the tree closes.
	wantExec := []string{"split", "reduce"}
	for m := 1; m <= mappers; m++ {
		wantExec = append(wantExec, fmt.Sprintf("map%d", m))
	}
	deadline := time.Now().Add(5 * time.Second)
	var lastErr string
	for {
		spans, ok := c.JobTrace(j.ID)
		if lastErr = checkConnectedTree(spans, ok, wantExec); lastErr == "" {
			t.Logf("connected trace: %d spans", len(spans))
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never converged to one connected tree: %s", lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkConnectedTree validates the acceptance shape: one root, one trace
// ID, every parent resolvable, an exec span per task, and shuffle spans
// from the data plane. Returns "" when the capture satisfies all of it.
func checkConnectedTree(spans []trace.Span, ok bool, wantExec []string) string {
	if !ok {
		return "no JobManager holds the job's trace"
	}
	if len(spans) == 0 {
		return "trace is empty"
	}
	ix := indexSpans(spans)
	var root trace.Span
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			root, roots = s, roots+1
		}
	}
	if roots != 1 {
		return fmt.Sprintf("%d roots, want 1", roots)
	}
	if root.Name != "job.submit" || root.Node != "client" {
		return fmt.Sprintf("root = %s@%s, want job.submit@client", root.Name, root.Node)
	}
	if root.Trace == 0 {
		return "root has zero trace ID"
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			return fmt.Sprintf("span %s@%s has trace %x, want %x", s.Name, s.Node, s.Trace, root.Trace)
		}
		if s.Parent != 0 {
			if _, found := ix.byID[s.Parent]; !found {
				return fmt.Sprintf("span %s(%s)@%s orphaned: parent %x not captured", s.Name, s.Task, s.Node, s.Parent)
			}
		}
	}
	execs := make(map[string]bool)
	for _, s := range ix.byName["tm.exec"] {
		execs[s.Task] = true
	}
	for _, name := range wantExec {
		if !execs[name] {
			return fmt.Sprintf("no tm.exec span for task %s (have %v)", name, execs)
		}
	}
	if len(ix.byName["tm.shuffle.put"]) == 0 || len(ix.byName["tm.shuffle.get"]) == 0 {
		return fmt.Sprintf("missing shuffle spans: %d puts, %d gets",
			len(ix.byName["tm.shuffle.put"]), len(ix.byName["tm.shuffle.get"]))
	}
	return ""
}

// TestTraceSurvivesJMFailover kills a traced job's JobManager mid-run
// and asserts the adopter's assembled timeline still tells one story:
// the pre-failover spans recorded on the dead origin (restored from the
// replicated checkpoint) sit alongside the adopter's own spans, all in
// one trace, with the adoption span parented under the original
// client-born root.
func TestTraceSurvivesJMFailover(t *testing.T) {
	cfg := failoverConfig(4, failoverRegistry())
	cfg.TraceSample = 1
	c, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl := traceClient(t, c)

	j, err := cl.CreateJobOn("node1", "trace-failover", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 16
	specs := make([]*task.Spec, tasks)
	for i := range specs {
		specs[i] = chaosSpec(fmt.Sprintf("w%02d", i), "failover.Work", 100)
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	// Two checkpoint ticks replicate the schedule (and its spans), then
	// the origin dies mid-job.
	time.Sleep(50 * time.Millisecond)
	if err := c.KillNode("node1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not finish after its JobManager died: %v", err)
	}
	if res.Failed {
		t.Fatalf("job failed instead of being adopted: %+v", res)
	}
	if got := j.Manager(); got != "node2" {
		t.Fatalf("job manager after failover = %s, want node2", got)
	}

	spans, ok := c.JobTrace(j.ID)
	if !ok {
		t.Fatal("adopter does not expose the job's trace")
	}
	ix := indexSpans(spans)
	root := ix.root(t)
	if root.Name != "job.submit" || root.Node != "client" {
		t.Fatalf("root = %s@%s, want the client's job.submit", root.Name, root.Node)
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Fatalf("span %s@%s trace = %x, want %x (one trace across failover)",
				s.Name, s.Node, s.Trace, root.Trace)
		}
	}

	// Pre-failover spans recorded by the dead origin survived adoption.
	for _, name := range []string{"jm.create", "jm.place", "jm.start"} {
		found := false
		for _, s := range ix.byName[name] {
			if s.Node == "node1" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pre-failover span %s@node1 missing from adopted timeline", name)
		}
	}

	// The adoption itself was traced by the survivor, parented under the
	// restored client root — new spans join the old tree, not a new one.
	adopted := false
	for _, s := range ix.byName["jm.adopt"] {
		if s.Node == "node2" {
			adopted = true
			if s.Parent != root.ID {
				t.Errorf("jm.adopt parent = %x, want root %x", s.Parent, root.ID)
			}
		}
	}
	if !adopted {
		t.Error("no jm.adopt span from node2 in the adopted timeline")
	}
	finished := false
	for _, s := range ix.byName["jm.finish"] {
		if s.Node == "node2" && s.Parent == root.ID {
			finished = true
		}
	}
	if !finished {
		t.Error("no jm.finish span from the adopter parented under the original root")
	}
	t.Logf("adopted trace: %d spans, root %x", len(spans), root.Trace)
}
