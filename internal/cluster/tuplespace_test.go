package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/tuplespace"
)

// tsRegistry deploys the tuple-space workloads.
func tsRegistry() *task.Registry {
	r := task.NewRegistry()
	// ts.Worker is a replicated bag-of-tasks worker: steal ("work", v),
	// answer ("done", v); negative v is the poison pill.
	r.MustRegister("ts.Worker", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			for {
				t, err := ctx.In(tuplespace.Template{"work", tuplespace.TypeOf(0)})
				if errors.Is(err, tuplespace.ErrClosed) {
					return nil
				}
				if err != nil {
					return err
				}
				v := t[1].(int)
				if v < 0 {
					return nil
				}
				if err := ctx.Out(tuplespace.Tuple{"done", v}); err != nil {
					return err
				}
			}
		})
	})
	return r
}

func tsSpec(name string) *task.Spec {
	return &task.Spec{
		Name: name, Class: "ts.Worker",
		Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
	}
}

// TestTuplespaceBagOfTasksEndToEnd runs a multi-node replicated-worker job
// that coordinates solely via tuple-space operations over the wire: the
// client seeds the bag and drains results through Job.Space, workers steal
// with blocking In, the JobManager's ts_ops census counts the traffic, and
// the space closes with the job.
func TestTuplespaceBagOfTasksEndToEnd(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Nodes: 4, MemoryMB: 64000, Registry: tsRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "bag", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, items = 3, 24
	specs := make([]*task.Spec, workers)
	for i := range specs {
		specs[i] = tsSpec(fmt.Sprintf("w%d", i))
	}
	placements, err := j.CreateTasks(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nodes := len(map[string]bool{placements["w0"]: true, placements["w1"]: true, placements["w2"]: true}); nodes < 2 {
		t.Fatalf("workers all on one node (%v); want a multi-node spread", placements)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}

	space := j.Space()
	for i := 0; i < items; i++ {
		if err := space.Out(tuplespace.Tuple{"work", i}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	seen := make(map[int]bool)
	for i := 0; i < items; i++ {
		tu, err := space.In(ctx, tuplespace.Template{"done", tuplespace.TypeOf(0)})
		if err != nil {
			t.Fatalf("drained %d of %d: %v", len(seen), items, err)
		}
		v := tu[1].(int)
		if seen[v] {
			t.Fatalf("result %d delivered twice", v)
		}
		seen[v] = true
	}

	// The non-blocking probes see an empty (but open) bag.
	if _, err := space.InP(tuplespace.Template{"done", tuplespace.Wildcard}); !errors.Is(err, tuplespace.ErrNoMatch) {
		t.Errorf("probe on drained bag: %v, want ErrNoMatch", err)
	}

	for i := 0; i < workers; i++ {
		if err := space.Out(tuplespace.Tuple{"work", -1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("job failed: %+v", res)
	}

	// Census: every op above crossed the wire and was counted.
	prog, ok := c.JobProgress("node1", j.ID)
	if !ok {
		t.Fatal("no job census")
	}
	// items Out + items In (client) + items In + items Out (workers) +
	// poison Outs/Ins + the failed probe (NoMatch counts: it completed).
	if want := 4*items + 2*workers; prog.TSOps < want {
		t.Errorf("ts_ops = %d, want >= %d", prog.TSOps, want)
	}

	// Terminal job: the space is closed, operations fail with ErrClosed.
	if err := space.Out(tuplespace.Tuple{"late"}); !errors.Is(err, tuplespace.ErrClosed) {
		t.Errorf("out after job end: %v, want ErrClosed", err)
	}
	if _, err := space.In(ctx, tuplespace.Template{"done", tuplespace.Wildcard}); !errors.Is(err, tuplespace.ErrClosed) {
		t.Errorf("in after job end: %v, want ErrClosed", err)
	}
}

// TestTuplespaceBlockedRdWokenByOut: Rd parks server-side and a single Out
// wakes every matching reader without consuming the tuple.
func TestTuplespaceBlockedRdWokenByOut(t *testing.T) {
	reg := task.NewRegistry()
	reg.MustRegister("ts.Reader", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			// Park first; the signal is Out'd only after all readers run.
			t, err := ctx.Rd(tuplespace.Template{"signal", tuplespace.TypeOf(0)})
			if err != nil {
				return err
			}
			if err := ctx.Out(tuplespace.Tuple{"saw", ctx.TaskName(), t[1].(int)}); err != nil {
				return err
			}
			// Hold the job — and with it the space — open until the client
			// drained every answer.
			_, err = ctx.Rd(tuplespace.Template{"ack"})
			return err
		})
	})
	c, err := cluster.Start(cluster.Config{Nodes: 3, MemoryMB: 64000, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "readers", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 3
	specs := make([]*task.Spec, readers)
	for i := range specs {
		specs[i] = &task.Spec{Name: fmt.Sprintf("r%d", i), Class: "ts.Reader",
			Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM}}
	}
	if _, err := j.CreateTasks(specs, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the readers a moment to park, then fire one signal.
	time.Sleep(50 * time.Millisecond)
	space := j.Space()
	if err := space.Out(tuplespace.Tuple{"signal", 42}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	woken := make(map[string]bool)
	for i := 0; i < readers; i++ {
		tu, err := space.In(ctx, tuplespace.Template{"saw", tuplespace.TypeOf(""), 42})
		if err != nil {
			t.Fatalf("woke %d of %d readers: %v", len(woken), readers, err)
		}
		woken[tu[1].(string)] = true
	}
	if len(woken) != readers {
		t.Errorf("woken readers = %v, want all %d", woken, readers)
	}
	if err := space.Out(tuplespace.Tuple{"ack"}); err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestTuplespaceCancelledInDoesNotEatTuples: a client In abandoned by
// context cancellation sends TS_CANCEL, so its server-side park is
// unparked and a tuple Out'd afterwards stays in the space for live
// consumers instead of being destructively taken for a correlation
// nobody holds.
func TestTuplespaceCancelledInDoesNotEatTuples(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Nodes: 2, MemoryMB: 64000, Registry: tsRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	j, err := cl.CreateJobOn("node1", "cancelled-in", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks([]*task.Spec{tsSpec("w0")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	space := j.Space()

	// Park an In for a tuple shape the worker never touches, then give up.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := space.In(ctx, tuplespace.Template{"private", tuplespace.TypeOf(0)}); err == nil {
		t.Fatal("cancelled In returned a tuple")
	}
	// Let the TS_CANCEL land and the park unwind before publishing.
	time.Sleep(100 * time.Millisecond)

	if err := space.Out(tuplespace.Tuple{"private", 7}); err != nil {
		t.Fatal(err)
	}
	tu, err := space.InP(tuplespace.Template{"private", 7})
	if err != nil {
		t.Fatalf("tuple eaten by the abandoned park: %v", err)
	}
	if tu[1].(int) != 7 {
		t.Fatalf("got %v", tu)
	}

	if err := space.Out(tuplespace.Tuple{"work", -1}); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if res, err := j.Wait(wctx); err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
