package jobstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func walPut(t *testing.T, w *WAL, id string, seq int64) {
	t.Helper()
	if err := w.Put(&PersistedJob{ID: id, Seq: seq, Sub: Submission{Format: FormatCNX, Body: []byte("doc")}, State: StateQueued}); err != nil {
		t.Fatal(err)
	}
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func loadIDs(t *testing.T, w *WAL) []string {
	t.Helper()
	pjs, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(pjs))
	for i, pj := range pjs {
		ids[i] = pj.ID
	}
	return ids
}

// TestWALTornTailTruncatedOnReopen simulates a crash mid-append: the file
// ends in a record that was only partially written. Reopen must keep every
// record before the tear, truncate the tail, and leave the log appendable
// on a clean boundary.
func TestWALTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	walPut(t, w, "job-1", 1)
	walPut(t, w, "job-2", 2)
	good := walSize(t, dir)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn append: a plausible length header followed by half a payload
	// and no CRC.
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.AppendUvarint(nil, 64)
	torn = append(torn, []byte{recPut, 0x03, 'j', 'o', 'b'}...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if ids := loadIDs(t, w2); len(ids) != 2 || ids[0] != "job-1" || ids[1] != "job-2" {
		t.Fatalf("replayed ids = %v, want [job-1 job-2]", ids)
	}
	if got := walSize(t, dir); got != good {
		t.Errorf("wal size after reopen = %d, want truncated to %d", got, good)
	}
	// The log must accept appends on the repaired boundary.
	walPut(t, w2, "job-3", 3)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if ids := loadIDs(t, w3); len(ids) != 3 || ids[2] != "job-3" {
		t.Fatalf("ids after post-repair append = %v", ids)
	}
}

// TestWALCorruptTailRecordDropped flips a byte inside the final record:
// the CRC rejects it, replay keeps the intact prefix, and the file is
// truncated at the last good record.
func TestWALCorruptTailRecordDropped(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	walPut(t, w, "job-1", 1)
	walPut(t, w, "job-2", 2)
	good := walSize(t, dir)
	walPut(t, w, "job-3", 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[good+3] ^= 0xff // inside job-3's record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen after corrupt record: %v", err)
	}
	defer w2.Close()
	if ids := loadIDs(t, w2); len(ids) != 2 || ids[1] != "job-2" {
		t.Fatalf("replayed ids = %v, want [job-1 job-2]", ids)
	}
	if got := walSize(t, dir); got != good {
		t.Errorf("wal size = %d, want %d", got, good)
	}
}

// TestWALBadMagicRefused: a directory holding some other file format must
// fail loudly rather than be silently truncated to nothing.
func TestWALBadMagicRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFileName), []byte("NOTAWAL-data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("OpenWAL accepted a file with foreign magic")
	}
}

// TestWALOversizedPayloadRefused: both the append path and the replay
// path enforce MaxWALRecordBytes, so no input drives an outsized
// allocation.
func TestWALOversizedPayloadRefused(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := &PersistedJob{ID: "job-big", Seq: 1, Sub: Submission{Format: FormatCNX, Body: make([]byte, MaxWALRecordBytes+1)}, State: StateQueued}
	if err := w.Put(big); err == nil {
		t.Fatal("Put accepted a payload over MaxWALRecordBytes")
	}

	// Replay side: a header announcing an enormous payload is corruption,
	// not an allocation request.
	live := make(map[string]*PersistedJob)
	data := append(append([]byte{}, walMagic...), binary.AppendUvarint(nil, MaxWALRecordBytes+1)...)
	if _, err := replayStream(data, walMagic, live); err == nil {
		t.Fatal("replayStream accepted an oversized length header")
	}
	if len(live) != 0 {
		t.Fatalf("live set polluted: %v", live)
	}
}

// FuzzWALReplay holds the replay parser to the WAL's safety contract:
// arbitrary bytes — truncated, corrupted, or outright hostile — must
// produce a clean error or a valid prefix, never a panic, and never an
// allocation driven by a corrupted length field.
func FuzzWALReplay(f *testing.F) {
	// Seed with real on-disk images: a log with puts and a delete, its
	// compacted snapshot, and damaged variants.
	dir := f.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i, id := range []string{"job-1", "job-2", "job-3"} {
		if err := w.Put(&PersistedJob{ID: id, Seq: int64(i + 1), Sub: Submission{Format: FormatCNX, Body: []byte("body"), Label: "seed"}, State: StateRunning}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Delete("job-2"); err != nil {
		f.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		f.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapFileName))
	if err != nil {
		f.Fatal(err)
	}
	w.Close()

	f.Add([]byte{})
	f.Add(append([]byte{}, walMagic...))
	f.Add(logBytes)
	f.Add(snapBytes)
	f.Add(logBytes[:len(logBytes)-3]) // torn tail
	corrupt := append([]byte{}, logBytes...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Add(append(append([]byte{}, walMagic...), 0xff, 0xff, 0xff, 0xff, 0xff)) // hostile length

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, magic := range [][]byte{walMagic, snapMagic} {
			live := make(map[string]*PersistedJob)
			off, err := replayStream(b, magic, live)
			if off < 0 || off > int64(len(b)) {
				t.Fatalf("offset %d outside input of %d bytes", off, len(b))
			}
			if err == nil && off != int64(len(b)) {
				t.Fatalf("clean replay stopped at %d of %d bytes", off, len(b))
			}
			// Every replayed job must satisfy the decoder's own invariants.
			for id, pj := range live {
				if id == "" || pj.ID != id {
					t.Fatalf("invalid replayed job %q -> %+v", id, pj)
				}
				if _, err := ParseState(string(pj.State)); err != nil {
					t.Fatalf("replayed job %s carries invalid state %q", id, pj.State)
				}
			}
		}
	})
}
