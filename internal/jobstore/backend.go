// Backend is the jobstore's pluggable persistence seam. The store itself
// stays the in-memory system of record; a configured backend additionally
// receives every job mutation so queued and running submissions survive a
// portal crash. Two implementations ship: MemBackend (the previous,
// non-durable behavior behind the same seam — useful for tests and as the
// explicit "no durability" choice) and WAL (append-only log + snapshot,
// see wal.go).
package jobstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cn/internal/wire"
)

// PersistedJob is the durable image of one job: everything needed to
// re-serve a terminal record or re-run an interrupted submission after a
// restart. The in-memory result value (ExecFunc's return) is deliberately
// NOT persisted — results are arbitrary Go values; a replayed non-terminal
// job re-executes and rebuilds its result, while a replayed terminal job
// serves its record without one.
type PersistedJob struct {
	ID  string
	Seq int64
	Sub Submission
	// State is the job's lifecycle state as of the write. Non-terminal
	// states replay as StateQueued: an interrupted job re-runs.
	State State
	// Timestamps in Unix nanoseconds (zero = unset).
	SubmittedAt int64
	StartedAt   int64
	FinishedAt  int64
	// Durations in nanoseconds.
	QueueWaitNS int64
	RunNS       int64
	Error       string
}

// clone returns a deep copy (the submission body is shared; it is
// immutable by contract).
func (pj *PersistedJob) clone() *PersistedJob {
	c := *pj
	return &c
}

// Backend persists job records. Implementations must be safe for
// concurrent use; the store calls Put/Delete under its own locks, so
// implementations must never call back into the store.
type Backend interface {
	// Load returns every persisted job, in any order. The store calls it
	// exactly once, before accepting submissions.
	Load() ([]*PersistedJob, error)
	// Put durably records the job's current state (insert or overwrite).
	Put(pj *PersistedJob) error
	// Delete durably forgets a job (TTL eviction or explicit record
	// deletion), so replay cannot resurrect it.
	Delete(id string) error
	// Close releases backend resources. The store does NOT call Close —
	// the caller that opened the backend owns its lifetime (a crash test
	// closes the backend out from under a live store on purpose).
	Close() error
}

// MemBackend is the trivial in-memory Backend: the store's previous
// non-durable behavior expressed through the persistence seam. A portal
// restart loses everything, by choice.
type MemBackend struct {
	mu   sync.Mutex
	jobs map[string]*PersistedJob
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{jobs: make(map[string]*PersistedJob)}
}

// Load implements Backend.
func (b *MemBackend) Load() ([]*PersistedJob, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*PersistedJob, 0, len(b.jobs))
	for _, pj := range b.jobs {
		out = append(out, pj.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Put implements Backend.
func (b *MemBackend) Put(pj *PersistedJob) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.jobs[pj.ID] = pj.clone()
	return nil
}

// Delete implements Backend.
func (b *MemBackend) Delete(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.jobs, id)
	return nil
}

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }

// appendPersistedJob encodes pj with the wire codec's primitives.
func appendPersistedJob(dst []byte, pj *PersistedJob) []byte {
	dst = wire.AppendString(dst, pj.ID)
	dst = wire.AppendVarint(dst, pj.Seq)
	dst = wire.AppendString(dst, pj.Sub.Format)
	dst = wire.AppendBytes(dst, pj.Sub.Body)
	dst = wire.AppendVarint(dst, int64(pj.Sub.Invocations))
	dst = wire.AppendString(dst, pj.Sub.Label)
	dst = wire.AppendString(dst, string(pj.State))
	dst = wire.AppendVarint(dst, pj.SubmittedAt)
	dst = wire.AppendVarint(dst, pj.StartedAt)
	dst = wire.AppendVarint(dst, pj.FinishedAt)
	dst = wire.AppendVarint(dst, pj.QueueWaitNS)
	dst = wire.AppendVarint(dst, pj.RunNS)
	dst = wire.AppendString(dst, pj.Error)
	return dst
}

// decodePersistedJob decodes one record body. Every field is
// bounds-checked by the wire reader; the state name is validated so a
// CRC-colliding corruption cannot smuggle an invalid lifecycle state into
// the store. The submission body is copied out of the input buffer (the
// WAL reuses its read buffer).
func decodePersistedJob(r *wire.Reader) (*PersistedJob, error) {
	pj := &PersistedJob{}
	var err error
	if pj.ID, err = r.String(); err != nil {
		return nil, err
	}
	if pj.ID == "" {
		return nil, fmt.Errorf("jobstore: persisted job with empty id")
	}
	if pj.Seq, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.Sub.Format, err = r.String(); err != nil {
		return nil, err
	}
	body, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		pj.Sub.Body = append([]byte(nil), body...)
	}
	if pj.Sub.Invocations, err = r.Int(); err != nil {
		return nil, err
	}
	if pj.Sub.Label, err = r.String(); err != nil {
		return nil, err
	}
	stateName, err := r.String()
	if err != nil {
		return nil, err
	}
	if pj.State, err = ParseState(stateName); err != nil {
		return nil, err
	}
	if pj.SubmittedAt, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.StartedAt, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.FinishedAt, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.QueueWaitNS, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.RunNS, err = r.Varint(); err != nil {
		return nil, err
	}
	if pj.Error, err = r.String(); err != nil {
		return nil, err
	}
	return pj, nil
}

// unixTime converts persisted Unix nanoseconds back to a time.Time,
// preserving the zero value.
func unixTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// unixNano converts a time.Time to persisted Unix nanoseconds,
// preserving the zero value.
func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}
