package jobstore_test

import (
	"context"
	"testing"
	"time"

	"cn/internal/jobstore"
)

// openWAL opens a WAL backend in dir and fails the test on error. Tests
// that do not measure durability itself disable fsync for speed.
func openWAL(t *testing.T, dir string, opts jobstore.WALOptions) *jobstore.WAL {
	t.Helper()
	w, err := jobstore.OpenWAL(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCrashRestartReplaysInterruptedJobs is the durability acceptance
// test at store level: jobs that were queued or running when the process
// died re-enter the queue on the next boot and re-run to completion,
// while already-terminal records come back exactly as they finished. The
// "crash" closes the WAL out from under the live store — exactly the
// power-cut image: every fsynced record survives, everything after
// (including the graceful-close abort transitions) is lost.
func TestCrashRestartReplaysInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir, jobstore.WALOptions{})

	release := make(chan struct{})
	s1, err := jobstore.New(jobstore.Config{
		Workers: 1,
		Backend: wal,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			if string(j.Submission().Body) == "fast" {
				return "r", nil
			}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	defer s1.Close()

	done, err := s1.Submit(jobstore.Submission{Format: "cnx", Body: []byte("fast"), Label: "finished"})
	if err != nil {
		t.Fatal(err)
	}
	finished := waitState(t, s1, done.ID, jobstore.StateDone)
	running, err := s1.Submit(jobstore.Submission{Format: "cnx", Body: []byte("slow")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, running.ID, jobstore.StateRunning)
	queued, err := s1.Submit(jobstore.Submission{Format: "xmi", Body: []byte("slow"), Label: "waiting"})
	if err != nil {
		t.Fatal(err)
	}

	// Power cut: freeze the durable state mid-flight. Later persists from
	// the doomed store (including Close's abort transitions) fail and are
	// dropped, like writes after the plug is pulled.
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: a fresh WAL on the same directory, a fresh store, and an
	// executor that lets everything finish this time.
	wal2 := openWAL(t, dir, jobstore.WALOptions{})
	defer wal2.Close()
	s2, err := jobstore.New(jobstore.Config{
		Workers: 2,
		Backend: wal2,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "rerun", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The terminal record replays as-is: state, label, timings, id.
	rec, ok := s2.Get(done.ID)
	if !ok {
		t.Fatalf("finished job %s lost across restart", done.ID)
	}
	if rec.State != jobstore.StateDone || rec.Label != "finished" {
		t.Errorf("replayed terminal record = %+v", rec)
	}
	if rec.FinishedAt == nil || !rec.FinishedAt.Equal(*finished.FinishedAt) {
		t.Errorf("replayed FinishedAt = %v, want %v", rec.FinishedAt, finished.FinishedAt)
	}

	// Interrupted jobs re-enter the queue and re-run to completion.
	for _, id := range []string{running.ID, queued.ID} {
		rerun := waitState(t, s2, id, jobstore.StateDone)
		if rerun.SubmittedAt.IsZero() {
			t.Errorf("job %s lost its submission time: %+v", id, rerun)
		}
	}
	if rec, ok := s2.Get(queued.ID); !ok || rec.Label != "waiting" || rec.Format != "xmi" {
		t.Errorf("replayed submission metadata = %+v (ok=%v)", rec, ok)
	}

	// The id counter resumed past the replayed sequence numbers.
	fresh, err := s2.Submit(jobstore.Submission{Format: "cnx", Body: []byte("fast")})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range []string{done.ID, running.ID, queued.ID} {
		if fresh.ID == old {
			t.Fatalf("fresh submission reused replayed id %s", fresh.ID)
		}
	}
}

// TestCrashRestartEvictedJobsStayEvicted: a TTL-evicted terminal job's
// persisted record is deleted too, so it cannot resurrect on replay —
// even after a compaction rewrites the snapshot.
func TestCrashRestartEvictedJobsStayEvicted(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir, jobstore.WALOptions{NoSync: true})
	s1, err := jobstore.New(jobstore.Config{
		Workers:    1,
		ResultTTL:  20 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
		Backend:    wal,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	evicted, err := s1.Submit(jobstore.Submission{Format: "cnx", Body: []byte("bye")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, evicted.ID, jobstore.StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s1.Get(evicted.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Compact so the eviction must survive the snapshot rewrite, not just
	// ride the delete record in the log tail.
	if err := wal.Compact(); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	wal2 := openWAL(t, dir, jobstore.WALOptions{})
	defer wal2.Close()
	pjs, err := wal2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, pj := range pjs {
		if pj.ID == evicted.ID {
			t.Fatalf("evicted job %s resurrected after restart (state %s)", pj.ID, pj.State)
		}
	}
}

// TestWALDeleteSurvivesCompaction exercises the backend contract
// directly: a deleted job stays deleted through snapshot + log reset.
func TestWALDeleteSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir, jobstore.WALOptions{NoSync: true})
	put := func(id string, seq int64) {
		t.Helper()
		if err := wal.Put(&jobstore.PersistedJob{ID: id, Seq: seq, Sub: jobstore.Submission{Format: "cnx"}, State: jobstore.StateDone}); err != nil {
			t.Fatal(err)
		}
	}
	put("job-1", 1)
	put("job-2", 2)
	if err := wal.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := wal.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	wal2 := openWAL(t, dir, jobstore.WALOptions{})
	defer wal2.Close()
	pjs, err := wal2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(pjs) != 1 || pjs[0].ID != "job-2" {
		t.Fatalf("replayed set = %+v, want only job-2", pjs)
	}
}

// TestCrashRestartThroughCompaction drives enough mutations through a
// tiny compaction budget that replay must stitch snapshot + log together.
func TestCrashRestartThroughCompaction(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir, jobstore.WALOptions{NoSync: true, CompactEvery: 4})
	s1, err := jobstore.New(jobstore.Config{
		Workers: 2,
		Backend: wal,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 6
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		rec, err := s1.Submit(jobstore.Submission{Format: "cnx"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		waitState(t, s1, id, jobstore.StateDone)
	}
	s1.Close()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	wal2 := openWAL(t, dir, jobstore.WALOptions{})
	defer wal2.Close()
	s2, err := jobstore.New(jobstore.Config{
		Backend: wal2,
		Exec:    func(ctx context.Context, j *jobstore.Job) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		rec, ok := s2.Get(id)
		if !ok || rec.State != jobstore.StateDone {
			t.Errorf("job %s after compacted restart: ok=%v rec=%+v", id, ok, rec)
		}
	}
}
