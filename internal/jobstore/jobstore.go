// Package jobstore decouples job submission from job execution: it is the
// portal's in-memory system of record for asynchronous submissions. A
// Submit returns immediately with a job id; a bounded worker pool drains
// the queue and drives each submission through the lifecycle
//
//	queued -> compiling -> running -> done | failed | aborted
//
// (queued jobs can also go straight to aborted). The store applies
// backpressure when the queue is full (callers surface it as HTTP 429),
// supports abort of both queued and in-flight jobs via context
// cancellation, and evicts terminal records after a configurable TTL so a
// long-lived portal does not grow without bound.
package jobstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/metrics"
)

// Errors returned by the store.
var (
	// ErrQueueFull is returned by Submit under backpressure.
	ErrQueueFull = errors.New("jobstore: queue full")
	// ErrUnknownJob is returned for ids that do not (or no longer) exist.
	ErrUnknownJob = errors.New("jobstore: unknown job")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobstore: closed")
)

// State is a submission's lifecycle state.
type State string

// Lifecycle states.
const (
	StateQueued    State = "queued"
	StateCompiling State = "compiling"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateAborted   State = "aborted"
)

// States lists every lifecycle state in transition order.
var States = []State{StateQueued, StateCompiling, StateRunning, StateDone, StateFailed, StateAborted}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateAborted
}

// ParseState validates a state name (used for list filters).
func ParseState(name string) (State, error) {
	for _, s := range States {
		if string(s) == name {
			return s, nil
		}
	}
	return "", fmt.Errorf("jobstore: unknown state %q", name)
}

// Submission body formats.
const (
	FormatXMI = "xmi"
	FormatCNX = "cnx"
)

// Submission is the immutable payload of one job.
type Submission struct {
	// Format is the body's format: FormatXMI or FormatCNX.
	Format string
	// Body is the uploaded document.
	Body []byte
	// Invocations expands dynamic action states (0 = executor default).
	Invocations int
	// Label is an optional user-assigned name for the job.
	Label string
}

// Progress aggregates task counts across a submission's CN jobs, sourced
// from the JobManagers' schedules by the executor.
type Progress struct {
	// Jobs is how many CN jobs the submission contains; JobsDone counts
	// those that reached a terminal result.
	Jobs     int `json:"jobs"`
	JobsDone int `json:"jobs_done"`
	// Task counts across all CN jobs, from the jobmgr schedule census.
	TasksTotal   int `json:"tasks_total"`
	TasksPending int `json:"tasks_pending"`
	TasksRunning int `json:"tasks_running"`
	TasksDone    int `json:"tasks_done"`
	TasksFailed  int `json:"tasks_failed"`
	// TasksRetried counts recovery and speculative re-placements (a task
	// re-run after its node died, its dispatch failed, or it straggled).
	TasksRetried int `json:"tasks_retried"`
	// TSOps counts completed tuple-space operations against the
	// submission's job coordination spaces.
	TSOps int `json:"ts_ops"`
}

// Record is a point-in-time snapshot of one job, shaped for JSON.
type Record struct {
	ID          string     `json:"id"`
	Label       string     `json:"label,omitempty"`
	Format      string     `json:"format"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueWaitMS is submission-to-dequeue; RunMS is dequeue-to-terminal.
	QueueWaitMS float64   `json:"queue_wait_ms,omitempty"`
	RunMS       float64   `json:"run_ms,omitempty"`
	Error       string    `json:"error,omitempty"`
	Progress    *Progress `json:"progress,omitempty"`
}

// ExecFunc compiles and runs one submission. It is invoked on a worker
// goroutine with a context that is cancelled when the job is aborted (or
// the store closed). The executor must call Job.MarkRunning once
// compilation succeeds and should install a progress callback via
// Job.SetProgress. The returned value becomes the job's result.
type ExecFunc func(ctx context.Context, j *Job) (result any, err error)

// Config parametrizes a Store.
type Config struct {
	// Exec runs one submission (required).
	Exec ExecFunc
	// Workers sizes the execution pool (0 = 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (0 = 64). Submissions
	// beyond the bound fail with ErrQueueFull.
	QueueDepth int
	// ResultTTL evicts terminal records this long after they finish
	// (0 = 15m; negative disables eviction).
	ResultTTL time.Duration
	// SweepEvery is the eviction cadence (0 = ResultTTL/4, min 1s).
	SweepEvery time.Duration
	// Metrics receives store instrumentation (nil = private registry).
	Metrics *metrics.Registry
	// Backend persists job records across restarts (nil = in-memory only).
	// New replays its contents before accepting submissions: terminal
	// records are served as-is, interrupted queued/compiling/running jobs
	// re-enter the queue and re-run. The caller owns the backend's
	// lifetime; the store never calls Backend.Close.
	Backend Backend
	// Logf receives diagnostics; nil disables logging.
	Logf func(format string, args ...any)
}

// Job is one tracked submission. The store owns all state transitions;
// executors interact through MarkRunning and SetProgress.
type Job struct {
	store       *Store
	id          string
	seq         int64
	sub         Submission
	submittedAt time.Time

	mu         sync.Mutex
	state      State
	aborted    bool
	startedAt  time.Time
	finishedAt time.Time
	queueWait  time.Duration
	runDur     time.Duration
	errText    string
	result     any
	progress   func() Progress
	cancel     context.CancelFunc
	done       chan struct{} // closed on the (single) terminal transition
}

// ID returns the store-assigned job id.
func (j *Job) ID() string { return j.id }

// Submission returns the job's immutable payload.
func (j *Job) Submission() Submission { return j.sub }

// MarkRunning transitions compiling -> running; the executor calls it once
// the submission compiled and execution proper begins. It is a no-op after
// abort or in any other state.
func (j *Job) MarkRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCompiling && !j.aborted {
		j.store.transitionLocked(j, StateRunning)
	}
}

// SetProgress installs the callback that supplies live task counts for
// status snapshots. The callback must be safe to invoke from any
// goroutine; it keeps being consulted after the job finishes so terminal
// snapshots still carry final counts.
func (j *Job) SetProgress(fn func() Progress) {
	j.mu.Lock()
	j.progress = fn
	j.mu.Unlock()
}

// snapshotLocked builds a Record; j.mu must be held. Progress is attached
// by the caller outside the lock — the callback queries JobManagers and
// must not run under j.mu.
func (j *Job) snapshotLocked() *Record {
	rec := &Record{
		ID:          j.id,
		Label:       j.sub.Label,
		Format:      j.sub.Format,
		State:       j.state,
		SubmittedAt: j.submittedAt,
		QueueWaitMS: float64(j.queueWait) / float64(time.Millisecond),
		RunMS:       float64(j.runDur) / float64(time.Millisecond),
		Error:       j.errText,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		rec.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		rec.FinishedAt = &t
	}
	return rec
}

// Snapshot returns the job's current Record.
func (j *Job) Snapshot() *Record {
	j.mu.Lock()
	fn := j.progress
	rec := j.snapshotLocked()
	j.mu.Unlock()
	if fn != nil {
		p := fn()
		rec.Progress = &p
	}
	return rec
}

// Stats is the store-level census served at /api/metrics.
type Stats struct {
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	Submitted     int64         `json:"submitted_total"`
	Rejected      int64         `json:"rejected_total"`
	Evicted       int64         `json:"evicted_total"`
}

// Store is the async job service: queue, worker pool, and record table.
// Lock order: s.mu before j.mu, never the reverse.
type Store struct {
	cfg  Config
	reg  *metrics.Registry
	stop chan struct{}
	// wake signals workers that pending may be non-empty. Sends are
	// non-blocking: a dropped signal means the buffer already holds
	// wake-ups, and workers drain pending in a loop after each one.
	wake chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job // submission order, for List
	pending []*Job // queued jobs awaiting a worker; aborts remove entries
	closed  bool

	seq atomic.Int64
}

// New creates the store and starts its workers and eviction janitor.
func New(cfg Config) (*Store, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("jobstore: nil Exec")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = 15 * time.Minute
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.ResultTTL / 4
		if cfg.SweepEvery < time.Second {
			cfg.SweepEvery = time.Second
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Store{
		cfg:  cfg,
		reg:  reg,
		stop: make(chan struct{}),
		wake: make(chan struct{}, cfg.Workers),
		jobs: make(map[string]*Job),
	}
	if cfg.Backend != nil {
		if err := s.replay(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.ResultTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// replay loads the persisted job set into the store before the workers
// start. Terminal records come back exactly as they finished; a job that
// was queued, compiling, or running when the process died re-enters the
// queue as StateQueued and re-executes from its original submission (the
// in-memory result was never persisted, so re-running is the only honest
// recovery). The id counter resumes past the highest persisted sequence so
// new submissions cannot collide with replayed ids.
func (s *Store) replay() error {
	pjs, err := s.cfg.Backend.Load()
	if err != nil {
		return fmt.Errorf("jobstore: load backend: %w", err)
	}
	var maxSeq int64
	requeued := 0
	for _, pj := range pjs {
		if pj.Seq > maxSeq {
			maxSeq = pj.Seq
		}
		j := &Job{
			store:       s,
			id:          pj.ID,
			seq:         pj.Seq,
			sub:         pj.Sub,
			submittedAt: unixTime(pj.SubmittedAt),
			done:        make(chan struct{}),
		}
		if pj.State.Terminal() {
			j.state = pj.State
			j.startedAt = unixTime(pj.StartedAt)
			j.finishedAt = unixTime(pj.FinishedAt)
			j.queueWait = time.Duration(pj.QueueWaitNS)
			j.runDur = time.Duration(pj.RunNS)
			j.errText = pj.Error
			close(j.done)
		} else {
			j.state = StateQueued
			s.pending = append(s.pending, j)
			requeued++
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.reg.Gauge(stateGauge(j.state)).Add(1)
	}
	s.reg.Gauge("jobstore.queue_depth").Set(int64(len(s.pending)))
	s.seq.Store(maxSeq)
	if len(pjs) > 0 {
		s.logf("replayed %d persisted jobs (%d re-queued)", len(pjs), requeued)
	}
	return nil
}

// persistLocked writes j's current image to the backend; j.mu must be
// held. Persistence failures are logged, not fatal: the in-memory store
// stays authoritative for the live process and the next successful write
// re-converges the backend.
func (s *Store) persistLocked(j *Job) {
	if s.cfg.Backend == nil {
		return
	}
	pj := &PersistedJob{
		ID:          j.id,
		Seq:         j.seq,
		Sub:         j.sub,
		State:       j.state,
		SubmittedAt: unixNano(j.submittedAt),
		StartedAt:   unixNano(j.startedAt),
		FinishedAt:  unixNano(j.finishedAt),
		QueueWaitNS: int64(j.queueWait),
		RunNS:       int64(j.runDur),
		Error:       j.errText,
	}
	if err := s.cfg.Backend.Put(pj); err != nil {
		s.logf("persist job %s: %v", j.id, err)
	}
}

func (s *Store) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("[jobstore] "+format, args...)
	}
}

// Metrics returns the registry the store instruments.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// gauge names are stable so dashboards can rely on them.
func stateGauge(st State) string { return "jobstore.jobs." + string(st) }

// transitionLocked moves j to state, keeping the by-state gauges true and
// releasing waiters on the terminal transition. j.mu must be held. Every
// call site checks the current state is non-terminal, so a job reaches a
// terminal state exactly once.
func (s *Store) transitionLocked(j *Job, to State) {
	s.reg.Gauge(stateGauge(j.state)).Add(-1)
	s.reg.Gauge(stateGauge(to)).Add(1)
	j.state = to
	if to.Terminal() {
		close(j.done)
	}
	// Every lifecycle transition is a durable mutation: a crash after this
	// point replays the job in (at worst) its previous persisted state.
	s.persistLocked(j)
}

// Submit enqueues a job and returns its snapshot, or ErrQueueFull under
// backpressure. The returned record is already in StateQueued.
func (s *Store) Submit(sub Submission) (*Record, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.reg.Counter("jobstore.rejected").Inc()
		return nil, ErrQueueFull
	}
	seq := s.seq.Add(1)
	id := fmt.Sprintf("job-%d", seq)
	j := &Job{store: s, id: id, seq: seq, sub: sub, submittedAt: time.Now(), state: StateQueued, done: make(chan struct{})}
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.pending = append(s.pending, j)
	s.reg.Counter("jobstore.submitted").Inc()
	s.reg.Gauge(stateGauge(StateQueued)).Add(1)
	s.reg.Gauge("jobstore.queue_depth").Set(int64(len(s.pending)))
	j.mu.Lock()
	s.persistLocked(j)
	rec := j.snapshotLocked()
	j.mu.Unlock()
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.logf("job %s queued (%s, %d bytes)", id, sub.Format, len(sub.Body))
	return rec, nil
}

// Get returns a job's snapshot.
func (s *Store) Get(id string) (*Record, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.Snapshot(), true
}

// Result returns a job's result value and state. The result is non-nil
// only for StateDone (and for failures where the executor produced a
// partial result).
func (s *Store) Result(id string) (any, State, bool) {
	_, res, st, ok := s.ResultRecord(id)
	return res, st, ok
}

// ResultRecord returns a job's snapshot and result in one consistent
// read, so a concurrent TTL eviction cannot split a status lookup from
// its result.
func (s *Store) ResultRecord(id string) (*Record, any, State, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, "", false
	}
	j.mu.Lock()
	fn := j.progress
	rec := j.snapshotLocked()
	res := j.result
	j.mu.Unlock()
	if fn != nil {
		p := fn()
		rec.Progress = &p
	}
	return rec, res, rec.State, true
}

// List returns snapshots in submission order; filter narrows by state
// ("" = all).
func (s *Store) List(filter State) []*Record {
	s.mu.Lock()
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	out := make([]*Record, 0, len(jobs))
	for _, j := range jobs {
		rec := j.Snapshot()
		if filter == "" || rec.State == filter {
			out = append(out, rec)
		}
	}
	return out
}

// Wait blocks until the job reaches a terminal state (returning its final
// record) or ctx is done.
func (s *Store) Wait(ctx context.Context, id string) (*Record, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	select {
	case <-j.done:
		return j.Snapshot(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Delete aborts an active job (queued jobs abort immediately; compiling or
// running jobs have their context cancelled and abort when the executor
// returns) and evicts a terminal one. It returns the record as of the
// call.
func (s *Store) Delete(id string) (*Record, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		// Free the queue slot immediately so backpressure reflects live
		// work, not abort tombstones.
		s.unqueueLocked(j)
		j.aborted = true
		j.finishedAt = time.Now()
		j.queueWait = j.finishedAt.Sub(j.submittedAt)
		j.errText = "aborted while queued"
		s.transitionLocked(j, StateAborted)
		rec := j.snapshotLocked()
		j.mu.Unlock()
		s.mu.Unlock()
		s.logf("job %s aborted while queued", id)
		return rec, nil
	case !j.state.Terminal():
		j.aborted = true
		if j.cancel != nil {
			j.cancel()
		}
		rec := j.snapshotLocked()
		j.mu.Unlock()
		s.mu.Unlock()
		s.logf("job %s abort requested (%s)", id, rec.State)
		return rec, nil
	default:
		rec := j.snapshotLocked()
		j.mu.Unlock()
		s.mu.Unlock()
		s.remove(j)
		s.logf("job %s record deleted (%s)", id, rec.State)
		return rec, nil
	}
}

// unqueueLocked drops j from the pending list; s.mu must be held. The job
// may already have been popped by a worker, in which case this is a no-op
// (the worker's run() observes the terminal state and skips execution).
func (s *Store) unqueueLocked(j *Job) {
	for i, o := range s.pending {
		if o == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.reg.Gauge("jobstore.queue_depth").Set(int64(len(s.pending)))
}

// remove forgets a terminal job's record — and its persisted image, so
// TTL eviction and explicit record deletion also bound the WAL/snapshot:
// an evicted job can neither resurrect on replay nor grow the log forever.
func (s *Store) remove(j *Job) {
	s.mu.Lock()
	if _, ok := s.jobs[j.id]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.jobs, j.id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.cfg.Backend != nil {
		if err := s.cfg.Backend.Delete(j.id); err != nil {
			s.logf("unpersist job %s: %v", j.id, err)
		}
	}
	s.mu.Unlock()
	j.mu.Lock()
	s.reg.Gauge(stateGauge(j.state)).Add(-1)
	j.mu.Unlock()
}

// Stats returns the store-level census. The totals are read from the
// metric counters so the /api/metrics registry and this census cannot
// drift apart.
func (s *Store) Stats() Stats {
	by := make(map[State]int, len(States))
	s.mu.Lock()
	for _, j := range s.order {
		j.mu.Lock()
		by[j.state]++
		j.mu.Unlock()
	}
	depth := len(s.pending)
	s.mu.Unlock()
	return Stats{
		Workers:       s.cfg.Workers,
		QueueDepth:    depth,
		QueueCapacity: s.cfg.QueueDepth,
		JobsByState:   by,
		Submitted:     s.reg.Counter("jobstore.submitted").Value(),
		Rejected:      s.reg.Counter("jobstore.rejected").Value(),
		Evicted:       s.reg.Counter("jobstore.evicted").Value(),
	}
}

// worker executes pending jobs until the store closes: drain everything
// available, then sleep on the wake signal.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		if j := s.popPending(); j != nil {
			s.run(j)
			continue
		}
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
	}
}

// popPending takes the oldest queued job, or nil when none wait.
func (s *Store) popPending() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	j := s.pending[0]
	s.pending = s.pending[1:]
	s.reg.Gauge("jobstore.queue_depth").Set(int64(len(s.pending)))
	return j
}

// run drives one job from dequeue to a terminal state.
func (s *Store) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Aborted while queued; nothing to execute.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.startedAt = time.Now()
	j.queueWait = j.startedAt.Sub(j.submittedAt)
	s.transitionLocked(j, StateCompiling)
	j.mu.Unlock()
	s.reg.Histogram("jobstore.queue_wait_ms").ObserveDuration(j.queueWait)

	result, err := s.cfg.Exec(ctx, j)
	cancel()

	j.mu.Lock()
	j.cancel = nil
	j.finishedAt = time.Now()
	j.runDur = j.finishedAt.Sub(j.startedAt)
	switch {
	case j.aborted:
		if err != nil {
			j.errText = err.Error()
		} else {
			j.errText = "aborted"
		}
		j.result = result
		s.transitionLocked(j, StateAborted)
	case err != nil:
		j.errText = err.Error()
		j.result = result
		s.transitionLocked(j, StateFailed)
	default:
		j.result = result
		s.transitionLocked(j, StateDone)
	}
	state := j.state
	j.mu.Unlock()
	s.reg.Histogram("jobstore.run_ms").ObserveDuration(j.runDur)
	s.reg.Histogram("jobstore.total_ms").ObserveDuration(j.finishedAt.Sub(j.submittedAt))
	s.logf("job %s %s after %s (queue %s)", j.id, state, j.runDur.Round(time.Millisecond), j.queueWait.Round(time.Millisecond))
}

// janitor evicts terminal records past the TTL.
func (s *Store) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.sweep(time.Now())
		}
	}
}

// sweep removes terminal jobs whose finish time is older than the TTL.
func (s *Store) sweep(now time.Time) {
	s.mu.Lock()
	var expired []*Job
	for _, j := range s.order {
		j.mu.Lock()
		if j.state.Terminal() && !j.finishedAt.IsZero() && now.Sub(j.finishedAt) >= s.cfg.ResultTTL {
			expired = append(expired, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range expired {
		s.remove(j)
		s.reg.Counter("jobstore.evicted").Inc()
		s.logf("job %s evicted (TTL)", j.id)
	}
}

// Close stops accepting submissions, cancels in-flight jobs, and waits for
// the workers to exit. Queued jobs that never ran are marked aborted.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.pending = nil
	s.reg.Gauge("jobstore.queue_depth").Set(0)
	s.mu.Unlock()

	for _, j := range jobs {
		j.mu.Lock()
		switch {
		case j.state == StateQueued:
			j.aborted = true
			j.errText = "store closed"
			j.finishedAt = time.Now()
			s.transitionLocked(j, StateAborted)
		case !j.state.Terminal():
			j.aborted = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		j.mu.Unlock()
	}
	close(s.stop)
	s.wg.Wait()
}
