package jobstore_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cn/internal/jobstore"
)

// waitState polls until the job reaches want (or any terminal state when
// want is terminal and the job lands elsewhere, which fails the test).
func waitState(t *testing.T, s *jobstore.Store, id string, want jobstore.State) *jobstore.Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if rec.State == want {
			return rec
		}
		if rec.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, rec.State, rec.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

func TestLifecycleDone(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		Workers: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "result:" + string(j.Submission().Body), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec, err := s.Submit(jobstore.Submission{Format: "cnx", Body: []byte("doc"), Label: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != jobstore.StateQueued || rec.ID == "" {
		t.Fatalf("submit record = %+v", rec)
	}
	done := waitState(t, s, rec.ID, jobstore.StateDone)
	if done.Label != "demo" || done.Format != "cnx" {
		t.Errorf("record = %+v", done)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Errorf("missing timings: %+v", done)
	}
	res, state, ok := s.Result(rec.ID)
	if !ok || state != jobstore.StateDone || res != "result:doc" {
		t.Errorf("result = %v state=%s ok=%v", res, state, ok)
	}
}

func TestLifecycleFailed(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			return nil, errors.New("compile exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "xmi"})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, s, rec.ID, jobstore.StateFailed)
	if failed.Error != "compile exploded" {
		t.Errorf("error = %q", failed.Error)
	}
}

// TestConcurrencyBeyondPool submits more jobs than workers: all are
// accepted immediately, at most Workers run at once, and all finish.
func TestConcurrencyBeyondPool(t *testing.T) {
	const workers, jobs = 2, 6
	var running, peak atomic.Int64
	release := make(chan struct{})
	s, err := jobstore.New(jobstore.Config{
		Workers:    workers,
		QueueDepth: jobs,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer running.Add(-1)
			j.MarkRunning()
			select {
			case <-release:
				return j.ID(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		rec, err := s.Submit(jobstore.Submission{Format: "cnx", Body: []byte(fmt.Sprint(i))})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, rec.ID)
	}
	// Let the pool saturate, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(release)
	for _, id := range ids {
		waitState(t, s, id, jobstore.StateDone)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, workers)
	}
	stats := s.Stats()
	if stats.JobsByState[jobstore.StateDone] != jobs {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	s, err := jobstore.New(jobstore.Config{
		Workers:    1,
		QueueDepth: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, jobstore.StateRunning)
	// Worker busy: one slot in the queue, then full.
	if _, err := s.Submit(jobstore.Submission{Format: "cnx"}); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := s.Submit(jobstore.Submission{Format: "cnx"}); !errors.Is(err, jobstore.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if stats := s.Stats(); stats.Rejected != 1 || stats.QueueDepth != 1 {
		t.Errorf("stats = %+v", stats)
	}
	close(block)
}

func TestAbortQueuedJob(t *testing.T) {
	var executed atomic.Int64
	block := make(chan struct{})
	defer close(block)
	s, err := jobstore.New(jobstore.Config{
		Workers:    1,
		QueueDepth: 4,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			executed.Add(1)
			j.MarkRunning()
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, jobstore.StateRunning)
	queued, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Delete(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != jobstore.StateAborted {
		t.Errorf("state = %s, want aborted", rec.State)
	}
	// The aborted job must never execute even after the worker frees up.
	if _, err := s.Delete(first.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, jobstore.StateAborted)
	time.Sleep(20 * time.Millisecond)
	if n := executed.Load(); n != 1 {
		t.Errorf("executed %d jobs, want 1 (aborted queued job must be skipped)", n)
	}
}

// TestAbortQueuedFreesSlot verifies backpressure tracks live work:
// aborting a queued job immediately opens queue capacity.
func TestAbortQueuedFreesSlot(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, err := jobstore.New(jobstore.Config{
		Workers:    1,
		QueueDepth: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	running, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, jobstore.StateRunning)
	queued, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(jobstore.Submission{Format: "cnx"}); !errors.Is(err, jobstore.ErrQueueFull) {
		t.Fatalf("pre-abort err = %v, want ErrQueueFull", err)
	}
	if _, err := s.Delete(queued.ID); err != nil {
		t.Fatal(err)
	}
	if s.Stats().QueueDepth != 0 {
		t.Errorf("queue depth after abort = %d, want 0", s.Stats().QueueDepth)
	}
	if _, err := s.Submit(jobstore.Submission{Format: "cnx"}); err != nil {
		t.Errorf("post-abort submit err = %v, want nil", err)
	}
}

func TestAbortRunningJob(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		Workers: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, rec.ID, jobstore.StateRunning)
	if _, err := s.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	aborted := waitState(t, s, rec.ID, jobstore.StateAborted)
	if aborted.Error == "" {
		t.Errorf("aborted record missing error: %+v", aborted)
	}
}

func TestResultEvictionAfterTTL(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		Workers:    1,
		ResultTTL:  30 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, rec.ID, jobstore.StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Get(rec.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats := s.Stats(); stats.Evicted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if got := len(s.List("")); got != 0 {
		t.Errorf("list after eviction has %d records", got)
	}
}

func TestDeleteTerminalRemovesRecord(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		ResultTTL: -1, // no eviction
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, rec.ID, jobstore.StateDone)
	if _, err := s.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(rec.ID); ok {
		t.Error("record survived delete")
	}
	if _, err := s.Delete(rec.ID); !errors.Is(err, jobstore.ErrUnknownJob) {
		t.Errorf("second delete err = %v", err)
	}
}

func TestListFilter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, err := jobstore.New(jobstore.Config{
		Workers:    1,
		QueueDepth: 8,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, jobstore.StateRunning)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(jobstore.Submission{Format: "cnx"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.List(jobstore.StateQueued)); got != 3 {
		t.Errorf("queued = %d, want 3", got)
	}
	if got := len(s.List(jobstore.StateRunning)); got != 1 {
		t.Errorf("running = %d, want 1", got)
	}
	if got := len(s.List("")); got != 4 {
		t.Errorf("all = %d, want 4", got)
	}
	if _, err := jobstore.ParseState("bogus"); err == nil {
		t.Error("ParseState accepted bogus state")
	}
}

// TestProgressSnapshot verifies the executor-installed progress callback
// is consulted on snapshots without holding store locks.
func TestProgressSnapshot(t *testing.T) {
	var mu sync.Mutex
	p := jobstore.Progress{Jobs: 1, TasksTotal: 5}
	block := make(chan struct{})
	defer close(block)
	s, err := jobstore.New(jobstore.Config{
		Workers: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			j.SetProgress(func() jobstore.Progress {
				mu.Lock()
				defer mu.Unlock()
				return p
			})
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, rec.ID, jobstore.StateRunning)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := s.Get(rec.ID)
		if got.Progress != nil && got.Progress.TasksTotal == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress never surfaced: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	p.TasksDone = 5
	mu.Unlock()
	got, _ := s.Get(rec.ID)
	if got.Progress.TasksDone != 5 {
		t.Errorf("progress = %+v", got.Progress)
	}
}

// TestMetricsInstrumentation checks the gauges/counters/histograms the
// store maintains in its registry.
func TestMetricsInstrumentation(t *testing.T) {
	s, err := jobstore.New(jobstore.Config{
		Workers: 1,
		Exec: func(ctx context.Context, j *jobstore.Job) (any, error) {
			j.MarkRunning()
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Submit(jobstore.Submission{Format: "cnx"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, rec.ID, jobstore.StateDone)
	snap := s.Metrics().Snapshot()
	if snap.Counters["jobstore.submitted"] != 1 {
		t.Errorf("submitted counter = %d", snap.Counters["jobstore.submitted"])
	}
	if snap.Gauges["jobstore.jobs.done"] != 1 {
		t.Errorf("done gauge = %d (gauges %v)", snap.Gauges["jobstore.jobs.done"], snap.Gauges)
	}
	if snap.Histograms["jobstore.run_ms"].Count != 1 {
		t.Errorf("run_ms histogram = %+v", snap.Histograms["jobstore.run_ms"])
	}
}
