// WAL is the jobstore's durable Backend: an append-only log of job
// mutations plus a periodic snapshot, in the spirit of "turning cluster
// management into data management" — the portal's job table is data first,
// so an ungraceful restart replays it instead of forgetting it.
//
// On-disk layout (all multi-byte integers are wire varints; fixed-width
// values are little-endian):
//
//	jobs.wal   walMagic ("CNWAL1") followed by records
//	jobs.snap  snapMagic ("CNSNAP1") followed by put records only
//
// Each record is CRC-framed:
//
//	uvarint payloadLen | payload | crc32c(payload) [4 bytes LE]
//
// and the payload is one kind byte (recPut / recDelete) followed by a
// wire-primitive-encoded PersistedJob (put) or job id (delete). Appends
// fsync by default ("commit" means "on disk"); replay stops at the first
// torn or corrupt record and truncates the tail, so a crash mid-append
// costs at most the record being written. Every payload length is capped
// before any allocation happens, so a hostile or corrupted length cannot
// balloon memory. After CompactEvery appends the live set is rewritten
// into a fresh snapshot (atomic tmp+rename) and the log is reset, bounding
// both file size and replay time; deletes are logged like any other
// mutation, so TTL-evicted jobs stay evicted across restarts instead of
// resurrecting out of an old snapshot.
package jobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cn/internal/wire"
)

// File names inside the WAL's data directory.
const (
	walFileName  = "jobs.wal"
	snapFileName = "jobs.snap"
)

// File headers. The trailing byte is the format version.
var (
	walMagic  = []byte{'C', 'N', 'W', 'A', 'L', 1}
	snapMagic = []byte{'C', 'N', 'S', 'N', 'A', 'P', 1}
)

// Record kinds.
const (
	recPut    byte = 1
	recDelete byte = 2
)

// MaxWALRecordBytes caps one record's payload. Larger announced lengths
// are treated as corruption: replay truncates there and appends refuse, so
// no input can drive an oversized allocation.
const MaxWALRecordBytes = 8 << 20

// DefaultCompactEvery is the append count that triggers snapshot +
// log-compaction when WALOptions.CompactEvery is zero.
const DefaultCompactEvery = 256

// errTorn marks an incomplete or corrupt record tail during replay; the
// loader truncates the file at the last good record instead of failing.
var errTorn = errors.New("jobstore: torn wal record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALOptions tunes a WAL backend.
type WALOptions struct {
	// NoSync disables the per-append fsync (benchmarks and tests that
	// measure the codec, not the disk). Commits are then only as durable
	// as the OS page cache.
	NoSync bool
	// CompactEvery is the number of appended records between snapshot +
	// log-compaction rounds (0 = DefaultCompactEvery; negative disables
	// compaction).
	CompactEvery int
}

// WAL is the append-only durable Backend. See the package comment above
// for the format.
type WAL struct {
	dir  string
	opts WALOptions

	mu      sync.Mutex
	f       *os.File
	live    map[string]*PersistedJob
	appends int
	closed  bool
}

// OpenWAL opens (creating if needed) the durable job log in dir, replaying
// the snapshot and log into memory and truncating any torn tail.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, live: make(map[string]*PersistedJob)}

	// Snapshot first: it is the compacted prefix of the log.
	snapPath := filepath.Join(dir, snapFileName)
	if data, err := os.ReadFile(snapPath); err == nil {
		if _, err := replayStream(data, snapMagic, w.live); err != nil && !errors.Is(err, errTorn) {
			return nil, fmt.Errorf("jobstore: snapshot %s: %w", snapPath, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jobstore: read snapshot: %w", err)
	}

	// Then the log, truncating at the first torn or corrupt record so the
	// next append starts on a clean boundary.
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: open wal: %w", err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: read wal: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobstore: write wal header: %w", err)
		}
	} else {
		good, err := replayStream(data, walMagic, w.live)
		if err != nil && !errors.Is(err, errTorn) {
			f.Close()
			return nil, fmt.Errorf("jobstore: wal %s: %w", walPath, err)
		}
		if good < int64(len(data)) {
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("jobstore: truncate torn wal tail: %w", err)
			}
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: seek wal: %w", err)
	}
	w.f = f
	return w, nil
}

// replayStream verifies the header and applies every intact record in data
// to live. It returns the byte offset just past the last good record; a
// torn, truncated, or corrupt tail yields that offset together with a
// wrapped errTorn, and any other error is a hard format failure. It never
// panics and never allocates more than the input's own size, whatever the
// bytes — the fuzz target FuzzWALReplay holds it to that.
func replayStream(data []byte, magic []byte, live map[string]*PersistedJob) (int64, error) {
	if len(data) < len(magic) {
		return 0, fmt.Errorf("jobstore: short header (%d bytes): %w", len(data), errTorn)
	}
	for i, b := range magic {
		if data[i] != b {
			return 0, fmt.Errorf("jobstore: bad file magic %q", data[:len(magic)])
		}
	}
	off := int64(len(magic))
	for off < int64(len(data)) {
		n, err := applyRecord(data[off:], live)
		if err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}

// applyRecord decodes and applies the record at the head of b, returning
// its full encoded length.
func applyRecord(b []byte, live map[string]*PersistedJob) (int64, error) {
	plen, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("jobstore: truncated record length: %w", errTorn)
	}
	if plen == 0 || plen > MaxWALRecordBytes {
		return 0, fmt.Errorf("jobstore: record payload length %d out of bounds: %w", plen, errTorn)
	}
	end := int64(n) + int64(plen) + 4
	if end > int64(len(b)) {
		return 0, fmt.Errorf("jobstore: record spans past end of file: %w", errTorn)
	}
	payload := b[n : int64(n)+int64(plen)]
	want := binary.LittleEndian.Uint32(b[int64(n)+int64(plen) : end])
	if crc32.Checksum(payload, crcTable) != want {
		return 0, fmt.Errorf("jobstore: record crc mismatch: %w", errTorn)
	}
	kind := payload[0]
	r := wire.NewReader(payload[1:])
	switch kind {
	case recPut:
		pj, err := decodePersistedJob(r)
		if err != nil {
			return 0, fmt.Errorf("jobstore: decode put record: %v: %w", err, errTorn)
		}
		live[pj.ID] = pj
	case recDelete:
		id, err := r.String()
		if err != nil {
			return 0, fmt.Errorf("jobstore: decode delete record: %v: %w", err, errTorn)
		}
		delete(live, id)
	default:
		return 0, fmt.Errorf("jobstore: unknown record kind %#x: %w", kind, errTorn)
	}
	return end, nil
}

// appendRecord frames and writes one record payload to f.
func appendRecord(f *os.File, payload []byte, sync bool) error {
	if len(payload) == 0 || len(payload) > MaxWALRecordBytes {
		return fmt.Errorf("jobstore: record payload length %d out of bounds", len(payload))
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	frame := binary.AppendUvarint(*buf, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	*buf = frame
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("jobstore: wal append: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("jobstore: wal fsync: %w", err)
		}
	}
	return nil
}

// Load implements Backend: the replayed live set, oldest submission first.
func (w *WAL) Load() ([]*PersistedJob, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("jobstore: wal closed")
	}
	out := make([]*PersistedJob, 0, len(w.live))
	for _, pj := range w.live {
		out = append(out, pj.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Put implements Backend: append a put record (fsync-on-commit unless
// NoSync) and fold it into the live set.
func (w *WAL) Put(pj *PersistedJob) error {
	payload := append([]byte{recPut}, appendPersistedJob(nil, pj)...)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("jobstore: wal closed")
	}
	if err := appendRecord(w.f, payload, !w.opts.NoSync); err != nil {
		return err
	}
	w.live[pj.ID] = pj.clone()
	return w.bumpLocked()
}

// Delete implements Backend: append a delete record so replay cannot
// resurrect the job. Unknown ids are a no-op (nothing was ever persisted).
func (w *WAL) Delete(id string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("jobstore: wal closed")
	}
	if _, ok := w.live[id]; !ok {
		return nil
	}
	payload := append([]byte{recDelete}, wire.AppendString(nil, id)...)
	if err := appendRecord(w.f, payload, !w.opts.NoSync); err != nil {
		return err
	}
	delete(w.live, id)
	return w.bumpLocked()
}

// bumpLocked counts one append and compacts when the budget is spent.
func (w *WAL) bumpLocked() error {
	w.appends++
	if w.opts.CompactEvery > 0 && w.appends >= w.opts.CompactEvery {
		if err := w.compactLocked(); err != nil {
			return fmt.Errorf("jobstore: compact: %w", err)
		}
	}
	return nil
}

// Compact forces a snapshot + log reset (tests and shutdown hooks).
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("jobstore: wal closed")
	}
	return w.compactLocked()
}

// compactLocked writes the live set into a fresh snapshot (atomic
// tmp+rename, fsynced) and truncates the log back to its header. Evicted
// jobs are simply absent from the new snapshot, so the on-disk footprint
// tracks the live set instead of the full mutation history.
func (w *WAL) compactLocked() error {
	tmpPath := filepath.Join(w.dir, snapFileName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(snapMagic); err != nil {
		tmp.Close()
		return err
	}
	jobs := make([]*PersistedJob, 0, len(w.live))
	for _, pj := range w.live {
		jobs = append(jobs, pj)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
	for _, pj := range jobs {
		payload := append([]byte{recPut}, appendPersistedJob(nil, pj)...)
		if err := appendRecord(tmp, payload, false); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(w.dir, snapFileName)); err != nil {
		return err
	}
	syncDir(w.dir)

	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 2); err != nil {
		return err
	}
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.appends = 0
	return nil
}

// syncDir best-effort fsyncs a directory so a renamed snapshot survives
// power loss; filesystems that reject directory fsync are tolerated.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Close implements Backend: release the log file handle. Pending state is
// already durable (every append committed before returning).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}
