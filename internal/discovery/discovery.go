// Package discovery implements client-side JobManager discovery:
// "Requests to JobManager are communicated using multicast. JobManagers
// respond to multicast requests for JobManagers if they have free resources
// and are willing to be JobManagers. A JobManager is selected based on User
// specified Job requirements from the list of willing JobManagers."
package discovery

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/transport"
)

// ErrNoOffers indicates that no JobManager responded within the window.
var ErrNoOffers = errors.New("discovery: no JobManager offers received")

// Policy selects one offer from the willing JobManagers.
type Policy interface {
	// Select returns the chosen offer's index; offers is non-empty.
	Select(offers []protocol.JMOffer) int
	// Name identifies the policy in logs and benches.
	Name() string
}

// FirstResponder picks the earliest offer to arrive — the latency-optimal
// policy.
type FirstResponder struct{}

// Select implements Policy.
func (FirstResponder) Select([]protocol.JMOffer) int { return 0 }

// Name implements Policy.
func (FirstResponder) Name() string { return "first-responder" }

// BestFit picks the node with the most free memory (ties: fewest active
// jobs, then lexicographic node name).
type BestFit struct{}

// Select implements Policy.
func (BestFit) Select(offers []protocol.JMOffer) int {
	best := 0
	for i := 1; i < len(offers); i++ {
		a, b := offers[i], offers[best]
		switch {
		case a.FreeMemoryMB != b.FreeMemoryMB:
			if a.FreeMemoryMB > b.FreeMemoryMB {
				best = i
			}
		case a.ActiveJobs != b.ActiveJobs:
			if a.ActiveJobs < b.ActiveJobs {
				best = i
			}
		case a.Node < b.Node:
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// LeastLoaded picks the node hosting the fewest active jobs (ties: most
// free memory, then node name).
type LeastLoaded struct{}

// Select implements Policy.
func (LeastLoaded) Select(offers []protocol.JMOffer) int {
	best := 0
	for i := 1; i < len(offers); i++ {
		a, b := offers[i], offers[best]
		switch {
		case a.ActiveJobs != b.ActiveJobs:
			if a.ActiveJobs < b.ActiveJobs {
				best = i
			}
		case a.FreeMemoryMB != b.FreeMemoryMB:
			if a.FreeMemoryMB > b.FreeMemoryMB {
				best = i
			}
		case a.Node < b.Node:
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Random picks uniformly with a deterministic seed — the load-spreading
// baseline.
type Random struct {
	rng *rand.Rand
}

// NewRandom creates a Random policy with the given seed (0 selects 1).
func NewRandom(seed int64) *Random {
	if seed == 0 {
		seed = 1
	}
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Select implements Policy.
func (r *Random) Select(offers []protocol.JMOffer) int {
	return r.rng.Intn(len(offers))
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Options configures a discovery round.
type Options struct {
	// Window is how long to collect offers (0 = 200ms). FirstResponder
	// short-circuits on the first offer regardless.
	Window time.Duration
	// Policy selects among offers (nil = BestFit).
	Policy Policy
	// Requirements filters willing JobManagers server-side.
	Requirements protocol.JobRequirements
}

// Discover multicasts a solicitation from the client's caller and returns
// the selected JobManager offer plus all offers received (sorted by node
// for determinism, except FirstResponder which preserves arrival order).
func Discover(caller *transport.Caller, clientNode string, opts Options) (protocol.JMOffer, []protocol.JMOffer, error) {
	window := opts.Window
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	policy := opts.Policy
	if policy == nil {
		policy = BestFit{}
	}
	// First-responder needs exactly one reply; other policies stop as soon
	// as every group member answered (unwilling members stay silent and
	// cost the full window, like real multicast discovery).
	max := caller.Endpoint().GroupSize(protocol.GroupJobManagers)
	if _, first := policy.(FirstResponder); first {
		max = 1
	}
	m := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: clientNode, Task: protocol.ClientTaskName},
		msg.Address{},
		opts.Requirements)
	replies, err := caller.Gather(protocol.GroupJobManagers, m, max, window)
	if err != nil {
		return protocol.JMOffer{}, nil, fmt.Errorf("discovery: %w", err)
	}
	offers := make([]protocol.JMOffer, 0, len(replies))
	for _, r := range replies {
		var o protocol.JMOffer
		if err := protocol.Decode(r, &o); err == nil {
			offers = append(offers, o)
		}
	}
	if len(offers) == 0 {
		return protocol.JMOffer{}, nil, ErrNoOffers
	}
	if max != 1 {
		sort.Slice(offers, func(i, j int) bool { return offers[i].Node < offers[j].Node })
	}
	chosen := policy.Select(offers)
	if chosen < 0 || chosen >= len(offers) {
		return protocol.JMOffer{}, offers, fmt.Errorf("discovery: policy %s selected invalid index %d of %d", policy.Name(), chosen, len(offers))
	}
	return offers[chosen], offers, nil
}
