package discovery

import (
	"testing"
	"testing/quick"

	"cn/internal/protocol"
)

func offers(specs ...[3]int) []protocol.JMOffer {
	out := make([]protocol.JMOffer, len(specs))
	for i, s := range specs {
		out[i] = protocol.JMOffer{
			Node:         string(rune('a' + s[0])),
			FreeMemoryMB: s[1],
			ActiveJobs:   s[2],
		}
	}
	return out
}

func TestFirstResponder(t *testing.T) {
	p := FirstResponder{}
	if p.Name() != "first-responder" {
		t.Errorf("Name = %q", p.Name())
	}
	if got := p.Select(offers([3]int{0, 100, 5}, [3]int{1, 900, 0})); got != 0 {
		t.Errorf("Select = %d, want 0 (arrival order)", got)
	}
}

func TestBestFitPrefersMemory(t *testing.T) {
	p := BestFit{}
	os := offers([3]int{0, 100, 0}, [3]int{1, 900, 9}, [3]int{2, 500, 0})
	if got := p.Select(os); got != 1 {
		t.Errorf("Select = %d, want index 1 (most memory)", got)
	}
}

func TestBestFitTieBreaksOnJobs(t *testing.T) {
	p := BestFit{}
	os := offers([3]int{0, 500, 3}, [3]int{1, 500, 1})
	if got := p.Select(os); got != 1 {
		t.Errorf("Select = %d, want 1 (fewer jobs)", got)
	}
}

func TestLeastLoadedPrefersJobs(t *testing.T) {
	p := LeastLoaded{}
	os := offers([3]int{0, 900, 4}, [3]int{1, 100, 1})
	if got := p.Select(os); got != 1 {
		t.Errorf("Select = %d, want 1 (fewest jobs)", got)
	}
	if p.Name() != "least-loaded" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestLeastLoadedTieBreaksOnMemory(t *testing.T) {
	p := LeastLoaded{}
	os := offers([3]int{0, 100, 2}, [3]int{1, 700, 2})
	if got := p.Select(os); got != 1 {
		t.Errorf("Select = %d, want 1 (more memory)", got)
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	os := offers([3]int{0, 1, 1}, [3]int{1, 2, 2}, [3]int{2, 3, 3})
	a := NewRandom(5)
	b := NewRandom(5)
	for i := 0; i < 20; i++ {
		ga, gb := a.Select(os), b.Select(os)
		if ga != gb {
			t.Fatal("same seed diverged")
		}
		if ga < 0 || ga >= len(os) {
			t.Fatalf("out of range: %d", ga)
		}
	}
	if NewRandom(0) == nil {
		t.Error("zero seed rejected")
	}
	if (&Random{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestPoliciesAlwaysInRangeProperty(t *testing.T) {
	f := func(mems []int16, jobs []uint8) bool {
		n := len(mems)
		if n == 0 || n > 32 {
			return true
		}
		os := make([]protocol.JMOffer, n)
		for i := range os {
			j := 0
			if i < len(jobs) {
				j = int(jobs[i])
			}
			os[i] = protocol.JMOffer{Node: string(rune('a' + i%26)), FreeMemoryMB: int(mems[i]), ActiveJobs: j}
		}
		for _, p := range []Policy{FirstResponder{}, BestFit{}, LeastLoaded{}, NewRandom(1)} {
			if got := p.Select(os); got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBestFitSelectsMaximumProperty(t *testing.T) {
	f := func(mems []int16) bool {
		if len(mems) == 0 || len(mems) > 32 {
			return true
		}
		os := make([]protocol.JMOffer, len(mems))
		maxMem := int(mems[0])
		for i := range os {
			os[i] = protocol.JMOffer{Node: string(rune('a' + i%26)), FreeMemoryMB: int(mems[i])}
			if int(mems[i]) > maxMem {
				maxMem = int(mems[i])
			}
		}
		got := BestFit{}.Select(os)
		return os[got].FreeMemoryMB == maxMem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
