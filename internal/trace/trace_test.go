package trace

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	root := tr.StartRoot("submit", "job1")
	if root != nil {
		t.Fatalf("nil tracer returned non-nil root span")
	}
	if got := root.Context(); !got.IsZero() {
		t.Fatalf("nil Active.Context() = %+v, want zero", got)
	}
	root.SetJob("j").SetTask("t")
	root.End(errors.New("boom")) // must not panic
	tr.Record(Span{Trace: 1, ID: 2})
	if tr.Store() != nil {
		t.Fatalf("nil tracer store = %v, want nil", tr.Store())
	}
	var st *Store
	st.Add(Span{})
	if st.Len() != 0 || st.All() != nil || st.ForJob("x") != nil || st.Take("x", "y") != nil {
		t.Fatalf("nil store not inert")
	}
}

func TestRootSampling(t *testing.T) {
	always := New(Config{Node: "n1", Sample: 1})
	if always.StartRoot("submit", "j") == nil {
		t.Fatalf("sample=1 tracer refused a root span")
	}
	never := New(Config{Node: "n1", Sample: -1})
	if sp := never.StartRoot("submit", "j"); sp != nil {
		t.Fatalf("sample=-1 tracer produced a root span")
	}
	// Children of an incoming sampled context are recorded regardless of
	// the local rate.
	child := never.StartSpan(Context{TraceID: 7, SpanID: 8}, "exec")
	if child == nil {
		t.Fatalf("sample=-1 tracer refused a child of a sampled context")
	}
	child.End(nil)
	if got := never.Store().Len(); got != 1 {
		t.Fatalf("store len = %d, want 1", got)
	}
}

func TestSampleRateRoughlyHolds(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: 0.25, Capacity: 16})
	kept := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if sp := tr.StartRoot("r", "j"); sp != nil {
			kept++
		}
	}
	frac := float64(kept) / trials
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("sampled fraction %.3f, want ~0.25", frac)
	}
}

func TestSpanParentage(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: 1})
	root := tr.StartRoot("submit", "job1")
	rc := root.Context()
	if rc.TraceID == 0 || rc.TraceID != rc.SpanID || rc.ParentID != 0 {
		t.Fatalf("root context %+v malformed", rc)
	}
	child := tr.StartSpan(rc, "place").SetJob("job1").SetTask("t0")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace id %d != root %d", cc.TraceID, rc.TraceID)
	}
	if cc.ParentID != rc.SpanID {
		t.Fatalf("child parent %d != root span %d", cc.ParentID, rc.SpanID)
	}
	child.End(nil)
	root.End(nil)
	spans := tr.Store().ForJob("job1")
	if len(spans) != 2 {
		t.Fatalf("ForJob returned %d spans, want 2", len(spans))
	}
	if spans[0].Name != "place" || spans[1].Name != "submit" {
		t.Fatalf("span order %q, %q; want place then submit (end order)", spans[0].Name, spans[1].Name)
	}
	if spans[0].Task != "t0" {
		t.Fatalf("task attr not recorded: %+v", spans[0])
	}
}

func TestEndErrText(t *testing.T) {
	tr := New(Config{Sample: 1})
	sp := tr.StartRoot("exec", "j")
	sp.EndErrText("task panic: boom")
	all := tr.Store().All()
	if len(all) != 1 || all[0].Err != "task panic: boom" {
		t.Fatalf("EndErrText not recorded: %+v", all)
	}
}

func TestStoreRingEviction(t *testing.T) {
	st := NewStore(4)
	for i := 1; i <= 6; i++ {
		st.Add(Span{Trace: 1, ID: uint64(i), Job: "j"})
	}
	if st.Len() != 4 {
		t.Fatalf("len = %d, want 4", st.Len())
	}
	all := st.All()
	for i, sp := range all {
		if want := uint64(i + 3); sp.ID != want {
			t.Fatalf("all[%d].ID = %d, want %d (oldest evicted first)", i, sp.ID, want)
		}
	}
}

func TestStoreTake(t *testing.T) {
	st := NewStore(8)
	st.Add(Span{Trace: 1, ID: 1, Job: "a", Task: "t1"})
	st.Add(Span{Trace: 1, ID: 2, Job: "a", Task: "t2"})
	st.Add(Span{Trace: 1, ID: 3, Job: "a", Task: "t1"})
	st.Add(Span{Trace: 1, ID: 4, Job: "b", Task: "t1"})
	got := st.Take("a", "t1")
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("Take = %+v, want spans 1 and 3", got)
	}
	if st.Len() != 2 {
		t.Fatalf("len after take = %d, want 2", st.Len())
	}
	if again := st.Take("a", "t1"); len(again) != 0 {
		t.Fatalf("second Take returned %+v, want none", again)
	}
	// The ring must still accept writes correctly after compaction.
	for i := 5; i <= 20; i++ {
		st.Add(Span{Trace: 1, ID: uint64(i), Job: "c"})
	}
	if st.Len() != 8 {
		t.Fatalf("len after refill = %d, want 8", st.Len())
	}
}

func TestStoreConcurrency(t *testing.T) {
	st := NewStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Add(Span{Trace: 1, ID: uint64(g*1000 + i), Job: fmt.Sprintf("j%d", g%2)})
				if i%17 == 0 {
					st.ForJob("j0")
				}
				if i%31 == 0 {
					st.Take("j1", "")
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 64 {
		t.Fatalf("len = %d exceeds capacity", st.Len())
	}
}

func TestSortSpans(t *testing.T) {
	t0 := time.Unix(100, 0)
	spans := []Span{
		{ID: 3, Start: t0.Add(2 * time.Second)},
		{ID: 2, Start: t0},
		{ID: 1, Start: t0},
	}
	SortSpans(spans)
	if spans[0].ID != 1 || spans[1].ID != 2 || spans[2].ID != 3 {
		t.Fatalf("sort order %v", []uint64{spans[0].ID, spans[1].ID, spans[2].ID})
	}
}

func TestNewIDNonZero(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if NewID() == 0 {
			t.Fatalf("NewID returned 0")
		}
	}
}
