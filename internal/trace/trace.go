// Package trace implements CN's sampling distributed tracer. A trace
// follows one job across processes: the client opens a root span at
// submit, every component on the path (JobManager placement, archive
// distribution, task exec, data-plane shuffle pulls, retries, failover
// adoption) opens child spans, and the trace context — three integers —
// rides the binary wire envelope so causality survives node boundaries.
//
// The package is dependency-free by design: internal/msg embeds a
// Context in every Message, so trace must sit below the whole stack.
//
// Sampling is decided once, at the root: a sampled trace carries a
// non-zero context and every downstream component records; an unsampled
// trace carries the zero Context and every downstream call is a no-op.
// This is head-based sampling in the Dapper mold — cheap enough to leave
// on in production, complete enough that one kept trace shows the whole
// job.
package trace

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Context is the wire-portable trace identity: which trace a message
// belongs to and which span caused it. The zero Context means "not
// traced" and costs nothing on the wire.
type Context struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// IsZero reports whether the context carries no trace.
func (c Context) IsZero() bool {
	return c.TraceID == 0 && c.SpanID == 0 && c.ParentID == 0
}

// Span is one completed, recorded operation. Parent is 0 for a root
// span. Err is empty on success.
type Span struct {
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   string        `json:"node,omitempty"`
	Job    string        `json:"job,omitempty"`
	Task   string        `json:"task,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Err    string        `json:"err,omitempty"`
}

// Ctx returns the context a child of this span should carry.
func (s Span) Ctx() Context {
	return Context{TraceID: s.Trace, SpanID: s.ID, ParentID: s.Parent}
}

// DefaultSample is the default root-sampling probability: 1 in 8 jobs
// get a full trace, cheap enough to leave on.
const DefaultSample = 0.125

// DefaultCapacity bounds a Store's ring buffer when Config.Capacity is 0.
const DefaultCapacity = 4096

// Config parametrizes a Tracer.
type Config struct {
	// Node stamps every recorded span with the hosting node name.
	Node string
	// Sample is the root-sampling probability in [0,1]. 0 selects
	// DefaultSample; negative never samples new roots (children of
	// sampled incoming contexts are still recorded); >= 1 samples every
	// root.
	Sample float64
	// Capacity bounds the span store's ring buffer (0 = DefaultCapacity).
	Capacity int
}

// Tracer creates and records spans for one process. A nil *Tracer is
// valid and inert: every method no-ops and every returned context is
// zero, so call sites need no nil guards.
type Tracer struct {
	node   string
	sample float64
	store  *Store
}

// New creates a Tracer with a bounded ring-buffer span store.
func New(cfg Config) *Tracer {
	if cfg.Sample == 0 {
		cfg.Sample = DefaultSample
	}
	return &Tracer{
		node:   cfg.Node,
		sample: cfg.Sample,
		store:  NewStore(cfg.Capacity),
	}
}

// Store exposes the tracer's span store; nil for a nil tracer.
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Active is an open span. End it to record it. A nil *Active is valid
// and inert, which is how unsampled traces cost nothing downstream.
type Active struct {
	tracer *Tracer
	span   Span
}

// StartRoot opens a new trace: the sampling decision happens here and
// only here. It returns nil (inert) when the trace is not sampled.
func (t *Tracer) StartRoot(name, job string) *Active {
	if t == nil || t.sample < 0 {
		return nil
	}
	if t.sample < 1 && rand.Float64() >= t.sample {
		return nil
	}
	id := NewID()
	return &Active{tracer: t, span: Span{
		Trace: id,
		ID:    id,
		Name:  name,
		Node:  t.node,
		Job:   job,
		Start: time.Now(),
	}}
}

// StartSpan opens a child of an incoming context. A zero parent means
// the trace was not sampled (or the message predates tracing), so the
// child is inert; sampling never re-triggers mid-trace.
func (t *Tracer) StartSpan(parent Context, name string) *Active {
	if t == nil || parent.IsZero() {
		return nil
	}
	return &Active{tracer: t, span: Span{
		Trace:  parent.TraceID,
		ID:     NewID(),
		Parent: parent.SpanID,
		Name:   name,
		Node:   t.node,
		Start:  time.Now(),
	}}
}

// Context returns the context downstream messages of this span should
// carry; zero for an inert span.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{TraceID: a.span.Trace, SpanID: a.span.ID, ParentID: a.span.Parent}
}

// SetJob stamps the span with a job id.
func (a *Active) SetJob(job string) *Active {
	if a != nil {
		a.span.Job = job
	}
	return a
}

// SetTask stamps the span with a task name.
func (a *Active) SetTask(task string) *Active {
	if a != nil {
		a.span.Task = task
	}
	return a
}

// End closes the span with an optional error and records it into the
// tracer's store.
func (a *Active) End(err error) {
	if a == nil {
		return
	}
	a.span.Dur = time.Since(a.span.Start)
	if err != nil {
		a.span.Err = err.Error()
	}
	a.tracer.store.Add(a.span)
}

// EndErrText closes the span with a pre-rendered error string (the
// protocol carries task errors as text, not error values).
func (a *Active) EndErrText(errText string) {
	if a == nil {
		return
	}
	a.span.Dur = time.Since(a.span.Start)
	a.span.Err = errText
	a.tracer.store.Add(a.span)
}

// Finish closes the span like EndErrText and also returns the completed
// span, for callers that keep their own timeline (the JobManager's
// per-job trace) in addition to the tracer's store. ok is false for an
// inert span.
func (a *Active) Finish(errText string) (Span, bool) {
	if a == nil {
		return Span{}, false
	}
	a.span.Dur = time.Since(a.span.Start)
	a.span.Err = errText
	a.tracer.store.Add(a.span)
	return a.span, true
}

// Record stores an externally built span (one carried in from another
// process). No-op on a nil tracer.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.store.Add(s)
}

// NewID returns a non-zero random 64-bit identifier for traces/spans.
func NewID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// Store is a bounded ring buffer of completed spans. When full, the
// oldest spans are overwritten — observability must never become the
// memory leak it is meant to find.
type Store struct {
	mu    sync.Mutex
	buf   []Span
	next  int // write cursor
	count int // live spans (<= len(buf))
}

// NewStore creates a ring-buffer store (capacity 0 = DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{buf: make([]Span, capacity)}
}

// Add records one span, evicting the oldest when full. Nil-safe.
func (s *Store) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next] = sp
	s.next = (s.next + 1) % len(s.buf)
	if s.count < len(s.buf) {
		s.count++
	}
	s.mu.Unlock()
}

// Len reports the number of live spans.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// snapshotLocked appends live spans in insertion order.
func (s *Store) snapshotLocked(dst []Span) []Span {
	start := s.next - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		dst = append(dst, s.buf[(start+i)%len(s.buf)])
	}
	return dst
}

// All returns every live span in insertion order.
func (s *Store) All() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(nil)
}

// ForJob returns the live spans stamped with jobID, in insertion order.
func (s *Store) ForJob(jobID string) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Span
	start := s.next - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		if sp := s.buf[(start+i)%len(s.buf)]; sp.Job == jobID {
			out = append(out, sp)
		}
	}
	return out
}

// Take removes and returns the live spans stamped with jobID and task,
// in insertion order — the TaskManager drains a task's spans into its
// terminal event so they travel to the JobManager exactly once.
func (s *Store) Take(jobID, task string) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out, keep []Span
	start := s.next - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		sp := s.buf[(start+i)%len(s.buf)]
		if sp.Job == jobID && sp.Task == task {
			out = append(out, sp)
		} else {
			keep = append(keep, sp)
		}
	}
	if len(out) > 0 {
		for i := range s.buf {
			s.buf[i] = Span{}
		}
		copy(s.buf, keep)
		s.count = len(keep)
		s.next = s.count % len(s.buf)
	}
	return out
}

// SortSpans orders spans for presentation: by start time, then by span
// id for a stable order when starts collide.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
}
