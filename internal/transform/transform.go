// Package transform implements the paper's model transformations:
//
//	XMI document  ──FromXMI──▶  core model  ──ModelToCNX──▶  CNX descriptor
//	XMI document  ◀──ToXMI───  core model  ◀──CNXToModel──  CNX descriptor
//
// XMI2CNX composes the forward direction and is the Go equivalent of the
// paper's XMI2CNX XSLT ("an XSLT that translates UML model in XMI format to
// CNX"). The reverse mappings allow CNX descriptors to be lifted back into
// models for visualization and testing.
//
// Dynamic invocation states (Figure 5) are expanded during ModelToCNX using
// a core.ArgProvider, since a CNX descriptor enumerates concrete tasks.
package transform

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cn/internal/cnx"
	"cn/internal/core"
	"cn/internal/xmi"
)

// FromXMI converts a parsed XMI document into a core client model: every
// activity graph becomes one job. The model name becomes the client name.
func FromXMI(doc *xmi.Document) (*core.Client, error) {
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("transform: XMI document contains no activity graphs")
	}
	name := doc.ModelName
	if name == "" {
		name = "Client"
	}
	client := core.NewClient(name)
	for _, ag := range doc.Graphs {
		g, err := graphFromXMI(doc, ag)
		if err != nil {
			return nil, err
		}
		if err := client.AddJob(g); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
	}
	return client, nil
}

func graphFromXMI(doc *xmi.Document, ag *xmi.ActivityGraph) (*core.Graph, error) {
	g := core.NewGraph(ag.Name)
	// Vertex names must be unique in the core model; fall back to the
	// xmi.id when a vertex is unnamed (pseudostates usually are).
	nameByID := make(map[string]string, len(ag.Vertices))
	used := make(map[string]bool, len(ag.Vertices))
	for i := range ag.Vertices {
		v := &ag.Vertices[i]
		name := v.Name
		if name == "" || used[name] {
			name = v.ID
		}
		if used[name] {
			return nil, fmt.Errorf("transform: graph %q: vertex name %q not unique", ag.Name, name)
		}
		used[name] = true
		nameByID[v.ID] = name

		node := &core.Node{Name: name}
		switch v.Kind {
		case xmi.VertexInitial:
			node.Kind = core.KindInitial
		case xmi.VertexFinal:
			node.Kind = core.KindFinal
		case xmi.VertexFork:
			node.Kind = core.KindFork
		case xmi.VertexJoin:
			node.Kind = core.KindJoin
		case xmi.VertexAction:
			node.Kind = core.KindAction
			node.Dynamic = v.Dynamic
			node.Multiplicity = v.Multiplicity
			node.ArgExpr = v.ArgExpr
			if len(v.Tagged) > 0 {
				node.Tagged = make(core.TaggedValues, len(v.Tagged))
				for _, tv := range v.Tagged {
					tagName := doc.TagDefByID(tv.TagDefID)
					if tagName == "" {
						return nil, fmt.Errorf("transform: graph %q: vertex %q references unknown tag definition %q",
							ag.Name, name, tv.TagDefID)
					}
					node.Tagged[tagName] = tv.Value
				}
			}
		default:
			return nil, fmt.Errorf("transform: graph %q: vertex %q has unknown kind %q", ag.Name, name, v.Kind)
		}
		if err := g.AddNode(node); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
	}
	for _, tr := range ag.Transitions {
		from, ok := nameByID[tr.SourceID]
		if !ok {
			return nil, fmt.Errorf("transform: graph %q: transition %q source %q unknown", ag.Name, tr.ID, tr.SourceID)
		}
		to, ok := nameByID[tr.TargetID]
		if !ok {
			return nil, fmt.Errorf("transform: graph %q: transition %q target %q unknown", ag.Name, tr.ID, tr.TargetID)
		}
		if err := g.AddGuardedTransition(from, to, tr.Guard); err != nil {
			return nil, fmt.Errorf("transform: %w", err)
		}
	}
	return g, nil
}

// ToXMI converts a core client model into an XMI document, allocating tool
// style sequential ids and one TagDefinition per distinct tag name.
func ToXMI(client *core.Client) (*xmi.Document, error) {
	if err := client.Validate(); err != nil {
		return nil, fmt.Errorf("transform: to XMI: %w", err)
	}
	ids := xmi.NewIDAllocator("a")
	doc := &xmi.Document{ModelID: ids.Next(), ModelName: client.Name}

	// Collect all tag names across all jobs for stable TagDefinitions.
	tagNames := map[string]bool{}
	for _, job := range client.Jobs {
		for _, n := range job.ActionStates() {
			for k := range n.Tagged {
				tagNames[k] = true
			}
		}
	}
	sorted := make([]string, 0, len(tagNames))
	for k := range tagNames {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	tagID := make(map[string]string, len(sorted))
	for _, name := range sorted {
		id := ids.Next()
		tagID[name] = id
		doc.TagDefs = append(doc.TagDefs, xmi.TagDef{ID: id, Name: name})
	}

	for _, job := range client.Jobs {
		ag := &xmi.ActivityGraph{ID: ids.Next(), Name: job.Name}
		vertexID := make(map[string]string)
		for _, n := range job.Nodes() {
			v := xmi.Vertex{ID: ids.Next(), Name: n.Name}
			vertexID[n.Name] = v.ID
			switch n.Kind {
			case core.KindInitial:
				v.Kind = xmi.VertexInitial
				v.Name = "" // pseudostates are conventionally unnamed
			case core.KindFinal:
				v.Kind = xmi.VertexFinal
				v.Name = ""
			case core.KindFork:
				v.Kind = xmi.VertexFork
				v.Name = ""
			case core.KindJoin:
				v.Kind = xmi.VertexJoin
				v.Name = ""
			case core.KindAction:
				v.Kind = xmi.VertexAction
				v.Dynamic = n.Dynamic
				v.Multiplicity = n.Multiplicity
				v.ArgExpr = n.ArgExpr
				for _, tag := range n.Tagged.Keys() {
					v.Tagged = append(v.Tagged, xmi.TaggedValue{
						ID:       ids.Next(),
						TagDefID: tagID[tag],
						Value:    n.Tagged[tag],
					})
				}
			}
			ag.Vertices = append(ag.Vertices, v)
		}
		for _, tr := range job.Transitions() {
			ag.Transitions = append(ag.Transitions, xmi.Transition{
				ID:       ids.Next(),
				SourceID: vertexID[tr.From],
				TargetID: vertexID[tr.To],
				Guard:    tr.Guard,
			})
		}
		doc.Graphs = append(doc.Graphs, ag)
	}
	return doc, nil
}

// Options configures the model-to-CNX transformation.
type Options struct {
	// Args supplies run-time argument lists for dynamic invocation states.
	// Nil is fine for models without dynamic states.
	Args core.ArgProvider
	// Log and Port populate the CNX client attributes.
	Log  string
	Port int
}

// ModelToCNX lowers a core client model to a CNX descriptor: each job's
// action states become <task> elements whose depends attribute is the
// pseudostate-collapsed dependency list; dynamic states are expanded first.
func ModelToCNX(client *core.Client, opts Options) (*cnx.Document, error) {
	if err := client.Validate(); err != nil {
		return nil, fmt.Errorf("transform: model to CNX: %w", err)
	}
	doc := &cnx.Document{Client: cnx.Client{
		Class: client.Name,
		Log:   opts.Log,
		Port:  opts.Port,
	}}
	for _, job := range client.Jobs {
		g := job
		if hasDynamic(g) {
			if opts.Args == nil {
				return nil, fmt.Errorf("transform: job %q has dynamic invocation states but no argument provider", job.Name)
			}
			expanded, err := core.ExpandDynamic(g, opts.Args)
			if err != nil {
				return nil, fmt.Errorf("transform: job %q: %w", job.Name, err)
			}
			g = expanded
		}
		deps, err := g.Dependencies()
		if err != nil {
			return nil, fmt.Errorf("transform: job %q: %w", job.Name, err)
		}
		order, err := g.TopoActionOrder()
		if err != nil {
			return nil, fmt.Errorf("transform: job %q: %w", job.Name, err)
		}
		cj := cnx.Job{Name: job.Name}
		for _, name := range order {
			spec, err := g.Node(name).TaskSpec(deps[name])
			if err != nil {
				return nil, fmt.Errorf("transform: job %q: %w", job.Name, err)
			}
			cj.Tasks = append(cj.Tasks, cnx.FromSpec(spec))
		}
		doc.Client.Jobs = append(doc.Client.Jobs, cj)
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("transform: produced invalid CNX: %w", err)
	}
	return doc, nil
}

func hasDynamic(g *core.Graph) bool {
	for _, n := range g.ActionStates() {
		if n.Dynamic {
			return true
		}
	}
	return false
}

// CNXToModel lifts a CNX descriptor back into a core client model. The
// reconstructed graph uses direct action-to-action transitions (depends
// lists already encode the join semantics); an initial node feeds all root
// tasks and all leaf tasks flow into a final node.
func CNXToModel(doc *cnx.Document) (*core.Client, error) {
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("transform: CNX to model: %w", err)
	}
	client := core.NewClient(doc.Client.Class)
	client.Log = doc.Client.Log
	client.Port = doc.Client.Port
	for ji := range doc.Client.Jobs {
		job := &doc.Client.Jobs[ji]
		g := core.NewGraph(job.Name)
		if err := g.AddNode(&core.Node{Name: "__initial", Kind: core.KindInitial}); err != nil {
			return nil, err
		}
		for i := range job.Tasks {
			td := &job.Tasks[i]
			spec, err := td.Spec()
			if err != nil {
				return nil, fmt.Errorf("transform: %w", err)
			}
			tags := core.TaggedValues{
				core.TagClass:    spec.Class,
				core.TagMemory:   fmt.Sprintf("%d", spec.Req.MemoryMB),
				core.TagRunModel: spec.Req.RunModel.String(),
			}
			if spec.Archive != "" {
				tags[core.TagJar] = spec.Archive
			}
			for pi, p := range spec.Params {
				tags.SetParam(pi, string(p.Type), p.Value)
			}
			if err := g.AddNode(&core.Node{Name: td.Name, Kind: core.KindAction, Tagged: tags}); err != nil {
				return nil, err
			}
		}
		if err := g.AddNode(&core.Node{Name: "__final", Kind: core.KindFinal}); err != nil {
			return nil, err
		}
		for _, root := range job.Roots() {
			if err := g.AddTransition("__initial", root); err != nil {
				return nil, err
			}
		}
		for i := range job.Tasks {
			td := &job.Tasks[i]
			for _, dep := range td.DependsList() {
				if err := g.AddTransition(dep, td.Name); err != nil {
					return nil, err
				}
			}
		}
		for _, leaf := range job.Leaves() {
			if err := g.AddTransition(leaf, "__final"); err != nil {
				return nil, err
			}
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("transform: reconstructed graph: %w", err)
		}
		if err := client.AddJob(g); err != nil {
			return nil, err
		}
	}
	return client, nil
}

// XMI2CNX is the end-to-end transformation the paper names: it reads an XMI
// document and writes the corresponding CNX client descriptor.
func XMI2CNX(r io.Reader, w io.Writer, opts Options) error {
	doc, err := xmi.Parse(r)
	if err != nil {
		return fmt.Errorf("transform: xmi2cnx: %w", err)
	}
	client, err := FromXMI(doc)
	if err != nil {
		return fmt.Errorf("transform: xmi2cnx: %w", err)
	}
	cdoc, err := ModelToCNX(client, opts)
	if err != nil {
		return fmt.Errorf("transform: xmi2cnx: %w", err)
	}
	if err := cdoc.Encode(w); err != nil {
		return fmt.Errorf("transform: xmi2cnx: %w", err)
	}
	return nil
}

// XMI2CNXString is XMI2CNX over strings, convenient for tools and tests.
func XMI2CNXString(in string, opts Options) (string, error) {
	var sb strings.Builder
	if err := XMI2CNX(strings.NewReader(in), &sb, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}
