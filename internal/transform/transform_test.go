package transform

import (
	"strings"
	"testing"

	"cn/internal/cnx"
	"cn/internal/core"
	"cn/internal/task"
	"cn/internal/xmi"
)

// buildFig3Client builds the Figure 3 model (explicit concurrency, 5
// workers) wrapped in a client.
func buildFig3Client(t *testing.T) *core.Client {
	t.Helper()
	g, err := core.SplitWorkerJoin("transclosure",
		core.TaskTags("tasksplit.jar", "org.jhpc.cn2.transcloser.TaskSplit", 1000, "RUN_AS_THREAD_IN_TM"),
		core.TaskTags("taskjoin.jar", "org.jhpc.cn2.transcloser.TaskJoin", 1000, "RUN_AS_THREAD_IN_TM"),
		"tctask",
		core.TaskTags("tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask", 1000, "RUN_AS_THREAD_IN_TM"),
		5)
	if err != nil {
		t.Fatal(err)
	}
	// The splitter takes the matrix file, like Figure 2.
	g.Node("split").Tagged.SetParam(0, "String", "matrix.txt")
	g.Node("join").Tagged.SetParam(0, "String", "matrix.txt")
	c := core.NewClient("TransClosure")
	if err := c.AddJob(g); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModelToCNXFig2Shape(t *testing.T) {
	client := buildFig3Client(t)
	doc, err := ModelToCNX(client, Options{Log: "client.log", Port: 5666})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Client.Class != "TransClosure" || doc.Client.Port != 5666 {
		t.Errorf("client = %+v", doc.Client)
	}
	job := &doc.Client.Jobs[0]
	if len(job.Tasks) != 7 {
		t.Fatalf("tasks = %d", len(job.Tasks))
	}
	split := job.Task("split")
	if split == nil || split.Jar != "tasksplit.jar" || len(split.DependsList()) != 0 {
		t.Errorf("split = %+v", split)
	}
	w2 := job.Task("tctask2")
	if w2 == nil {
		t.Fatal("tctask2 missing")
	}
	if got := w2.DependsList(); len(got) != 1 || got[0] != "split" {
		t.Errorf("tctask2 depends = %v", got)
	}
	spec, err := w2.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := spec.Params[0].Int(); v != 2 {
		t.Errorf("tctask2 pvalue0 = %v (Figure 4 wants 2)", v)
	}
	join := job.Task("join")
	if got := join.DependsList(); len(got) != 5 {
		t.Errorf("join depends = %v", got)
	}
	// The document must serialize and re-validate.
	s, err := doc.EncodeString()
	if err != nil {
		t.Fatal(err)
	}
	re, err := cnx.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToXMIFromXMIRoundTrip(t *testing.T) {
	client := buildFig3Client(t)
	doc, err := ToXMI(client)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize to XML and parse back.
	xmlText, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := xmi.ParseString(xmlText)
	if err != nil {
		t.Fatal(err)
	}
	client2, err := FromXMI(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if client2.Name != "TransClosure" {
		t.Errorf("client name = %q", client2.Name)
	}
	g := client2.Job("transclosure")
	if g == nil {
		t.Fatal("job lost")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if got := deps["join"]; len(got) != 5 {
		t.Errorf("join deps after round trip = %v", got)
	}
	n := g.Node("tctask2")
	if n.Tagged.Get(core.TagJar) != "tctask.jar" {
		t.Errorf("tags lost: %v", n.Tagged)
	}
}

func TestXMI2CNXEndToEnd(t *testing.T) {
	client := buildFig3Client(t)
	doc, err := ToXMI(client)
	if err != nil {
		t.Fatal(err)
	}
	xmlText, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	out, err := XMI2CNXString(xmlText, Options{Port: 5666})
	if err != nil {
		t.Fatal(err)
	}
	cdoc, err := cnx.ParseString(out)
	if err != nil {
		t.Fatalf("output not parseable: %v\n%s", err, out)
	}
	if err := cdoc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cdoc.Client.Jobs[0].Tasks) != 7 {
		t.Errorf("tasks = %d", len(cdoc.Client.Jobs[0].Tasks))
	}
	if !strings.Contains(out, `class="org.jhpc.cn2.trnsclsrtask.TCTask"`) {
		t.Errorf("output missing worker class:\n%s", out)
	}
}

func TestXMI2CNXBadInput(t *testing.T) {
	if _, err := XMI2CNXString("<not-xmi", Options{}); err == nil {
		t.Error("malformed input accepted")
	}
	if _, err := XMI2CNXString("<XMI></XMI>", Options{}); err == nil {
		t.Error("empty XMI accepted (no graphs)")
	}
}

func TestDynamicModelToCNX(t *testing.T) {
	g, err := core.NewBuilder("dyn").
		Initial("i").
		Action("split", core.TaskTags("s.jar", "Split", 500, "RUN_AS_THREAD_IN_TM")).
		DynamicAction("worker", core.TaskTags("w.jar", "Worker", 500, "RUN_AS_THREAD_IN_TM"), "*", "rows").
		Action("join", core.TaskTags("j.jar", "Join", 500, "RUN_AS_THREAD_IN_TM")).
		Final("f").
		Flows("i", "split", "worker", "join", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	client := core.NewClient("Dyn")
	if err := client.AddJob(g); err != nil {
		t.Fatal(err)
	}

	// Without a provider, lowering must fail.
	if _, err := ModelToCNX(client, Options{}); err == nil {
		t.Error("dynamic model without provider accepted")
	}

	doc, err := ModelToCNX(client, Options{Args: core.FixedArgs(3)})
	if err != nil {
		t.Fatal(err)
	}
	job := &doc.Client.Jobs[0]
	if len(job.Tasks) != 5 { // split + 3 workers + join
		t.Fatalf("tasks = %d", len(job.Tasks))
	}
	for i := 1; i <= 3; i++ {
		w := job.Task("worker" + string(rune('0'+i)))
		if w == nil {
			t.Fatalf("worker%d missing", i)
		}
		spec, err := w.Spec()
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := spec.Params[0].Int(); v != i {
			t.Errorf("worker%d param = %d", i, v)
		}
	}
	if got := job.Task("join").DependsList(); len(got) != 3 {
		t.Errorf("join depends = %v", got)
	}
}

func TestCNXToModel(t *testing.T) {
	src := `<cn2><client class="C" port="7">
	  <job name="j">
	    <task name="a" jar="a.jar" class="A"/>
	    <task name="b" jar="b.jar" class="B" depends="a">
	      <param type="Integer">9</param>
	    </task>
	    <task name="c" jar="c.jar" class="Cc" depends="a"/>
	    <task name="d" jar="d.jar" class="D" depends="b,c"/>
	  </job>
	</client></cn2>`
	cdoc, err := cnx.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	client, err := CNXToModel(cdoc)
	if err != nil {
		t.Fatal(err)
	}
	if client.Name != "C" || client.Port != 7 {
		t.Errorf("client = %+v", client)
	}
	g := client.Job("j")
	if g == nil {
		t.Fatal("job missing")
	}
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if got := deps["d"]; len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("d deps = %v", got)
	}
	params, err := g.Node("b").Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := params[0].Int(); v != 9 {
		t.Errorf("b param = %v", params)
	}
}

func TestCNXModelCNXFixedPoint(t *testing.T) {
	// Lowering a lifted descriptor must preserve the task set and depends.
	client := buildFig3Client(t)
	doc1, err := ModelToCNX(client, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := CNXToModel(doc1)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ModelToCNX(lifted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := &doc1.Client.Jobs[0], &doc2.Client.Jobs[0]
	if len(j1.Tasks) != len(j2.Tasks) {
		t.Fatalf("task count changed: %d -> %d", len(j1.Tasks), len(j2.Tasks))
	}
	for i := range j1.Tasks {
		a, b := j1.Task(j1.Tasks[i].Name), j2.Task(j1.Tasks[i].Name)
		if b == nil {
			t.Fatalf("task %q lost", j1.Tasks[i].Name)
		}
		if a.Class != b.Class || a.Jar != b.Jar {
			t.Errorf("task %q changed: %+v vs %+v", a.Name, a, b)
		}
		ad, bd := a.DependsList(), b.DependsList()
		if len(ad) != len(bd) {
			t.Errorf("task %q depends changed: %v vs %v", a.Name, ad, bd)
		}
	}
}

func TestFromXMIUnnamedPseudostates(t *testing.T) {
	// Pseudostates without names (the common tool export) must get unique
	// names from their ids.
	doc := &xmi.Document{
		ModelName: "M",
		TagDefs:   []xmi.TagDef{{ID: "td1", Name: "class"}},
		Graphs: []*xmi.ActivityGraph{{
			ID: "g1", Name: "j",
			Vertices: []xmi.Vertex{
				{ID: "v1", Kind: xmi.VertexInitial},
				{ID: "v2", Name: "a", Kind: xmi.VertexAction,
					Tagged: []xmi.TaggedValue{{ID: "tv1", TagDefID: "td1", Value: "A"}}},
				{ID: "v3", Kind: xmi.VertexFinal},
			},
			Transitions: []xmi.Transition{
				{ID: "t1", SourceID: "v1", TargetID: "v2"},
				{ID: "t2", SourceID: "v2", TargetID: "v3"},
			},
		}},
	}
	client, err := FromXMI(doc)
	if err != nil {
		t.Fatal(err)
	}
	g := client.Job("j")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Node("v1") == nil || g.Node("v3") == nil {
		t.Error("pseudostates not named by id")
	}
}

func TestFromXMIDuplicateNames(t *testing.T) {
	doc := &xmi.Document{
		Graphs: []*xmi.ActivityGraph{{
			ID: "g1", Name: "j",
			Vertices: []xmi.Vertex{
				{ID: "v1", Name: "same", Kind: xmi.VertexAction},
				{ID: "same", Name: "same", Kind: xmi.VertexAction},
			},
		}},
	}
	if _, err := FromXMI(doc); err == nil {
		t.Error("duplicate vertex names accepted")
	}
}

func TestToXMIInvalidClient(t *testing.T) {
	if _, err := ToXMI(core.NewClient("empty")); err == nil {
		t.Error("client without jobs accepted")
	}
}

func TestModelToCNXMissingClass(t *testing.T) {
	g, err := core.NewBuilder("j").
		Initial("i").
		Action("a", core.Tags(core.TagJar, "a.jar")). // no class tag
		Final("f").
		Flows("i", "a", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewClient("C")
	if err := c.AddJob(g); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelToCNX(c, Options{}); err == nil {
		t.Error("action state without class accepted")
	}
}

func TestArgTableDrivenExpansion(t *testing.T) {
	g, err := core.NewBuilder("j").
		Initial("i").
		DynamicAction("w", core.TaskTags("w.jar", "W", 100, "RUN_AS_THREAD_IN_TM"), "2", "pair").
		Final("f").
		Flows("i", "w", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewClient("C")
	if err := c.AddJob(g); err != nil {
		t.Fatal(err)
	}
	args := core.ArgTable(map[string][][]task.Param{
		"pair": {
			{{Type: task.TypeString, Value: "left"}},
			{{Type: task.TypeString, Value: "right"}},
		},
	})
	doc, err := ModelToCNX(c, Options{Args: args})
	if err != nil {
		t.Fatal(err)
	}
	job := &doc.Client.Jobs[0]
	if len(job.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(job.Tasks))
	}
	s0, err := job.Tasks[0].Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s0.Params[0].Value != "left" {
		t.Errorf("first invocation param = %v", s0.Params)
	}
}
