// Async job lifecycle API: the portal face of cn/internal/jobstore.
// Submissions are accepted immediately (202 + job id) and executed by the
// store's worker pool; clients poll status and fetch results, mirroring
// how production cluster frontends (e.g. ipfs-cluster's REST API) treat
// jobs as queryable system state rather than open HTTP requests.

package portal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/dataplane"
	"cn/internal/jobmgr"
	"cn/internal/jobstore"
	"cn/internal/metrics"
	"cn/internal/protocol"
	"cn/internal/trace"
	"cn/internal/transport"
)

// runTracker aggregates live task counts for one submission by querying
// the hosting JobManagers' schedules. A nil tracker is valid and inert
// (used by the synchronous endpoints).
type runTracker struct {
	cluster *cluster.Cluster

	mu    sync.Mutex
	total int // CN jobs declared in the descriptor
	jobs  []trackedJob
}

type trackedJob struct {
	jmNode string
	jobID  string
	cnJob  *api.Job
	done   bool
}

// add registers a created CN job for progress aggregation.
func (t *runTracker) add(cnJob *api.Job) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.jobs = append(t.jobs, trackedJob{jmNode: cnJob.JMNode, jobID: cnJob.ID, cnJob: cnJob})
	t.mu.Unlock()
}

// finish marks a CN job as terminally handled.
func (t *runTracker) finish(jobID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.jobs {
		if t.jobs[i].jobID == jobID {
			t.jobs[i].done = true
		}
	}
	t.mu.Unlock()
}

// progress queries each tracked job's JobManager schedule census and
// aggregates. JobManagers keep finished jobs as tombstones, so final
// counts stay available after completion. When a hosting node died, the
// client-observed event counts stand in for the lost schedule.
func (t *runTracker) progress() jobstore.Progress {
	t.mu.Lock()
	jobs := make([]trackedJob, len(t.jobs))
	copy(jobs, t.jobs)
	total := t.total
	t.mu.Unlock()
	p := jobstore.Progress{Jobs: total}
	var agg jobmgr.Progress
	for _, tj := range jobs {
		if tj.done {
			p.JobsDone++
		}
		if srv := t.cluster.Server(tj.jmNode); srv != nil {
			if jp, ok := srv.JobManager().JobProgress(tj.jobID); ok {
				agg = agg.Add(jp)
				continue
			}
		}
		cp := tj.cnJob.Progress()
		// Started counts events, so a recovered task's re-start inflates
		// it past Tasks; clamp Running by the tasks not yet terminal.
		running := min(cp.Started-cp.Completed-cp.Failed, cp.Tasks-cp.Completed-cp.Failed)
		agg = agg.Add(jobmgr.Progress{
			Total:   cp.Tasks,
			Pending: max(cp.Tasks-cp.Started, 0),
			Running: max(running, 0),
			Done:    cp.Completed,
			Failed:  cp.Failed,
			Retried: cp.Retried,
		})
	}
	p.TasksTotal = agg.Total
	p.TasksPending = agg.Pending + agg.Ready
	p.TasksRunning = agg.Running
	p.TasksDone = agg.Done
	p.TasksFailed = agg.Failed + agg.Cancelled
	p.TasksRetried = agg.Retried
	p.TSOps = agg.TSOps
	return p
}

// runSubmission is the jobstore executor: compile (queued -> compiling),
// then execute (running) with abort support via ctx.
func (p *Portal) runSubmission(ctx context.Context, j *jobstore.Job) (any, error) {
	sub := j.Submission()
	doc, err := p.compile(sub.Format, sub.Body, sub.Invocations)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j.MarkRunning()
	tr := &runTracker{cluster: p.cfg.Cluster, total: len(doc.Client.Jobs)}
	j.SetProgress(tr.progress)
	ctx, cancel := context.WithTimeout(ctx, p.cfg.RunTimeout)
	defer cancel()
	resp, err := p.executeDoc(ctx, doc, tr)
	if err != nil {
		return resp, err
	}
	return resp, nil
}

// sniffFormat guesses a submission's format from its content when the
// client did not say: CNX documents carry the <cn2> root element.
func sniffFormat(body []byte) string {
	if bytes.Contains(body, []byte("<cn2")) {
		return jobstore.FormatCNX
	}
	return jobstore.FormatXMI
}

func (p *Portal) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	n, err := invocations(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "":
		format = sniffFormat(body)
	case jobstore.FormatXMI, jobstore.FormatCNX:
	default:
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("portal: unknown format %q", format))
		return
	}
	rec, err := p.store.Submit(jobstore.Submission{
		Format:      format,
		Body:        body,
		Invocations: n,
		Label:       r.URL.Query().Get("label"),
	})
	switch {
	case errors.Is(err, jobstore.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		errorJSON(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/api/jobs/"+rec.ID)
	writeJSON(w, http.StatusAccepted, rec)
}

// JobList is the GET /api/jobs response body.
type JobList struct {
	Count int                `json:"count"`
	Jobs  []*jobstore.Record `json:"jobs"`
}

func (p *Portal) handleListJobs(w http.ResponseWriter, r *http.Request) {
	var filter jobstore.State
	if q := r.URL.Query().Get("state"); q != "" {
		st, err := jobstore.ParseState(q)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, err)
			return
		}
		filter = st
	}
	jobs := p.store.List(filter)
	writeJSON(w, http.StatusOK, JobList{Count: len(jobs), Jobs: jobs})
}

func (p *Portal) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := p.store.Get(id)
	if !ok {
		errorJSON(w, http.StatusNotFound, fmt.Errorf("portal: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// JobResultResponse is the GET /api/jobs/{id}/result body.
type JobResultResponse struct {
	ID     string         `json:"id"`
	State  jobstore.State `json:"state"`
	Error  string         `json:"error,omitempty"`
	Result any            `json:"result,omitempty"`
}

func (p *Portal) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, result, state, ok := p.store.ResultRecord(id)
	if !ok {
		errorJSON(w, http.StatusNotFound, fmt.Errorf("portal: unknown job %q", id))
		return
	}
	if !state.Terminal() {
		errorJSON(w, http.StatusConflict,
			fmt.Errorf("portal: job %s is %s; result not ready", id, state))
		return
	}
	writeJSON(w, http.StatusOK, JobResultResponse{
		ID:     id,
		State:  state,
		Error:  rec.Error,
		Result: result,
	})
}

// TraceResponse is the GET /api/jobs/{id}/trace body: the job's span
// timeline as assembled by its (current) JobManager. The id may be a CN
// job id or a portal submission id; a submission's response merges the
// spans of every CN job it ran.
type TraceResponse struct {
	ID    string       `json:"id"`
	Count int          `json:"count"`
	Spans []trace.Span `json:"spans"`
}

func (p *Portal) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// A CN job id answers directly from whichever live JobManager holds
	// the job — across failover that is the adopter's merged record.
	if spans, ok := p.cfg.Cluster.JobTrace(id); ok {
		writeJSON(w, http.StatusOK, TraceResponse{ID: id, Count: len(spans), Spans: spans})
		return
	}
	// A portal submission id resolves through its result to the CN jobs
	// it ran.
	if _, result, _, ok := p.store.ResultRecord(id); ok {
		if rr, isRun := result.(*RunResponse); isRun {
			var spans []trace.Span
			for _, jr := range rr.Jobs {
				if s, ok := p.cfg.Cluster.JobTrace(jr.JobID); ok {
					spans = append(spans, s...)
				}
			}
			trace.SortSpans(spans)
			writeJSON(w, http.StatusOK, TraceResponse{ID: id, Count: len(spans), Spans: spans})
			return
		}
		errorJSON(w, http.StatusConflict,
			fmt.Errorf("portal: job %s has no trace yet (not finished, or result evicted)", id))
		return
	}
	errorJSON(w, http.StatusNotFound, fmt.Errorf("portal: unknown job %q (no hosted CN job or submission by that id)", id))
}

func (p *Portal) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := p.store.Delete(id)
	if errors.Is(err, jobstore.ErrUnknownJob) {
		errorJSON(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// MetricsResponse is the GET /api/metrics body. Wire carries the cluster
// fabric's transport counters — bytes on the wire and messages by kind —
// so codec-level wins (and regressions) are observable in production, not
// only in benchmarks.
type MetricsResponse struct {
	Jobstore  jobstore.Stats           `json:"jobstore"`
	Metrics   metrics.RegistrySnapshot `json:"metrics"`
	Wire      transport.WireSnapshot   `json:"wire"`
	Dataplane DataplaneMetrics         `json:"dataplane"`
	// Placement aggregates every JobManager's resource-directory counters:
	// solicit rounds, offer-cache activity, and the locality scorer's
	// warm-hit / cold-miss / bytes-saved figures.
	Placement PlacementMetrics `json:"placement"`
	// Nodes is the per-node breakdown: every live node's registry
	// snapshot and span-store depth, scraped over the wire (STATS_PULL)
	// at request time. A node that fails to answer within the scrape
	// window is simply absent.
	Nodes map[string]*protocol.StatsReportResp `json:"nodes,omitempty"`
}

// scrapeTimeout bounds the whole per-node STATS_PULL sweep on a metrics
// request; nodes that miss the window drop out of the breakdown.
const scrapeTimeout = 2 * time.Second

// scrapeNodes pulls every live node's registry snapshot concurrently.
func (p *Portal) scrapeNodes() map[string]*protocol.StatsReportResp {
	nodes := p.cfg.Cluster.Nodes()
	ctx, cancel := context.WithTimeout(context.Background(), scrapeTimeout)
	defer cancel()
	var mu sync.Mutex
	out := make(map[string]*protocol.StatsReportResp, len(nodes))
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			resp, err := p.client.Scrape(ctx, node)
			if err != nil {
				p.log.Warn("stats scrape failed", "node", node, "err", err)
				return
			}
			mu.Lock()
			out[node] = resp
			mu.Unlock()
		}(node)
	}
	wg.Wait()
	return out
}

// DataplaneMetrics summarizes the direct task-to-task data plane: broker
// counters from the JobManagers, TM→TM transfer bytes from the
// TaskManagers, and the shared digest-cache hit/miss figures.
type DataplaneMetrics struct {
	Broker       dataplane.StatsSnapshot `json:"broker"`
	ServedBytes  int64                   `json:"served_bytes"`  // TM→TM bytes producers served
	FetchedBytes int64                   `json:"fetched_bytes"` // TM→TM bytes consumers pulled
	CacheHits    int64                   `json:"cache_hits"`
	CacheMisses  int64                   `json:"cache_misses"`
}

// PlacementMetrics is placement.Stats with stable JSON names.
type PlacementMetrics struct {
	SolicitRounds int64 `json:"solicit_rounds"`
	CacheHits     int64 `json:"cache_hits"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	WarmHits      int64 `json:"warm_hits"`
	ColdMisses    int64 `json:"cold_misses"`
	BytesSaved    int64 `json:"bytes_saved"`
}

func (p *Portal) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	served, fetched := p.cfg.Cluster.DataplaneBytes()
	hits, misses := p.cfg.Cluster.CacheStats()
	ps := p.cfg.Cluster.PlacementStats()
	writeJSON(w, http.StatusOK, MetricsResponse{
		Jobstore: p.store.Stats(),
		Metrics:  p.store.Metrics().Snapshot(),
		Wire:     p.cfg.Cluster.WireStats(),
		Dataplane: DataplaneMetrics{
			Broker:       p.cfg.Cluster.DataplaneStats(),
			ServedBytes:  served,
			FetchedBytes: fetched,
			CacheHits:    hits,
			CacheMisses:  misses,
		},
		Placement: PlacementMetrics{
			SolicitRounds: ps.SolicitRounds,
			CacheHits:     ps.CacheHits,
			Invalidations: ps.Invalidations,
			Evictions:     ps.Evictions,
			WarmHits:      ps.WarmHits,
			ColdMisses:    ps.ColdMisses,
			BytesSaved:    ps.BytesSaved,
		},
		Nodes: p.scrapeNodes(),
	})
}
