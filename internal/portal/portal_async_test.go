package portal_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cn/internal/cluster"
	"cn/internal/jobstore"
	"cn/internal/portal"
	"cn/internal/task"
)

// asyncRegistry adds a slow, abortable class to the shared test registry.
var asyncRegistry = func() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("test.PortalNoop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	r.MustRegister("test.PortalSleep", func() task.Task {
		return task.Func(func(tc task.Context) error {
			// Runs ~30s unless the job is cancelled.
			for i := 0; i < 3000; i++ {
				if tc.Done() {
					return nil
				}
				time.Sleep(10 * time.Millisecond)
			}
			return nil
		})
	})
	return r
}()

// startAsyncPortal boots a cluster plus a portal with a small worker pool
// and tight queue so the tests can exercise saturation deterministically.
func startAsyncPortal(t *testing.T, workers, queueDepth int) *httptest.Server {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: 3, Registry: asyncRegistry, MemoryMB: 64000, MaxJobs: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	p, err := portal.New(portal.Config{
		Cluster:    c,
		RunTimeout: 60 * time.Second,
		Workers:    workers,
		QueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return srv
}

const noopCNX = `<cn2><client class="Async"><job name="j">
  <task name="a" class="test.PortalNoop"><task-req><memory>100</memory></task-req></task>
  <task name="b" class="test.PortalNoop" depends="a"><task-req><memory>100</memory></task-req></task>
</job></client></cn2>`

const sleepCNX = `<cn2><client class="AsyncSleep"><job name="s">
  <task name="a" class="test.PortalSleep"><task-req><memory>100</memory></task-req></task>
</job></client></cn2>`

// submitCNX posts a CNX body to /api/jobs and decodes the record.
func submitCNX(t *testing.T, srv *httptest.Server, body string) *jobstore.Record {
	t.Helper()
	resp, err := http.Post(srv.URL+"/api/jobs?format=cnx", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var rec jobstore.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.State != jobstore.StateQueued {
		t.Fatalf("record = %+v", rec)
	}
	return &rec
}

// getJob fetches /api/jobs/{id}.
func getJob(t *testing.T, srv *httptest.Server, id string) *jobstore.Record {
	t.Helper()
	resp, err := http.Get(srv.URL + "/api/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var rec jobstore.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return &rec
}

// pollUntil polls job status until pred holds.
func pollUntil(t *testing.T, srv *httptest.Server, id string, pred func(*jobstore.Record) bool, what string) *jobstore.Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := getJob(t, srv, id)
		if pred(rec) {
			return rec
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s: timed out waiting for %s", id, what)
	return nil
}

// TestAsyncSubmitBeyondPool is the headline acceptance scenario: more
// submissions than workers all return ids immediately and every one
// reaches a terminal state via polling.
func TestAsyncSubmitBeyondPool(t *testing.T) {
	const workers, jobs = 2, 5
	srv := startAsyncPortal(t, workers, jobs)
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		rec := submitCNX(t, srv, noopCNX)
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		final := pollUntil(t, srv, id, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal state")
		if final.State != jobstore.StateDone {
			t.Errorf("job %s: state %s (error %q)", id, final.State, final.Error)
		}
		// Fetch the execution result.
		resp, err := http.Get(srv.URL + "/api/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var res portal.JobResultResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || res.State != jobstore.StateDone {
			t.Fatalf("result %s: status %d state %s", id, resp.StatusCode, res.State)
		}
		raw, _ := json.Marshal(res.Result)
		if !strings.Contains(string(raw), `"failed":false`) {
			t.Errorf("job %s result = %s", id, raw)
		}
	}
}

// TestAsyncProgressAndResultConflict checks in-flight status carries task
// counts from the JobManager schedule and that the result endpoint answers
// 409 before the job is terminal.
func TestAsyncProgressAndResultConflict(t *testing.T) {
	srv := startAsyncPortal(t, 1, 4)
	rec := submitCNX(t, srv, sleepCNX)
	running := pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool {
		return r.State == jobstore.StateRunning && r.Progress != nil && r.Progress.TasksRunning > 0
	}, "running with task counts")
	if running.Progress.TasksTotal != 1 || running.Progress.Jobs != 1 {
		t.Errorf("progress = %+v", running.Progress)
	}
	resp, err := http.Get(srv.URL + "/api/jobs/" + rec.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running: status %d, want 409", resp.StatusCode)
	}
	abortJob(t, srv, rec.ID)
	pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool { return r.State == jobstore.StateAborted }, "aborted")
}

// abortJob issues DELETE /api/jobs/{id}.
func abortJob(t *testing.T, srv *httptest.Server, id string) *jobstore.Record {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("delete %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var rec jobstore.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return &rec
}

// TestAsyncAbort aborts a running job and a queued job.
func TestAsyncAbort(t *testing.T) {
	srv := startAsyncPortal(t, 1, 4)
	running := submitCNX(t, srv, sleepCNX)
	pollUntil(t, srv, running.ID, func(r *jobstore.Record) bool { return r.State == jobstore.StateRunning }, "running")
	queued := submitCNX(t, srv, noopCNX)

	// Abort the queued job first: it must terminate without ever running.
	qrec := abortJob(t, srv, queued.ID)
	if qrec.State != jobstore.StateAborted {
		t.Errorf("queued abort state = %s", qrec.State)
	}
	if qrec.StartedAt != nil {
		t.Errorf("aborted queued job has StartedAt: %+v", qrec)
	}

	// Abort the running job: context cancellation tears down the CN job.
	abortJob(t, srv, running.ID)
	final := pollUntil(t, srv, running.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal after abort")
	if final.State != jobstore.StateAborted {
		t.Errorf("running abort state = %s (error %q)", final.State, final.Error)
	}
}

// TestAsyncBackpressure fills the single-worker, depth-1 queue and expects
// 429 + Retry-After on the next submission.
func TestAsyncBackpressure(t *testing.T) {
	srv := startAsyncPortal(t, 1, 1)
	running := submitCNX(t, srv, sleepCNX)
	pollUntil(t, srv, running.ID, func(r *jobstore.Record) bool { return r.State == jobstore.StateRunning }, "running")
	queued := submitCNX(t, srv, noopCNX) // fills the queue

	resp, err := http.Post(srv.URL+"/api/jobs?format=cnx", "application/xml", strings.NewReader(noopCNX))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	abortJob(t, srv, queued.ID)
	abortJob(t, srv, running.ID)
}

// TestAsyncFailedCompile submits garbage: the job must reach failed with
// the compile error recorded.
func TestAsyncFailedCompile(t *testing.T) {
	srv := startAsyncPortal(t, 1, 4)
	resp, err := http.Post(srv.URL+"/api/jobs?format=xmi", "application/xml", strings.NewReader("not xml <"))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobstore.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal")
	if final.State != jobstore.StateFailed || final.Error == "" {
		t.Errorf("record = %+v", final)
	}
}

// TestAsyncListAndFilter exercises GET /api/jobs with and without state
// filters, plus filter validation.
func TestAsyncListAndFilter(t *testing.T) {
	srv := startAsyncPortal(t, 1, 8)
	running := submitCNX(t, srv, sleepCNX)
	pollUntil(t, srv, running.ID, func(r *jobstore.Record) bool { return r.State == jobstore.StateRunning }, "running")
	for i := 0; i < 2; i++ {
		submitCNX(t, srv, noopCNX)
	}
	var list portal.JobList
	resp, err := http.Get(srv.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Count != 3 {
		t.Errorf("count = %d, want 3", list.Count)
	}
	resp, err = http.Get(srv.URL + "/api/jobs?state=queued")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Count != 2 {
		t.Errorf("queued count = %d, want 2", list.Count)
	}
	resp, err = http.Get(srv.URL + "/api/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus filter status = %d", resp.StatusCode)
	}
	abortJob(t, srv, running.ID)
}

// TestMetricsEndpoint checks /api/metrics reports queue depth, jobs by
// state, and latency histograms after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	srv := startAsyncPortal(t, 2, 8)
	rec := submitCNX(t, srv, noopCNX)
	pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal")

	resp, err := http.Get(srv.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m portal.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobstore.Workers != 2 || m.Jobstore.QueueCapacity != 8 {
		t.Errorf("jobstore stats = %+v", m.Jobstore)
	}
	if m.Jobstore.JobsByState[jobstore.StateDone] != 1 {
		t.Errorf("jobs_by_state = %v", m.Jobstore.JobsByState)
	}
	if m.Jobstore.Submitted != 1 {
		t.Errorf("submitted = %d", m.Jobstore.Submitted)
	}
	if m.Metrics.Histograms["jobstore.run_ms"].Count != 1 {
		t.Errorf("histograms = %v", m.Metrics.Histograms)
	}
	if _, ok := m.Metrics.Gauges["jobstore.queue_depth"]; !ok {
		t.Errorf("gauges = %v", m.Metrics.Gauges)
	}
	// The cluster executed a job, so the fabric's wire counters must show
	// traffic: messages, encoded bytes, and per-kind send counts.
	if m.Wire.Sent == 0 || m.Wire.BytesSent == 0 {
		t.Errorf("wire counters empty: %+v", m.Wire)
	}
	if m.Wire.ByKind["CREATE_TASKS"] == 0 {
		t.Errorf("wire by-kind counters = %v", m.Wire.ByKind)
	}
}

// TestAsyncUnknownJob covers 404s on status, result, and delete.
func TestAsyncUnknownJob(t *testing.T) {
	srv := startAsyncPortal(t, 1, 4)
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/api/jobs/nope"},
		{http.MethodGet, "/api/jobs/nope/result"},
		{http.MethodDelete, "/api/jobs/nope"},
	} {
		r, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

// TestAsyncXMISubmission runs the full model-driven path asynchronously:
// XMI in, compiled to CNX by the worker, executed, results polled.
func TestAsyncXMISubmission(t *testing.T) {
	srv := startAsyncPortal(t, 1, 4)
	resp, err := http.Post(srv.URL+"/api/jobs?label=model-run", "application/xml", strings.NewReader(noopXMI(t)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var rec jobstore.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.Format != jobstore.FormatXMI || rec.Label != "model-run" {
		t.Errorf("record = %+v", rec)
	}
	final := pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal")
	if final.State != jobstore.StateDone {
		t.Errorf("state = %s (error %q)", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.TasksDone != 2 {
		t.Errorf("final progress = %+v", final.Progress)
	}
}

// TestResultTTLEndToEnd uses a tiny TTL portal to show records vanish.
func TestResultTTLEndToEnd(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Nodes: 3, Registry: asyncRegistry, MemoryMB: 64000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	p, err := portal.New(portal.Config{Cluster: c, Workers: 1, QueueDepth: 4, ResultTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)

	rec := submitCNX(t, srv, noopCNX)
	pollUntil(t, srv, rec.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal")
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/api/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record never evicted over HTTP")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
