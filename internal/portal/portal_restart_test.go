package portal_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cn/internal/cluster"
	"cn/internal/jobstore"
	"cn/internal/portal"
)

// startDurablePortal boots a cluster plus a portal whose job records are
// backed by a WAL under dir.
func startDurablePortal(t *testing.T, dir string, workers, queueDepth int) *httptest.Server {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: 3, Registry: asyncRegistry, MemoryMB: 64000, MaxJobs: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	p, err := portal.New(portal.Config{
		Cluster:    c,
		RunTimeout: 60 * time.Second,
		Workers:    workers,
		QueueDepth: queueDepth,
		DataDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// copyDataDir snapshots the live portal's data directory — the moral
// equivalent of what a power cut leaves on disk. The WAL may be copied
// mid-append; replay handles the torn tail.
func copyDataDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPortalRestartServesSameJobs is the durability acceptance test at the
// HTTP surface: a portal with -data-dir dies ungracefully with a finished,
// a running, and a queued job on the books; a portal booted on the crash
// image serves the same job set via GET /api/jobs — the finished record
// exactly as it finished, the interrupted submissions re-queued and re-run.
func TestPortalRestartServesSameJobs(t *testing.T) {
	dir1 := t.TempDir()
	srv1 := startDurablePortal(t, dir1, 1, 8)

	// One job to completion, one wedged running (the single worker), one
	// stuck queued behind it.
	done := submitCNX(t, srv1, noopCNX)
	pollUntil(t, srv1, done.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "terminal")
	finished := getJob(t, srv1, done.ID)
	if finished.State != jobstore.StateDone {
		t.Fatalf("seed job state = %s (error %q)", finished.State, finished.Error)
	}
	running := submitCNX(t, srv1, sleepCNX)
	pollUntil(t, srv1, running.ID, func(r *jobstore.Record) bool { return r.State == jobstore.StateRunning }, "running")
	queued := submitCNX(t, srv1, noopCNX)

	// Power cut: snapshot the data directory out from under the live
	// portal. Everything fsynced up to this instant survives; nothing the
	// doomed portal does afterwards (including its graceful shutdown)
	// reaches the copy.
	dir2 := t.TempDir()
	copyDataDir(t, dir1, dir2)
	abortJob(t, srv1, running.ID) // release the original's worker

	// Reboot on the crash image: two workers so the replayed noop is not
	// starved behind the replayed sleep job.
	srv2 := startDurablePortal(t, dir2, 2, 8)

	var list portal.JobList
	resp, err := http.Get(srv2.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	states := make(map[string]jobstore.State, list.Count)
	for _, rec := range list.Jobs {
		states[rec.ID] = rec.State
	}
	for _, id := range []string{done.ID, running.ID, queued.ID} {
		if _, ok := states[id]; !ok {
			t.Errorf("job %s missing from restarted portal: %v", id, states)
		}
	}

	// The finished record replays exactly as it finished.
	rec := getJob(t, srv2, done.ID)
	if rec.State != jobstore.StateDone {
		t.Errorf("finished job state after restart = %s", rec.State)
	}
	if rec.FinishedAt == nil || !rec.FinishedAt.Equal(*finished.FinishedAt) {
		t.Errorf("finished job FinishedAt = %v, want %v", rec.FinishedAt, finished.FinishedAt)
	}

	// The queued submission re-runs to completion on the new portal.
	final := pollUntil(t, srv2, queued.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "replayed queued job terminal")
	if final.State != jobstore.StateDone {
		t.Errorf("replayed queued job state = %s (error %q)", final.State, final.Error)
	}

	// The job that was mid-run at the crash was re-queued; it is live again
	// (queued, running, or already re-finished) and still abortable.
	rec = getJob(t, srv2, running.ID)
	if rec.State == jobstore.StateFailed {
		t.Errorf("interrupted job replayed as failed: %q", rec.Error)
	}
	pollUntil(t, srv2, running.ID, func(r *jobstore.Record) bool {
		return r.State == jobstore.StateRunning || r.State.Terminal()
	}, "interrupted job re-running")
	if rec := getJob(t, srv2, running.ID); !rec.State.Terminal() {
		abortJob(t, srv2, running.ID)
		pollUntil(t, srv2, running.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "re-run aborted")
	}

	// A fresh submission on the restarted portal must not collide with any
	// replayed id.
	fresh := submitCNX(t, srv2, noopCNX)
	for _, old := range []string{done.ID, running.ID, queued.ID} {
		if fresh.ID == old {
			t.Fatalf("fresh submission reused replayed id %s", fresh.ID)
		}
	}
	if !strings.HasPrefix(fresh.ID, "job-") {
		t.Logf("fresh id = %s", fresh.ID) // informational; id scheme is store-internal
	}
	pollUntil(t, srv2, fresh.ID, func(r *jobstore.Record) bool { return r.State.Terminal() }, "fresh job terminal")
}
