// Package portal implements the paper's "Prototype Web interface to the CN
// cluster that accepts UML model in XMI format, translates the model to an
// executable, executes [the] model and displays or makes the results
// available for download", so that "the user does not need to log on to
// the subnet".
//
// Endpoints:
//
//	GET  /                  - HTML landing page
//	GET  /api/status        - cluster status (JSON)
//	POST /api/xmi2cnx       - XMI body in, CNX descriptor out
//	POST /api/cnx2go        - CNX body in, generated Go client program out
//	POST /api/run           - XMI body in, executes it, JSON results out
//	POST /api/run-cnx       - CNX body in, executes it, JSON results out
//
// Dynamic invocation states are expanded with ?invocations=N (default 4).
package portal

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/cnx"
	"cn/internal/codegen"
	"cn/internal/core"
	"cn/internal/protocol"
	"cn/internal/transform"
)

// maxBody bounds uploaded document size (4 MB).
const maxBody = 4 << 20

// Config parametrizes the portal.
type Config struct {
	// Cluster is the running CN deployment jobs execute on.
	Cluster *cluster.Cluster
	// RunTimeout bounds one execution request (0 = 60s).
	RunTimeout time.Duration
	// Logf receives request diagnostics; nil disables logging.
	Logf func(format string, args ...any)
}

// Portal is the web front end.
type Portal struct {
	cfg    Config
	client *api.Client
	mux    *http.ServeMux
}

// New creates a portal attached to the cluster.
func New(cfg Config) (*Portal, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("portal: nil cluster")
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 60 * time.Second
	}
	client, err := api.Initialize(cfg.Cluster.Network(), api.Options{
		ClientName:      "portal",
		DiscoveryWindow: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("portal: %w", err)
	}
	p := &Portal{cfg: cfg, client: client, mux: http.NewServeMux()}
	p.mux.HandleFunc("GET /", p.handleIndex)
	p.mux.HandleFunc("GET /api/status", p.handleStatus)
	p.mux.HandleFunc("POST /api/xmi2cnx", p.handleXMI2CNX)
	p.mux.HandleFunc("POST /api/cnx2go", p.handleCNX2Go)
	p.mux.HandleFunc("POST /api/run", p.handleRunXMI)
	p.mux.HandleFunc("POST /api/run-cnx", p.handleRunCNX)
	return p, nil
}

// Handler returns the portal's HTTP handler.
func (p *Portal) Handler() http.Handler { return p.mux }

// Close releases the portal's client.
func (p *Portal) Close() error { return p.client.Close() }

func (p *Portal) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf("[portal] "+format, args...)
	}
}

// errorJSON writes a JSON error response.
func errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readBody reads a bounded request body.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("portal: read body: %w", err)
	}
	if len(body) > maxBody {
		return nil, fmt.Errorf("portal: body exceeds %d bytes", maxBody)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("portal: empty body")
	}
	return body, nil
}

const indexHTML = `<!DOCTYPE html>
<html><head><title>Computational Neighborhood</title></head>
<body>
<h1>Computational Neighborhood</h1>
<p>Model-driven job/task composition for cluster computing.</p>
<ul>
<li>POST an XMI activity model to <code>/api/run</code> to execute it.</li>
<li>POST XMI to <code>/api/xmi2cnx</code> for the CNX descriptor.</li>
<li>POST CNX to <code>/api/cnx2go</code> for a generated Go client.</li>
<li>GET <code>/api/status</code> for cluster status.</li>
</ul>
</body></html>
`

func (p *Portal) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML)
}

// Status is the /api/status response body.
type Status struct {
	Nodes []string `json:"nodes"`
}

func (p *Portal) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Status{Nodes: p.cfg.Cluster.Nodes()})
}

// invocations parses the dynamic-invocation count query parameter.
func invocations(r *http.Request) (int, error) {
	q := r.URL.Query().Get("invocations")
	if q == "" {
		return 4, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("portal: bad invocations %q", q)
	}
	return n, nil
}

func (p *Portal) handleXMI2CNX(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	n, err := invocations(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	var out strings.Builder
	opts := transform.Options{Args: core.FixedArgs(n)}
	if err := transform.XMI2CNX(strings.NewReader(string(body)), &out, opts); err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = io.WriteString(w, out.String())
}

func (p *Portal) handleCNX2Go(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	doc, err := cnx.ParseString(string(body))
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	src, err := codegen.Generate(doc, codegen.Options{Source: "portal upload"})
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "text/x-go")
	_, _ = w.Write(src)
}

// RunResponse is the execution result body.
type RunResponse struct {
	Client string               `json:"client"`
	Jobs   map[string]JobResult `json:"jobs"`
}

// JobResult is one job's terminal status.
type JobResult struct {
	JobID    string            `json:"job_id"`
	Failed   bool              `json:"failed"`
	Err      string            `json:"error,omitempty"`
	TaskErrs map[string]string `json:"task_errors,omitempty"`
}

func (p *Portal) handleRunXMI(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	n, err := invocations(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	var cnxOut strings.Builder
	opts := transform.Options{Args: core.FixedArgs(n)}
	if err := transform.XMI2CNX(strings.NewReader(string(body)), &cnxOut, opts); err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	doc, err := cnx.ParseString(cnxOut.String())
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, err)
		return
	}
	p.execute(w, doc)
}

func (p *Portal) handleRunCNX(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	doc, err := cnx.ParseString(string(body))
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	p.execute(w, doc)
}

// execute runs every job of the descriptor and reports results.
func (p *Portal) execute(w http.ResponseWriter, doc *cnx.Document) {
	if err := doc.Validate(); err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RunTimeout)
	defer cancel()
	resp := RunResponse{Client: doc.Client.Class, Jobs: make(map[string]JobResult)}
	for ji := range doc.Client.Jobs {
		job := &doc.Client.Jobs[ji]
		specs, err := job.Specs()
		if err != nil {
			errorJSON(w, http.StatusUnprocessableEntity, err)
			return
		}
		p.logf("running job %q (%d tasks)", job.Name, len(specs))
		j, err := p.client.CreateJob(job.Name, protocol.JobRequirements{})
		if err != nil {
			errorJSON(w, http.StatusServiceUnavailable, err)
			return
		}
		failed := false
		for _, s := range specs {
			if err := j.CreateTask(s, nil); err != nil {
				resp.Jobs[job.Name] = JobResult{JobID: j.ID, Failed: true, Err: err.Error()}
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		res, err := j.Run(ctx)
		if err != nil {
			resp.Jobs[job.Name] = JobResult{JobID: j.ID, Failed: true, Err: err.Error()}
			continue
		}
		resp.Jobs[job.Name] = JobResult{
			JobID:    res.JobID,
			Failed:   res.Failed,
			Err:      res.Err,
			TaskErrs: res.TaskErrs,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
