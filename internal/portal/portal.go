// Package portal implements the paper's "Prototype Web interface to the CN
// cluster that accepts UML model in XMI format, translates the model to an
// executable, executes [the] model and displays or makes the results
// available for download", so that "the user does not need to log on to
// the subnet" — grown from the paper's one-shot upload page into an
// asynchronous job service backed by cn/internal/jobstore.
//
// Synchronous endpoints (the paper's original surface):
//
//	GET  /                  - HTML landing page
//	GET  /api/status        - cluster status (JSON)
//	POST /api/xmi2cnx       - XMI body in, CNX descriptor out
//	POST /api/cnx2go        - CNX body in, generated Go client program out
//	POST /api/run           - XMI body in, executes it, JSON results out
//	POST /api/run-cnx       - CNX body in, executes it, JSON results out
//
// Asynchronous job lifecycle API (submission decoupled from execution):
//
//	POST   /api/jobs           - submit XMI or CNX, returns a job id (202)
//	GET    /api/jobs           - list jobs, ?state= filters
//	GET    /api/jobs/{id}      - job status, timings, task counts
//	GET    /api/jobs/{id}/result - terminal job's results
//	DELETE /api/jobs/{id}      - abort an active job / forget a finished one
//	GET    /api/metrics        - queue depth, jobs-by-state, latency digests
//
// Dynamic invocation states are expanded with ?invocations=N (default 4).
package portal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/cnx"
	"cn/internal/codegen"
	"cn/internal/core"
	"cn/internal/jobstore"
	"cn/internal/logging"
	"cn/internal/protocol"
	"cn/internal/trace"
	"cn/internal/transform"
)

// maxBody bounds uploaded document size (4 MB).
const maxBody = 4 << 20

// Config parametrizes the portal.
type Config struct {
	// Cluster is the running CN deployment jobs execute on.
	Cluster *cluster.Cluster
	// RunTimeout bounds one execution request (0 = 60s).
	RunTimeout time.Duration
	// Workers sizes the async execution pool (0 = jobstore default).
	Workers int
	// QueueDepth bounds queued submissions before 429s (0 = default).
	QueueDepth int
	// ResultTTL evicts terminal job records (0 = default; <0 disables).
	ResultTTL time.Duration
	// DataDir enables durable job records: the store appends every job
	// mutation to a write-ahead log under this directory and replays it on
	// startup, so queued and running submissions survive a portal crash
	// (empty = in-memory only, the pre-durability behavior).
	DataDir string
	// Logf receives request diagnostics; nil disables logging.
	Logf func(format string, args ...any)
	// Log is the structured logger; when nil, records are bridged through
	// Logf (or discarded when that is nil too).
	Log *slog.Logger
	// TraceSample is the portal client's root-sampling probability for
	// submitted jobs (0 = trace.DefaultSample; negative leaves portal
	// submissions untraced from the client side).
	TraceSample float64
	// Debug mounts net/http/pprof under /debug/pprof/ — profiling of a
	// live portal process. Off by default: the profile endpoints expose
	// internals and cost CPU when scraped.
	Debug bool
}

// Portal is the web front end.
type Portal struct {
	cfg     Config
	client  *api.Client
	store   *jobstore.Store
	backend jobstore.Backend // owned WAL backend; nil when DataDir is empty
	mux     *http.ServeMux
	log     *slog.Logger
	tracer  *trace.Tracer
}

// New creates a portal attached to the cluster.
func New(cfg Config) (*Portal, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("portal: nil cluster")
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 60 * time.Second
	}
	var tracer *trace.Tracer
	if cfg.TraceSample >= 0 {
		tracer = trace.New(trace.Config{Node: "portal", Sample: cfg.TraceSample})
	}
	client, err := api.Initialize(cfg.Cluster.Network(), api.Options{
		ClientName:      "portal",
		DiscoveryWindow: 100 * time.Millisecond,
		Tracer:          tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("portal: %w", err)
	}
	p := &Portal{
		cfg:    cfg,
		client: client,
		mux:    http.NewServeMux(),
		log:    logging.Component(logging.Pick(cfg.Log, cfg.Logf), "portal", ""),
		tracer: tracer,
	}
	if cfg.DataDir != "" {
		wal, err := jobstore.OpenWAL(cfg.DataDir, jobstore.WALOptions{})
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("portal: open data dir %s: %w", cfg.DataDir, err)
		}
		p.backend = wal
	}
	store, err := jobstore.New(jobstore.Config{
		Exec:       p.runSubmission,
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		ResultTTL:  cfg.ResultTTL,
		Backend:    p.backend,
		Metrics:    cfg.Cluster.Metrics(),
		Logf:       cfg.Logf,
	})
	if err != nil {
		if p.backend != nil {
			p.backend.Close()
		}
		client.Close()
		return nil, fmt.Errorf("portal: %w", err)
	}
	p.store = store
	p.mux.HandleFunc("GET /", p.handleIndex)
	p.mux.HandleFunc("GET /api/status", p.handleStatus)
	p.mux.HandleFunc("POST /api/xmi2cnx", p.handleXMI2CNX)
	p.mux.HandleFunc("POST /api/cnx2go", p.handleCNX2Go)
	p.mux.HandleFunc("POST /api/run", p.handleRunXMI)
	p.mux.HandleFunc("POST /api/run-cnx", p.handleRunCNX)
	p.mux.HandleFunc("POST /api/jobs", p.handleSubmitJob)
	p.mux.HandleFunc("GET /api/jobs", p.handleListJobs)
	p.mux.HandleFunc("GET /api/jobs/{id}", p.handleGetJob)
	p.mux.HandleFunc("GET /api/jobs/{id}/result", p.handleJobResult)
	p.mux.HandleFunc("GET /api/jobs/{id}/trace", p.handleJobTrace)
	p.mux.HandleFunc("DELETE /api/jobs/{id}", p.handleDeleteJob)
	p.mux.HandleFunc("GET /api/metrics", p.handleMetrics)
	if cfg.Debug {
		// Profiling surface (mirrors net/http/pprof's DefaultServeMux
		// registrations); Index also serves heap, goroutine, block, and
		// mutex profiles by name. The GET method prefix keeps the
		// method-specific "GET /" index route from conflicting with a
		// method-less pattern under the 1.22 mux precedence rules.
		p.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		p.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		p.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		p.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		p.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		p.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		p.log.Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	return p, nil
}

// Handler returns the portal's HTTP handler.
func (p *Portal) Handler() http.Handler { return p.mux }

// Close stops the job service and releases the portal's client. In-flight
// jobs are aborted; with a data dir configured they replay as queued on
// the next start.
func (p *Portal) Close() error {
	p.store.Close()
	if p.backend != nil {
		if err := p.backend.Close(); err != nil {
			p.logf("close job WAL: %v", err)
		}
	}
	return p.client.Close()
}

// Store exposes the job store (for embedding deployments and tests).
func (p *Portal) Store() *jobstore.Store { return p.store }

func (p *Portal) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf("[portal] "+format, args...)
	}
}

// errorJSON writes a JSON error response.
func errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes a JSON success response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readBody reads a bounded request body.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("portal: read body: %w", err)
	}
	if len(body) > maxBody {
		return nil, fmt.Errorf("portal: body exceeds %d bytes", maxBody)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("portal: empty body")
	}
	return body, nil
}

const indexHTML = `<!DOCTYPE html>
<html><head><title>Computational Neighborhood</title></head>
<body>
<h1>Computational Neighborhood</h1>
<p>Model-driven job/task composition for cluster computing.</p>
<ul>
<li>POST an XMI or CNX document to <code>/api/jobs</code> to queue it; poll
<code>/api/jobs/{id}</code> and fetch <code>/api/jobs/{id}/result</code>.</li>
<li>POST an XMI activity model to <code>/api/run</code> to execute it synchronously.</li>
<li>POST XMI to <code>/api/xmi2cnx</code> for the CNX descriptor.</li>
<li>POST CNX to <code>/api/cnx2go</code> for a generated Go client.</li>
<li>GET <code>/api/status</code> for cluster status, <code>/api/metrics</code> for service metrics.</li>
</ul>
</body></html>
`

func (p *Portal) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML)
}

// Status is the /api/status response body.
type Status struct {
	Nodes []string `json:"nodes"`
}

func (p *Portal) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Status{Nodes: p.cfg.Cluster.Nodes()})
}

// invocations parses the dynamic-invocation count query parameter.
func invocations(r *http.Request) (int, error) {
	q := r.URL.Query().Get("invocations")
	if q == "" {
		return 4, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("portal: bad invocations %q", q)
	}
	return n, nil
}

func (p *Portal) handleXMI2CNX(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	n, err := invocations(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	var out strings.Builder
	opts := transform.Options{Args: core.FixedArgs(n)}
	if err := transform.XMI2CNX(strings.NewReader(string(body)), &out, opts); err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = io.WriteString(w, out.String())
}

func (p *Portal) handleCNX2Go(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	doc, err := cnx.ParseString(string(body))
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	src, err := codegen.Generate(doc, codegen.Options{Source: "portal upload"})
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "text/x-go")
	_, _ = w.Write(src)
}

// RunResponse is the execution result body.
type RunResponse struct {
	Client string               `json:"client"`
	Jobs   map[string]JobResult `json:"jobs"`
}

// JobResult is one job's terminal status.
type JobResult struct {
	JobID    string            `json:"job_id"`
	Failed   bool              `json:"failed"`
	Err      string            `json:"error,omitempty"`
	TaskErrs map[string]string `json:"task_errors,omitempty"`
}

// compile turns a submission body into a validated CNX document. Every
// error from this path is a client-input problem (HTTP 422).
func (p *Portal) compile(format string, body []byte, invs int) (*cnx.Document, error) {
	if invs <= 0 {
		invs = 4
	}
	var doc *cnx.Document
	switch format {
	case jobstore.FormatCNX:
		d, err := cnx.ParseString(string(body))
		if err != nil {
			return nil, err
		}
		doc = d
	case jobstore.FormatXMI:
		var out strings.Builder
		opts := transform.Options{Args: core.FixedArgs(invs)}
		if err := transform.XMI2CNX(strings.NewReader(string(body)), &out, opts); err != nil {
			return nil, err
		}
		d, err := cnx.ParseString(out.String())
		if err != nil {
			return nil, err
		}
		doc = d
	default:
		return nil, fmt.Errorf("portal: unknown format %q", format)
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

// executeDoc runs every CN job of a compiled descriptor and collates
// results — the single execution path shared by the synchronous endpoints
// and the async job executor. A non-nil error means the run could not
// proceed (infrastructure failure or abort); per-job failures are reported
// inside the response. tr may be nil when no progress tracking is wanted.
func (p *Portal) executeDoc(ctx context.Context, doc *cnx.Document, tr *runTracker) (*RunResponse, error) {
	resp := &RunResponse{Client: doc.Client.Class, Jobs: make(map[string]JobResult)}
	for ji := range doc.Client.Jobs {
		job := &doc.Client.Jobs[ji]
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		specs, err := job.Specs()
		if err != nil {
			return resp, fmt.Errorf("%w: %w", errUnprocessable, err)
		}
		p.logf("running job %q (%d tasks)", job.Name, len(specs))
		cnJob, err := p.client.CreateJob(job.Name, protocol.JobRequirements{})
		if err != nil {
			return resp, err
		}
		tr.add(cnJob)
		// Batch submission: one solicitation round places the whole task
		// set instead of one round per task.
		if _, err := cnJob.CreateTasks(specs, nil); err != nil {
			resp.Jobs[job.Name] = JobResult{JobID: cnJob.ID, Failed: true, Err: err.Error()}
			tr.finish(cnJob.ID)
			continue
		}
		res, err := cnJob.Run(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Abort or timeout: tear the CN job down on the cluster
				// before reporting, so its tasks stop promptly.
				_ = cnJob.Cancel("aborted via portal")
				tr.finish(cnJob.ID)
				return resp, ctx.Err()
			}
			resp.Jobs[job.Name] = JobResult{JobID: cnJob.ID, Failed: true, Err: err.Error()}
			tr.finish(cnJob.ID)
			continue
		}
		resp.Jobs[job.Name] = JobResult{
			JobID:    res.JobID,
			Failed:   res.Failed,
			Err:      res.Err,
			TaskErrs: res.TaskErrs,
		}
		tr.finish(cnJob.ID)
	}
	return resp, nil
}

// errUnprocessable marks execution errors caused by the uploaded document
// rather than the cluster, so sync handlers can answer 422 instead of 503.
var errUnprocessable = errors.New("portal: unprocessable document")

func (p *Portal) handleRunXMI(w http.ResponseWriter, r *http.Request) {
	p.runSync(w, r, jobstore.FormatXMI)
}

func (p *Portal) handleRunCNX(w http.ResponseWriter, r *http.Request) {
	p.runSync(w, r, jobstore.FormatCNX)
}

// runSync is the legacy blocking path: compile and execute within the
// request, sharing the executor with the async service.
func (p *Portal) runSync(w http.ResponseWriter, r *http.Request, format string) {
	body, err := readBody(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	n, err := invocations(r)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err)
		return
	}
	doc, err := p.compile(format, body, n)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.RunTimeout)
	defer cancel()
	resp, err := p.executeDoc(ctx, doc, nil)
	if err != nil {
		if errors.Is(err, errUnprocessable) {
			errorJSON(w, http.StatusUnprocessableEntity, err)
		} else {
			errorJSON(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
