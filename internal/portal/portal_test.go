package portal_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cn/internal/cluster"
	"cn/internal/core"
	"cn/internal/floyd"
	"cn/internal/portal"
	"cn/internal/task"
	"cn/internal/transform"
)

var registry = func() *task.Registry {
	r := task.NewRegistry()
	floyd.MustRegister(r)
	r.MustRegister("test.PortalNoop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}()

// startPortal boots a cluster and serves the portal over httptest.
func startPortal(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: 3, Registry: registry, MemoryMB: 16000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	p, err := portal.New(portal.Config{Cluster: c, RunTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// noopXMI returns an XMI document for a three-noop chain using a
// pre-deployed class.
func noopXMI(t *testing.T) string {
	t.Helper()
	g, err := core.NewBuilder("portaljob").
		Initial("i").
		Action("a", core.TaskTags("", "test.PortalNoop", 100, "RUN_AS_THREAD_IN_TM")).
		Action("b", core.TaskTags("", "test.PortalNoop", 100, "RUN_AS_THREAD_IN_TM")).
		Final("f").
		Flows("i", "a", "b", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	client := core.NewClient("PortalClient")
	if err := client.AddJob(g); err != nil {
		t.Fatal(err)
	}
	doc, err := transform.ToXMI(client)
	if err != nil {
		t.Fatal(err)
	}
	s, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIndexPage(t *testing.T) {
	srv := startPortal(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Computational Neighborhood") {
		t.Error("index page missing title")
	}
}

func TestStatus(t *testing.T) {
	srv := startPortal(t)
	resp, err := http.Get(srv.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st portal.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 {
		t.Errorf("nodes = %v", st.Nodes)
	}
}

func TestXMI2CNXEndpoint(t *testing.T) {
	srv := startPortal(t)
	resp, err := http.Post(srv.URL+"/api/xmi2cnx", "application/xml", strings.NewReader(noopXMI(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "<cn2>") || !strings.Contains(out, `class="test.PortalNoop"`) {
		t.Errorf("CNX output:\n%s", out)
	}
}

func TestCNX2GoEndpoint(t *testing.T) {
	srv := startPortal(t)
	cnxDoc := `<cn2><client class="C"><job><task name="a" class="X"/></job></client></cn2>`
	resp, err := http.Post(srv.URL+"/api/cnx2go", "application/xml", strings.NewReader(cnxDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "package main") {
		t.Errorf("generated code:\n%s", raw)
	}
}

func TestRunXMIEndpoint(t *testing.T) {
	srv := startPortal(t)
	resp, err := http.Post(srv.URL+"/api/run", "application/xml", strings.NewReader(noopXMI(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rr portal.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Client != "PortalClient" {
		t.Errorf("client = %q", rr.Client)
	}
	jr, ok := rr.Jobs["portaljob"]
	if !ok {
		t.Fatalf("jobs = %v", rr.Jobs)
	}
	if jr.Failed {
		t.Errorf("job failed: %+v", jr)
	}
}

func TestRunCNXEndpoint(t *testing.T) {
	srv := startPortal(t)
	cnxDoc := `<cn2><client class="Direct"><job name="d">
	  <task name="a" class="test.PortalNoop"><task-req><memory>100</memory></task-req></task>
	</job></client></cn2>`
	resp, err := http.Post(srv.URL+"/api/run-cnx", "application/xml", strings.NewReader(cnxDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr portal.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if jr := rr.Jobs["d"]; jr.Failed {
		t.Errorf("job failed: %+v", jr)
	}
}

func TestRunFailingJobReported(t *testing.T) {
	srv := startPortal(t)
	// Unknown class: placement fails, the job result must say so.
	cnxDoc := `<cn2><client class="Bad"><job name="b">
	  <task name="a" class="does.Not.Exist"/>
	</job></client></cn2>`
	resp, err := http.Post(srv.URL+"/api/run-cnx", "application/xml", strings.NewReader(cnxDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr portal.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if jr := rr.Jobs["b"]; !jr.Failed {
		t.Errorf("bad job not reported failed: %+v", rr)
	}
}

func TestBadRequests(t *testing.T) {
	srv := startPortal(t)
	cases := []struct {
		path string
		body string
		want int
	}{
		{"/api/xmi2cnx", "", http.StatusBadRequest},
		{"/api/xmi2cnx", "not xml <", http.StatusUnprocessableEntity},
		{"/api/cnx2go", "<cn2></cn2>", http.StatusUnprocessableEntity},
		{"/api/run", "garbage", http.StatusUnprocessableEntity},
		{"/api/run-cnx", "<cn2><client class=\"C\"></client></cn2>", http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.path, "application/xml", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %q: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
}

func TestBadInvocationsParam(t *testing.T) {
	srv := startPortal(t)
	resp, err := http.Post(srv.URL+"/api/xmi2cnx?invocations=-3", "application/xml", strings.NewReader(noopXMI(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestRunDynamicXMI(t *testing.T) {
	srv := startPortal(t)
	// A dynamic model runs with ?invocations expanding the worker state.
	g, err := floyd.BuildDynamicModel()
	if err != nil {
		t.Fatal(err)
	}
	client := core.NewClient("DynPortal")
	if err := client.AddJob(g); err != nil {
		t.Fatal(err)
	}
	xdoc, err := transform.ToXMI(client)
	if err != nil {
		t.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	// Transform only (running floyd through the portal needs the client to
	// feed the matrix, which the portal does not do; the descriptor is
	// still produced correctly).
	resp, err := http.Post(srv.URL+"/api/xmi2cnx?invocations=3", "application/xml", strings.NewReader(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(raw), `class="org.jhpc.cn2.trnsclsrtask.TCTask"`); got != 3 {
		t.Errorf("expanded to %d workers, want 3:\n%s", got, raw)
	}
}

// TestDebugMountsPprof guards the -debug profiling surface: the pprof
// patterns must coexist with the portal's method-qualified routes under
// the 1.22 ServeMux precedence rules (a method-less "/debug/pprof/"
// conflicts with "GET /" and panics at registration), and the endpoints
// must answer.
func TestDebugMountsPprof(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Nodes: 1, Registry: registry, MemoryMB: 16000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	p, err := portal.New(portal.Config{Cluster: c, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The index route still answers alongside the debug mounts.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET / = %d, want 200", resp.StatusCode)
	}
}
