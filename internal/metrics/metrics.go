// Package metrics provides the lightweight instrumentation used by the CN
// cluster harness and the benchmark suite: counters, gauges, and
// fixed-reservoir histograms with quantile estimation. Everything is
// allocation-light and safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be >= 0; negative deltas are ignored).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records observations into a bounded reservoir and computes
// summary statistics. When the reservoir fills, it keeps every k-th
// observation (deterministic decimation rather than random sampling, so
// results are reproducible).
type Histogram struct {
	mu        sync.Mutex
	samples   []float64
	maxSize   int
	stride    int64
	seen      int64
	count     int64
	sum       float64
	min, max  float64
	hasMinMax bool
}

// DefaultReservoir is the sample cap when NewHistogram is given n <= 0.
const DefaultReservoir = 8192

// NewHistogram creates a histogram keeping at most n samples.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		n = DefaultReservoir
	}
	return &Histogram{maxSize: n, stride: 1}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if !h.hasMinMax || v < h.min {
		h.min = v
	}
	if !h.hasMinMax || v > h.max {
		h.max = v
	}
	h.hasMinMax = true

	h.seen++
	if h.seen%h.stride != 0 {
		return
	}
	h.samples = append(h.samples, v)
	if len(h.samples) >= h.maxSize {
		// Decimate: keep every other sample and double the stride.
		kept := h.samples[:0]
		for i := 0; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
		h.stride *= 2
	}
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (not just sampled).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.hasMinMax {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.hasMinMax {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the
// reservoir; NaN when empty or q out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		return math.NaN()
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	sort.Float64s(samples)
	return quantileSorted(samples, q)
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize computes the digest from one consistent locked snapshot: all
// seven statistics describe the same instant. (It previously delegated to
// the individual accessors, taking the mutex seven separate times — a
// summary computed under concurrent Observe calls could pair a Count from
// one state with quantiles from another.)
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	s := Summary{Count: h.count}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if h.hasMinMax {
		s.Min = h.min
		s.Max = h.max
	}
	samples := append([]float64(nil), h.samples...)
	h.mu.Unlock()

	// Quantile estimation works on the copied reservoir, outside the lock.
	sort.Float64s(samples)
	s.P50 = quantileSorted(samples, 0.50)
	s.P90 = quantileSorted(samples, 0.90)
	s.P99 = quantileSorted(samples, 0.99)
	return s
}

// quantileSorted interpolates the q-quantile of an already-sorted sample
// set; NaN when empty.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Registry is a named collection of metrics, one per CN component.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: %s", name, h.Summarize()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// RegistrySnapshot is a marshalable point-in-time dump of a registry,
// served by HTTP metrics endpoints.
type RegistrySnapshot struct {
	Counters   map[string]int64   `json:"counters,omitempty"`
	Gauges     map[string]int64   `json:"gauges,omitempty"`
	Histograms map[string]Summary `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value. Quantiles are estimated
// from each histogram's reservoir at call time.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]Summary, len(histograms)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range histograms {
		snap.Histograms[name] = h.Summarize()
	}
	return snap
}

// Timer measures one operation's wall time into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h.
func StartTimer(h *Histogram) *Timer {
	return &Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time (in milliseconds) and returns it.
func (t *Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}
