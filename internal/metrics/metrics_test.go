package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Errorf("Value = %d, want 6", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 5.5 {
		t.Errorf("Mean = %g", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Errorf("Min/Max = %g/%g", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); p50 < 5 || p50 > 6 {
		t.Errorf("P50 = %g", p50)
	}
	if p100 := h.Quantile(1); p100 != 10 {
		t.Errorf("Q(1) = %g", p100)
	}
	if p0 := h.Quantile(0); p0 != 1 {
		t.Errorf("Q(0) = %g", p0)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram stats not zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range quantile should be NaN")
	}
}

func TestHistogramDecimation(t *testing.T) {
	h := NewHistogram(64)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d", h.Count(), n)
	}
	// Mean is exact regardless of decimation.
	if mean := h.Mean(); math.Abs(mean-float64(n-1)/2) > 0.001 {
		t.Errorf("Mean = %g", mean)
	}
	// Quantiles are estimates from the decimated reservoir; require sanity.
	p50 := h.Quantile(0.5)
	if p50 < float64(n)*0.3 || p50 > float64(n)*0.7 {
		t.Errorf("decimated P50 = %g, want ~%d", p50, n/2)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(16)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Mean(); math.Abs(got-250) > 0.001 {
		t.Errorf("Mean = %g ms, want 250", got)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(4096)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Observe(v)
		}
		q1, q2, q3 := h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75)
		return q1 <= q2 && q2 <= q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(1)
	h.Observe(3)
	s := h.Summarize()
	if s.Count != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=2") {
		t.Errorf("String = %q", s.String())
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("jobs")
	c1.Inc()
	c2 := r.Counter("jobs")
	if c2.Value() != 1 {
		t.Error("Counter not shared by name")
	}
	g1 := r.Gauge("load")
	g1.Set(5)
	if r.Gauge("load").Value() != 5 {
		t.Error("Gauge not shared by name")
	}
	h1 := r.Histogram("latency")
	h1.Observe(1)
	if r.Histogram("latency").Count() != 1 {
		t.Error("Histogram not shared by name")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	dump := r.Dump()
	for _, want := range []string{"counter a = 1", "gauge b = 2", "histogram c:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(16)
	tm := StartTimer(h)
	time.Sleep(5 * time.Millisecond)
	d := tm.Stop()
	if d < 4*time.Millisecond {
		t.Errorf("Stop returned %v", d)
	}
	if h.Count() != 1 {
		t.Error("Timer did not record")
	}
	if h.Mean() < 4 {
		t.Errorf("recorded %g ms", h.Mean())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 800 {
		t.Errorf("shared = %d", r.Counter("shared").Value())
	}
	if r.Histogram("h").Count() != 800 {
		t.Errorf("h count = %d", r.Histogram("h").Count())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-7)
	r.Histogram("h").Observe(2)
	r.Histogram("h").Observe(4)
	snap := r.Snapshot()
	if snap.Counters["c"] != 3 {
		t.Errorf("counter = %d", snap.Counters["c"])
	}
	if snap.Gauges["g"] != -7 {
		t.Errorf("gauge = %d", snap.Gauges["g"])
	}
	h := snap.Histograms["h"]
	if h.Count != 2 || h.Mean != 3 || h.Min != 2 || h.Max != 4 {
		t.Errorf("histogram = %+v", h)
	}
}

// TestSummarizeConsistentSnapshot: a summary produced under concurrent
// observation must describe one internally consistent state — Mean within
// [Min, Max] and Count never behind what a later locked read reports.
func TestSummarizeConsistentSnapshot(t *testing.T) {
	h := NewHistogram(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := float64(g)
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(v)
					v += 1
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := h.Summarize()
		if s.Count == 0 {
			continue
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("inconsistent summary: mean %.3f outside [%.3f, %.3f]", s.Mean, s.Min, s.Max)
		}
		if !math.IsNaN(s.P50) && (s.P50 < s.Min || s.P50 > s.Max) {
			t.Fatalf("inconsistent summary: p50 %.3f outside [%.3f, %.3f]", s.P50, s.Min, s.Max)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSummarizeMatchesAccessors: at rest, the single-lock summary must
// agree with the individual accessors.
func TestSummarizeMatchesAccessors(t *testing.T) {
	h := NewHistogram(64)
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	s := h.Summarize()
	if s.Count != h.Count() || s.Mean != h.Mean() || s.Min != h.Min() || s.Max != h.Max() {
		t.Fatalf("summary %+v disagrees with accessors", s)
	}
	for _, q := range []struct {
		q    float64
		want float64
	}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
		if got := h.Quantile(q.q); got != q.want {
			t.Fatalf("Quantile(%.2f) = %.3f, summary says %.3f", q.q, got, q.want)
		}
	}
}
