package health

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}

func newTestMonitor(suspect, dead time.Duration) (*Monitor, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewMonitor(Config{
		SuspectAfter: suspect,
		DeadAfter:    dead,
		Sweep:        -1, // tests drive CheckNow
		Now:          clk.now,
	})
	return m, clk
}

func drain(ch <-chan Event) []Event {
	var out []Event
	for {
		select {
		case ev := <-ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestLeaseExpiry(t *testing.T) {
	m, clk := newTestMonitor(30*time.Millisecond, 90*time.Millisecond)
	defer m.Close()
	ch, cancel := m.Subscribe()
	defer cancel()

	m.Observe("n1")
	if got := m.State("n1"); got != StateAlive {
		t.Fatalf("state after beat = %v, want alive", got)
	}
	// Fresh lease within the window stays alive.
	m.CheckNow(clk.advance(10 * time.Millisecond))
	if got := m.State("n1"); got != StateAlive {
		t.Fatalf("state at +10ms = %v, want alive", got)
	}
	if evs := drain(ch); len(evs) != 0 {
		t.Fatalf("unexpected events %v", evs)
	}
	// Past SuspectAfter the lease lapses to suspect, exactly once.
	m.CheckNow(clk.advance(25 * time.Millisecond))
	m.CheckNow(clk.advance(1 * time.Millisecond))
	if got := m.State("n1"); got != StateSuspect {
		t.Fatalf("state at +36ms = %v, want suspect", got)
	}
	evs := drain(ch)
	if len(evs) != 1 || evs[0].Node != "n1" || evs[0].State != StateSuspect {
		t.Fatalf("events = %v, want one suspect event", evs)
	}
}

func TestSuspectToDeadTransition(t *testing.T) {
	m, clk := newTestMonitor(30*time.Millisecond, 90*time.Millisecond)
	defer m.Close()
	ch, cancel := m.Subscribe()
	defer cancel()

	m.Observe("n1")
	m.CheckNow(clk.advance(40 * time.Millisecond)) // -> suspect
	m.CheckNow(clk.advance(60 * time.Millisecond)) // 100ms lapse -> dead
	m.CheckNow(clk.advance(10 * time.Millisecond)) // no duplicate dead event
	if got := m.State("n1"); got != StateDead {
		t.Fatalf("state = %v, want dead", got)
	}
	evs := drain(ch)
	if len(evs) != 2 || evs[0].State != StateSuspect || evs[1].State != StateDead {
		t.Fatalf("events = %v, want suspect then dead", evs)
	}
	if evs[1].SincePrev < 90*time.Millisecond {
		t.Fatalf("dead lapse = %v, want >= DeadAfter", evs[1].SincePrev)
	}
}

func TestWatchedNodeThatNeverBeatsExpires(t *testing.T) {
	m, clk := newTestMonitor(30*time.Millisecond, 60*time.Millisecond)
	defer m.Close()
	m.Watch("silent")
	m.CheckNow(clk.advance(100 * time.Millisecond))
	if got := m.State("silent"); got != StateDead {
		t.Fatalf("state = %v, want dead (watch starts the lease)", got)
	}
}

func TestBeatResurrectsSuspectAndDead(t *testing.T) {
	m, clk := newTestMonitor(30*time.Millisecond, 60*time.Millisecond)
	defer m.Close()
	ch, cancel := m.Subscribe()
	defer cancel()

	m.Observe("n1")
	m.CheckNow(clk.advance(100 * time.Millisecond))
	if got := m.State("n1"); got != StateDead {
		t.Fatalf("state = %v, want dead", got)
	}
	m.Observe("n1") // late beat: the node is back
	if got := m.State("n1"); got != StateAlive {
		t.Fatalf("state after resurrection = %v, want alive", got)
	}
	evs := drain(ch)
	if len(evs) == 0 || evs[len(evs)-1].State != StateAlive {
		t.Fatalf("events = %v, want trailing alive event", evs)
	}
}

func TestUnknownNodeReportsAlive(t *testing.T) {
	m, _ := newTestMonitor(time.Second, 2*time.Second)
	defer m.Close()
	if !m.Alive("never-seen") {
		t.Fatal("unknown nodes must report alive")
	}
}

func TestForgetStopsTracking(t *testing.T) {
	m, clk := newTestMonitor(10*time.Millisecond, 20*time.Millisecond)
	defer m.Close()
	ch, cancel := m.Subscribe()
	defer cancel()
	m.Observe("n1")
	m.Forget("n1")
	m.CheckNow(clk.advance(time.Second))
	if evs := drain(ch); len(evs) != 0 {
		t.Fatalf("events for forgotten node: %v", evs)
	}
	if got := m.State("n1"); got != StateAlive {
		t.Fatalf("forgotten node state = %v, want alive", got)
	}
}

func TestSweeperDetectsDeathInRealTime(t *testing.T) {
	m := NewMonitor(Config{
		SuspectAfter: 20 * time.Millisecond,
		DeadAfter:    40 * time.Millisecond,
		Sweep:        5 * time.Millisecond,
	})
	defer m.Close()
	ch, cancel := m.Subscribe()
	defer cancel()
	m.Observe("n1")
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-ch:
			if ev.State == StateDead {
				return
			}
		case <-deadline:
			t.Fatal("sweeper never declared the silent node dead")
		}
	}
}

func TestSnapshotSorted(t *testing.T) {
	m, _ := newTestMonitor(time.Second, 2*time.Second)
	defer m.Close()
	m.Observe("zeta")
	m.Observe("alpha")
	m.Observe("alpha")
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Node != "alpha" || snap[1].Node != "zeta" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Beats != 2 || snap[0].StateStr != "alive" {
		t.Fatalf("alpha row = %+v", snap[0])
	}
}
