// Package health is CN's lease-based failure detector. Every TaskManager
// streams HEARTBEAT messages to the JobManagers holding its assignments;
// each JobManager feeds those beats into a Monitor, which tracks one lease
// per remote node and walks it through the states
//
//	alive --(no beat for SuspectAfter)--> suspect --(DeadAfter)--> dead
//
// with a beat from a suspect or dead node resurrecting it to alive. State
// transitions are published to subscribers: the placement layer excludes
// suspect nodes from new plans, and the recovery engine re-places a dead
// node's in-flight tasks on survivors. The design follows how pilot-job
// systems decouple resource liveness from task execution: the lease is the
// resource's liveness contract, and expiry — not a hung task — is the
// failure signal.
package health

import (
	"sort"
	"sync"
	"time"
)

// State is a monitored node's liveness classification.
type State int

// Liveness states, in order of decay.
const (
	// StateAlive means the node's lease is current.
	StateAlive State = iota
	// StateSuspect means the lease lapsed past SuspectAfter: the node is
	// excluded from new placements but its tasks are not yet re-placed.
	StateSuspect
	// StateDead means the lease lapsed past DeadAfter: the node's in-flight
	// tasks are orphaned and must be recovered.
	StateDead
)

var stateNames = map[State]string{
	StateAlive:   "alive",
	StateSuspect: "suspect",
	StateDead:    "dead",
}

// String returns the lowercase state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "State(?)"
}

// Default lease parameters, used when Config leaves them zero. The
// heartbeat cadence they assume is DefaultInterval; deployments that tune
// the interval should scale the lease windows with it.
const (
	// DefaultInterval is the expected heartbeat cadence.
	DefaultInterval = 500 * time.Millisecond
	// DefaultSuspectAfter is how long a lease may lapse before the node
	// turns suspect (missed beats, not wall-clock guesses: 3 intervals).
	DefaultSuspectAfter = 3 * DefaultInterval
	// DefaultDeadAfter is how long a lease may lapse before the node is
	// declared dead (6 intervals).
	DefaultDeadAfter = 6 * DefaultInterval
)

// Event is one node's state transition.
type Event struct {
	// Node is the monitored node.
	Node string
	// State is the state the node entered.
	State State
	// At is when the transition was detected.
	At time.Time
	// SincePrev is how long the lease had lapsed when the transition fired
	// (zero for resurrections).
	SincePrev time.Duration
}

// NodeHealth is one node's row in a Snapshot.
type NodeHealth struct {
	Node     string    `json:"node"`
	State    State     `json:"-"`
	StateStr string    `json:"state"`
	LastBeat time.Time `json:"last_beat"`
	Beats    int64     `json:"beats"`
}

// Config parametrizes a Monitor.
type Config struct {
	// SuspectAfter is the lease lapse that turns a node suspect
	// (0 = DefaultSuspectAfter).
	SuspectAfter time.Duration
	// DeadAfter is the lease lapse that declares a node dead
	// (0 = DefaultDeadAfter). It must exceed SuspectAfter; values at or
	// below it are raised to 2×SuspectAfter.
	DeadAfter time.Duration
	// Sweep is the lease-check cadence (0 = SuspectAfter/2, floor 5ms;
	// negative disables the internal sweeper so the owner drives CheckNow —
	// the mode unit tests use).
	Sweep time.Duration
	// Now supplies the clock (nil = time.Now; tests inject fakes).
	Now func() time.Time
	// Logf receives diagnostic lines; nil disables logging.
	Logf func(format string, args ...any)
}

// lease is one node's liveness record.
type lease struct {
	lastBeat time.Time
	state    State
	beats    int64
}

// Monitor tracks per-node heartbeat leases and publishes state
// transitions. It is safe for concurrent use.
type Monitor struct {
	cfg  Config
	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	leases map[string]*lease
	subs   map[int]chan Event
	nextID int
	closed bool
}

// subBuf bounds each subscriber channel; transitions beyond the buffer are
// dropped (subscribers that care drain promptly).
const subBuf = 256

// NewMonitor creates a monitor and, unless cfg.Sweep is negative, starts
// its lease sweeper.
func NewMonitor(cfg Config) *Monitor {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = DefaultDeadAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 2 * cfg.SuspectAfter
	}
	if cfg.Sweep == 0 {
		cfg.Sweep = cfg.SuspectAfter / 2
		if cfg.Sweep < 5*time.Millisecond {
			cfg.Sweep = 5 * time.Millisecond
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Monitor{
		cfg:    cfg,
		stop:   make(chan struct{}),
		leases: make(map[string]*lease),
		subs:   make(map[int]chan Event),
	}
	if cfg.Sweep > 0 {
		m.wg.Add(1)
		go m.sweeper()
	}
	return m
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf("[health] "+format, args...)
	}
}

// Watch begins tracking a node without requiring a first beat: the lease
// starts now, so a node that dies before it ever heartbeats still expires.
// Watching an already-tracked node is a no-op (it does not renew the
// lease).
func (m *Monitor) Watch(node string) {
	if node == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, ok := m.leases[node]; !ok {
		m.leases[node] = &lease{lastBeat: m.cfg.Now(), state: StateAlive}
	}
}

// Observe renews a node's lease (a heartbeat arrived). A suspect or dead
// node resurrects to alive, publishing a StateAlive event so consumers can
// re-admit it.
func (m *Monitor) Observe(node string) {
	if node == "" {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	now := m.cfg.Now()
	l, ok := m.leases[node]
	if !ok {
		l = &lease{state: StateAlive}
		m.leases[node] = l
	}
	l.lastBeat = now
	l.beats++
	var events []Event
	if l.state != StateAlive {
		l.state = StateAlive
		events = append(events, Event{Node: node, State: StateAlive, At: now})
	}
	m.publishLocked(events)
	m.mu.Unlock()
}

// Forget drops a node from the monitor (its tasks are gone; a lapsed lease
// would only produce noise).
func (m *Monitor) Forget(node string) {
	m.mu.Lock()
	delete(m.leases, node)
	m.mu.Unlock()
}

// State returns a node's current classification. Unknown nodes report
// alive: absence of evidence is not failure, and placement must not starve
// on nodes the monitor has never met.
func (m *Monitor) State(node string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.leases[node]; ok {
		return l.state
	}
	return StateAlive
}

// Alive reports whether the node is neither suspect nor dead.
func (m *Monitor) Alive(node string) bool { return m.State(node) == StateAlive }

// Snapshot returns every tracked node's health, sorted by node name.
func (m *Monitor) Snapshot() []NodeHealth {
	m.mu.Lock()
	out := make([]NodeHealth, 0, len(m.leases))
	for n, l := range m.leases {
		out = append(out, NodeHealth{
			Node: n, State: l.state, StateStr: l.state.String(),
			LastBeat: l.lastBeat, Beats: l.beats,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// Subscribe registers for state-transition events. The returned cancel
// function unsubscribes; the channel is closed when the monitor closes.
func (m *Monitor) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subBuf)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := m.nextID
	m.nextID++
	m.subs[id] = ch
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		if c, ok := m.subs[id]; ok {
			delete(m.subs, id)
			close(c)
		}
		m.mu.Unlock()
	}
}

// publishLocked fans events out to subscribers; m.mu must be held. Sends
// never block: a subscriber whose buffer is full loses the event (and a
// diagnostic is logged), which keeps a stalled consumer from wedging the
// detector.
func (m *Monitor) publishLocked(events []Event) {
	for _, ev := range events {
		for _, ch := range m.subs {
			select {
			case ch <- ev:
			default:
				m.logf("subscriber full, dropping %s->%s", ev.Node, ev.State)
			}
		}
	}
}

// CheckNow evaluates every lease against the given clock reading and
// publishes any transitions. The internal sweeper calls it on a ticker;
// tests call it directly with a fake clock.
func (m *Monitor) CheckNow(now time.Time) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	var events []Event
	for node, l := range m.leases {
		lapse := now.Sub(l.lastBeat)
		switch {
		case l.state != StateDead && lapse >= m.cfg.DeadAfter:
			l.state = StateDead
			events = append(events, Event{Node: node, State: StateDead, At: now, SincePrev: lapse})
			m.logf("node %s dead (lease lapsed %v)", node, lapse)
		case l.state == StateAlive && lapse >= m.cfg.SuspectAfter:
			l.state = StateSuspect
			events = append(events, Event{Node: node, State: StateSuspect, At: now, SincePrev: lapse})
			m.logf("node %s suspect (lease lapsed %v)", node, lapse)
		}
	}
	m.publishLocked(events)
	m.mu.Unlock()
}

// sweeper drives CheckNow on the configured cadence.
func (m *Monitor) sweeper() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Sweep)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			m.CheckNow(now)
		}
	}
}

// Close stops the sweeper and closes every subscriber channel.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for id, ch := range m.subs {
		delete(m.subs, id)
		close(ch)
	}
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
}
