package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cn/internal/msg"
	"cn/internal/wire"
)

// dialEndpoint opens a raw client socket to the named node's listener.
func dialEndpoint(t *testing.T, n *TCPNetwork, node string) net.Conn {
	t.Helper()
	addr, err := n.lookup(node)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTCPInboundOversizedLengthRejected: a hostile length prefix far past
// MaxFrameBytes must drop the connection with a frame error — before any
// allocation for the announced body.
func TestTCPInboundOversizedLengthRejected(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	received := 0
	if _, err := n.Attach("victim", func(*msg.Message) { received++ }); err != nil {
		t.Fatal(err)
	}
	c := dialEndpoint(t, n, "victim")
	defer c.Close()

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31) // 2 GiB announced
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return n.Stats().FrameErrors.Load() == 1 }, "frame error counter")

	// The reader must have hung up on us.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(hdr[:]); err == nil {
		t.Error("connection still open after oversized frame")
	}
	if received != 0 {
		t.Errorf("handler invoked %d times for garbage", received)
	}
}

// TestTCPInboundCorruptFrameRejected: a plausible length followed by
// garbage bytes must error out and drop the connection, never panic.
func TestTCPInboundCorruptFrameRejected(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	if _, err := n.Attach("victim", func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	c := dialEndpoint(t, n, "victim")
	defer c.Close()

	body := []byte("this is not a CN frame body at all, just junk")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.Write(append(hdr[:], body...)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return n.Stats().FrameErrors.Load() == 1 }, "frame error counter")
}

// TestSenderRefusesOversizedFrame: the guard is symmetric and applies on
// BOTH fabrics — a sender must fail an oversized message cleanly (the
// simulated substrate must not accept traffic TCP would reject) and keep
// the connection usable for normal traffic.
func TestSenderRefusesOversizedFrame(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		recv := newCollector()
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("b", recv.handle); err != nil {
			t.Fatal(err)
		}
		huge := msg.New(msg.KindUser, msg.Address{Node: "a"}, msg.Address{Node: "b"}, make([]byte, wire.MaxFrameBytes+1))
		if err := a.Send("b", huge); !errors.Is(err, wire.ErrFrameTooLarge) {
			t.Fatalf("oversized send = %v, want ErrFrameTooLarge", err)
		}
		if err := a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("ok"))); err != nil {
			t.Fatal(err)
		}
		recv.wait(t, 1, 2*time.Second)
	})
}

// TestTCPMulticastSurvivesDeadMember: fan-out must reach live members even
// when another member is unreachable, and must return within the bounded
// wait rather than serializing behind the dead member's dial.
func TestTCPMulticastSurvivesDeadMember(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	sender, err := n.Attach("s", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	live1, live2 := newCollector(), newCollector()
	for name, col := range map[string]*collector{"m1": live1, "m2": live2} {
		ep, err := n.Attach(name, col.handle)
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	// A member whose listener is gone but whose directory entry survives:
	// its dial fails, the others must be unaffected.
	n.groups.join("g", "ghost")
	n.mu.Lock()
	n.addrs["ghost"] = "127.0.0.1:1" // closed port
	n.mu.Unlock()

	start := time.Now()
	if err := sender.Multicast("g", msg.New(msg.KindPing, msg.Address{Node: "s"}, msg.Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > tcpMulticastWait+time.Second {
		t.Errorf("Multicast blocked %v, want bounded by ~%v", elapsed, tcpMulticastWait)
	}
	live1.wait(t, 1, 2*time.Second)
	live2.wait(t, 1, 2*time.Second)
}

// TestTCPSlowConsumerDropsConnection: a peer that accepts but never reads
// must trip tcpWriteTimeout, get its connection dropped, and fail the
// queued frames with ErrSlowConsumer — distinct from a dead peer's dial
// error — while the stats stay consistent (every successfully enqueued
// frame ends up either Sent or Dropped, and the queue drains to zero).
func TestTCPSlowConsumerDropsConnection(t *testing.T) {
	defer func(w time.Duration, d func(string, string, time.Duration) (net.Conn, error)) {
		tcpWriteTimeout, tcpDial = w, d
	}(tcpWriteTimeout, tcpDial)
	tcpWriteTimeout = 200 * time.Millisecond
	// Shrink the sender's socket buffer so the stalled reader wedges the
	// writev within a few frames instead of megabytes.
	realDial := tcpDial
	tcpDial = func(network, addr string, d time.Duration) (net.Conn, error) {
		c, err := realDial(network, addr, d)
		if tc, ok := c.(*net.TCPConn); ok && err == nil {
			tc.SetWriteBuffer(16 << 10)
		}
		return c, err
	}

	n := NewTCPNetwork()
	defer n.Close()
	ep, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	a := ep.(*tcpEndpoint)

	// The slow consumer: accepts the connection, then never reads a byte.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var stalledMu sync.Mutex
	var stalled []net.Conn
	defer func() {
		stalledMu.Lock()
		defer stalledMu.Unlock()
		for _, c := range stalled {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			stalledMu.Lock()
			stalled = append(stalled, c)
			stalledMu.Unlock()
		}
	}()
	n.mu.Lock()
	n.addrs["stall"] = ln.Addr().String()
	n.mu.Unlock()

	// Flood bulk frames from a goroutine until the pipe failure surfaces
	// through Send; count how many were accepted into the queue.
	var enqueued atomic.Int64
	var finalErr error
	done := make(chan struct{})
	chunk := make([]byte, 128<<10)
	go func() {
		defer close(done)
		for {
			err := ep.Send("stall", msg.New(msg.KindBlobChunk, msg.Address{Node: "a"}, msg.Address{Node: "stall"}, chunk))
			if err != nil {
				finalErr = err
				return
			}
			enqueued.Add(1)
		}
	}()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender never saw the slow-consumer failure")
	}
	if !errors.Is(finalErr, ErrSlowConsumer) {
		t.Fatalf("sender failed with %v, want ErrSlowConsumer", finalErr)
	}
	// The connection record must be retired so the next send re-dials.
	a.mu.Lock()
	_, still := a.conns["stall"]
	a.mu.Unlock()
	if still {
		t.Error("slow consumer's connection record not forgotten")
	}
	// Accounting: the queue drains to zero and every accepted frame is
	// either on the wire or counted dropped (never both, never lost).
	waitFor(t, 2*time.Second, func() bool { return n.Stats().QueueDepth.Load() == 0 }, "queue depth zero")
	waitFor(t, 2*time.Second, func() bool {
		return n.Stats().Sent.Load()+n.Stats().Dropped.Load() == enqueued.Load()
	}, "sent+dropped == enqueued")
	if n.Stats().BulkDrops.Load() == 0 {
		t.Error("bulk drop counter never moved for the failed frames")
	}
}

// TestWireByteAccounting: both fabrics must charge identical encoded sizes
// for the same message, and count sends by kind.
func TestWireByteAccounting(t *testing.T) {
	m := msg.New(msg.KindHeartbeat, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("beatbeat"))
	want := int64(wire.FrameHeaderBytes + wire.EncodedSize(m))

	eachNetwork(t, func(t *testing.T, netw Network) {
		recv := newCollector()
		a, err := netw.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := netw.Attach("b", recv.handle); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("b", m.Clone()); err != nil {
			t.Fatal(err)
		}
		recv.wait(t, 1, 2*time.Second)
		var stats *Stats
		switch x := netw.(type) {
		case *MemNetwork:
			stats = x.Stats()
		case *TCPNetwork:
			stats = x.Stats()
		}
		waitFor(t, 2*time.Second, func() bool { return stats.BytesRecv.Load() == want }, "byte counters")
		snap := stats.Wire()
		if snap.BytesSent != want || snap.BytesRecv != want {
			t.Errorf("bytes sent/recv = %d/%d, want %d", snap.BytesSent, snap.BytesRecv, want)
		}
		if snap.ByKind["HEARTBEAT"] != 1 {
			t.Errorf("by-kind counters = %v", snap.ByKind)
		}
	})
}
