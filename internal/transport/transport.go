// Package transport provides the messaging fabric CN components run on.
//
// The paper's CN deployment is "a cluster of commodity off-the-shelf
// personal computers, interconnected with a local area network technology
// like Ethernet", with JobManager discovery performed over multicast
// ("Requests to JobManager are communicated using multicast"). This package
// abstracts that fabric behind a Network/Endpoint pair with two
// implementations:
//
//   - MemNetwork: an in-memory bus with configurable latency, jitter and
//     message loss — the simulated cluster substrate used by tests and
//     benchmarks (deterministic under a fixed seed).
//   - TCPNetwork: real sockets on the loopback interface carrying
//     length-prefixed binary frames (cn/internal/wire), bounded by a
//     MaxFrameBytes read guard; IP multicast is emulated by concurrent
//     unicast fan-out over group membership, which preserves the protocol
//     shape without requiring multicast routing inside a sandbox.
//
// Sends on both fabrics are pipelined (see pipeline.go): Send encodes onto
// a bounded per-destination queue with two priority lanes — control
// (heartbeats, tuple-space ops, checkpoints) and bulk (blob chunks,
// archive uploads, user payloads) — and a per-connection writer goroutine
// drains the queue in coalesced batches, so a megabyte chunk train cannot
// delay a lease renewal and no sender ever blocks on a dial.
//
// Delivery semantics are at-most-once and unordered across endpoints
// (ordered per sender-receiver pair WITHIN a priority lane; a control
// frame may overtake earlier bulk frames to the same peer); CN's protocol
// layers correlate requests and responses explicitly, as the paper's
// message model prescribes.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
)

// Common transport errors.
var (
	// ErrClosed indicates the endpoint or network has been shut down.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownNode indicates the destination node is not attached.
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrDuplicateNode indicates a node name is already attached.
	ErrDuplicateNode = errors.New("transport: duplicate node")
)

// Handler consumes an inbound message. Handlers for one endpoint are invoked
// sequentially on a dedicated dispatch goroutine.
type Handler func(*msg.Message)

// Endpoint is a node's attachment to the fabric.
type Endpoint interface {
	// Node returns the node name this endpoint is bound to.
	Node() string
	// Send delivers m to the named node (unicast, at-most-once).
	Send(toNode string, m *msg.Message) error
	// Multicast delivers m to every current member of the group, including
	// the sender when it is itself a member (IP_MULTICAST_LOOP semantics;
	// a CN server's JobManager must be able to solicit its own
	// TaskManager).
	Multicast(group string, m *msg.Message) error
	// Join adds this endpoint to a multicast group.
	Join(group string) error
	// Leave removes this endpoint from a multicast group.
	Leave(group string) error
	// GroupSize reports the current member count of a multicast group
	// (membership is fabric-wide state, like an IGMP snooping table); a
	// Gather caller uses it to stop waiting once every member replied.
	GroupSize(group string) int
	// GroupMembers returns the group's current member node names (the
	// snooping table's row). Consumers use it to evict cached state for
	// nodes that left discovery.
	GroupMembers(group string) []string
	// Close detaches the endpoint; pending deliveries are dropped.
	Close() error
}

// Network attaches endpoints to a shared fabric.
type Network interface {
	// Attach binds a node name to the fabric; inbound messages are passed
	// to handler in order of delivery.
	Attach(node string, handler Handler) (Endpoint, error)
	// Close shuts the whole fabric down.
	Close() error
}

// Stats counts fabric activity; all fields are manipulated atomically.
// Byte counters account the encoded frame size of every message (real
// frames on TCP, the would-be frame size on the in-memory fabric), so the
// bytes-on-wire cost of the protocol is observable on either substrate.
type Stats struct {
	Sent        atomic.Int64 // messages submitted for delivery
	Delivered   atomic.Int64 // messages handed to a handler
	Dropped     atomic.Int64 // messages lost (simulated loss, closed peer, or failed queue)
	Multicast   atomic.Int64 // multicast fan-out submissions
	BytesSent   atomic.Int64 // encoded bytes submitted for delivery
	BytesRecv   atomic.Int64 // encoded bytes handed to handlers
	FrameErrors atomic.Int64 // malformed or oversized inbound frames (connection dropped)

	// Outbound pipeline counters (see pipeline.go).
	Flushes      atomic.Int64 // coalesced batch flushes (one writev each on TCP)
	QueueDepth   atomic.Int64 // frames currently queued across all pipelines (gauge)
	ControlDrops atomic.Int64 // control-lane frames dropped (lane full or pipe failed)
	BulkDrops    atomic.Int64 // bulk-lane frames dropped (backpressure timeout or pipe failed)

	// kinds counts sent messages by msg.Kind.
	kinds [msg.KindCount]atomic.Int64
	// batches histograms flushes by coalesced batch size.
	batches [batchBuckets]atomic.Int64
}

// Snapshot returns a plain-value copy of the core counters.
func (s *Stats) Snapshot() (sent, delivered, dropped, multicast int64) {
	return s.Sent.Load(), s.Delivered.Load(), s.Dropped.Load(), s.Multicast.Load()
}

// countSend records one message submission of the given encoded size.
func (s *Stats) countSend(k msg.Kind, bytes int) {
	s.Sent.Add(1)
	s.BytesSent.Add(int64(bytes))
	if k >= 0 && int(k) < msg.KindCount {
		s.kinds[k].Add(1)
	}
}

// countFlush records one coalesced batch flush of n frames.
func (s *Stats) countFlush(n int) {
	s.Flushes.Add(1)
	s.batches[batchBucket(n)].Add(1)
}

// KindCounts returns the non-zero per-kind send counters keyed by the wire
// kind name (e.g. "HEARTBEAT").
func (s *Stats) KindCounts() map[string]int64 {
	out := make(map[string]int64)
	for k := range s.kinds {
		if n := s.kinds[k].Load(); n > 0 {
			out[msg.Kind(k).String()] = n
		}
	}
	return out
}

// BatchSizes returns the non-zero coalesced-batch-size histogram keyed by
// frames-per-flush bucket (e.g. "9-16").
func (s *Stats) BatchSizes() map[string]int64 {
	out := make(map[string]int64)
	for i := range s.batches {
		if n := s.batches[i].Load(); n > 0 {
			out[batchBucketLabels[i]] = n
		}
	}
	return out
}

// WireSnapshot is a plain-value view of the fabric counters, shaped for
// JSON metrics surfaces.
type WireSnapshot struct {
	Sent        int64 `json:"sent"`
	Delivered   int64 `json:"delivered"`
	Dropped     int64 `json:"dropped"`
	Multicast   int64 `json:"multicast"`
	BytesSent   int64 `json:"bytes_sent"`
	BytesRecv   int64 `json:"bytes_recv"`
	FrameErrors int64 `json:"frame_errors"`
	// Outbound pipeline figures: flush count (writev batches), live queue
	// depth, per-lane drops, and the frames-per-flush histogram. Mean
	// writes-per-frame on the wire is Flushes/Sent.
	Flushes      int64            `json:"flushes"`
	QueueDepth   int64            `json:"queue_depth"`
	ControlDrops int64            `json:"control_drops"`
	BulkDrops    int64            `json:"bulk_drops"`
	BatchSizes   map[string]int64 `json:"batch_sizes,omitempty"`
	ByKind       map[string]int64 `json:"by_kind,omitempty"`
}

// Wire returns the full counter snapshot.
func (s *Stats) Wire() WireSnapshot {
	return WireSnapshot{
		Sent:         s.Sent.Load(),
		Delivered:    s.Delivered.Load(),
		Dropped:      s.Dropped.Load(),
		Multicast:    s.Multicast.Load(),
		BytesSent:    s.BytesSent.Load(),
		BytesRecv:    s.BytesRecv.Load(),
		FrameErrors:  s.FrameErrors.Load(),
		Flushes:      s.Flushes.Load(),
		QueueDepth:   s.QueueDepth.Load(),
		ControlDrops: s.ControlDrops.Load(),
		BulkDrops:    s.BulkDrops.Load(),
		BatchSizes:   s.BatchSizes(),
		ByKind:       s.KindCounts(),
	}
}

// Caller layers blocking request/response ("call") semantics over an
// asynchronous Endpoint using message correlation IDs, the way the paper's
// well-defined request/response message pairs behave.
//
// Components route every inbound message through Handle first; messages
// consumed as replies return true and must not be processed further.
type Caller struct {
	ep Endpoint

	mu      sync.Mutex
	pending map[uint64]chan *msg.Message
	multi   map[uint64]chan *msg.Message
}

// NewCaller wraps an endpoint.
func NewCaller(ep Endpoint) *Caller {
	return &Caller{
		ep:      ep,
		pending: make(map[uint64]chan *msg.Message),
		multi:   make(map[uint64]chan *msg.Message),
	}
}

// Endpoint returns the wrapped endpoint.
func (c *Caller) Endpoint() Endpoint { return c.ep }

// GatherGroup is Gather with max set to the group's current size, so the
// call returns as soon as every member replied instead of always waiting
// out the window. Silent members still cost the full window.
func (c *Caller) GatherGroup(group string, m *msg.Message, window time.Duration) ([]*msg.Message, error) {
	return c.Gather(group, m, c.ep.GroupSize(group), window)
}

// Handle offers an inbound message to the caller. It returns true when the
// message was a reply to an outstanding Call/Gather and has been consumed.
func (c *Caller) Handle(m *msg.Message) bool {
	if m.CorrelID == 0 {
		return false
	}
	c.mu.Lock()
	if ch, ok := c.pending[m.CorrelID]; ok {
		delete(c.pending, m.CorrelID)
		c.mu.Unlock()
		ch <- m
		return true
	}
	ch, ok := c.multi[m.CorrelID]
	c.mu.Unlock()
	if ok {
		select {
		case ch <- m:
		default: // gatherer stopped listening; drop late reply
		}
		return true
	}
	return false
}

// Call sends m to toNode and blocks until a correlated reply arrives or ctx
// is done.
func (c *Caller) Call(ctx context.Context, toNode string, m *msg.Message) (*msg.Message, error) {
	ch := make(chan *msg.Message, 1)
	c.mu.Lock()
	c.pending[m.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
	}()
	if err := c.ep.Send(toNode, m); err != nil {
		return nil, fmt.Errorf("transport: call %s: %w", toNode, err)
	}
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("transport: call %s (%s): %w", toNode, m.Kind, ctx.Err())
	}
}

// Gather multicasts m to group and collects correlated replies until either
// max replies arrived (max > 0) or the window elapsed. It returns the
// replies received; an empty slice is not an error.
func (c *Caller) Gather(group string, m *msg.Message, max int, window time.Duration) ([]*msg.Message, error) {
	buf := max
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan *msg.Message, buf)
	c.mu.Lock()
	c.multi[m.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.multi, m.ID)
		c.mu.Unlock()
	}()
	if err := c.ep.Multicast(group, m); err != nil {
		return nil, fmt.Errorf("transport: gather %s: %w", group, err)
	}
	timer := time.NewTimer(window)
	defer timer.Stop()
	var replies []*msg.Message
	for {
		select {
		case r := <-ch:
			replies = append(replies, r)
			if max > 0 && len(replies) >= max {
				return replies, nil
			}
		case <-timer.C:
			return replies, nil
		}
	}
}

// groupSet tracks multicast membership shared by both network
// implementations.
type groupSet struct {
	mu     sync.RWMutex
	groups map[string]map[string]bool // group -> node -> member
}

func newGroupSet() *groupSet {
	return &groupSet{groups: make(map[string]map[string]bool)}
}

func (g *groupSet) join(group, node string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set, ok := g.groups[group]
	if !ok {
		set = make(map[string]bool)
		g.groups[group] = set
	}
	set[node] = true
}

func (g *groupSet) leave(group, node string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if set, ok := g.groups[group]; ok {
		delete(set, node)
		if len(set) == 0 {
			delete(g.groups, group)
		}
	}
}

func (g *groupSet) leaveAll(node string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for group, set := range g.groups {
		delete(set, node)
		if len(set) == 0 {
			delete(g.groups, group)
		}
	}
}

// size returns the group's member count.
func (g *groupSet) size(group string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.groups[group])
}

// members returns the group members, including the sender when it joined
// the group (multicast loopback).
func (g *groupSet) members(group string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	set := g.groups[group]
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	return out
}
