package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
	"cn/internal/wire"
)

// Timeouts governing TCP fan-out; package variables so tests can tighten
// them.
var (
	// tcpDialTimeout bounds one connection attempt to a peer.
	tcpDialTimeout = 2 * time.Second
	// tcpMulticastWait bounds how long Multicast waits for its concurrent
	// per-member sends; stragglers (a peer mid-dial) finish in the
	// background. Delivery stays best-effort either way.
	tcpMulticastWait = 2 * time.Second
	// tcpWriteTimeout bounds one frame write. A peer that is alive but not
	// reading (wedged process, full socket buffer) errors the connection
	// instead of parking the sender — and every later sender queued on the
	// same connection — forever.
	tcpWriteTimeout = 5 * time.Second
)

// TCPNetwork is a real-socket fabric on the loopback interface. Every
// attached endpoint owns a TCP listener; a shared in-process directory maps
// node names to listen addresses (standing in for DNS/static cluster
// configuration), and multicast is emulated by concurrent unicast fan-out
// over group membership (standing in for IP multicast, which sandboxes
// rarely route).
//
// Frames are length-prefixed binary messages (cn/internal/wire) on
// persistent per-destination connections. Inbound frames are bounded by
// wire.MaxFrameBytes: a corrupt or hostile length prefix drops the
// connection with a logged transport error instead of allocating without
// limit.
type TCPNetwork struct {
	groups *groupSet
	stats  Stats
	logf   func(format string, args ...any)

	mu     sync.RWMutex
	nodes  map[string]*tcpEndpoint // node -> endpoint (for directory lookups)
	addrs  map[string]string       // node -> host:port
	closed bool
}

// NewTCPNetwork creates an empty TCP fabric.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		groups: newGroupSet(),
		nodes:  make(map[string]*tcpEndpoint),
		addrs:  make(map[string]string),
	}
}

// SetLogf installs a diagnostic sink for transport errors (dropped
// connections, malformed frames); nil disables logging.
func (n *TCPNetwork) SetLogf(f func(format string, args ...any)) { n.logf = f }

func (n *TCPNetwork) logErr(format string, args ...any) {
	if n.logf != nil {
		n.logf("[transport] "+format, args...)
	}
}

// Stats exposes the fabric counters.
func (n *TCPNetwork) Stats() *Stats { return &n.stats }

// Attach implements Network: starts a loopback listener for the node.
func (n *TCPNetwork) Attach(node string, handler Handler) (Endpoint, error) {
	if node == "" {
		return nil, fmt.Errorf("transport: attach: empty node name")
	}
	if handler == nil {
		return nil, fmt.Errorf("transport: attach %q: nil handler", node)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.nodes[node]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, node)
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: attach %q: %w", node, err)
	}
	ep := &tcpEndpoint{
		net:     n,
		node:    node,
		handler: handler,
		ln:      ln,
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]bool),
		stop:    make(chan struct{}),
	}
	n.mu.Lock()
	n.nodes[node] = ep
	n.addrs[node] = ln.Addr().String()
	n.mu.Unlock()

	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*tcpEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (n *TCPNetwork) lookup(node string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return "", ErrClosed
	}
	addr, ok := n.addrs[node]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return addr, nil
}

// tcpConn is a persistent outbound connection. The connection is dialed
// lazily under the per-connection lock, so a slow or dead destination
// stalls only senders to that destination — never the whole endpoint. The
// fd itself is published atomically so close can reach it while a writer
// holds mu (closing the fd is what unblocks a wedged Write).
type tcpConn struct {
	addr string

	mu     sync.Mutex   // serializes dial + frame writes
	closed atomic.Bool  // set by close; late dialers self-destruct
	cval   atomic.Value // net.Conn, set once after a successful dial
}

// close marks the record dead and closes the fd (if dialed). It must not
// take mu: a sender blocked mid-Write holds it, and only the fd close can
// unblock that write.
func (tc *tcpConn) close() {
	tc.closed.Store(true)
	if c, ok := tc.cval.Load().(net.Conn); ok {
		c.Close()
	}
}

// tcpEndpoint is one node's attachment to a TCPNetwork.
type tcpEndpoint struct {
	net     *TCPNetwork
	node    string
	handler Handler
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	conns   map[string]*tcpConn
	inbound map[net.Conn]bool
	closed  bool
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

// readLoop decodes length-prefixed binary frames off one inbound
// connection. The frame length is validated against wire.MaxFrameBytes
// BEFORE any allocation for the body, and any malformed frame drops the
// connection with a logged transport error — at-most-once semantics make
// the in-flight messages a silent loss, exactly as if the peer died.
func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [wire.FrameHeaderBytes]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				// Connection torn down mid-frame.
				e.net.stats.Dropped.Add(1)
			}
			return
		}
		frameLen := binary.BigEndian.Uint32(hdr[:])
		if err := wire.CheckFrameLen(frameLen); err != nil {
			e.net.stats.FrameErrors.Add(1)
			e.net.logErr("%s: inbound frame from %s rejected: %v; dropping connection",
				e.node, c.RemoteAddr(), err)
			return
		}
		body := make([]byte, frameLen)
		if _, err := io.ReadFull(br, body); err != nil {
			e.net.stats.Dropped.Add(1)
			return
		}
		m, err := wire.DecodeFrameBody(body)
		if err != nil {
			e.net.stats.FrameErrors.Add(1)
			e.net.logErr("%s: undecodable frame from %s: %v; dropping connection",
				e.node, c.RemoteAddr(), err)
			return
		}
		select {
		case <-e.stop:
			e.net.stats.Dropped.Add(1)
			return
		default:
		}
		e.net.stats.Delivered.Add(1)
		e.net.stats.BytesRecv.Add(int64(wire.FrameHeaderBytes + frameLen))
		e.handler(m)
	}
}

// Node implements Endpoint.
func (e *tcpEndpoint) Node() string { return e.node }

// conn returns the persistent connection record for node, creating an
// undialed placeholder on first use. Dialing happens in Send under the
// record's own lock so concurrent sends to other nodes are not blocked.
func (e *tcpEndpoint) conn(node string) (*tcpConn, error) {
	addr, err := e.net.lookup(node)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	tc, ok := e.conns[node]
	if ok && tc.addr == addr {
		return tc, nil
	}
	if ok {
		// The peer restarted under a new address; retire the stale socket.
		go tc.close()
	}
	tc = &tcpConn{addr: addr}
	e.conns[node] = tc
	return tc, nil
}

// forget drops tc from the connection table (it went bad) so the next send
// re-dials.
func (e *tcpEndpoint) forget(node string, tc *tcpConn) {
	e.mu.Lock()
	if cur, ok := e.conns[node]; ok && cur == tc {
		delete(e.conns, node)
	}
	e.mu.Unlock()
}

// Send implements Endpoint. An oversized message fails before anything is
// written; the stream stays intact.
func (e *tcpEndpoint) Send(toNode string, m *msg.Message) error {
	buf := wire.GetBuf()
	var err error
	*buf, err = wire.AppendFrame((*buf)[:0], m)
	if err != nil {
		wire.PutBuf(buf)
		return fmt.Errorf("transport: send to %s: %w", toNode, err)
	}
	err = e.writeFrame(toNode, m.Kind, *buf)
	wire.PutBuf(buf)
	return err
}

// writeFrame delivers one already-encoded frame to a node, dialing the
// persistent connection if needed.
func (e *tcpEndpoint) writeFrame(toNode string, kind msg.Kind, frame []byte) error {
	tc, err := e.conn(toNode)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	if tc.closed.Load() {
		tc.mu.Unlock()
		e.forget(toNode, tc)
		return fmt.Errorf("transport: send to %s: connection closed", toNode)
	}
	c, _ := tc.cval.Load().(net.Conn)
	if c == nil {
		dialed, err := net.DialTimeout("tcp", tc.addr, tcpDialTimeout)
		if err != nil {
			// Poison the record before forgetting it: another sender may
			// already hold this tc waiting on mu, and must fail fast rather
			// than dial onto an orphaned record whose fd Close() would
			// never find.
			tc.closed.Store(true)
			tc.mu.Unlock()
			e.forget(toNode, tc)
			return fmt.Errorf("transport: dial %s (%s): %w", toNode, tc.addr, err)
		}
		tc.cval.Store(dialed)
		if tc.closed.Load() {
			// close raced the dial; it may have missed the just-published fd.
			dialed.Close()
			tc.mu.Unlock()
			e.forget(toNode, tc)
			return fmt.Errorf("transport: send to %s: connection closed", toNode)
		}
		c = dialed
	}
	c.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
	_, err = c.Write(frame)
	tc.mu.Unlock()
	if err != nil {
		// Connection went bad: forget it so the next send re-dials.
		e.forget(toNode, tc)
		tc.close()
		return fmt.Errorf("transport: send to %s: %w", toNode, err)
	}
	e.net.stats.countSend(kind, len(frame))
	return nil
}

// Multicast implements Endpoint: concurrent unicast fan-out over group
// membership. The frame is encoded ONCE (binary frames carry no
// per-connection state, unlike the old per-stream gob encoders) and each
// member is dialed and written on its own goroutine, so one dead member's
// dial timeout no longer stalls delivery to every later member; the call
// waits a bounded window for the fan-out and leaves stragglers to finish
// in the background (best-effort, like the wire).
func (e *tcpEndpoint) Multicast(group string, m *msg.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	buf := wire.GetBuf()
	var err error
	*buf, err = wire.AppendFrame((*buf)[:0], m)
	if err != nil {
		// Counted only after the size guard, matching MemNetwork, so both
		// fabrics report identical multicast counts for the same workload.
		wire.PutBuf(buf)
		return fmt.Errorf("transport: multicast %s: %w", group, err)
	}
	e.net.stats.Multicast.Add(1)
	members := e.net.groups.members(group)
	if len(members) == 0 {
		wire.PutBuf(buf)
		return nil
	}
	var wg sync.WaitGroup
	for _, node := range members {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			_ = e.writeFrame(node, m.Kind, *buf) // best-effort, like the wire
		}(node)
	}
	done := make(chan struct{})
	go func() {
		// The shared frame buffer may only be recycled once every member's
		// write — including stragglers past the bounded wait — is finished.
		wg.Wait()
		wire.PutBuf(buf)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(tcpMulticastWait):
	case <-e.stop:
	}
	return nil
}

// Join implements Endpoint.
func (e *tcpEndpoint) Join(group string) error {
	if group == "" {
		return fmt.Errorf("transport: join: empty group")
	}
	e.net.groups.join(group, e.node)
	return nil
}

// Leave implements Endpoint.
func (e *tcpEndpoint) Leave(group string) error {
	e.net.groups.leave(group, e.node)
	return nil
}

// GroupSize implements Endpoint.
func (e *tcpEndpoint) GroupSize(group string) int {
	return e.net.groups.size(group)
}

// GroupMembers implements Endpoint.
func (e *tcpEndpoint) GroupMembers(group string) []string {
	return e.net.groups.members(group)
}

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()

	close(e.stop)
	e.ln.Close()
	for _, tc := range conns {
		tc.close()
	}
	for _, c := range inbound {
		c.Close()
	}
	e.wg.Wait()
	e.net.groups.leaveAll(e.node)
	e.net.mu.Lock()
	delete(e.net.nodes, e.node)
	delete(e.net.addrs, e.node)
	e.net.mu.Unlock()
	return nil
}
