package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
	"cn/internal/wire"
)

// Timeouts governing TCP fan-out; package variables so tests can tighten
// them.
var (
	// tcpDialTimeout bounds one connection attempt to a peer.
	tcpDialTimeout = 2 * time.Second
	// tcpMulticastWait bounds how long the legacy (non-pipelined)
	// Multicast waits for its concurrent per-member sends; stragglers (a
	// peer mid-dial) finish in the background. Delivery stays best-effort
	// either way.
	tcpMulticastWait = 2 * time.Second
	// tcpWriteTimeout bounds one coalesced frame flush. A peer that is
	// alive but not reading (wedged process, full socket buffer) errors
	// the connection — failing queued frames with ErrSlowConsumer —
	// instead of parking the writer forever.
	tcpWriteTimeout = 5 * time.Second
	// tcpDial is the dial function; a package variable so tests can
	// simulate slow or failing dials deterministically.
	tcpDial = net.DialTimeout
)

// TCPNetwork is a real-socket fabric on the loopback interface. Every
// attached endpoint owns a TCP listener; a shared in-process directory maps
// node names to listen addresses (standing in for DNS/static cluster
// configuration), and multicast is emulated by unicast fan-out over group
// membership (standing in for IP multicast, which sandboxes rarely route).
//
// Frames are length-prefixed binary messages (cn/internal/wire) on
// persistent per-destination connections. The outbound path is pipelined:
// Send encodes onto a bounded two-lane queue and returns; a per-connection
// writer goroutine owns the dial and drains the queue with coalesced
// writev flushes (see pipeline.go). Inbound frames are bounded by
// wire.MaxFrameBytes: a corrupt or hostile length prefix drops the
// connection with a logged transport error instead of allocating without
// limit.
type TCPNetwork struct {
	groups *groupSet
	stats  Stats
	logf   func(format string, args ...any)
	// serialized restores the pre-pipeline send path (mutex across the
	// write syscall, dial inline in Send): the benchmark baseline.
	serialized atomic.Bool
	// sendBuf, when positive, bounds SO_SNDBUF on outbound connections.
	sendBuf atomic.Int32

	mu     sync.RWMutex
	nodes  map[string]*tcpEndpoint // node -> endpoint (for directory lookups)
	addrs  map[string]string       // node -> host:port
	closed bool
}

// NewTCPNetwork creates an empty TCP fabric.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		groups: newGroupSet(),
		nodes:  make(map[string]*tcpEndpoint),
		addrs:  make(map[string]string),
	}
}

// SetLogf installs a diagnostic sink for transport errors (dropped
// connections, malformed frames); nil disables logging.
func (n *TCPNetwork) SetLogf(f func(format string, args ...any)) { n.logf = f }

// SetPipelining toggles the per-connection async writer (on by default).
// Disabling it restores the serialized lock-across-syscall send path; the
// knob exists so cnbench can measure the pipeline against its own
// baseline and must be set before traffic flows.
func (n *TCPNetwork) SetPipelining(enabled bool) { n.serialized.Store(!enabled) }

// SetSendBuffer bounds the kernel send buffer (SO_SNDBUF) of outbound
// connections dialed after the call; 0 keeps the OS default. Lane priority
// can only reorder frames still in THIS process — bytes already handed to
// the kernel drain strictly in order — so a bounded send buffer is what
// keeps a control frame's worst-case wait proportional to the buffer, not
// to however much bulk the kernel has absorbed (the bufferbloat knob).
func (n *TCPNetwork) SetSendBuffer(bytes int) { n.sendBuf.Store(int32(bytes)) }

// tuneConn applies the configured socket options to a freshly dialed
// outbound connection.
func (n *TCPNetwork) tuneConn(c net.Conn) {
	if b := n.sendBuf.Load(); b > 0 {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(int(b))
		}
	}
}

func (n *TCPNetwork) logErr(format string, args ...any) {
	if n.logf != nil {
		n.logf("[transport] "+format, args...)
	}
}

// Stats exposes the fabric counters.
func (n *TCPNetwork) Stats() *Stats { return &n.stats }

// Attach implements Network: starts a loopback listener for the node.
func (n *TCPNetwork) Attach(node string, handler Handler) (Endpoint, error) {
	if node == "" {
		return nil, fmt.Errorf("transport: attach: empty node name")
	}
	if handler == nil {
		return nil, fmt.Errorf("transport: attach %q: nil handler", node)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.nodes[node]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, node)
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: attach %q: %w", node, err)
	}
	ep := &tcpEndpoint{
		net:     n,
		node:    node,
		handler: handler,
		ln:      ln,
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]bool),
		stop:    make(chan struct{}),
	}
	n.mu.Lock()
	n.nodes[node] = ep
	n.addrs[node] = ln.Addr().String()
	n.mu.Unlock()

	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*tcpEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (n *TCPNetwork) lookup(node string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return "", ErrClosed
	}
	addr, ok := n.addrs[node]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return addr, nil
}

// tcpConn is a persistent outbound connection: the bounded two-lane
// outbound queue plus the socket its writer goroutine owns. Senders only
// ever touch the pipe; the writer dials (so a first-touch Send never
// blocks up to tcpDialTimeout), drains the queue, and coalesces every
// queued frame into one writev per wakeup. The fd is published atomically
// so close can reach it while the writer is blocked in a write (closing
// the fd is what unblocks a wedged writev).
type tcpConn struct {
	addr string
	node string
	pipe *outPipe

	closed atomic.Bool
	cval   atomic.Value // net.Conn, set once after a successful dial

	// wmu serializes the legacy (serialized-mode) dial + frame writes;
	// unused when pipelining is on.
	wmu sync.Mutex
}

// close marks the record dead, fails every queued frame with err, and
// closes the fd (if dialed). It must not block on the writer: a writer
// wedged mid-writev holds the socket, and only the fd close unblocks it.
func (tc *tcpConn) close(err error) {
	tc.closed.Store(true)
	tc.pipe.fail(err)
	if c, ok := tc.cval.Load().(net.Conn); ok {
		c.Close()
	}
}

// tcpEndpoint is one node's attachment to a TCPNetwork.
type tcpEndpoint struct {
	net     *TCPNetwork
	node    string
	handler Handler
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	conns   map[string]*tcpConn
	inbound map[net.Conn]bool
	closed  bool
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

// readLoop decodes length-prefixed binary frames off one inbound
// connection. The frame length is validated against wire.MaxFrameBytes
// BEFORE any allocation for the body, and any malformed frame drops the
// connection with a logged transport error — at-most-once semantics make
// the in-flight messages a silent loss, exactly as if the peer died.
func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [wire.FrameHeaderBytes]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				// Connection torn down mid-frame.
				e.net.stats.Dropped.Add(1)
			}
			return
		}
		frameLen := binary.BigEndian.Uint32(hdr[:])
		if err := wire.CheckFrameLen(frameLen); err != nil {
			e.net.stats.FrameErrors.Add(1)
			e.net.logErr("%s: inbound frame from %s rejected: %v; dropping connection",
				e.node, c.RemoteAddr(), err)
			return
		}
		body := make([]byte, frameLen)
		if _, err := io.ReadFull(br, body); err != nil {
			e.net.stats.Dropped.Add(1)
			return
		}
		m, err := wire.DecodeFrameBody(body)
		if err != nil {
			e.net.stats.FrameErrors.Add(1)
			e.net.logErr("%s: undecodable frame from %s: %v; dropping connection",
				e.node, c.RemoteAddr(), err)
			return
		}
		select {
		case <-e.stop:
			e.net.stats.Dropped.Add(1)
			return
		default:
		}
		e.net.stats.Delivered.Add(1)
		e.net.stats.BytesRecv.Add(int64(wire.FrameHeaderBytes + frameLen))
		e.handler(m)
	}
}

// Node implements Endpoint.
func (e *tcpEndpoint) Node() string { return e.node }

// conn returns the persistent connection record for node, creating it —
// and launching its writer goroutine, which owns the dial — on first use.
// Senders never dial: they enqueue and return.
func (e *tcpEndpoint) conn(node string) (*tcpConn, error) {
	addr, err := e.net.lookup(node)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	tc, ok := e.conns[node]
	if ok && tc.addr == addr {
		return tc, nil
	}
	if ok {
		// The peer restarted under a new address; retire the stale socket
		// and its queued frames.
		go tc.close(fmt.Errorf("transport: send to %s: %w (peer re-attached)", node, ErrClosed))
	}
	tc = &tcpConn{addr: addr, node: node, pipe: newOutPipe(&e.net.stats)}
	e.conns[node] = tc
	if !e.net.serialized.Load() {
		// The writer is deliberately NOT in e.wg: a writer parked in a
		// dial may outlive Close by up to tcpDialTimeout (it only touches
		// the already-failed pipe and the connection table), and shutdown
		// must not wait on it — the same detachment the legacy multicast
		// dial goroutines had.
		go e.writeLoop(tc)
	}
	return tc, nil
}

// forget drops tc from the connection table (it went bad) so the next send
// re-dials.
func (e *tcpEndpoint) forget(node string, tc *tcpConn) {
	e.mu.Lock()
	if cur, ok := e.conns[node]; ok && cur == tc {
		delete(e.conns, node)
	}
	e.mu.Unlock()
}

// writeLoop is tc's writer goroutine: it owns the dial, then drains the
// pipe, coalescing every queued frame into a single net.Buffers writev
// per wakeup — control lane first. A dial or write failure fails the
// whole queued batch at once with one error and retires the connection;
// the next Send re-dials on a fresh record.
func (e *tcpEndpoint) writeLoop(tc *tcpConn) {
	c, err := tcpDial("tcp", tc.addr, tcpDialTimeout)
	if err != nil {
		dialErr := fmt.Errorf("transport: dial %s (%s): %w", tc.node, tc.addr, err)
		e.net.logErr("%s: %v; failing queued frames", e.node, dialErr)
		e.forget(tc.node, tc)
		tc.close(dialErr)
		return
	}
	e.net.tuneConn(c)
	tc.cval.Store(c)
	if tc.closed.Load() {
		// close raced the dial; it may have missed the just-published fd.
		c.Close()
		return
	}
	var bufs net.Buffers
	for {
		batch, ok := tc.pipe.popBatch(e.stop)
		if !ok {
			c.Close()
			return
		}
		bufs = bufs[:0]
		for i := range batch {
			bufs = append(bufs, batch[i].data)
		}
		c.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
		_, werr := bufs.WriteTo(c)
		for i := range batch {
			batch[i].release()
		}
		if werr != nil {
			if ne, ok := werr.(net.Error); ok && ne.Timeout() {
				werr = fmt.Errorf("%w: %v", ErrSlowConsumer, werr)
			}
			e.net.stats.Dropped.Add(int64(len(batch)))
			e.net.logErr("%s: write to %s failed: %v; dropping connection and %d queued frames",
				e.node, tc.node, werr, len(batch))
			e.forget(tc.node, tc)
			tc.close(fmt.Errorf("transport: send to %s: %w", tc.node, werr))
			return
		}
		for i := range batch {
			e.net.stats.countSend(batch[i].kind, len(batch[i].data))
		}
		e.net.stats.countFlush(len(batch))
	}
}

// Send implements Endpoint: encode, enqueue onto the destination's
// pipeline, return. The caller never blocks on a dial or a write; dial
// and write failures fail the queued batch asynchronously (at-most-once
// semantics, like the wire). An oversized message still fails
// synchronously before anything is queued, as does an unknown node.
func (e *tcpEndpoint) Send(toNode string, m *msg.Message) error {
	buf := wire.GetBuf()
	var err error
	*buf, err = wire.AppendFrame((*buf)[:0], m)
	if err != nil {
		wire.PutBuf(buf)
		return fmt.Errorf("transport: send to %s: %w", toNode, err)
	}
	if e.net.serialized.Load() {
		err = e.writeFrameSync(toNode, m.Kind, *buf)
		wire.PutBuf(buf)
		return err
	}
	tc, err := e.conn(toNode)
	if err != nil {
		wire.PutBuf(buf)
		return err
	}
	return tc.pipe.enqueue(outFrame{
		kind: m.Kind,
		data: *buf,
		ref:  newFrameRef(buf, 1),
		size: len(*buf),
	})
}

// writeFrameSync is the legacy serialized send path (dial inline, mutex
// across the write syscall, one syscall per frame), kept as the benchmark
// baseline behind SetPipelining(false).
func (e *tcpEndpoint) writeFrameSync(toNode string, kind msg.Kind, frame []byte) error {
	tc, err := e.conn(toNode)
	if err != nil {
		return err
	}
	tc.wmu.Lock()
	if tc.closed.Load() {
		tc.wmu.Unlock()
		e.forget(toNode, tc)
		return fmt.Errorf("transport: send to %s: connection closed", toNode)
	}
	c, _ := tc.cval.Load().(net.Conn)
	if c == nil {
		dialed, err := tcpDial("tcp", tc.addr, tcpDialTimeout)
		if err != nil {
			tc.closed.Store(true)
			tc.wmu.Unlock()
			e.forget(toNode, tc)
			return fmt.Errorf("transport: dial %s (%s): %w", toNode, tc.addr, err)
		}
		e.net.tuneConn(dialed)
		tc.cval.Store(dialed)
		if tc.closed.Load() {
			dialed.Close()
			tc.wmu.Unlock()
			e.forget(toNode, tc)
			return fmt.Errorf("transport: send to %s: connection closed", toNode)
		}
		c = dialed
	}
	c.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
	_, err = c.Write(frame)
	tc.wmu.Unlock()
	if err != nil {
		e.forget(toNode, tc)
		tc.close(fmt.Errorf("transport: send to %s: %w", toNode, err))
		return fmt.Errorf("transport: send to %s: %w", toNode, err)
	}
	e.net.stats.countSend(kind, len(frame))
	e.net.stats.countFlush(1)
	return nil
}

// Multicast implements Endpoint: unicast fan-out over group membership.
// The frame is encoded ONCE and the same reference-counted bytes are
// enqueued onto every member's pipeline, so fan-out costs no per-member
// dial goroutines and no per-member encoding; a dead member's dial
// failure is absorbed by its own writer (best-effort, like the wire).
func (e *tcpEndpoint) Multicast(group string, m *msg.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	buf := wire.GetBuf()
	var err error
	*buf, err = wire.AppendFrame((*buf)[:0], m)
	if err != nil {
		// Counted only after the size guard, matching MemNetwork, so both
		// fabrics report identical multicast counts for the same workload.
		wire.PutBuf(buf)
		return fmt.Errorf("transport: multicast %s: %w", group, err)
	}
	e.net.stats.Multicast.Add(1)
	members := e.net.groups.members(group)
	if len(members) == 0 {
		wire.PutBuf(buf)
		return nil
	}
	if e.net.serialized.Load() {
		return e.multicastSync(members, m.Kind, buf)
	}
	ref := newFrameRef(buf, int32(len(members)))
	for _, node := range members {
		tc, err := e.conn(node)
		if err != nil {
			ref.release()
			continue
		}
		// enqueue owns (and on failure releases) this member's reference.
		_ = tc.pipe.enqueue(outFrame{kind: m.Kind, data: *buf, ref: ref, size: len(*buf)})
	}
	return nil
}

// multicastSync is the legacy concurrent fan-out (per-member goroutines
// over the serialized write path), kept as the benchmark baseline.
func (e *tcpEndpoint) multicastSync(members []string, kind msg.Kind, buf *[]byte) error {
	var wg sync.WaitGroup
	for _, node := range members {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			_ = e.writeFrameSync(node, kind, *buf) // best-effort, like the wire
		}(node)
	}
	done := make(chan struct{})
	go func() {
		// The shared frame buffer may only be recycled once every member's
		// write — including stragglers past the bounded wait — is finished.
		wg.Wait()
		wire.PutBuf(buf)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(tcpMulticastWait):
	case <-e.stop:
	}
	return nil
}

// Join implements Endpoint.
func (e *tcpEndpoint) Join(group string) error {
	if group == "" {
		return fmt.Errorf("transport: join: empty group")
	}
	e.net.groups.join(group, e.node)
	return nil
}

// Leave implements Endpoint.
func (e *tcpEndpoint) Leave(group string) error {
	e.net.groups.leave(group, e.node)
	return nil
}

// GroupSize implements Endpoint.
func (e *tcpEndpoint) GroupSize(group string) int {
	return e.net.groups.size(group)
}

// GroupMembers implements Endpoint.
func (e *tcpEndpoint) GroupMembers(group string) []string {
	return e.net.groups.members(group)
}

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()

	close(e.stop)
	e.ln.Close()
	for _, tc := range conns {
		tc.close(ErrClosed)
	}
	for _, c := range inbound {
		c.Close()
	}
	e.wg.Wait()
	e.net.groups.leaveAll(e.node)
	e.net.mu.Lock()
	delete(e.net.nodes, e.node)
	delete(e.net.addrs, e.node)
	e.net.mu.Unlock()
	return nil
}
