package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cn/internal/msg"
)

// TCPNetwork is a real-socket fabric on the loopback interface. Every
// attached endpoint owns a TCP listener; a shared in-process directory maps
// node names to listen addresses (standing in for DNS/static cluster
// configuration), and multicast is emulated by unicast fan-out over group
// membership (standing in for IP multicast, which sandboxes rarely route).
//
// Frames are gob-encoded msg.Message values on short-lived or pooled
// connections; the sender keeps one persistent connection per destination.
type TCPNetwork struct {
	groups *groupSet
	stats  Stats

	mu     sync.RWMutex
	nodes  map[string]*tcpEndpoint // node -> endpoint (for directory lookups)
	addrs  map[string]string       // node -> host:port
	closed bool
}

// NewTCPNetwork creates an empty TCP fabric.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		groups: newGroupSet(),
		nodes:  make(map[string]*tcpEndpoint),
		addrs:  make(map[string]string),
	}
}

// Stats exposes the fabric counters.
func (n *TCPNetwork) Stats() *Stats { return &n.stats }

// Attach implements Network: starts a loopback listener for the node.
func (n *TCPNetwork) Attach(node string, handler Handler) (Endpoint, error) {
	if node == "" {
		return nil, fmt.Errorf("transport: attach: empty node name")
	}
	if handler == nil {
		return nil, fmt.Errorf("transport: attach %q: nil handler", node)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.nodes[node]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, node)
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: attach %q: %w", node, err)
	}
	ep := &tcpEndpoint{
		net:     n,
		node:    node,
		handler: handler,
		ln:      ln,
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]bool),
		stop:    make(chan struct{}),
	}
	n.mu.Lock()
	n.nodes[node] = ep
	n.addrs[node] = ln.Addr().String()
	n.mu.Unlock()

	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*tcpEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (n *TCPNetwork) lookup(node string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return "", ErrClosed
	}
	addr, ok := n.addrs[node]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return addr, nil
}

// tcpConn is a persistent outbound connection with its encoder.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	enc  *gob.Encoder
	addr string
}

// tcpEndpoint is one node's attachment to a TCPNetwork.
type tcpEndpoint struct {
	net     *TCPNetwork
	node    string
	handler Handler
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	conns   map[string]*tcpConn
	inbound map[net.Conn]bool
	closed  bool
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var m msg.Message
		if err := dec.Decode(&m); err != nil {
			if err != io.EOF {
				// Connection torn down mid-frame; at-most-once semantics
				// make this a silent drop.
				e.net.stats.Dropped.Add(1)
			}
			return
		}
		select {
		case <-e.stop:
			e.net.stats.Dropped.Add(1)
			return
		default:
		}
		e.net.stats.Delivered.Add(1)
		e.handler(&m)
	}
}

// Node implements Endpoint.
func (e *tcpEndpoint) Node() string { return e.node }

// conn returns (dialing if necessary) the persistent connection to addr.
func (e *tcpEndpoint) conn(node string) (*tcpConn, error) {
	addr, err := e.net.lookup(node)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if tc, ok := e.conns[node]; ok && tc.addr == addr {
		return tc, nil
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", node, addr, err)
	}
	tc := &tcpConn{c: c, enc: gob.NewEncoder(c), addr: addr}
	e.conns[node] = tc
	return tc, nil
}

// Send implements Endpoint.
func (e *tcpEndpoint) Send(toNode string, m *msg.Message) error {
	tc, err := e.conn(toNode)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	err = tc.enc.Encode(m)
	tc.mu.Unlock()
	if err != nil {
		// Connection went bad: forget it so the next send re-dials.
		e.mu.Lock()
		if cur, ok := e.conns[toNode]; ok && cur == tc {
			delete(e.conns, toNode)
		}
		e.mu.Unlock()
		tc.c.Close()
		return fmt.Errorf("transport: send to %s: %w", toNode, err)
	}
	e.net.stats.Sent.Add(1)
	return nil
}

// Multicast implements Endpoint (unicast fan-out over group membership).
func (e *tcpEndpoint) Multicast(group string, m *msg.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.net.stats.Multicast.Add(1)
	for _, node := range e.net.groups.members(group) {
		if err := e.Send(node, m.Clone()); err != nil {
			continue // best-effort, like the wire
		}
	}
	return nil
}

// Join implements Endpoint.
func (e *tcpEndpoint) Join(group string) error {
	if group == "" {
		return fmt.Errorf("transport: join: empty group")
	}
	e.net.groups.join(group, e.node)
	return nil
}

// Leave implements Endpoint.
func (e *tcpEndpoint) Leave(group string) error {
	e.net.groups.leave(group, e.node)
	return nil
}

// GroupSize implements Endpoint.
func (e *tcpEndpoint) GroupSize(group string) int {
	return e.net.groups.size(group)
}

// GroupMembers implements Endpoint.
func (e *tcpEndpoint) GroupMembers(group string) []string {
	return e.net.groups.members(group)
}

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()

	close(e.stop)
	e.ln.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	e.wg.Wait()
	e.net.groups.leaveAll(e.node)
	e.net.mu.Lock()
	delete(e.net.nodes, e.node)
	delete(e.net.addrs, e.node)
	e.net.mu.Unlock()
	return nil
}
