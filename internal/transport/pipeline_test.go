package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cn/internal/health"
	"cn/internal/msg"
)

func TestLaneClassification(t *testing.T) {
	for _, k := range []msg.Kind{msg.KindHeartbeat, msg.KindHeartbeatAck, msg.KindTSOut,
		msg.KindTSIn, msg.KindTSReply, msg.KindDataResolve, msg.KindDataLoc,
		msg.KindJMCheckpoint, msg.KindExecTask, msg.KindPing} {
		if laneOf(k) != laneControl {
			t.Errorf("%v classified bulk, want control", k)
		}
	}
	for _, k := range []msg.Kind{msg.KindBlobChunk, msg.KindBlobChunkAck, msg.KindBlobData,
		msg.KindUploadJar, msg.KindDataFetch, msg.KindUser, msg.KindBroadcast} {
		if laneOf(k) != laneBulk {
			t.Errorf("%v classified control, want bulk", k)
		}
	}
}

// TestPipeControlOvertakesBulk: a control frame enqueued AFTER bulk frames
// must come out of the batch ahead of all of them.
func TestPipeControlOvertakesBulk(t *testing.T) {
	var stats Stats
	p := newOutPipe(&stats)
	for i := 0; i < 3; i++ {
		if err := p.enqueue(outFrame{kind: msg.KindBlobChunk, size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.enqueue(outFrame{kind: msg.KindHeartbeat, size: 1}); err != nil {
		t.Fatal(err)
	}
	batch, ok := p.popBatch(nil)
	if !ok {
		t.Fatal("popBatch reported closed")
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want 4 (coalesced)", len(batch))
	}
	if batch[0].kind != msg.KindHeartbeat {
		t.Errorf("batch head is %v, want the later-enqueued HEARTBEAT", batch[0].kind)
	}
	if stats.QueueDepth.Load() != 0 {
		t.Errorf("queue depth %d after drain, want 0", stats.QueueDepth.Load())
	}
}

// TestPipeFlushBytesBounded: one flush takes all control but caps bulk at
// pipeFlushMaxBytes, so a deep bulk queue cannot stretch a single writev
// (and the control latency it bounds) arbitrarily.
func TestPipeFlushBytesBounded(t *testing.T) {
	var stats Stats
	p := newOutPipe(&stats)
	frame := pipeFlushMaxBytes / 2
	for i := 0; i < 5; i++ {
		if err := p.enqueue(outFrame{kind: msg.KindBlobChunk, size: frame}); err != nil {
			t.Fatal(err)
		}
	}
	batch, _ := p.popBatch(nil)
	if len(batch) != 2 {
		t.Errorf("first flush coalesced %d bulk frames, want 2 (%d-byte cap)", len(batch), pipeFlushMaxBytes)
	}
	batch, _ = p.popBatch(nil)
	if len(batch) != 2 {
		t.Errorf("second flush coalesced %d bulk frames, want 2", len(batch))
	}
	batch, _ = p.popBatch(nil)
	if len(batch) != 1 {
		t.Errorf("third flush coalesced %d bulk frames, want 1", len(batch))
	}
}

// TestPipeBulkBackpressureAndControlNeverBlocks: a full bulk lane blocks
// the sender until the deadline then fails with ErrBackpressure; a full
// control lane drops with a counter and never blocks.
func TestPipeBulkBackpressureAndControlNeverBlocks(t *testing.T) {
	defer func(c, b int, w time.Duration) { pipeControlCap, pipeBulkCap, pipeEnqueueWait = c, b, w }(
		pipeControlCap, pipeBulkCap, pipeEnqueueWait)
	pipeControlCap, pipeBulkCap, pipeEnqueueWait = 2, 2, 50*time.Millisecond

	var stats Stats
	p := newOutPipe(&stats) // no writer: nothing drains
	for i := 0; i < 2; i++ {
		if err := p.enqueue(outFrame{kind: msg.KindBlobChunk, size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	err := p.enqueue(outFrame{kind: msg.KindBlobChunk, size: 8})
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("bulk enqueue on full lane = %v, want ErrBackpressure", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("bulk enqueue failed after %v, want to block ~%v first", d, pipeEnqueueWait)
	}
	if stats.BulkDrops.Load() != 1 {
		t.Errorf("bulk drops = %d, want 1", stats.BulkDrops.Load())
	}

	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := p.enqueue(outFrame{kind: msg.KindHeartbeat, size: 1}); err != nil {
			t.Fatalf("control enqueue: %v", err)
		}
		if d := time.Since(start); d > 20*time.Millisecond {
			t.Errorf("control enqueue blocked %v", d)
		}
	}
	if stats.ControlDrops.Load() != 1 {
		t.Errorf("control drops = %d, want 1 (cap 2, 3 enqueued)", stats.ControlDrops.Load())
	}
}

// TestPipeFailDrainsQueueOnce: fail must drop every queued frame with the
// one shared error, and later enqueues must return it.
func TestPipeFailDrainsQueueOnce(t *testing.T) {
	var stats Stats
	p := newOutPipe(&stats)
	for i := 0; i < 4; i++ {
		if err := p.enqueue(outFrame{kind: msg.KindPing, size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("dial exploded")
	p.fail(boom)
	if got := stats.Dropped.Load(); got != 4 {
		t.Errorf("dropped = %d, want 4", got)
	}
	if got := stats.QueueDepth.Load(); got != 0 {
		t.Errorf("queue depth = %d, want 0", got)
	}
	if err := p.enqueue(outFrame{kind: msg.KindPing, size: 1}); !errors.Is(err, boom) {
		t.Errorf("enqueue after fail = %v, want the fail error", err)
	}
	if _, ok := p.popBatch(nil); ok {
		t.Error("popBatch on failed pipe reported frames")
	}
}

// TestTCPSendDoesNotBlockOnDial: the acceptance criterion — Send to an
// undialed peer must return immediately while the writer goroutine eats
// the dial latency.
func TestTCPSendDoesNotBlockOnDial(t *testing.T) {
	realDial := tcpDial
	defer func() { tcpDial = realDial }()
	tcpDial = func(network, addr string, d time.Duration) (net.Conn, error) {
		time.Sleep(300 * time.Millisecond) // a slow peer, far short of tcpDialTimeout
		return realDial(network, addr, d)
	}

	n := NewTCPNetwork()
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("b", recv.handle); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("Send blocked %v waiting for the dial, want immediate return", d)
	}
	recv.wait(t, 1, 2*time.Second) // still delivered once the dial lands
}

// TestTCPDialFailureFailsBatchOnce: senders that queued behind a dead
// peer's dial must all fail from the ONE dial attempt — not each eat its
// own timeout serially, the pre-pipeline poisoning behavior.
func TestTCPDialFailureFailsBatchOnce(t *testing.T) {
	realDial := tcpDial
	defer func() { tcpDial = realDial }()
	var dials atomic.Int32
	tcpDial = func(network, addr string, d time.Duration) (net.Conn, error) {
		dials.Add(1)
		time.Sleep(100 * time.Millisecond)
		return nil, fmt.Errorf("connection refused (simulated)")
	}

	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("dead", func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	const queued = 10
	start := time.Now()
	for i := 0; i < queued; i++ {
		if err := a.Send("dead", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "dead"}, nil)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("%d sends took %v, want all to enqueue without dialing", queued, d)
	}
	waitFor(t, 2*time.Second, func() bool { return n.Stats().Dropped.Load() >= queued }, "batch failure")
	if got := dials.Load(); got != 1 {
		t.Errorf("dead peer dialed %d times for %d queued frames, want 1", got, queued)
	}
	if got := n.Stats().ControlDrops.Load(); got != queued {
		t.Errorf("control drops = %d, want %d", got, queued)
	}
}

// TestTCPCoalescing: frames queued while the writer is busy must flush in
// coalesced writev batches — fewer flushes than frames.
func TestTCPCoalescing(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	var got atomic.Int64
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("b", func(*msg.Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const frames = 400
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < frames/8; i++ {
				_ = a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("x")))
			}
		}()
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return got.Load() == frames }, "all frames delivered")
	sent, flushes := n.Stats().Sent.Load(), n.Stats().Flushes.Load()
	if sent != frames {
		t.Fatalf("sent = %d, want %d", sent, frames)
	}
	if flushes >= sent {
		t.Errorf("flushes = %d for %d frames: no coalescing happened", flushes, sent)
	}
	if hist := n.Stats().BatchSizes(); len(hist) == 0 {
		t.Error("batch-size histogram is empty")
	}
}

// TestMemBackpressureSemantics: the in-memory fabric must exhibit the same
// lane behavior as TCP — bulk backpressure surfaces to senders, control
// drops instead of blocking — so these bugs are catchable without sockets.
func TestMemBackpressureSemantics(t *testing.T) {
	defer func(c, b int, w time.Duration) { pipeControlCap, pipeBulkCap, pipeEnqueueWait = c, b, w }(
		pipeControlCap, pipeBulkCap, pipeEnqueueWait)
	pipeControlCap, pipeBulkCap, pipeEnqueueWait = 4, 2, 50*time.Millisecond

	n := NewMemNetwork(MemConfig{QueueLen: 1})
	defer n.Close()
	block := make(chan struct{})
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("wedged", func(*msg.Message) { <-block }); err != nil {
		t.Fatal(err)
	}
	defer close(block)

	// Saturate: the wedged handler blocks the dispatcher, the 1-deep inbox
	// fills, the writer blocks delivering, the 2-deep bulk lane fills.
	var sawBackpressure bool
	for i := 0; i < 20 && !sawBackpressure; i++ {
		err := a.Send("wedged", msg.New(msg.KindUser, msg.Address{Node: "a"}, msg.Address{Node: "wedged"}, []byte("bulk")))
		sawBackpressure = errors.Is(err, ErrBackpressure)
	}
	if !sawBackpressure {
		t.Fatal("bulk sends to a wedged consumer never hit ErrBackpressure")
	}
	// Control sends must keep succeeding-or-dropping without blocking.
	for i := 0; i < 10; i++ {
		start := time.Now()
		if err := a.Send("wedged", msg.New(msg.KindHeartbeat, msg.Address{Node: "a"}, msg.Address{Node: "wedged"}, nil)); err != nil {
			t.Fatalf("control send: %v", err)
		}
		if d := time.Since(start); d > 20*time.Millisecond {
			t.Fatalf("control send blocked %v behind a saturated bulk lane", d)
		}
	}
	if n.Stats().ControlDrops.Load() == 0 {
		t.Error("control lane never dropped despite exceeding its cap")
	}
}

// TestTCPSerializedBaselineStillWorks: the pre-pipeline path kept for
// cnbench's baseline must still deliver unicast and multicast.
func TestTCPSerializedBaselineStillWorks(t *testing.T) {
	n := NewTCPNetwork()
	n.SetPipelining(false)
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b", recv.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := a.Multicast("g", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 2, 2*time.Second)
}

// TestHeartbeatsSurviveBulkStorm: lease renewals on the control lane must
// keep flowing while bulk streams saturate the same connection — the
// failure detector must see NO suspect or dead transition. Before the
// priority lanes, a megabyte chunk train would serialize ahead of the
// heartbeat and starve the lease into a false positive.
func TestHeartbeatsSurviveBulkStorm(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()

	mon := health.NewMonitor(health.Config{
		SuspectAfter: 400 * time.Millisecond,
		DeadAfter:    800 * time.Millisecond,
	})
	defer mon.Close()
	events, unsub := mon.Subscribe()
	defer unsub()

	jmEP, err := n.Attach("jm", func(m *msg.Message) {
		switch m.Kind {
		case msg.KindHeartbeat:
			mon.Observe("tm")
		case msg.KindBlobChunk:
			time.Sleep(2 * time.Millisecond) // a busy receiver: chunk verify + cache insert
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = jmEP
	tm, err := n.Attach("tm", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch("tm")
	mon.Observe("tm")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	chunk := make([]byte, 256<<10)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = tm.Send("jm", msg.New(msg.KindBlobChunk, msg.Address{Node: "tm"}, msg.Address{Node: "jm"}, chunk))
			}
		}()
	}
	// Heartbeat every 50ms for 1.2s while the storm runs.
	for i := 0; i < 24; i++ {
		if err := tm.Send("jm", msg.New(msg.KindHeartbeat, msg.Address{Node: "tm"}, msg.Address{Node: "jm"}, nil)); err != nil {
			t.Fatalf("heartbeat send: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for {
		select {
		case ev := <-events:
			if ev.State != health.StateAlive {
				t.Fatalf("node %s transitioned to %v during the bulk storm", ev.Node, ev.State)
			}
		default:
			if mon.State("tm") != health.StateAlive {
				t.Fatalf("tm is %v after the storm, want alive", mon.State("tm"))
			}
			return
		}
	}
}
