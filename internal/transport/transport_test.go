package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cn/internal/msg"
)

// collector accumulates received messages behind a mutex.
type collector struct {
	mu   sync.Mutex
	msgs []*msg.Message
	ch   chan *msg.Message
}

func newCollector() *collector {
	return &collector{ch: make(chan *msg.Message, 256)}
}

func (c *collector) handle(m *msg.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- m
}

func (c *collector) wait(t *testing.T, n int, d time.Duration) []*msg.Message {
	t.Helper()
	deadline := time.After(d)
	for {
		c.mu.Lock()
		have := len(c.msgs)
		c.mu.Unlock()
		if have >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]*msg.Message(nil), c.msgs...)
		}
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (have %d)", n, have)
		case <-time.After(time.Millisecond):
		}
	}
}

// networks under test; each case builds a fresh fabric.
func eachNetwork(t *testing.T, f func(t *testing.T, n Network)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		n := NewIdealNetwork()
		defer n.Close()
		f(t, n)
	})
	t.Run("tcp", func(t *testing.T) {
		n := NewTCPNetwork()
		defer n.Close()
		f(t, n)
	})
}

func TestUnicastDelivery(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		recv := newCollector()
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("b", recv.handle); err != nil {
			t.Fatal(err)
		}
		m := msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("hi"))
		if err := a.Send("b", m); err != nil {
			t.Fatal(err)
		}
		got := recv.wait(t, 1, time.Second)
		if got[0].Kind != msg.KindPing || string(got[0].Payload) != "hi" {
			t.Errorf("got %v payload %q", got[0].Kind, got[0].Payload)
		}
	})
}

func TestSendToUnknownNode(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		err = a.Send("ghost", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil))
		if !errors.Is(err, ErrUnknownNode) {
			t.Errorf("Send to ghost = %v, want ErrUnknownNode", err)
		}
	})
}

func TestDuplicateNodeRejected(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		if _, err := n.Attach("a", func(*msg.Message) {}); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("a", func(*msg.Message) {}); !errors.Is(err, ErrDuplicateNode) {
			t.Errorf("duplicate Attach = %v, want ErrDuplicateNode", err)
		}
	})
}

func TestAttachValidation(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		if _, err := n.Attach("", func(*msg.Message) {}); err == nil {
			t.Error("empty node name accepted")
		}
		if _, err := n.Attach("x", nil); err == nil {
			t.Error("nil handler accepted")
		}
	})
}

func TestMulticastReachesMembersOnly(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		sender, err := n.Attach("s", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		inGroup := newCollector()
		outGroup := newCollector()
		m1, err := n.Attach("m1", inGroup.handle)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := n.Attach("m2", inGroup.handle)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("outsider", outGroup.handle); err != nil {
			t.Fatal(err)
		}
		if err := m1.Join("jm"); err != nil {
			t.Fatal(err)
		}
		if err := m2.Join("jm"); err != nil {
			t.Fatal(err)
		}
		if err := sender.Multicast("jm", msg.New(msg.KindJobManagerSolicit, msg.Address{Node: "s"}, msg.Address{}, nil)); err != nil {
			t.Fatal(err)
		}
		inGroup.wait(t, 2, time.Second)
		time.Sleep(20 * time.Millisecond)
		outGroup.mu.Lock()
		extra := len(outGroup.msgs)
		outGroup.mu.Unlock()
		if extra != 0 {
			t.Errorf("outsider received %d multicast messages", extra)
		}
	})
}

func TestMulticastLoopsBackToSender(t *testing.T) {
	// IP_MULTICAST_LOOP semantics: a sender that joined the group receives
	// its own multicast (a CN server's JobManager solicits its own
	// TaskManager this way).
	eachNetwork(t, func(t *testing.T, n Network) {
		self := newCollector()
		a, err := n.Attach("a", self.handle)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Join("g"); err != nil {
			t.Fatal(err)
		}
		if err := a.Multicast("g", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
			t.Fatal(err)
		}
		self.wait(t, 1, time.Second)
	})
}

func TestMulticastNonMemberSenderNoLoopback(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		self := newCollector()
		recv := newCollector()
		a, err := n.Attach("a", self.handle)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.Attach("b", recv.handle)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Join("g"); err != nil {
			t.Fatal(err)
		}
		if err := a.Multicast("g", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
			t.Fatal(err)
		}
		recv.wait(t, 1, time.Second)
		self.mu.Lock()
		defer self.mu.Unlock()
		if len(self.msgs) != 0 {
			t.Errorf("non-member sender received its own multicast")
		}
	})
}

func TestLeaveStopsDelivery(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		recv := newCollector()
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.Attach("b", recv.handle)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Join("g"); err != nil {
			t.Fatal(err)
		}
		if err := b.Leave("g"); err != nil {
			t.Fatal(err)
		}
		if err := a.Multicast("g", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		recv.mu.Lock()
		defer recv.mu.Unlock()
		if len(recv.msgs) != 0 {
			t.Errorf("received after Leave: %d", len(recv.msgs))
		}
	})
}

func TestJoinEmptyGroup(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Join(""); err == nil {
			t.Error("Join(\"\") accepted")
		}
	})
}

func TestSendAfterEndpointClose(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("b", func(*msg.Message) {}); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("b", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after close = %v, want ErrClosed", err)
		}
	})
}

func TestCloseFreesNodeName(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("a", func(*msg.Message) {}); err != nil {
			t.Errorf("re-Attach after Close: %v", err)
		}
	})
}

func TestEndpointCloseIdempotent(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	})
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := NewIdealNetwork()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("a", func(*msg.Message) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Attach after Close = %v", err)
	}
}

func TestMemLatency(t *testing.T) {
	n := NewMemNetwork(MemConfig{Latency: 30 * time.Millisecond})
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("b", recv.handle); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms latency", elapsed)
	}
}

func TestMemLossDeterministic(t *testing.T) {
	const sends = 1000
	run := func(seed int64) int64 {
		n := NewMemNetwork(MemConfig{Loss: 0.5, Seed: seed})
		defer n.Close()
		var delivered atomic.Int64
		a, err := n.Attach("a", func(*msg.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach("b", func(*msg.Message) { delivered.Add(1) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sends; i++ {
			if err := a.Send("b", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
				t.Fatal(err)
			}
		}
		// All deliveries are synchronous at zero latency, but give the
		// dispatcher a moment to drain.
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			s, _, d, _ := n.Stats().Snapshot()
			if s == sends && delivered.Load()+d == sends {
				break
			}
			time.Sleep(time.Millisecond)
		}
		return delivered.Load()
	}
	d1 := run(42)
	d2 := run(42)
	if d1 != d2 {
		t.Errorf("same seed delivered %d then %d", d1, d2)
	}
	if d1 == 0 || d1 == sends {
		t.Errorf("loss=0.5 delivered %d of %d", d1, sends)
	}
}

func TestMemOrderingNoJitter(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("b", recv.handle); err != nil {
		t.Fatal(err)
	}
	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send("b", msg.New(msg.KindUser, msg.Address{}, msg.Address{}, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	got := recv.wait(t, count, time.Second)
	for i := 0; i < count; i++ {
		if got[i].Payload[0] != byte(i) {
			t.Fatalf("out of order at %d: %d", i, got[i].Payload[0])
		}
	}
}

func TestCallerCallReply(t *testing.T) {
	eachNetwork(t, func(t *testing.T, n Network) {
		var serverEP Endpoint
		server, err := n.Attach("server", func(m *msg.Message) {
			// Echo a correlated pong.
			reply := m.Reply(msg.KindPong, m.Payload)
			_ = serverEP.Send(m.From.Node, reply)
		})
		if err != nil {
			t.Fatal(err)
		}
		serverEP = server

		var caller *Caller
		clientEP, err := n.Attach("client", func(m *msg.Message) {
			if !caller.Handle(m) {
				t.Errorf("unexpected non-reply message %v", m)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		caller = NewCaller(clientEP)

		req := msg.New(msg.KindPing, msg.Address{Node: "client"}, msg.Address{Node: "server"}, []byte("abc"))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		resp, err := caller.Call(ctx, "server", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != msg.KindPong || string(resp.Payload) != "abc" {
			t.Errorf("resp = %v %q", resp.Kind, resp.Payload)
		}
	})
}

func TestCallerCallTimeout(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	if _, err := n.Attach("blackhole", func(*msg.Message) {}); err != nil {
		t.Fatal(err)
	}
	var caller *Caller
	ep, err := n.Attach("client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = NewCaller(ep)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = caller.Call(ctx, "blackhole", msg.New(msg.KindPing, msg.Address{Node: "client"}, msg.Address{}, nil))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Call = %v, want deadline exceeded", err)
	}
}

func TestCallerGather(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	// Three responders in the group, one of which stays silent.
	for i, silent := range []bool{false, false, true} {
		name := string(rune('r' + i))
		var ep Endpoint
		var err error
		s := silent
		ep, err = n.Attach("responder-"+name, func(m *msg.Message) {
			if s {
				return
			}
			_ = ep.Send(m.From.Node, m.Reply(msg.KindJobManagerOffer, nil))
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Join("jm"); err != nil {
			t.Fatal(err)
		}
	}
	var caller *Caller
	client, err := n.Attach("client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = NewCaller(client)
	req := msg.New(msg.KindJobManagerSolicit, msg.Address{Node: "client"}, msg.Address{}, nil)
	replies, err := caller.Gather("jm", req, 0, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Errorf("gathered %d replies, want 2", len(replies))
	}
}

func TestCallerGatherMaxShortCircuits(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	for i := 0; i < 4; i++ {
		var ep Endpoint
		var err error
		ep, err = n.Attach("r"+string(rune('0'+i)), func(m *msg.Message) {
			_ = ep.Send(m.From.Node, m.Reply(msg.KindJobManagerOffer, nil))
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Join("jm"); err != nil {
			t.Fatal(err)
		}
	}
	var caller *Caller
	client, err := n.Attach("client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = NewCaller(client)
	start := time.Now()
	req := msg.New(msg.KindJobManagerSolicit, msg.Address{Node: "client"}, msg.Address{}, nil)
	replies, err := caller.Gather("jm", req, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Errorf("gathered %d, want 2", len(replies))
	}
	if time.Since(start) > time.Second {
		t.Error("Gather waited for the full window despite max")
	}
}

func TestCallerHandleNonReply(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	ep, err := n.Attach("x", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaller(ep)
	if c.Handle(msg.New(msg.KindUser, msg.Address{}, msg.Address{}, nil)) {
		t.Error("Handle consumed a message with no CorrelID")
	}
	m := msg.New(msg.KindPong, msg.Address{}, msg.Address{}, nil)
	m.CorrelID = 12345
	if c.Handle(m) {
		t.Error("Handle consumed a reply nobody is waiting for")
	}
}

func TestStatsCount(t *testing.T) {
	n := NewIdealNetwork()
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("b", recv.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send("b", msg.New(msg.KindPing, msg.Address{}, msg.Address{}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	recv.wait(t, 5, time.Second)
	sent, delivered, dropped, _ := n.Stats().Snapshot()
	if sent != 5 || delivered != 5 || dropped != 0 {
		t.Errorf("stats = sent %d delivered %d dropped %d", sent, delivered, dropped)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	recv := newCollector()
	a, err := n.Attach("a", func(*msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b", recv.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, time.Second)

	// Restart b: close and re-attach under the same name (new port).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	recv2 := newCollector()
	if _, err := n.Attach("b", recv2.handle); err != nil {
		t.Fatal(err)
	}
	// First send may fail while the stale connection is detected.
	var sendErr error
	for i := 0; i < 5; i++ {
		sendErr = a.Send("b", msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil))
		if sendErr == nil {
			break
		}
	}
	if sendErr != nil {
		t.Fatalf("send after restart: %v", sendErr)
	}
	recv2.wait(t, 1, 2*time.Second)
}
