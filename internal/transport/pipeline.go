// Outbound pipeline: the per-destination queue machinery shared by both
// fabrics.
//
// Send used to hold a per-connection mutex across the blocking Write
// syscall (and across a 2s dial on first use), so all traffic to one peer
// was head-of-line serialized and every frame cost one syscall. The
// pipeline inverts that: Send encodes and enqueues onto a bounded
// per-peer queue and returns immediately; a dedicated writer goroutine
// per connection owns the dial and drains the queue, coalescing every
// queued frame into a single writev per wakeup.
//
// Two priority lanes keep the control plane live under bulk pressure:
//
//   - control: heartbeats, leases, tuple-space ops, data-plane location
//     adverts/resolves, checkpoints — everything small and
//     latency-sensitive. Control enqueue NEVER blocks; when the lane is
//     at capacity the frame is dropped and counted (periodic senders
//     re-send; a heartbeat delayed behind a megabyte of chunks is worse
//     than one skipped beat).
//   - bulk: archive uploads, blob chunks, direct data-plane fetch
//     replies, user payloads. Bulk enqueue blocks until there is room
//     (real backpressure), bounded by pipeEnqueueWait, after which the
//     send fails with ErrBackpressure.
//
// MemNetwork routes through the same outPipe type, so lane ordering and
// backpressure bugs surface in fast deterministic unit tests instead of
// only under real sockets.
package transport

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
	"cn/internal/wire"
)

// Pipeline errors.
var (
	// ErrBackpressure is returned when a bulk-lane enqueue could not make
	// room within pipeEnqueueWait: the peer is not draining.
	ErrBackpressure = errors.New("transport: bulk lane full (peer not draining)")
	// ErrSlowConsumer marks a connection dropped because a frame write
	// exceeded tcpWriteTimeout: the peer is alive but not reading. Queued
	// frames fail with this error so senders can tell a wedged reader
	// from a dead peer.
	ErrSlowConsumer = errors.New("transport: peer not draining (write timeout)")
)

// Pipeline knobs; package variables so tests can tighten them.
var (
	// pipeControlCap bounds the control lane in frames; overflow drops
	// the newest frame with a counter (control never blocks).
	pipeControlCap = 4096
	// pipeBulkCap and pipeBulkBytes bound the bulk lane in frames and
	// encoded bytes; a full lane blocks the sender (backpressure).
	pipeBulkCap   = 512
	pipeBulkBytes = 8 << 20
	// pipeEnqueueWait bounds how long a bulk enqueue may block before
	// failing with ErrBackpressure.
	pipeEnqueueWait = 5 * time.Second
	// pipeFlushMaxBytes caps the bulk bytes coalesced into one flush. The
	// control lane always drains whole, but bounding each bulk flush
	// bounds the time a just-queued heartbeat can sit behind an
	// in-flight writev: with an unbounded batch a full bulk lane would
	// flush as one multi-megabyte writev and control frames would wait
	// out its entire drain.
	pipeFlushMaxBytes = 256 << 10
)

// lane is an outbound priority class.
type lane int

const (
	laneControl lane = iota
	laneBulk
	laneCount
)

// laneOf classifies a message kind into its outbound lane. Everything is
// control unless it is known bulk: a misclassified small kind costs a few
// bytes of head-of-line latency, a misclassified bulk kind can starve
// lease renewals into false suspect/dead transitions.
func laneOf(k msg.Kind) lane {
	switch k {
	case msg.KindUploadJar, msg.KindBlobData, msg.KindBlobChunk, msg.KindBlobChunkAck,
		msg.KindDataFetch, msg.KindUser, msg.KindBroadcast:
		return laneBulk
	}
	return laneControl
}

// frameRef is a reference-counted pooled encode buffer. Multicast encodes
// a frame once and enqueues the same bytes onto every member's pipeline;
// the buffer returns to the pool only after the last writer flushed (or
// dropped) its copy.
type frameRef struct {
	buf  *[]byte
	refs atomic.Int32
}

func newFrameRef(buf *[]byte, n int32) *frameRef {
	r := &frameRef{buf: buf}
	r.refs.Store(n)
	return r
}

// release drops one reference, recycling the buffer on the last one.
func (r *frameRef) release() {
	if r.refs.Add(-1) == 0 {
		wire.PutBuf(r.buf)
	}
}

// outFrame is one queued outbound transmission. The TCP fabric carries
// encoded bytes (data, backed by ref); the in-memory fabric carries the
// message itself (m). size is the accounted frame size either way.
type outFrame struct {
	kind msg.Kind
	data []byte
	ref  *frameRef
	m    *msg.Message
	size int
}

// release returns the frame's share of the encode buffer to the pool.
func (f *outFrame) release() {
	if f.ref != nil {
		f.ref.release()
	}
}

// outPipe is one destination's outbound pipeline: two bounded priority
// lanes filled by senders and drained in coalesced batches by a single
// writer goroutine.
type outPipe struct {
	stats *Stats

	mu        sync.Mutex
	notFull   sync.Cond // bulk backpressure waiters
	wake      chan struct{}
	lanes     [laneCount][]outFrame
	bulkBytes int
	depth     int
	closed    bool
	err       error
}

func newOutPipe(stats *Stats) *outPipe {
	p := &outPipe{stats: stats, wake: make(chan struct{}, 1)}
	p.notFull.L = &p.mu
	return p
}

// enqueue queues f for the writer and returns without waiting for the
// write. Control frames never block; bulk frames block with a deadline
// when the lane is full. An enqueue on a failed pipe returns the failure
// (e.g. the one dial error the whole batch shared).
func (p *outPipe) enqueue(f outFrame) error {
	l := laneOf(f.kind)
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		f.release()
		return err
	}
	if l == laneControl {
		if len(p.lanes[laneControl]) >= pipeControlCap {
			p.mu.Unlock()
			f.release()
			p.stats.ControlDrops.Add(1)
			p.stats.Dropped.Add(1)
			return nil // counted, not surfaced: periodic control senders re-send
		}
	} else {
		deadline := time.Now().Add(pipeEnqueueWait)
		for !p.closed && len(p.lanes[laneBulk]) > 0 &&
			(len(p.lanes[laneBulk]) >= pipeBulkCap || p.bulkBytes+f.size > pipeBulkBytes) {
			if !p.waitUntil(deadline) {
				p.mu.Unlock()
				f.release()
				p.stats.BulkDrops.Add(1)
				p.stats.Dropped.Add(1)
				return ErrBackpressure
			}
		}
		if p.closed {
			err := p.err
			p.mu.Unlock()
			f.release()
			return err
		}
		p.bulkBytes += f.size
	}
	p.lanes[l] = append(p.lanes[l], f)
	p.depth++
	p.stats.QueueDepth.Add(1)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// waitUntil blocks on the not-full condition until signalled or the
// deadline passes; it reports whether waiting may continue. Called with
// p.mu held; returns with it held.
func (p *outPipe) waitUntil(deadline time.Time) bool {
	remain := time.Until(deadline)
	if remain <= 0 {
		return false
	}
	// sync.Cond has no timed wait; an AfterFunc broadcast stands in.
	t := time.AfterFunc(remain, func() {
		p.mu.Lock()
		p.notFull.Broadcast()
		p.mu.Unlock()
	})
	p.notFull.Wait()
	t.Stop()
	return true
}

// popBatch blocks until frames are queued or the pipe is done, then
// drains a coalesced batch — ALL queued control frames first, so a
// heartbeat overtakes every queued chunk, then bulk frames up to
// pipeFlushMaxBytes (at least one) — and hands ownership to the caller.
// Leftover bulk is picked up by the writer's next iteration without
// waiting. stop aborts the wait (endpoint shutdown).
func (p *outPipe) popBatch(stop <-chan struct{}) ([]outFrame, bool) {
	for {
		p.mu.Lock()
		if p.depth > 0 {
			ctl, bulk := p.lanes[laneControl], p.lanes[laneBulk]
			take, takeBytes := 0, 0
			for take < len(bulk) && (take == 0 || takeBytes+bulk[take].size <= pipeFlushMaxBytes) {
				takeBytes += bulk[take].size
				take++
			}
			batch := make([]outFrame, 0, len(ctl)+take)
			batch = append(batch, ctl...)
			batch = append(batch, bulk[:take]...)
			// Zero vacated slots so idle lanes do not pin frame buffers.
			for i := range ctl {
				ctl[i] = outFrame{}
			}
			left := copy(bulk, bulk[take:])
			for i := left; i < len(bulk); i++ {
				bulk[i] = outFrame{}
			}
			p.lanes[laneControl] = ctl[:0]
			p.lanes[laneBulk] = bulk[:left]
			p.bulkBytes -= takeBytes
			p.depth -= len(batch)
			p.stats.QueueDepth.Add(int64(-len(batch)))
			p.notFull.Broadcast()
			p.mu.Unlock()
			return batch, true
		}
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return nil, false
		}
		select {
		case <-p.wake:
		case <-stop:
			return nil, false
		}
	}
}

// fail closes the pipe, failing every queued frame at once with err —
// one dial error fails the whole batch instead of each sender eating its
// own timeout. Idempotent; later enqueues return err.
func (p *outPipe) fail(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.err = err
	var n int
	for l := range p.lanes {
		for i := range p.lanes[l] {
			p.lanes[l][i].release()
		}
		if lane(l) == laneControl {
			p.stats.ControlDrops.Add(int64(len(p.lanes[l])))
		} else {
			p.stats.BulkDrops.Add(int64(len(p.lanes[l])))
		}
		n += len(p.lanes[l])
		p.lanes[l] = nil
	}
	p.depth = 0
	p.bulkBytes = 0
	p.stats.QueueDepth.Add(int64(-n))
	p.stats.Dropped.Add(int64(n))
	p.notFull.Broadcast()
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// failure returns the error the pipe failed with, or nil while healthy.
func (p *outPipe) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// batchBuckets is the coalesced-batch-size histogram resolution.
const batchBuckets = 8

// batchBucketLabels names the histogram buckets (frames per flush).
var batchBucketLabels = [batchBuckets]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// batchBucket maps a flush's frame count to its histogram bucket.
func batchBucket(n int) int {
	if n < 1 {
		n = 1
	}
	idx := bits.Len(uint(n - 1))
	if idx >= batchBuckets {
		idx = batchBuckets - 1
	}
	return idx
}
