package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cn/internal/msg"
	"cn/internal/wire"
)

// MemConfig tunes the simulated fabric. The zero value is an ideal network:
// no latency, no jitter, no loss.
type MemConfig struct {
	// Latency is the fixed one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniformly distributed random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1) that any single delivery is dropped.
	Loss float64
	// Seed makes jitter and loss deterministic; 0 selects seed 1.
	Seed int64
	// QueueLen bounds each endpoint's inbound queue (default 4096).
	QueueLen int
}

// MemNetwork is the in-memory cluster fabric: every attached endpoint lives
// in the same process and messages are delivered by goroutines, optionally
// through a latency/jitter/loss model. It is the substrate that stands in
// for the paper's Ethernet LAN.
//
// The outbound path mirrors the TCP fabric exactly: each sender keeps a
// per-destination pipeline (the same two-lane outPipe the TCP writer
// drains) with a writer goroutine delivering coalesced batches, so lane
// ordering, priority, and backpressure behavior can be unit-tested
// without sockets.
type MemNetwork struct {
	cfg    MemConfig
	stats  Stats
	groups *groupSet

	mu     sync.RWMutex
	nodes  map[string]*memEndpoint
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewMemNetwork creates a fabric with the given simulation parameters.
func NewMemNetwork(cfg MemConfig) *MemNetwork {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &MemNetwork{
		cfg:    cfg,
		groups: newGroupSet(),
		nodes:  make(map[string]*memEndpoint),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// NewIdealNetwork is shorthand for a zero-latency, lossless fabric.
func NewIdealNetwork() *MemNetwork { return NewMemNetwork(MemConfig{}) }

// Stats exposes the fabric counters.
func (n *MemNetwork) Stats() *Stats { return &n.stats }

// Attach implements Network.
func (n *MemNetwork) Attach(node string, handler Handler) (Endpoint, error) {
	if node == "" {
		return nil, fmt.Errorf("transport: attach: empty node name")
	}
	if handler == nil {
		return nil, fmt.Errorf("transport: attach %q: nil handler", node)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.nodes[node]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, node)
	}
	ep := &memEndpoint{
		net:     n,
		node:    node,
		handler: handler,
		inbox:   make(chan *msg.Message, n.cfg.QueueLen),
		pipes:   make(map[string]*outPipe),
		stop:    make(chan struct{}),
	}
	n.nodes[node] = ep
	ep.wg.Add(1)
	go ep.dispatch()
	return ep, nil
}

// Close implements Network: detaches every endpoint.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// draw decides whether the next delivery is dropped, and the jitter to
// apply.
func (n *MemNetwork) draw() (drop bool, extra time.Duration) {
	if n.cfg.Loss == 0 && n.cfg.Jitter == 0 {
		return false, 0
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	if n.cfg.Loss > 0 && n.rng.Float64() < n.cfg.Loss {
		return true, 0
	}
	if n.cfg.Jitter > 0 {
		extra = time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return false, extra
}

// deliver routes one dequeued frame to the destination endpoint, applying
// the latency model. The message's encoded frame size is accounted exactly
// as the TCP fabric would charge it, so bytes-on-wire figures are
// comparable across substrates (and the binary codec's wins are visible in
// mem benches).
func (n *MemNetwork) deliver(to string, m *msg.Message, size int, senderStop <-chan struct{}) {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	n.mu.RUnlock()
	n.stats.countSend(m.Kind, size)
	if !ok {
		// The destination detached after the frame was queued; on the
		// wire this is a connection reset, a silent loss.
		n.stats.Dropped.Add(1)
		return
	}
	drop, extra := n.draw()
	if drop {
		n.stats.Dropped.Add(1)
		return // loss is silent, like the wire
	}
	delay := n.cfg.Latency + extra
	if delay == 0 {
		dst.enqueue(m, size, &n.stats, senderStop)
		return
	}
	time.AfterFunc(delay, func() { dst.enqueue(m, size, &n.stats, nil) })
}

// memEndpoint is one node's attachment to a MemNetwork.
type memEndpoint struct {
	net     *MemNetwork
	node    string
	handler Handler
	inbox   chan *msg.Message
	stop    chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex
	pipes  map[string]*outPipe // dest node -> outbound pipeline
	closed bool
}

func (e *memEndpoint) dispatch() {
	defer e.wg.Done()
	for {
		select {
		case m := <-e.inbox:
			e.handler(m)
		case <-e.stop:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case m := <-e.inbox:
					_ = m // dropped on close
				default:
					return
				}
			}
		}
	}
}

// enqueue places m in this endpoint's inbox, blocking while it is full
// (the socket-buffer analogue). senderStop aborts the wait when the
// SENDING endpoint shuts down, so a wedged destination cannot hang a
// sender's writer goroutine past Close; nil means no sender to abort for
// (delayed deliveries).
func (e *memEndpoint) enqueue(m *msg.Message, size int, stats *Stats, senderStop <-chan struct{}) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		stats.Dropped.Add(1)
		return
	}
	select {
	case e.inbox <- m:
		stats.Delivered.Add(1)
		stats.BytesRecv.Add(int64(size))
	case <-e.stop:
		stats.Dropped.Add(1)
	case <-senderStop:
		stats.Dropped.Add(1)
	}
}

// Node implements Endpoint.
func (e *memEndpoint) Node() string { return e.node }

// pipeTo returns this endpoint's outbound pipeline for dst, creating it —
// and its writer goroutine — on first use.
func (e *memEndpoint) pipeTo(dst string) (*outPipe, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	p, ok := e.pipes[dst]
	if !ok {
		p = newOutPipe(&e.net.stats)
		e.pipes[dst] = p
		e.wg.Add(1)
		go e.writeLoop(dst, p)
	}
	return p, nil
}

// writeLoop drains one destination's pipeline in coalesced batches — the
// in-memory twin of the TCP writer goroutine. A full destination inbox
// blocks the writer (the socket-buffer analogue), which backs the queue
// up into bulk-lane backpressure for senders.
func (e *memEndpoint) writeLoop(dst string, p *outPipe) {
	defer e.wg.Done()
	for {
		batch, ok := p.popBatch(e.stop)
		if !ok {
			return
		}
		for i := range batch {
			e.net.deliver(dst, batch[i].m, batch[i].size, e.stop)
		}
		e.net.stats.countFlush(len(batch))
	}
}

// send validates m and enqueues it onto dst's pipeline. Unknown
// destinations and oversized frames fail synchronously, exactly as the
// TCP sender's encode does.
func (e *memEndpoint) send(dst string, m *msg.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.net.mu.RLock()
	_, known := e.net.nodes[dst]
	netClosed := e.net.closed
	e.net.mu.RUnlock()
	if netClosed {
		return ErrClosed
	}
	if !known {
		return fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	body := wire.SizeOf(m)
	if body > wire.MaxFrameBytes {
		// Enforce the TCP fabric's frame limit here too, so an application
		// that would fail on real sockets fails identically on the
		// simulated substrate instead of passing tests it cannot pass in
		// production.
		return fmt.Errorf("transport: send to %s: %w (message %s is %d bytes)", dst, wire.ErrFrameTooLarge, m.Kind, body)
	}
	p, err := e.pipeTo(dst)
	if err != nil {
		return err
	}
	return p.enqueue(outFrame{kind: m.Kind, m: m, size: wire.FrameHeaderBytes + body})
}

// Send implements Endpoint.
func (e *memEndpoint) Send(toNode string, m *msg.Message) error {
	return e.send(toNode, m)
}

// Multicast implements Endpoint: the message is size-checked once and
// enqueued onto every member's pipeline (each member receives its own
// copy so handlers can mutate freely).
func (e *memEndpoint) Multicast(group string, m *msg.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	// Check the frame limit once up front, as the TCP fabric's
	// encode-once fan-out does; otherwise the per-member check inside
	// send would be swallowed by best-effort semantics and an oversized
	// multicast would silently reach zero members here while erroring on
	// TCP.
	if body := wire.SizeOf(m); body > wire.MaxFrameBytes {
		return fmt.Errorf("transport: multicast %s: %w (message %s is %d bytes)", group, wire.ErrFrameTooLarge, m.Kind, body)
	}
	e.net.stats.Multicast.Add(1)
	for _, node := range e.net.groups.members(group) {
		if err := e.send(node, m.Clone()); err != nil {
			// A member that vanished mid-fanout is not an error for the
			// sender; multicast is best-effort.
			continue
		}
	}
	return nil
}

// Join implements Endpoint.
func (e *memEndpoint) Join(group string) error {
	if group == "" {
		return fmt.Errorf("transport: join: empty group")
	}
	e.net.groups.join(group, e.node)
	return nil
}

// Leave implements Endpoint.
func (e *memEndpoint) Leave(group string) error {
	e.net.groups.leave(group, e.node)
	return nil
}

// GroupSize implements Endpoint.
func (e *memEndpoint) GroupSize(group string) int {
	return e.net.groups.size(group)
}

// GroupMembers implements Endpoint.
func (e *memEndpoint) GroupMembers(group string) []string {
	return e.net.groups.members(group)
}

// Close implements Endpoint.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	pipes := e.pipes
	e.pipes = map[string]*outPipe{}
	e.mu.Unlock()
	for _, p := range pipes {
		p.fail(ErrClosed)
	}
	close(e.stop)
	e.wg.Wait()
	e.net.groups.leaveAll(e.node)
	e.net.mu.Lock()
	delete(e.net.nodes, e.node)
	e.net.mu.Unlock()
	return nil
}
