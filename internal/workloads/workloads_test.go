package workloads_test

import (
	"context"
	"math"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/task"
	"cn/internal/workloads"
)

var registry = func() *task.Registry {
	r := task.NewRegistry()
	workloads.MustRegister(r)
	return r
}()

func startCluster(t *testing.T, nodes int) *api.Client {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: nodes, Registry: registry, MemoryMB: 16000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

const sample = `the quick brown fox jumps over the lazy dog
the dog barks and the fox runs
pack my box with five dozen liquor jugs
how vexingly quick daft zebras jump`

func TestWordCountMatchesSequential(t *testing.T) {
	cl := startCluster(t, 3)
	want := workloads.SequentialWordCount(sample)
	got, err := workloads.RunWordCount(testCtx(t), cl, sample, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	if got["the"] != 4 {
		t.Errorf("count[the] = %d, want 4", got["the"])
	}
}

func TestWordCountSingleMapper(t *testing.T) {
	cl := startCluster(t, 2)
	got, err := workloads.RunWordCount(testCtx(t), cl, sample, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.SequentialWordCount(sample)
	if len(got) != len(want) {
		t.Errorf("distinct words = %d, want %d", len(got), len(want))
	}
}

func TestWordCountMoreMappersThanLines(t *testing.T) {
	cl := startCluster(t, 2)
	got, err := workloads.RunWordCount(testCtx(t), cl, "only one line here", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got["only"] != 1 || got["line"] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestWordCountSpecsValidation(t *testing.T) {
	if _, err := workloads.WordCountSpecs(0); err == nil {
		t.Error("zero mappers accepted")
	}
}

func TestMatMulMatchesSequential(t *testing.T) {
	cl := startCluster(t, 3)
	a := workloads.RandomDense(17, 13, 3)
	b := workloads.RandomDense(13, 11, 4)
	want, err := workloads.MatMulSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := workloads.RunMatMul(testCtx(t), cl, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("CN matmul differs from sequential")
	}
}

func TestMatMulIdentity(t *testing.T) {
	cl := startCluster(t, 2)
	const n = 8
	a := workloads.RandomDense(n, n, 7)
	id := workloads.NewDense(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	got, err := workloads.RunMatMul(testCtx(t), cl, a, id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Error("A x I != A")
	}
}

func TestMatMulShapeMismatch(t *testing.T) {
	a := workloads.RandomDense(3, 4, 1)
	b := workloads.RandomDense(5, 6, 2)
	if _, err := workloads.MatMulSeq(a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestMonteCarloPi(t *testing.T) {
	cl := startCluster(t, 3)
	pi, err := workloads.RunMonteCarloPi(testCtx(t), cl, 4, 200_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-math.Pi) > 0.02 {
		t.Errorf("pi estimate %g too far from %g", pi, math.Pi)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	cl := startCluster(t, 2)
	a, err := workloads.RunMonteCarloPi(testCtx(t), cl, 2, 50_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.RunMonteCarloPi(testCtx(t), cl, 2, 50_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seeds gave %g then %g", a, b)
	}
}

func TestPipeline(t *testing.T) {
	cl := startCluster(t, 3)
	ops := []string{workloads.StageTrim, workloads.StageUpper, workloads.StageReverse, workloads.StagePrefix}
	input := "  hello cn  "
	want, err := workloads.SequentialPipeline(input, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := workloads.RunPipeline(testCtx(t), cl, input, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pipeline = %q, want %q", got, want)
	}
	if want != "cn:NC OLLEH" {
		t.Errorf("sequential baseline = %q", want)
	}
}

func TestPipelineSingleStage(t *testing.T) {
	cl := startCluster(t, 2)
	got, err := workloads.RunPipeline(testCtx(t), cl, "abc", []string{workloads.StageUpper})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ABC" {
		t.Errorf("got %q", got)
	}
}

func TestPipelineUnknownOpFailsJob(t *testing.T) {
	cl := startCluster(t, 2)
	_, err := workloads.RunPipeline(testCtx(t), cl, "abc", []string{"frobnicate"})
	if err == nil {
		t.Error("unknown op accepted")
	}
}

func TestSequentialPipelineErrors(t *testing.T) {
	if _, err := workloads.SequentialPipeline("x", []string{"nope"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := workloads.PipelineSpecs(nil); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestDenseHelpers(t *testing.T) {
	m := workloads.NewDense(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Error("Set/At broken")
	}
	if m.Equal(nil) || m.Equal(workloads.NewDense(3, 2)) {
		t.Error("Equal shape checks broken")
	}
	a := workloads.RandomDense(4, 4, 9)
	b := workloads.RandomDense(4, 4, 9)
	if !a.Equal(b) {
		t.Error("RandomDense not deterministic")
	}
}

func TestMonteCarloSpecsValidation(t *testing.T) {
	if _, err := workloads.MonteCarloSpecs(0, 10, 1); err == nil {
		t.Error("zero workers accepted")
	}
}
