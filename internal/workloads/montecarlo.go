package workloads

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"cn/internal/api"
	"cn/internal/task"
)

// Monte-Carlo π estimation: embarrassingly parallel workers draw points in
// the unit square and count hits inside the quarter circle; a reducer
// aggregates. No inter-worker communication — the pattern that stresses
// pure scheduling throughput.

// mcCount is the worker -> reducer payload.
type mcCount struct {
	Inside, Total int64
}

// mcWorker draws samples. Params: [0] samples (Long), [1] seed (Long),
// [2] reducer task name.
type mcWorker struct{}

// Run implements task.Task.
func (*mcWorker) Run(ctx task.Context) error {
	params := ctx.Params()
	samples, err := params[0].Float()
	if err != nil {
		return fmt.Errorf("montecarlo worker: %w", err)
	}
	seedF, err := params[1].Float()
	if err != nil {
		return fmt.Errorf("montecarlo worker: %w", err)
	}
	reducer, err := task.StringParam(params, 2)
	if err != nil {
		return fmt.Errorf("montecarlo worker: %w", err)
	}
	rng := rand.New(rand.NewSource(int64(seedF)))
	n := int64(samples)
	var inside int64
	for i := int64(0); i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	return ctx.Send(reducer, encode(&mcCount{Inside: inside, Total: n}))
}

// mcReduce aggregates counts into the π estimate. Params: [0] workers.
type mcReduce struct{}

// Run implements task.Task.
func (*mcReduce) Run(ctx task.Context) error {
	workers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("montecarlo reduce: %w", err)
	}
	var inside, total int64
	for received := 0; received < workers; received++ {
		_, data, err := ctx.Recv()
		if err != nil {
			return fmt.Errorf("montecarlo reduce: %w", err)
		}
		var c mcCount
		if err := decode(data, &c); err != nil {
			return fmt.Errorf("montecarlo reduce: %w", err)
		}
		inside += c.Inside
		total += c.Total
	}
	pi := 4 * float64(inside) / float64(total)
	return ctx.SendClient([]byte(strconv.FormatFloat(pi, 'g', 17, 64)))
}

// MonteCarloSpecs builds the job's task list: W independent workers
// feeding one reducer.
func MonteCarloSpecs(workers int, samplesPerWorker int64, seed int64) ([]*task.Spec, error) {
	if workers < 1 {
		return nil, fmt.Errorf("workloads: montecarlo needs >= 1 worker")
	}
	var specs []*task.Spec
	var names []string
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("mc%d", i)
		names = append(names, name)
		specs = append(specs, &task.Spec{
			Name:  name,
			Class: ClassMCWorker,
			Params: []task.Param{
				longParam(samplesPerWorker),
				longParam(seed + int64(i)),
				strParam("reduce"),
			},
			Req: req(),
		})
	}
	specs = append(specs, &task.Spec{
		Name:      "reduce",
		Class:     ClassMCReduce,
		DependsOn: names,
		Params:    []task.Param{intParam(workers)},
		Req:       req(),
	})
	return specs, nil
}

// RunMonteCarloPi estimates π on a CN cluster.
func RunMonteCarloPi(ctx context.Context, cl *api.Client, workers int, samplesPerWorker, seed int64) (float64, error) {
	specs, err := MonteCarloSpecs(workers, samplesPerWorker, seed)
	if err != nil {
		return 0, err
	}
	job, err := createAll(cl, "montecarlo", specs)
	if err != nil {
		return 0, err
	}
	if err := job.Start(); err != nil {
		return 0, err
	}
	data, err := awaitResult(ctx, job, "reduce")
	if err != nil {
		return 0, err
	}
	pi, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return 0, fmt.Errorf("workloads: parse pi: %w", err)
	}
	if err := finishJob(ctx, job); err != nil {
		return 0, err
	}
	return pi, nil
}
