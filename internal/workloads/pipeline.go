package workloads

import (
	"context"
	"fmt"
	"strings"

	"cn/internal/api"
	"cn/internal/task"
)

// Pipeline: a linear chain of transform stages. Each stage depends on its
// predecessor, so the JobManager starts them strictly in order. Stage
// outputs move over the direct task-to-task data plane: each stage Puts its
// result under its own name and the successor Gets it straight from the
// producing node, so the JobManager brokers locations instead of relaying
// payloads. Send/Recv remains on the control edges only: the client's input
// into stage1 and the final stage's result back out.

// Pipeline stage operations.
const (
	StageUpper   = "upper"
	StageReverse = "reverse"
	StageTrim    = "trim"
	StagePrefix  = "prefix" // prepends "cn:"
)

// applyStage runs one transform.
func applyStage(op, in string) (string, error) {
	switch op {
	case StageUpper:
		return strings.ToUpper(in), nil
	case StageReverse:
		r := []rune(in)
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r), nil
	case StageTrim:
		return strings.TrimSpace(in), nil
	case StagePrefix:
		return "cn:" + in, nil
	}
	return "", fmt.Errorf("workloads: unknown pipeline stage op %q", op)
}

// SequentialPipeline is the in-process baseline.
func SequentialPipeline(input string, ops []string) (string, error) {
	out := input
	for _, op := range ops {
		var err error
		out, err = applyStage(op, out)
		if err != nil {
			return "", err
		}
	}
	return out, nil
}

// pipeKey names a stage's data-plane output entry.
func pipeKey(stage string) string { return "pipe/out/" + stage }

// pipeStage obtains a string, transforms it, and publishes the result.
// Params: [0] operation, [1] predecessor task name ("client" receives the
// input from the client's mailbox instead), [2] successor task name
// ("client" sends the final result back instead of publishing).
type pipeStage struct{}

// Run implements task.Task.
func (*pipeStage) Run(ctx task.Context) error {
	op, err := task.StringParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("pipeline stage: %w", err)
	}
	prev, err := task.StringParam(ctx.Params(), 1)
	if err != nil {
		return fmt.Errorf("pipeline stage: %w", err)
	}
	next, err := task.StringParam(ctx.Params(), 2)
	if err != nil {
		return fmt.Errorf("pipeline stage: %w", err)
	}
	var data []byte
	if prev == "client" {
		_, data, err = ctx.Recv()
	} else {
		data, err = ctx.Get(context.Background(), pipeKey(prev))
	}
	if err != nil {
		return fmt.Errorf("pipeline stage: %w", err)
	}
	out, err := applyStage(op, string(data))
	if err != nil {
		return err
	}
	if next == "client" {
		return ctx.SendClient([]byte(out))
	}
	return ctx.Put(pipeKey(ctx.TaskName()), []byte(out))
}

// PipelineSpecs builds a chain of stages, one per operation.
func PipelineSpecs(ops []string) ([]*task.Spec, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("workloads: pipeline needs >= 1 stage")
	}
	specs := make([]*task.Spec, 0, len(ops))
	for i, op := range ops {
		prev := "client"
		if i > 0 {
			prev = fmt.Sprintf("stage%d", i)
		}
		next := "client"
		if i+1 < len(ops) {
			next = fmt.Sprintf("stage%d", i+2)
		}
		s := &task.Spec{
			Name:   fmt.Sprintf("stage%d", i+1),
			Class:  ClassPipeStage,
			Params: []task.Param{strParam(op), strParam(prev), strParam(next)},
			Req:    req(),
		}
		if i > 0 {
			s.DependsOn = []string{prev}
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// RunPipeline executes the stage chain on a CN cluster.
func RunPipeline(ctx context.Context, cl *api.Client, input string, ops []string) (string, error) {
	specs, err := PipelineSpecs(ops)
	if err != nil {
		return "", err
	}
	job, err := createAll(cl, "pipeline", specs)
	if err != nil {
		return "", err
	}
	if err := job.Start(); err != nil {
		return "", err
	}
	if err := job.SendMessage("stage1", []byte(input)); err != nil {
		return "", err
	}
	lastStage := fmt.Sprintf("stage%d", len(ops))
	data, err := awaitResult(ctx, job, lastStage)
	if err != nil {
		return "", err
	}
	if err := finishJob(ctx, job); err != nil {
		return "", err
	}
	return string(data), nil
}
