// Package workloads provides additional CN applications beyond the paper's
// transitive-closure guiding example, exercising the composition patterns
// the introduction motivates: scatter/gather map-reduce (word count), block
// matrix multiplication, embarrassingly parallel Monte-Carlo estimation,
// and sequential pipelines. Each workload ships its task classes, a
// registry hook, and a client driver.
package workloads

import (
	"context"
	"fmt"

	"cn/internal/api"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// Task class names.
const (
	ClassWCSplit   = "cn.workloads.wordcount.Split"
	ClassWCMap     = "cn.workloads.wordcount.Map"
	ClassWCReduce  = "cn.workloads.wordcount.Reduce"
	ClassMMSplit   = "cn.workloads.matmul.Split"
	ClassMMWorker  = "cn.workloads.matmul.Worker"
	ClassMMJoin    = "cn.workloads.matmul.Join"
	ClassMCWorker  = "cn.workloads.montecarlo.Worker"
	ClassMCReduce  = "cn.workloads.montecarlo.Reduce"
	ClassPipeStage = "cn.workloads.pipeline.Stage"
)

// Register binds every workload task class into a registry.
func Register(r *task.Registry) error {
	for class, f := range map[string]task.Factory{
		ClassWCSplit:   func() task.Task { return &wcSplit{} },
		ClassWCMap:     func() task.Task { return &wcMap{} },
		ClassWCReduce:  func() task.Task { return &wcReduce{} },
		ClassMMSplit:   func() task.Task { return &mmSplit{} },
		ClassMMWorker:  func() task.Task { return &mmWorker{} },
		ClassMMJoin:    func() task.Task { return &mmJoin{} },
		ClassMCWorker:  func() task.Task { return &mcWorker{} },
		ClassMCReduce:  func() task.Task { return &mcReduce{} },
		ClassPipeStage: func() task.Task { return &pipeStage{} },
	} {
		if err := r.Register(class, f); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register but panics on error.
func MustRegister(r *task.Registry) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// intParam formats an integer task parameter.
func intParam(v int) task.Param {
	return task.Param{Type: task.TypeInteger, Value: fmt.Sprintf("%d", v)}
}

// strParam formats a string task parameter.
func strParam(v string) task.Param {
	return task.Param{Type: task.TypeString, Value: v}
}

// longParam formats a long task parameter.
func longParam(v int64) task.Param {
	return task.Param{Type: task.TypeLong, Value: fmt.Sprintf("%d", v)}
}

// req is the standard small requirement block for workload tasks.
func req() task.Requirements {
	return task.Requirements{MemoryMB: 200, RunModel: task.RunAsThreadInTM}
}

// encode gob-encodes a workload payload, panicking on programmer error.
func encode(v any) []byte { return msg.MustEncode(v) }

// decode gob-decodes a workload payload.
func decode(b []byte, out any) error { return msg.DecodePayload(b, out) }

// awaitResult pumps job messages until one arrives from the named task,
// bailing out when the job terminates first.
func awaitResult(ctx context.Context, job *api.Job, fromTask string) ([]byte, error) {
	msgCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-job.Done():
			cancel()
		case <-msgCtx.Done():
		}
	}()
	for {
		from, data, err := job.GetMessage(msgCtx)
		if err != nil {
			res, werr := job.Wait(ctx)
			if werr != nil {
				return nil, fmt.Errorf("workloads: %w", err)
			}
			return nil, fmt.Errorf("workloads: job terminated without result: %s (%v)", res.Err, res.TaskErrs)
		}
		if from == fromTask {
			return data, nil
		}
	}
}

// finishJob waits for clean termination after the result arrived.
func finishJob(ctx context.Context, job *api.Job) error {
	res, err := job.Wait(ctx)
	if err != nil {
		return err
	}
	if res.Failed {
		return fmt.Errorf("workloads: job failed: %s (%v)", res.Err, res.TaskErrs)
	}
	return nil
}

// createAll registers the given specs on a fresh job.
func createAll(cl *api.Client, name string, specs []*task.Spec) (*api.Job, error) {
	job, err := cl.CreateJob(name, protocol.JobRequirements{})
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if err := job.CreateTask(s, nil); err != nil {
			return nil, err
		}
	}
	return job, nil
}
