package workloads

import (
	"context"
	"fmt"
	"math/rand"

	"cn/internal/api"
	"cn/internal/task"
)

// Block matrix multiplication: the splitter ships each worker a block of
// A's rows plus all of B; workers compute their C rows; the joiner
// assembles C. This is the classic data-parallel kernel the paper's
// audience ("scientific and other applications that lend themselves to
// parallel computing") runs on Beowulf-class clusters.

// Dense is a dense row-major integer matrix.
type Dense struct {
	Rows, Cols int
	V          []int64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, V: make([]int64, rows*cols)}
}

// At returns m[i,j].
func (m *Dense) At(i, j int) int64 { return m.V[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Dense) Set(i, j int, v int64) { m.V[i*m.Cols+j] = v }

// Equal reports element-wise equality.
func (m *Dense) Equal(o *Dense) bool {
	if o == nil || m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.V {
		if o.V[i] != v {
			return false
		}
	}
	return true
}

// RandomDense generates a deterministic random matrix with entries in
// [-9, 9].
func RandomDense(rows, cols int, seed int64) *Dense {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(rows, cols)
	for i := range m.V {
		m.V[i] = rng.Int63n(19) - 9
	}
	return m
}

// MatMulSeq is the sequential baseline: C = A x B.
func MatMulSeq(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("workloads: matmul: %dx%d times %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.V[i*c.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c, nil
}

// mmInput is the client -> splitter payload.
type mmInput struct {
	A, B *Dense
}

// mmBlock is the splitter -> worker payload.
type mmBlock struct {
	StartRow int
	ARows    *Dense // block of A rows
	B        *Dense
}

// mmResult is the worker -> joiner payload.
type mmResult struct {
	StartRow int
	CRows    *Dense
	OutRows  int // total rows of C
}

// mmSplit distributes row blocks. Params: [0] workers, [1] prefix.
type mmSplit struct{}

// Run implements task.Task.
func (*mmSplit) Run(ctx task.Context) error {
	workers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("matmul split: %w", err)
	}
	prefix, err := task.StringParam(ctx.Params(), 1)
	if err != nil {
		return fmt.Errorf("matmul split: %w", err)
	}
	_, data, err := ctx.Recv()
	if err != nil {
		return fmt.Errorf("matmul split: %w", err)
	}
	var in mmInput
	if err := decode(data, &in); err != nil {
		return fmt.Errorf("matmul split: %w", err)
	}
	if in.A.Cols != in.B.Rows {
		return fmt.Errorf("matmul split: shape mismatch %dx%d x %dx%d", in.A.Rows, in.A.Cols, in.B.Rows, in.B.Cols)
	}
	for w := 0; w < workers; w++ {
		lo := w * in.A.Rows / workers
		hi := (w + 1) * in.A.Rows / workers
		block := mmBlock{
			StartRow: lo,
			ARows:    &Dense{Rows: hi - lo, Cols: in.A.Cols, V: in.A.V[lo*in.A.Cols : hi*in.A.Cols]},
			B:        in.B,
		}
		if err := ctx.Send(fmt.Sprintf("%s%d", prefix, w+1), encode(&block)); err != nil {
			return fmt.Errorf("matmul split: send block %d: %w", w, err)
		}
	}
	return nil
}

// mmWorker multiplies its block. Params: [0] join task name, [1] total
// output rows.
type mmWorker struct{}

// Run implements task.Task.
func (*mmWorker) Run(ctx task.Context) error {
	join, err := task.StringParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("matmul worker: %w", err)
	}
	outRows, err := task.IntParam(ctx.Params(), 1)
	if err != nil {
		return fmt.Errorf("matmul worker: %w", err)
	}
	_, data, err := ctx.Recv()
	if err != nil {
		return fmt.Errorf("matmul worker: %w", err)
	}
	var block mmBlock
	if err := decode(data, &block); err != nil {
		return fmt.Errorf("matmul worker: %w", err)
	}
	c, err := MatMulSeq(block.ARows, block.B)
	if err != nil {
		return fmt.Errorf("matmul worker: %w", err)
	}
	res := mmResult{StartRow: block.StartRow, CRows: c, OutRows: outRows}
	return ctx.Send(join, encode(&res))
}

// mmJoin assembles C. Params: [0] workers.
type mmJoin struct{}

// Run implements task.Task.
func (*mmJoin) Run(ctx task.Context) error {
	workers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("matmul join: %w", err)
	}
	var out *Dense
	for received := 0; received < workers; received++ {
		_, data, err := ctx.Recv()
		if err != nil {
			return fmt.Errorf("matmul join: %w", err)
		}
		var res mmResult
		if err := decode(data, &res); err != nil {
			return fmt.Errorf("matmul join: %w", err)
		}
		if out == nil {
			out = NewDense(res.OutRows, res.CRows.Cols)
		}
		copy(out.V[res.StartRow*out.Cols:], res.CRows.V)
	}
	return ctx.SendClient(encode(&mmResult{CRows: out}))
}

// MatMulSpecs builds the job's task list.
func MatMulSpecs(workers, outRows int) ([]*task.Spec, error) {
	if workers < 1 {
		return nil, fmt.Errorf("workloads: matmul needs >= 1 worker")
	}
	const prefix = "mul"
	specs := []*task.Spec{{
		Name:   "split",
		Class:  ClassMMSplit,
		Params: []task.Param{intParam(workers), strParam(prefix)},
		Req:    req(),
	}}
	var names []string
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		names = append(names, name)
		specs = append(specs, &task.Spec{
			Name:      name,
			Class:     ClassMMWorker,
			DependsOn: []string{"split"},
			Params:    []task.Param{strParam("join"), intParam(outRows)},
			Req:       req(),
		})
	}
	specs = append(specs, &task.Spec{
		Name:      "join",
		Class:     ClassMMJoin,
		DependsOn: names,
		Params:    []task.Param{intParam(workers)},
		Req:       req(),
	})
	return specs, nil
}

// RunMatMul executes C = A x B on a CN cluster with the given worker count.
func RunMatMul(ctx context.Context, cl *api.Client, a, b *Dense, workers int) (*Dense, error) {
	if workers > a.Rows {
		workers = a.Rows
	}
	specs, err := MatMulSpecs(workers, a.Rows)
	if err != nil {
		return nil, err
	}
	job, err := createAll(cl, "matmul", specs)
	if err != nil {
		return nil, err
	}
	if err := job.Start(); err != nil {
		return nil, err
	}
	if err := job.SendMessage("split", encode(&mmInput{A: a, B: b})); err != nil {
		return nil, err
	}
	data, err := awaitResult(ctx, job, "join")
	if err != nil {
		return nil, err
	}
	var res mmResult
	if err := decode(data, &res); err != nil {
		return nil, err
	}
	if err := finishJob(ctx, job); err != nil {
		return nil, err
	}
	return res.CRows, nil
}
