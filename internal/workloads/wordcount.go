package workloads

import (
	"context"
	"fmt"
	"strings"

	"cn/internal/api"
	"cn/internal/task"
)

// Word count is the canonical scatter/gather (map/reduce) composition: a
// splitter chunks the input text across mappers, each mapper counts words
// in its chunk, and a reducer merges the partial counts. The shuffle data
// (chunks and partial counts) moves over the direct task-to-task data
// plane — the splitter Puts each mapper's chunk, mappers Get their chunk
// and Put their partial, the reducer Gets every partial — so bulk bytes
// flow TM→TM instead of relaying through the JobManager. Send/Recv remains
// only on the small control edges: the client's input text in, the final
// totals out.

// wcChunkKey/wcPartialKey name the data-plane entries per mapper task.
func wcChunkKey(mapper string) string   { return "wc/chunk/" + mapper }
func wcPartialKey(mapper string) string { return "wc/partial/" + mapper }

// wcChunk is the splitter -> mapper payload.
type wcChunk struct {
	Lines []string
}

// wcPartial is the mapper -> reducer payload.
type wcPartial struct {
	Counts map[string]int
}

// wcSplit chunks the client-supplied text across mappers.
// Params: [0] mapper count, [1] mapper name prefix.
type wcSplit struct{}

// Run implements task.Task.
func (*wcSplit) Run(ctx task.Context) error {
	mappers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("wordcount split: %w", err)
	}
	prefix, err := task.StringParam(ctx.Params(), 1)
	if err != nil {
		return fmt.Errorf("wordcount split: %w", err)
	}
	_, data, err := ctx.Recv()
	if err != nil {
		return fmt.Errorf("wordcount split: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	for m := 0; m < mappers; m++ {
		lo := m * len(lines) / mappers
		hi := (m + 1) * len(lines) / mappers
		chunk := wcChunk{Lines: lines[lo:hi]}
		mapper := fmt.Sprintf("%s%d", prefix, m+1)
		if err := ctx.Put(wcChunkKey(mapper), encode(&chunk)); err != nil {
			return fmt.Errorf("wordcount split: publish chunk %d: %w", m, err)
		}
	}
	return nil
}

// wcMap counts words in one chunk, pulling it from the splitter's node and
// publishing the partial under this task's own name. No params.
type wcMap struct{}

// Run implements task.Task.
func (*wcMap) Run(ctx task.Context) error {
	data, err := ctx.Get(context.Background(), wcChunkKey(ctx.TaskName()))
	if err != nil {
		return fmt.Errorf("wordcount map: %w", err)
	}
	var chunk wcChunk
	if err := decode(data, &chunk); err != nil {
		return fmt.Errorf("wordcount map: %w", err)
	}
	counts := make(map[string]int)
	for _, line := range chunk.Lines {
		for _, w := range strings.Fields(line) {
			counts[strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))]++
		}
	}
	delete(counts, "")
	if err := ctx.Put(wcPartialKey(ctx.TaskName()), encode(&wcPartial{Counts: counts})); err != nil {
		return fmt.Errorf("wordcount map: publish partial: %w", err)
	}
	return nil
}

// wcReduce pulls every mapper's partial and reports the total to the
// client. Params: [0] mapper count, [1] mapper name prefix.
type wcReduce struct{}

// Run implements task.Task.
func (*wcReduce) Run(ctx task.Context) error {
	mappers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("wordcount reduce: %w", err)
	}
	prefix, err := task.StringParam(ctx.Params(), 1)
	if err != nil {
		return fmt.Errorf("wordcount reduce: %w", err)
	}
	total := make(map[string]int)
	for m := 1; m <= mappers; m++ {
		data, err := ctx.Get(context.Background(), wcPartialKey(fmt.Sprintf("%s%d", prefix, m)))
		if err != nil {
			return fmt.Errorf("wordcount reduce: %w", err)
		}
		var p wcPartial
		if err := decode(data, &p); err != nil {
			return fmt.Errorf("wordcount reduce: %w", err)
		}
		for w, c := range p.Counts {
			total[w] += c
		}
	}
	return ctx.SendClient(encode(&wcPartial{Counts: total}))
}

// WordCountSpecs builds the job's task list: split -> mappers -> reduce.
func WordCountSpecs(mappers int) ([]*task.Spec, error) {
	if mappers < 1 {
		return nil, fmt.Errorf("workloads: word count needs >= 1 mapper")
	}
	const prefix = "map"
	specs := []*task.Spec{{
		Name:   "split",
		Class:  ClassWCSplit,
		Params: []task.Param{intParam(mappers), strParam(prefix)},
		Req:    req(),
	}}
	var names []string
	for i := 1; i <= mappers; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		names = append(names, name)
		specs = append(specs, &task.Spec{
			Name:      name,
			Class:     ClassWCMap,
			DependsOn: []string{"split"},
			Req:       req(),
		})
	}
	specs = append(specs, &task.Spec{
		Name:      "reduce",
		Class:     ClassWCReduce,
		DependsOn: names,
		Params:    []task.Param{intParam(mappers), strParam(prefix)},
		Req:       req(),
	})
	return specs, nil
}

// RunWordCount executes the word-count job on a CN cluster.
func RunWordCount(ctx context.Context, cl *api.Client, text string, mappers int) (map[string]int, error) {
	specs, err := WordCountSpecs(mappers)
	if err != nil {
		return nil, err
	}
	job, err := createAll(cl, "wordcount", specs)
	if err != nil {
		return nil, err
	}
	if err := job.Start(); err != nil {
		return nil, err
	}
	if err := job.SendMessage("split", []byte(text)); err != nil {
		return nil, err
	}
	data, err := awaitResult(ctx, job, "reduce")
	if err != nil {
		return nil, err
	}
	var p wcPartial
	if err := decode(data, &p); err != nil {
		return nil, err
	}
	if err := finishJob(ctx, job); err != nil {
		return nil, err
	}
	return p.Counts, nil
}

// SequentialWordCount is the single-process baseline.
func SequentialWordCount(text string) map[string]int {
	counts := make(map[string]int)
	for _, w := range strings.Fields(text) {
		counts[strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))]++
	}
	delete(counts, "")
	return counts
}
