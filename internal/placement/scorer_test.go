package placement

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"cn/internal/protocol"
	"cn/internal/task"
)

// warmOffer is offer() plus locality fields.
func warmOffer(node string, freeMB, running int, digests []string, stalled int) protocol.TMOffer {
	o := offer(node, freeMB, running)
	o.ResidentDigests = digests
	o.StalledTasks = stalled
	return o
}

func TestScoredWarmBeatsCold(t *testing.T) {
	// n1 is colder on every capacity axis but holds the job's archive; the
	// resident bytes must dominate free memory and load.
	offers := []protocol.TMOffer{
		warmOffer("n1", 2000, 3, []string{"arch"}, 0),
		offer("n2", 8000, 0),
	}
	wants := Wants{Digests: map[string]int64{"arch": 64 << 10}}
	plan, unplaced, stats := PlanScored([]*task.Spec{memSpec("a", 1000)}, offers, wants, DefaultScorer{})
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	if len(plan["n1"]) != 1 {
		t.Fatalf("task placed on %v, want warm n1", plan)
	}
	if stats.WarmHits != 1 || stats.ColdMisses != 0 {
		t.Errorf("stats = %+v, want 1 warm hit", stats)
	}
	if stats.BytesSaved != 64<<10 {
		t.Errorf("BytesSaved = %d, want %d", stats.BytesSaved, 64<<10)
	}
}

func TestScoredCapacityFilterBeatsWarmth(t *testing.T) {
	// A warm node without the memory must not be chosen: feasibility is a
	// filter, not a score component.
	offers := []protocol.TMOffer{
		warmOffer("warm", 500, 0, []string{"arch"}, 0),
		offer("cold", 4000, 0),
	}
	wants := Wants{Digests: map[string]int64{"arch": 1 << 20}}
	plan, unplaced, stats := PlanScored([]*task.Spec{memSpec("a", 1000)}, offers, wants, DefaultScorer{})
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	if len(plan["cold"]) != 1 {
		t.Fatalf("plan = %v, want task on cold (warm is infeasible)", plan)
	}
	if stats.WarmHits != 0 || stats.ColdMisses != 1 || stats.BytesSaved != 0 {
		t.Errorf("stats = %+v, want one cold miss and no bytes saved", stats)
	}
}

func TestScoredMoreResidentBytesWins(t *testing.T) {
	// Both nodes are warm; the one holding more of the job's wanted bytes
	// wins even with less free memory.
	offers := []protocol.TMOffer{
		warmOffer("n1", 2000, 0, []string{"arch"}, 0),
		warmOffer("n2", 8000, 0, []string{"arch", "shuf"}, 0),
	}
	wants := Wants{Digests: map[string]int64{"arch": 100, "shuf": 1000}}
	plan, _, _ := PlanScored([]*task.Spec{memSpec("a", 1000)}, offers, wants, DefaultScorer{})
	if len(plan["n2"]) != 1 {
		t.Fatalf("plan = %v, want n2 (1100 resident bytes beats 100)", plan)
	}
}

func TestScoredStragglerPenaltyBreaksTies(t *testing.T) {
	// Identical capacity and warmth: the node without recent stragglers
	// wins; with stalls equal too, the name tie-break keeps determinism.
	offers := []protocol.TMOffer{
		warmOffer("n1", 4000, 0, nil, 2),
		warmOffer("n2", 4000, 0, nil, 0),
	}
	plan, _, _ := PlanScored([]*task.Spec{memSpec("a", 1000)}, offers, Wants{}, DefaultScorer{})
	if len(plan["n2"]) != 1 {
		t.Fatalf("plan = %v, want n2 (no straggler history)", plan)
	}
}

func TestScoredDeterministicUnderEqualScores(t *testing.T) {
	// Fully tied offers in every permutation must yield one plan: the
	// lowest node name.
	base := []protocol.TMOffer{
		warmOffer("n3", 4000, 1, []string{"d"}, 1),
		warmOffer("n1", 4000, 1, []string{"d"}, 1),
		warmOffer("n2", 4000, 1, []string{"d"}, 1),
	}
	wants := Wants{Digests: map[string]int64{"d": 42}}
	specs := []*task.Spec{memSpec("a", 1000)}
	var first map[string][]*task.Spec
	for i := 0; i < len(base); i++ {
		rotated := append(append([]protocol.TMOffer{}, base[i:]...), base[:i]...)
		plan, _, _ := PlanScored(specs, rotated, wants, DefaultScorer{})
		if first == nil {
			first = plan
			if len(plan["n1"]) != 1 {
				t.Fatalf("plan = %v, want lowest name n1", plan)
			}
			continue
		}
		if !reflect.DeepEqual(plan, first) {
			t.Fatalf("rotation %d changed the plan: %v vs %v", i, plan, first)
		}
	}
}

func TestScoredMatchesPlanWithoutWants(t *testing.T) {
	// With no wants the scored path must reproduce the legacy worst-fit
	// plan exactly — the compatibility contract Plan's callers rely on.
	offers := []protocol.TMOffer{offer("n1", 3000, 2), offer("n2", 5000, 0), offer("n3", 1000, 1)}
	specs := []*task.Spec{memSpec("a", 1000), memSpec("b", 2000), memSpec("c", 500), memSpec("d", 500)}
	gotPlan, gotUnplaced := Plan(specs, offers)
	scoredPlan, scoredUnplaced, stats := PlanScored(specs, offers, Wants{}, DefaultScorer{})
	if !reflect.DeepEqual(gotPlan, scoredPlan) || !reflect.DeepEqual(gotUnplaced, scoredUnplaced) {
		t.Errorf("Plan and PlanScored diverged: %v vs %v", gotPlan, scoredPlan)
	}
	if stats != (PlanStats{}) {
		t.Errorf("wantless plan reported locality stats: %+v", stats)
	}
}

func TestScoredBytesSavedCountsNodeDigestOnce(t *testing.T) {
	// Many tasks landing on one warm node save the archive bytes once, not
	// once per task.
	offers := []protocol.TMOffer{warmOffer("n1", 8000, 0, []string{"arch"}, 0)}
	wants := Wants{Digests: map[string]int64{"arch": 500}}
	specs := []*task.Spec{memSpec("a", 1000), memSpec("b", 1000), memSpec("c", 1000)}
	_, unplaced, stats := PlanScored(specs, offers, wants, DefaultScorer{})
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	if stats.BytesSaved != 500 {
		t.Errorf("BytesSaved = %d, want 500 (once per node, not per task)", stats.BytesSaved)
	}
	if stats.WarmHits != 3 {
		t.Errorf("WarmHits = %d, want 3", stats.WarmHits)
	}
}

func TestUnplacedErrorBoundsNames(t *testing.T) {
	specs := make([]*task.Spec, 20)
	for i := range specs {
		specs[i] = memSpec(fmt.Sprintf("t%02d", i), 100)
	}
	msg := UnplacedError(specs).Error()
	if !strings.Contains(msg, "and 12 more") {
		t.Errorf("error %q does not summarize the overflow", msg)
	}
	if strings.Contains(msg, "t08") {
		t.Errorf("error %q names tasks past the bound", msg)
	}
	short := UnplacedError(specs[:2]).Error()
	if strings.Contains(short, "more") || !strings.Contains(short, "t01") {
		t.Errorf("short error %q mangled", short)
	}
}

func TestDirectoryAffinityOverlay(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 4000, 0), offer("n2", 4000, 0)},
	}}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Hour, Now: clk.Now})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}

	// Straggler marks and heartbeat load syncs merge into cached offers.
	d.NoteStraggler("n1")
	d.NoteStraggler("n1")
	clk.Advance(time.Second)
	d.SyncLoad("n2", 5)
	got, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Node != "n1" || got[0].StalledTasks != 2 {
		t.Errorf("n1 = %+v, want 2 overlay stragglers", got[0])
	}
	if got[1].Node != "n2" || got[1].RunningTasks != 5 {
		t.Errorf("n2 = %+v, want heartbeat-synced running 5", got[1])
	}

	// A fresh round halves straggler marks and spends stale load syncs.
	clk.Advance(2 * time.Hour)
	got, err = d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if fs.count() != 2 {
		t.Fatalf("rounds = %d, want 2", fs.count())
	}
	if got[0].StalledTasks != 1 {
		t.Errorf("n1 stalls after decay = %d, want 1", got[0].StalledTasks)
	}
	if got[1].RunningTasks != 0 {
		t.Errorf("n2 running = %d, want snapshot figure 0 (old sync is spent)", got[1].RunningTasks)
	}

	// Invalidate keeps the straggler history; Evict forgets everything.
	d.Invalidate("n1")
	d.NoteStraggler("n2")
	d.Evict("n2")
	clk.Advance(2 * time.Hour)
	got, err = d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	// Round 3 halves n1's single remaining mark to zero.
	if got[0].Node != "n1" || got[0].StalledTasks != 0 {
		t.Errorf("n1 after second decay = %+v", got[0])
	}
	if got[1].Node != "n2" || got[1].StalledTasks != 0 {
		t.Errorf("evicted n2 kept affinity: %+v", got[1])
	}
}

func TestDirectoryNotePlanAccumulates(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 4000, 0)}}}
	d := NewDirectory(Config{Solicit: fs.solicit})
	d.NotePlan(PlanStats{WarmHits: 2, ColdMisses: 1, BytesSaved: 1024})
	d.NotePlan(PlanStats{WarmHits: 1, BytesSaved: 10})
	s := d.Stats()
	if s.WarmHits != 3 || s.ColdMisses != 1 || s.BytesSaved != 1034 {
		t.Errorf("stats = %+v", s)
	}
}
