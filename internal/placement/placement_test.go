package placement

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cn/internal/protocol"
	"cn/internal/task"
)

// fakeSolicit counts rounds and serves a scripted sequence of offer sets
// (the last set repeats once the script runs out).
type fakeSolicit struct {
	mu     sync.Mutex
	rounds int
	script [][]protocol.TMOffer
	err    error
}

func (f *fakeSolicit) solicit() ([]protocol.TMOffer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rounds++
	if f.err != nil {
		return nil, f.err
	}
	i := f.rounds - 1
	if i >= len(f.script) {
		i = len(f.script) - 1
	}
	return f.script[i], nil
}

func (f *fakeSolicit) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rounds
}

func offer(node string, freeMB, running int) protocol.TMOffer {
	return protocol.TMOffer{Node: node, FreeMemoryMB: freeMB, RunningTasks: running}
}

func memSpec(name string, mb int) *task.Spec {
	return &task.Spec{Name: name, Class: "t", Req: task.Requirements{MemoryMB: mb}}
}

// fakeClock is an adjustable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestDirectoryCachesWithinTTL(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 100, 0), offer("n2", 200, 0)}}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Second, Now: clock.Now})

	first, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("offers = %v", first)
	}
	for i := 0; i < 5; i++ {
		clock.Advance(100 * time.Millisecond)
		if _, err := d.Offers(); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.count(); got != 1 {
		t.Errorf("solicit rounds = %d, want 1 (cached within TTL)", got)
	}
	st := d.Stats()
	if st.SolicitRounds != 1 || st.CacheHits != 5 {
		t.Errorf("stats = %+v, want 1 round / 5 hits", st)
	}
}

func TestDirectoryRefreshesWhenStale(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 100, 0)},
		{offer("n1", 50, 1), offer("n2", 300, 0)},
	}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Second, Now: clock.Now})

	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // past the TTL
	got, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if fs.count() != 2 {
		t.Errorf("solicit rounds = %d, want 2 (stale cache refreshed)", fs.count())
	}
	if len(got) != 2 || got[0].FreeMemoryMB != 50 {
		t.Errorf("offers after refresh = %v", got)
	}
}

func TestDirectoryRefreshesWhenEmpty(t *testing.T) {
	// First round yields no offers (no TaskManager responded); the next
	// Offers call must probe again rather than serve the cached emptiness.
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{}, {offer("n1", 100, 0)}}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Minute, Now: clock.Now})

	if got, _ := d.Offers(); len(got) != 0 {
		t.Fatalf("first round offers = %v, want none", got)
	}
	got, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || fs.count() != 2 {
		t.Errorf("offers = %v after %d rounds, want 1 offer from round 2", got, fs.count())
	}
}

func TestDirectoryInvalidation(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 100, 0), offer("n2", 100, 0)},
		{offer("n1", 100, 0), offer("n2", 100, 0)},
	}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Minute, Now: clock.Now})

	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	d.Invalidate("n2") // n2 rejected an assignment
	got, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != "n1" {
		t.Errorf("offers after invalidation = %v, want only n1", got)
	}
	if fs.count() != 1 {
		t.Errorf("rounds = %d; invalidating one node must not force a refresh while others are cached", fs.count())
	}
	d.Invalidate("n1") // cache now empty -> next Offers solicits afresh
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	if fs.count() != 2 {
		t.Errorf("rounds = %d, want 2 after the cache emptied", fs.count())
	}
	if st := d.Stats(); st.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestDirectoryNegativeTTLAlwaysSolicits(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 100, 0)}}}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: -1})
	for i := 0; i < 3; i++ {
		if _, err := d.Offers(); err != nil {
			t.Fatal(err)
		}
	}
	if fs.count() != 3 {
		t.Errorf("rounds = %d, want 3 with caching disabled", fs.count())
	}
}

func TestDirectorySolicitError(t *testing.T) {
	fs := &fakeSolicit{err: errors.New("fabric down")}
	d := NewDirectory(Config{Solicit: fs.solicit})
	if _, err := d.Offers(); err == nil {
		t.Error("Offers succeeded with a failing solicit")
	}
}

func TestDirectoryReserveDebitsCachedFigures(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 1000, 0)}}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Minute, Now: clock.Now})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	d.Reserve("n1", 400, 2)
	got, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FreeMemoryMB != 600 || got[0].RunningTasks != 2 {
		t.Errorf("offer after Reserve = %+v, want 600 MB free / 2 running", got[0])
	}
}

func TestDirectoryConcurrentRefreshSingleFlight(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 100, 0)}}}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Minute})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Offers(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Concurrent callers may at worst each trigger one round, but a cold
	// directory should collapse most of them into the shared in-flight
	// round; the hard requirement is far fewer rounds than callers.
	if fs.count() > 2 {
		t.Errorf("rounds = %d for 8 concurrent callers, want <= 2", fs.count())
	}
}

func TestPlanDeterministicTieBreaking(t *testing.T) {
	// Identical capacity everywhere: placement must still be a pure
	// function of the input, with ties broken by running count then node
	// name.
	offers := []protocol.TMOffer{offer("n3", 100, 1), offer("n1", 100, 0), offer("n2", 100, 0)}
	specs := []*task.Spec{memSpec("a", 10), memSpec("b", 10)}
	first, unplaced := Plan(specs, offers)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced = %v", unplaced)
	}
	for i := 0; i < 10; i++ {
		again, _ := Plan(specs, offers)
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("plan not deterministic: %v vs %v", again, first)
		}
	}
	// "a" goes to n1 (lowest name among equal-capacity, equal-load nodes);
	// "b" then prefers n2, which still has 100 MB free vs n1's 90.
	if got := first["n1"]; len(got) != 1 || got[0].Name != "a" {
		t.Errorf("n1 got %v, want [a]", names(first["n1"]))
	}
	if got := first["n2"]; len(got) != 1 || got[0].Name != "b" {
		t.Errorf("n2 got %v, want [b]", names(first["n2"]))
	}
	if len(first["n3"]) != 0 {
		t.Errorf("n3 (loaded) got %v, want nothing", names(first["n3"]))
	}
}

func names(specs []*task.Spec) []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Name
	}
	return out
}

func TestPlanBinPacksAgainstFreeMemory(t *testing.T) {
	offers := []protocol.TMOffer{offer("big", 1000, 0), offer("small", 100, 0)}
	specs := []*task.Spec{
		memSpec("huge", 900),
		memSpec("mid", 80),
		memSpec("tiny", 10),
	}
	plan, unplaced := Plan(specs, offers)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced = %v", names(unplaced))
	}
	// "huge" only fits on big (1000 -> 100 free). "mid" then sees a
	// 100 MB tie and goes to small, which runs fewer tasks; "tiny"
	// returns to big, which again has the most free memory.
	if got := names(plan["big"]); fmt.Sprint(got) != "[huge tiny]" {
		t.Errorf("big got %v, want [huge tiny]", got)
	}
	if got := names(plan["small"]); fmt.Sprint(got) != "[mid]" {
		t.Errorf("small got %v, want [mid]", got)
	}
}

func TestPlanReportsUnplaceable(t *testing.T) {
	offers := []protocol.TMOffer{offer("n1", 100, 0)}
	plan, unplaced := Plan([]*task.Spec{memSpec("fits", 50), memSpec("nofit", 500)}, offers)
	if len(plan["n1"]) != 1 || plan["n1"][0].Name != "fits" {
		t.Errorf("plan = %v", plan)
	}
	if len(unplaced) != 1 || unplaced[0].Name != "nofit" {
		t.Fatalf("unplaced = %v, want [nofit]", names(unplaced))
	}
	if err := UnplacedError(unplaced); err == nil {
		t.Error("UnplacedError returned nil")
	}
}

func TestDirectoryLiveGateEvictsDepartedNodes(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 100, 0), offer("n2", 200, 0), offer("n3", 300, 0)},
	}}
	clk := &fakeClock{now: time.Unix(1000, 0)}
	dead := map[string]bool{}
	liveSet := func() map[string]bool {
		live := map[string]bool{}
		for _, n := range []string{"n1", "n2", "n3", "n9"} {
			if !dead[n] {
				live[n] = true
			}
		}
		return live
	}
	d := NewDirectory(Config{
		Solicit: fs.solicit,
		TTL:     time.Hour, // the TTL alone would serve stale entries forever
		Now:     clk.Now,
		Live:    liveSet,
	})
	offers, err := d.Offers()
	if err != nil || len(offers) != 3 {
		t.Fatalf("offers = %v err = %v", offers, err)
	}
	// n2 leaves the cluster; the cached entry must be evicted on the next
	// read even though the round is still fresh.
	dead["n2"] = true
	offers, err = d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 || offers[0].Node != "n1" || offers[1].Node != "n3" {
		t.Fatalf("offers after departure = %v", offers)
	}
	if fs.count() != 1 {
		t.Errorf("solicit rounds = %d, want 1 (eviction must not force a round)", fs.count())
	}
	if st := d.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDirectoryLiveGateEmptiesCacheTriggersResolicit(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 100, 0)},
		{offer("n9", 900, 0)},
	}}
	clk := &fakeClock{now: time.Unix(1000, 0)}
	dead := map[string]bool{}
	liveSet := func() map[string]bool {
		live := map[string]bool{}
		for _, n := range []string{"n1", "n2", "n3", "n9"} {
			if !dead[n] {
				live[n] = true
			}
		}
		return live
	}
	d := NewDirectory(Config{
		Solicit: fs.solicit,
		TTL:     time.Hour,
		Now:     clk.Now,
		Live:    liveSet,
	})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	dead["n1"] = true
	offers, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Node != "n9" {
		t.Fatalf("offers = %v, want fresh round's n9", offers)
	}
	if fs.count() != 2 {
		t.Errorf("solicit rounds = %d, want 2 (empty cache falls through)", fs.count())
	}
}

func TestDirectoryEvict(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{
		{offer("n1", 100, 0), offer("n2", 200, 0)},
	}}
	clk := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Hour, Now: clk.Now})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	d.Evict("n2")
	d.Evict("n2") // idempotent
	offers, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Node != "n1" {
		t.Fatalf("offers after evict = %v", offers)
	}
	if st := d.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestReserveClampsAtZeroUnderConcurrentDoubleReserve is the regression
// test for the double-debit bug: two jobs dispatching concurrently against
// the same cached offer snapshot both debit the node; the blind debit drove
// the cached figure below zero and suppressed the node from every plan
// until the TTL lapsed, even after its tasks finished.
func TestReserveClampsAtZeroUnderConcurrentDoubleReserve(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 1000, 0)}}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Hour, Now: clock.Now})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}

	// Both placements planned against the same 1000 MB snapshot and both
	// batches were accepted by the TaskManager (it is the arbiter).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Reserve("n1", 800, 1)
		}()
	}
	wg.Wait()

	offers, err := d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].FreeMemoryMB != 0 {
		t.Fatalf("offers after double reserve = %+v, want n1 clamped at 0 MB", offers)
	}
	if offers[0].RunningTasks != 2 {
		t.Errorf("running tasks = %d, want 2", offers[0].RunningTasks)
	}

	// The clamp swallowed a 600 MB debit; the releases must pay that debt
	// down before crediting, so the pair nets to exactly the advertised
	// 1000 MB — neither the pre-fix -600 (node suppressed until TTL
	// lapse) nor a naive 1600 (over-commit, assignment rejections).
	d.Release("n1", 800, 1)
	d.Release("n1", 800, 1)
	offers, err = d.Offers()
	if err != nil {
		t.Fatal(err)
	}
	if offers[0].FreeMemoryMB != 1000 {
		t.Fatalf("free after releases = %d MB, want exactly 1000", offers[0].FreeMemoryMB)
	}
	if offers[0].RunningTasks != 0 {
		t.Errorf("running after releases = %d, want 0 (clamped)", offers[0].RunningTasks)
	}

	// A credit beyond the snapshot's net reserve (a duplicate, or one for
	// a task whose freed memory the advertisement already reflects) must
	// not inflate the figure past the advertisement.
	d.Release("n1", 800, 1)
	offers, _ = d.Offers()
	if offers[0].FreeMemoryMB != 1000 {
		t.Fatalf("free after stale credit = %d MB, want 1000 (credit bounded by reserve)", offers[0].FreeMemoryMB)
	}
	if got := fs.count(); got != 1 {
		t.Errorf("solicit rounds = %d, want 1 (all served from cache)", got)
	}
}

// TestReleaseUnknownNodeIsNoOp: credits for nodes without a cached entry
// (evicted, or never offered) are dropped, not resurrected.
func TestReleaseUnknownNodeIsNoOp(t *testing.T) {
	fs := &fakeSolicit{script: [][]protocol.TMOffer{{offer("n1", 100, 0)}}}
	d := NewDirectory(Config{Solicit: fs.solicit, TTL: time.Hour})
	if _, err := d.Offers(); err != nil {
		t.Fatal(err)
	}
	d.Release("ghost", 500, 1)
	offers, _ := d.Offers()
	if len(offers) != 1 || offers[0].Node != "n1" {
		t.Fatalf("offers = %+v, want only n1", offers)
	}
}
