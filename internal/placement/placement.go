// Package placement is the JobManager's batch placement engine. It
// decouples resource acquisition from per-task dispatch, the scaling move
// pilot-abstraction systems make: instead of one multicast solicitation
// round per task, a Directory caches TaskManager offers (TTL-refreshed,
// invalidated on rejection, falling back to a fresh round when stale or
// empty) and a two-stage scheduler places an entire task set against the
// cached figures in one pass: a capacity feasibility filter first, then a
// pluggable Scorer ranks the surviving nodes — bytes already resident on
// the node (archive cache and data-plane blob LRU) dominate, then free
// memory, then fewest running tasks, then a recent-straggler penalty, with
// the node-name tie-break keeping every plan deterministic. Between
// solicitation rounds the Directory keeps its snapshot honest with an
// affinity overlay: heartbeat-synced live load and speculation-driven
// straggler marks merge into served offers until the next fresh round
// replaces the figures wholesale.
package placement

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cn/internal/protocol"
	"cn/internal/task"
)

// DefaultTTL is how long a solicitation round's offers stay fresh when
// Config.TTL is zero.
const DefaultTTL = time.Second

// SolicitFunc performs one multicast solicitation round and returns the
// collected TaskManager offers. The JobManager wires in a GatherGroup over
// the TaskManager multicast group; tests inject fakes.
type SolicitFunc func() ([]protocol.TMOffer, error)

// Config parametrizes a Directory.
type Config struct {
	// Solicit performs one fresh offer round (required).
	Solicit SolicitFunc
	// TTL bounds how long cached offers are served (0 = DefaultTTL;
	// negative disables caching so every Offers call solicits afresh).
	TTL time.Duration
	// Live returns the set of nodes that are currently valid placement
	// targets; a nil function — or a nil returned set — treats every node
	// as live. The owner wires in discovery-group membership and
	// health-monitor state, so entries for nodes that left the cluster or
	// stopped heartbeating are evicted instead of being served until the
	// TTL happens to lapse. Called once per Offers() evaluation.
	Live func() map[string]bool
	// Now supplies the clock (nil = time.Now; tests inject fakes).
	Now func() time.Time
}

// Stats counts directory activity.
type Stats struct {
	// SolicitRounds is how many multicast rounds were performed.
	SolicitRounds int64
	// CacheHits is how many Offers calls were served from cache.
	CacheHits int64
	// Invalidations counts entries dropped after assignment rejections.
	Invalidations int64
	// Evictions counts entries dropped because the node left discovery or
	// its health lease lapsed.
	Evictions int64
	// WarmHits counts tasks placed on a node already holding at least one
	// of the job's wanted digests.
	WarmHits int64
	// ColdMisses counts tasks a digest-wanting job had to place on a node
	// holding none of its digests.
	ColdMisses int64
	// BytesSaved totals the wanted bytes that were already resident on the
	// chosen nodes — archive and shuffle data the cluster did not re-ship.
	BytesSaved int64
}

// Directory is the cluster resource directory: a TTL cache of TaskManager
// offers that backs every placement decision. It is safe for concurrent
// use; concurrent refreshes collapse into a single solicitation round.
type Directory struct {
	cfg Config

	mu        sync.Mutex
	entries   map[string]protocol.TMOffer
	fetchedAt time.Time
	inflight  chan struct{} // non-nil while a solicitation round runs
	lastErr   error
	stats     Stats
	// debts records, per node, reserve debit that the zero clamp could
	// not apply. Release pays the debt down before crediting the cached
	// figure, so the symmetric reserve/release pair nets to the true
	// figure instead of inflating it past the node's advertisement.
	// Cleared whenever the node's entry is replaced or dropped.
	debts map[string]int
	// reserved records, per node, the net reserve applied against the
	// CURRENT snapshot. Release credits at most this much: a credit for
	// a task that freed its memory before the latest solicitation round
	// is already reflected in the advertisement, and applying it again
	// would inflate the figure past the node's true free. Cleared with
	// debts whenever the snapshot is replaced or the entry dropped —
	// dropping a legitimate late credit only under-reports until the
	// next round, which is the safe direction.
	reserved map[string]*reservation
	// affinity is the per-node overlay of signals that arrive between
	// solicitation rounds: heartbeat-synced live load and
	// speculation-driven straggler marks. Unlike debts/reserved it
	// survives Invalidate (a rejected assignment says nothing about the
	// node's straggler history) and decays across fresh rounds rather
	// than being cleared; Evict drops it with everything else.
	affinity map[string]*affinity
}

// reservation is the net reserve applied to one node's cached entry
// since its snapshot was taken.
type reservation struct {
	mb    int
	tasks int
}

// affinity is one node's between-rounds overlay.
type affinity struct {
	// stragglers counts speculation events against this node since the
	// overlay entry was created, halved on every fresh solicitation round
	// so old sins fade.
	stragglers int
	// liveRunning is the running-task count most recently derived from the
	// node's heartbeat, with syncedAt the observation time. It refreshes a
	// stale snapshot's load figure without a solicitation round.
	liveRunning int
	syncedAt    time.Time
}

// NewDirectory creates a directory around a solicitation function.
func NewDirectory(cfg Config) *Directory {
	if cfg.Solicit == nil {
		panic("placement: nil Solicit")
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Directory{
		cfg:      cfg,
		entries:  make(map[string]protocol.TMOffer),
		debts:    make(map[string]int),
		reserved: make(map[string]*reservation),
		affinity: make(map[string]*affinity),
	}
}

// freshLocked reports whether the cached round is still within the TTL.
func (d *Directory) freshLocked() bool {
	if d.cfg.TTL < 0 || d.fetchedAt.IsZero() {
		return false
	}
	return d.cfg.Now().Sub(d.fetchedAt) < d.cfg.TTL
}

// snapshotLocked copies the cached offers, sorted by node for determinism,
// merging each node's affinity overlay into its served figures: a
// heartbeat newer than the snapshot bumps a stale load figure upward
// (never down — the snapshot may already include reserves the heartbeat
// predates), and accumulated straggler marks add into the offer's stall
// count so the scorer's penalty sees them.
func (d *Directory) snapshotLocked() []protocol.TMOffer {
	out := make([]protocol.TMOffer, 0, len(d.entries))
	for _, o := range d.entries {
		if a := d.affinity[o.Node]; a != nil {
			if a.syncedAt.After(d.fetchedAt) && a.liveRunning > o.RunningTasks {
				o.RunningTasks = a.liveRunning
			}
			o.StalledTasks += a.stragglers
		}
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// pruneDeadLocked evicts cached entries whose node is no longer live
// (left the discovery group or lapsed its health lease); d.mu must be
// held. Fresh solicitation rounds only hear from live nodes, so this
// guards the cache-hit path.
func (d *Directory) pruneDeadLocked() {
	if d.cfg.Live == nil || len(d.entries) == 0 {
		return
	}
	live := d.cfg.Live()
	if live == nil {
		return
	}
	for node := range d.entries {
		if !live[node] {
			d.dropLocked(node)
			delete(d.affinity, node)
			d.stats.Evictions++
		}
	}
}

// dropLocked forgets a node's entry and its snapshot bookkeeping; d.mu
// must be held.
func (d *Directory) dropLocked(node string) {
	delete(d.entries, node)
	delete(d.debts, node)
	delete(d.reserved, node)
}

// Evict drops a node's cached offer because the node is gone (discovery
// departure or a health-lease death), as opposed to Invalidate's
// "capacity figure was wrong" semantics.
func (d *Directory) Evict(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.affinity, node)
	if _, ok := d.entries[node]; ok {
		d.dropLocked(node)
		d.stats.Evictions++
	}
}

// Offers returns the cluster's current offer set: the cached round when it
// is fresh and non-empty, otherwise the result of a fresh multicast round.
// An empty cache always falls through to a fresh round, so a directory
// that has never seen an offer keeps probing rather than starving. Cached
// entries for nodes the Live gate rejects are evicted before serving.
func (d *Directory) Offers() ([]protocol.TMOffer, error) {
	d.mu.Lock()
	d.pruneDeadLocked()
	if d.freshLocked() && len(d.entries) > 0 {
		d.stats.CacheHits++
		out := d.snapshotLocked()
		d.mu.Unlock()
		return out, nil
	}
	if ch := d.inflight; ch != nil {
		// Another goroutine is soliciting; share its round.
		d.mu.Unlock()
		<-ch
		d.mu.Lock()
		out, err := d.snapshotLocked(), d.lastErr
		d.mu.Unlock()
		return out, err
	}
	ch := make(chan struct{})
	d.inflight = ch
	d.mu.Unlock()

	offers, err := d.cfg.Solicit()

	d.mu.Lock()
	d.stats.SolicitRounds++
	d.lastErr = err
	if err == nil {
		// A fresh round is ground truth: replace the figures and forget
		// the debts and reservations accumulated against the previous
		// snapshot.
		d.entries = make(map[string]protocol.TMOffer, len(offers))
		d.debts = make(map[string]int)
		d.reserved = make(map[string]*reservation)
		for _, o := range offers {
			d.entries[o.Node] = o
		}
		d.fetchedAt = d.cfg.Now()
		// Straggler marks decay across rounds rather than resetting: one
		// speculation should not taint a node forever, but neither should a
		// fresh round instantly absolve a node that keeps stalling. Live
		// load syncs older than the new snapshot are spent.
		for node, a := range d.affinity {
			a.stragglers /= 2
			if a.stragglers == 0 && !a.syncedAt.After(d.fetchedAt) {
				delete(d.affinity, node)
			}
		}
		d.pruneDeadLocked()
	}
	d.inflight = nil
	close(ch)
	out := d.snapshotLocked()
	d.mu.Unlock()
	return out, err
}

// Invalidate drops a node's cached offer after it rejected an assignment:
// its advertised capacity was wrong, so it must re-offer before being
// chosen again.
func (d *Directory) Invalidate(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[node]; ok {
		d.dropLocked(node)
		d.stats.Invalidations++
	}
}

// Reserve debits a node's cached free-memory figure after a successful
// assignment so subsequent placements within the TTL bin-pack against
// up-to-date numbers instead of the stale advertisement. The figure is
// clamped at zero: two jobs dispatching concurrently against the same
// cached snapshot can both get their batches accepted (the TaskManager is
// the arbiter), and a blind double debit would wedge the entry below zero
// — suppressing the node from every plan until the TTL lapsed even after
// its tasks finished.
func (d *Directory) Reserve(node string, memoryMB, tasks int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.entries[node]
	if !ok {
		return
	}
	r := d.reserved[node]
	if r == nil {
		r = &reservation{}
		d.reserved[node] = r
	}
	r.mb += memoryMB
	r.tasks += tasks
	o.FreeMemoryMB -= memoryMB
	if o.FreeMemoryMB < 0 {
		// The debit the clamp swallows is remembered so the matching
		// Release cannot inflate the figure past the advertisement.
		d.debts[node] += -o.FreeMemoryMB
		o.FreeMemoryMB = 0
	}
	o.RunningTasks += tasks
	d.entries[node] = o
}

// Release credits a node's cached figures back when a job's tasks finish,
// the inverse of Reserve: the freed memory is placeable again immediately
// instead of only after the next solicitation round. A credit is bounded
// by the net reserve applied against the current snapshot (a task that
// freed its memory before the latest round is already in the
// advertisement) and first pays down any debit the zero clamp swallowed,
// so reserve/release pairs net to the advertised figure and can never
// inflate it. Like Reserve it adjusts a cache, not ground truth — the
// next fresh round replaces the figures wholesale.
func (d *Directory) Release(node string, memoryMB, tasks int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.entries[node]
	if !ok {
		return
	}
	r := d.reserved[node]
	if r == nil {
		return // stale credit: nothing reserved against this snapshot
	}
	memoryMB = min(memoryMB, r.mb)
	tasks = min(tasks, r.tasks)
	r.mb -= memoryMB
	r.tasks -= tasks
	if debt := d.debts[node]; debt > 0 {
		pay := min(debt, memoryMB)
		d.debts[node] = debt - pay
		memoryMB -= pay
	}
	o.FreeMemoryMB += memoryMB
	o.RunningTasks = max(o.RunningTasks-tasks, 0)
	d.entries[node] = o
}

// NoteStraggler records a speculation event against a node: one of its
// tasks fell far enough behind that the JobManager launched a twin. The
// mark raises the node's stall figure in every served offer until fresh
// rounds decay it away, steering new work toward nodes that keep up.
func (d *Directory) NoteStraggler(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := d.affinity[node]
	if a == nil {
		a = &affinity{}
		d.affinity[node] = a
	}
	a.stragglers++
}

// SyncLoad refreshes a node's live running-task count from its heartbeat,
// keeping the directory's load picture current between solicitation
// rounds without a multicast round trip.
func (d *Directory) SyncLoad(node string, running int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := d.affinity[node]
	if a == nil {
		a = &affinity{}
		d.affinity[node] = a
	}
	a.liveRunning = running
	a.syncedAt = d.cfg.Now()
}

// NotePlan folds one planning pass's locality outcome into the
// directory's counters.
func (d *Directory) NotePlan(ps PlanStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.WarmHits += ps.WarmHits
	d.stats.ColdMisses += ps.ColdMisses
	d.stats.BytesSaved += ps.BytesSaved
}

// Stats returns a copy of the directory's counters.
func (d *Directory) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Plan places a task set onto an offer round with no locality wants: pure
// capacity scheduling under the default scorer. With nothing resident to
// prefer, the ranking degenerates to the original worst-fit spreading
// rule — most free memory, fewest running tasks, lowest node name — so
// existing callers and their determinism guarantees are unchanged. The
// returned map holds per-node task lists; unplaced names every task that
// fits on no node at all.
func Plan(specs []*task.Spec, offers []protocol.TMOffer) (plan map[string][]*task.Spec, unplaced []*task.Spec) {
	plan, unplaced, _ = PlanScored(specs, offers, Wants{}, DefaultScorer{})
	return plan, unplaced
}

// maxUnplacedNames bounds how many task names an UnplacedError spells out;
// a 10k-task failure should not log a megabyte line.
const maxUnplacedNames = 8

// UnplacedError describes a plan that could not host every task, naming at
// most maxUnplacedNames of them.
func UnplacedError(unplaced []*task.Spec) error {
	shown := min(len(unplaced), maxUnplacedNames)
	names := make([]string, shown)
	for i, sp := range unplaced[:shown] {
		names[i] = fmt.Sprintf("%s(%dMB)", sp.Name, sp.Req.MemoryMB)
	}
	if rest := len(unplaced) - shown; rest > 0 {
		return fmt.Errorf("placement: no TaskManager can host %v and %d more", names, rest)
	}
	return fmt.Errorf("placement: no TaskManager can host %v", names)
}
