package placement

import (
	"sort"

	"cn/internal/protocol"
	"cn/internal/task"
)

// Wants describes the data a job would like its tasks to land next to:
// the job's archive digest plus the digests of any data-plane blobs the
// tasks will pull, each with its size in bytes. A node already holding a
// wanted digest in its blob cache serves it locally instead of pulling it
// over the wire, so resident bytes are the strongest placement signal.
type Wants struct {
	Digests map[string]int64
}

// ResidentBytes sums the wanted bytes an offer advertises as resident.
func (w Wants) ResidentBytes(o *protocol.TMOffer) int64 {
	if len(w.Digests) == 0 || len(o.ResidentDigests) == 0 {
		return 0
	}
	var total int64
	for _, d := range o.ResidentDigests {
		total += w.Digests[d]
	}
	return total
}

// Score ranks one node for one task. Comparison is lexicographic in field
// order: more wanted bytes already resident beats everything, then more
// free memory (the worst-fit spreading rule), then fewer running tasks,
// then fewer recently stalled tasks. Ties across all four fall to the
// planner's node-name tie-break, which keeps plans deterministic.
type Score struct {
	ResidentBytes int64
	FreeMB        int
	Running       int
	Stalled       int
}

// Better reports whether s outranks o.
func (s Score) Better(o Score) bool {
	if s.ResidentBytes != o.ResidentBytes {
		return s.ResidentBytes > o.ResidentBytes
	}
	if s.FreeMB != o.FreeMB {
		return s.FreeMB > o.FreeMB
	}
	if s.Running != o.Running {
		return s.Running < o.Running
	}
	return s.Stalled < o.Stalled
}

// Scorer ranks a feasible node for a task. PlanScored calls it only for
// offers that passed the capacity filter; residentBytes is the precomputed
// overlap between the job's wants and the offer's resident digests.
// Implementations must be pure functions of their arguments so a given
// (specs, offers, wants) input always yields the same plan.
type Scorer interface {
	Score(sp *task.Spec, o *protocol.TMOffer, residentBytes int64) Score
}

// DefaultScorer is the standard ranking: resident bytes, then free
// memory, then running tasks, then the straggler penalty — each taken
// straight from the offer.
type DefaultScorer struct{}

// Score implements Scorer.
func (DefaultScorer) Score(sp *task.Spec, o *protocol.TMOffer, residentBytes int64) Score {
	return Score{
		ResidentBytes: residentBytes,
		FreeMB:        o.FreeMemoryMB,
		Running:       o.RunningTasks,
		Stalled:       o.StalledTasks,
	}
}

// PlanStats is one planning pass's locality outcome.
type PlanStats struct {
	// WarmHits counts tasks placed on a node holding at least one wanted
	// digest; ColdMisses counts tasks a digest-wanting job placed cold.
	// Both stay zero when the job wants nothing.
	WarmHits   int64
	ColdMisses int64
	// BytesSaved totals the wanted bytes already resident on the chosen
	// nodes, counting each (node, digest) overlap once per pass — the
	// bytes this plan avoids re-shipping.
	BytesSaved int64
}

// PlanScored is the two-stage scheduler behind every placement decision.
// Tasks are considered in descending memory order (ties broken by name).
// For each task, stage one filters offers to those with enough remaining
// free memory; stage two hands the survivors to the scorer and takes the
// best score, breaking exact score ties by lowest node name. Chosen bins
// are debited (memory, running count) before the next task is considered,
// so the scorer always sees current figures. The returned map holds
// per-node task lists; unplaced names every task that fits on no node.
func PlanScored(specs []*task.Spec, offers []protocol.TMOffer, wants Wants, scorer Scorer) (plan map[string][]*task.Spec, unplaced []*task.Spec, stats PlanStats) {
	if scorer == nil {
		scorer = DefaultScorer{}
	}
	type bin struct {
		offer    protocol.TMOffer // mutable working copy
		resident int64
		used     bool
	}
	bins := make([]*bin, 0, len(offers))
	for _, o := range offers {
		bins = append(bins, &bin{offer: o, resident: wants.ResidentBytes(&o)})
	}
	ordered := make([]*task.Spec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].Req.MemoryMB != ordered[b].Req.MemoryMB {
			return ordered[a].Req.MemoryMB > ordered[b].Req.MemoryMB
		}
		return ordered[a].Name < ordered[b].Name
	})
	plan = make(map[string][]*task.Spec)
	for _, sp := range ordered {
		var best *bin
		var bestScore Score
		for _, b := range bins {
			if b.offer.FreeMemoryMB < sp.Req.MemoryMB {
				continue // stage one: capacity infeasible
			}
			s := scorer.Score(sp, &b.offer, b.resident)
			if best == nil || s.Better(bestScore) ||
				(s == bestScore && b.offer.Node < best.offer.Node) {
				best, bestScore = b, s
			}
		}
		if best == nil {
			unplaced = append(unplaced, sp)
			continue
		}
		best.offer.FreeMemoryMB -= sp.Req.MemoryMB
		best.offer.RunningTasks++
		best.used = true
		plan[best.offer.Node] = append(plan[best.offer.Node], sp)
		if len(wants.Digests) > 0 {
			if best.resident > 0 {
				stats.WarmHits++
			} else {
				stats.ColdMisses++
			}
		}
	}
	for _, b := range bins {
		if b.used {
			stats.BytesSaved += b.resident
		}
	}
	return plan, unplaced, stats
}
