// Package dataplane implements the JobManager side of the direct
// task-to-task data plane: a per-job broker that maps output keys to the
// content-addressed locations producers advertise (DATA_PUT) and parks
// consumer lookups (DATA_RESOLVE) until the producer publishes. The broker
// holds locations, never payload bytes — except the ≤DataInlineMax inline
// copies that ride along on small adverts, which both skip the TM→TM round
// trip for consumers and survive the producing node's death.
//
// The transfer itself is TM→TM: the consumer chunk-pulls the digest from
// the producing node (DATA_FETCH reusing the BLOB_CHUNK machinery) and
// digest-verifies before caching, so the JobManager's wire footprint per
// key is one advert and one location reply no matter how large the output.
package dataplane

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrClosed reports a resolve or publish against a job that reached a
// terminal state — the broker is closed and no key will ever publish.
var ErrClosed = errors.New("dataplane: job closed")

// Loc is one advertised output location: which node serves the digest, and
// for small payloads the JobManager-held inline copy itself.
type Loc struct {
	Key    string
	Task   string // producing task
	Node   string // serving node; "" when only the Inline copy remains
	Digest string
	Size   int64
	Inline []byte // JM-held payload copy (Size <= protocol.DataInlineMax)
}

// Stats aggregates one JobManager's data-plane broker counters across its
// hosted jobs (shared by every Broker the manager creates).
type Stats struct {
	Puts          atomic.Int64 // location adverts accepted
	InlinePuts    atomic.Int64 // adverts carrying the payload inline
	Resolves      atomic.Int64 // resolves answered with a location
	Parks         atomic.Int64 // resolves that had to park for an unpublished key
	Retries       atomic.Int64 // parked resolves answered Retry (window lapsed)
	Invalidations atomic.Int64 // adverts dropped (dead node or stale hint)
	InlineBytes   atomic.Int64 // payload bytes served from JM-held inline copies
}

// StatsSnapshot is a point-in-time copy of Stats for metrics endpoints.
type StatsSnapshot struct {
	Puts          int64 `json:"puts"`
	InlinePuts    int64 `json:"inline_puts"`
	Resolves      int64 `json:"resolves"`
	Parks         int64 `json:"parks"`
	Retries       int64 `json:"retries"`
	Invalidations int64 `json:"invalidations"`
	InlineBytes   int64 `json:"inline_bytes"`
}

// Add returns the field-wise sum of two snapshots (cluster aggregation).
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Puts:          s.Puts + o.Puts,
		InlinePuts:    s.InlinePuts + o.InlinePuts,
		Resolves:      s.Resolves + o.Resolves,
		Parks:         s.Parks + o.Parks,
		Retries:       s.Retries + o.Retries,
		Invalidations: s.Invalidations + o.Invalidations,
		InlineBytes:   s.InlineBytes + o.InlineBytes,
	}
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Puts:          s.Puts.Load(),
		InlinePuts:    s.InlinePuts.Load(),
		Resolves:      s.Resolves.Load(),
		Parks:         s.Parks.Load(),
		Retries:       s.Retries.Load(),
		Invalidations: s.Invalidations.Load(),
		InlineBytes:   s.InlineBytes.Load(),
	}
}

// Broker is one job's location table. All methods are safe for concurrent
// use; returned Locs are copies, so callers never race the table.
type Broker struct {
	mu      sync.Mutex
	locs    map[string]*Loc
	waiters map[string]chan struct{} // closed when the key publishes
	closed  bool
	stats   *Stats
}

// NewBroker returns an empty broker feeding the (possibly nil) shared
// stats block.
func NewBroker(stats *Stats) *Broker {
	return &Broker{
		locs:    make(map[string]*Loc),
		waiters: make(map[string]chan struct{}),
		stats:   stats,
	}
}

// Put stores (or replaces) a key's location and wakes parked resolves.
// A re-published key — a recovered producer re-running, or a speculative
// twin finishing second — simply overwrites: content addressing makes the
// copies interchangeable when equal, and the newest advert wins otherwise.
func (b *Broker) Put(l Loc) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	cp := l
	b.locs[l.Key] = &cp
	ch := b.waiters[l.Key]
	delete(b.waiters, l.Key)
	b.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if b.stats != nil {
		b.stats.Puts.Add(1)
		if len(l.Inline) > 0 {
			b.stats.InlinePuts.Add(1)
		}
	}
	return nil
}

// Lookup returns the key's location without blocking.
func (b *Broker) Lookup(key string) (Loc, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.locs[key]
	if !ok {
		return Loc{}, false
	}
	return *l, true
}

// Resolve returns the key's location, blocking until the key publishes,
// the broker closes (ErrClosed), or ctx expires (ctx.Err()). The caller
// bounds ctx with its park window and answers Retry on deadline.
func (b *Broker) Resolve(ctx context.Context, key string) (Loc, error) {
	parked := false
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return Loc{}, ErrClosed
		}
		if l, ok := b.locs[key]; ok {
			cp := *l
			b.mu.Unlock()
			if b.stats != nil {
				b.stats.Resolves.Add(1)
			}
			return cp, nil
		}
		ch, ok := b.waiters[key]
		if !ok {
			ch = make(chan struct{})
			b.waiters[key] = ch
		}
		b.mu.Unlock()
		if !parked {
			parked = true
			if b.stats != nil {
				b.stats.Parks.Add(1)
			}
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return Loc{}, ctx.Err()
		}
	}
}

// Invalidate drops the key's advert when it still points at the given node
// (and, when digest is non-empty, at that digest) — the consumer-reported
// stale hint after a failed TM→TM fetch. An advert with a JM-held inline
// copy keeps serving from it; only its node pointer is cleared. When the
// payload is actually lost (no inline copy), the removed location is
// returned with lost=true so the caller can re-run its producer.
func (b *Broker) Invalidate(key, node, digest string) (Loc, bool) {
	if node == "" {
		return Loc{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.locs[key]
	if !ok || l.Node != node || (digest != "" && l.Digest != digest) {
		return Loc{}, false
	}
	cp := *l
	if !b.dropLocked(l) {
		return Loc{}, false
	}
	return cp, true
}

// InvalidateNode drops every advert served by the given (dead) node,
// returning the locations whose payload is now unreachable — the producers
// the recovery engine must re-run. Adverts with inline copies survive,
// serving from the JobManager's bytes.
func (b *Broker) InvalidateNode(node string) []Loc {
	b.mu.Lock()
	defer b.mu.Unlock()
	var lost []Loc
	for _, l := range b.locs {
		if l.Node != node {
			continue
		}
		if b.dropLocked(l) {
			lost = append(lost, *l)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].Key < lost[j].Key })
	return lost
}

// dropLocked invalidates one advert under b.mu: entries with an inline
// copy degrade to JM-served (Node cleared, not dropped) and report false;
// entries without are removed and report true (the payload is gone).
func (b *Broker) dropLocked(l *Loc) bool {
	if b.stats != nil {
		b.stats.Invalidations.Add(1)
	}
	if len(l.Inline) > 0 {
		l.Node = ""
		return false
	}
	delete(b.locs, l.Key)
	return true
}

// Close wakes every parked resolve with ErrClosed and rejects all further
// publishes; called when the job reaches a terminal state.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	chans := make([]chan struct{}, 0, len(b.waiters))
	for _, ch := range b.waiters {
		chans = append(chans, ch)
	}
	b.waiters = make(map[string]chan struct{})
	b.locs = make(map[string]*Loc)
	b.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

// Len returns the number of advertised keys.
func (b *Broker) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.locs)
}

// Entries returns a key-sorted copy of the location table — the
// checkpoint image an adopting JobManager restores from.
func (b *Broker) Entries() []Loc {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Loc, 0, len(b.locs))
	for _, l := range b.locs {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore loads checkpointed locations into a fresh broker (adoption),
// without counting them as new puts.
func (b *Broker) Restore(locs []Loc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, l := range locs {
		cp := l
		b.locs[l.Key] = &cp
		if ch, ok := b.waiters[l.Key]; ok {
			delete(b.waiters, l.Key)
			close(ch)
		}
	}
}
