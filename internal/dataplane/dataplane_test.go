package dataplane

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPutThenResolve(t *testing.T) {
	var stats Stats
	b := NewBroker(&stats)
	in := Loc{Key: "k", Task: "t1", Node: "n1", Digest: "d1", Size: 10}
	if err := b.Put(in); err != nil {
		t.Fatal(err)
	}
	got, err := b.Resolve(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "n1" || got.Digest != "d1" || got.Size != 10 || got.Task != "t1" {
		t.Errorf("resolved %+v", got)
	}
	s := stats.Snapshot()
	if s.Puts != 1 || s.Resolves != 1 || s.Parks != 0 {
		t.Errorf("stats %+v", s)
	}
}

// TestResolveParksUntilPut: a resolve issued before the advert must block
// and wake when the key publishes.
func TestResolveParksUntilPut(t *testing.T) {
	var stats Stats
	b := NewBroker(&stats)
	done := make(chan Loc, 1)
	go func() {
		l, err := b.Resolve(context.Background(), "late")
		if err != nil {
			t.Error(err)
		}
		done <- l
	}()
	// Let the resolver park, then publish.
	time.Sleep(10 * time.Millisecond)
	if err := b.Put(Loc{Key: "late", Node: "n2", Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	select {
	case l := <-done:
		if l.Node != "n2" {
			t.Errorf("woke with %+v", l)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked resolve never woke")
	}
	if s := stats.Snapshot(); s.Parks != 1 {
		t.Errorf("parks = %d, want 1", s.Parks)
	}
}

func TestResolveDeadline(t *testing.T) {
	b := NewBroker(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Resolve(ctx, "never"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline", err)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	b := NewBroker(nil)
	errc := make(chan error, 1)
	go func() {
		_, err := b.Resolve(context.Background(), "k")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke on close")
	}
	if err := b.Put(Loc{Key: "k"}); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v", err)
	}
}

// TestInvalidateStaleHint: a consumer-reported stale advert is dropped only
// when node (and digest, if given) still match; a dropped non-inline advert
// reports its location as lost so the producer can be re-run.
func TestInvalidateStaleHint(t *testing.T) {
	b := NewBroker(nil)
	_ = b.Put(Loc{Key: "k", Task: "prod", Node: "n1", Digest: "d1"})
	if _, lost := b.Invalidate("k", "n2", ""); lost {
		t.Error("invalidated with wrong node")
	}
	if _, lost := b.Invalidate("k", "n1", "other"); lost {
		t.Error("invalidated with wrong digest")
	}
	l, lost := b.Invalidate("k", "n1", "d1")
	if !lost || l.Task != "prod" || l.Node != "n1" {
		t.Errorf("matching hint: lost=%v loc=%+v", lost, l)
	}
	if _, ok := b.Lookup("k"); ok {
		t.Error("advert survived invalidation")
	}
}

// TestInvalidateKeepsInline: an advert with a JM-held inline copy degrades
// to JM-served (node cleared) instead of disappearing, and is not reported
// lost — no producer re-run is needed.
func TestInvalidateKeepsInline(t *testing.T) {
	b := NewBroker(nil)
	_ = b.Put(Loc{Key: "k", Node: "n1", Digest: "d", Size: 3, Inline: []byte{1, 2, 3}})
	if _, lost := b.Invalidate("k", "n1", "d"); lost {
		t.Fatal("inline-backed advert reported lost")
	}
	l, ok := b.Lookup("k")
	if !ok || l.Node != "" || len(l.Inline) != 3 {
		t.Errorf("after invalidate: %+v ok=%v", l, ok)
	}
}

// TestInvalidateNode: dead-node sweep returns only the locations whose
// payload is actually lost (no inline copy) — the producers to re-run.
func TestInvalidateNode(t *testing.T) {
	b := NewBroker(nil)
	_ = b.Put(Loc{Key: "a", Task: "ta", Node: "dead", Digest: "d1"})
	_ = b.Put(Loc{Key: "b", Task: "tb", Node: "dead", Digest: "d2", Inline: []byte{1}})
	_ = b.Put(Loc{Key: "c", Task: "tc", Node: "alive", Digest: "d3"})
	lost := b.InvalidateNode("dead")
	if len(lost) != 1 || lost[0].Key != "a" || lost[0].Task != "ta" {
		t.Fatalf("lost = %+v", lost)
	}
	if _, ok := b.Lookup("a"); ok {
		t.Error("lost advert a still present")
	}
	if l, ok := b.Lookup("b"); !ok || l.Node != "" {
		t.Error("inline advert b should survive JM-served")
	}
	if l, ok := b.Lookup("c"); !ok || l.Node != "alive" {
		t.Error("advert c on a live node was touched")
	}
}

// TestRepublishOverwrites: a recovered producer's fresh advert replaces the
// old one and wakes waiters parked since the invalidation.
func TestRepublishOverwrites(t *testing.T) {
	b := NewBroker(nil)
	_ = b.Put(Loc{Key: "k", Node: "n1", Digest: "old"})
	_ = b.Put(Loc{Key: "k", Node: "n2", Digest: "new"})
	l, err := b.Resolve(context.Background(), "k")
	if err != nil || l.Node != "n2" || l.Digest != "new" {
		t.Errorf("resolve after republish: %+v, %v", l, err)
	}
}

// TestEntriesRestore: the checkpoint image round-trips into a fresh broker
// and answers parked resolves there.
func TestEntriesRestore(t *testing.T) {
	b := NewBroker(nil)
	_ = b.Put(Loc{Key: "b", Node: "n2", Digest: "d2"})
	_ = b.Put(Loc{Key: "a", Node: "n1", Digest: "d1", Inline: []byte{9}})
	entries := b.Entries()
	if len(entries) != 2 || entries[0].Key != "a" || entries[1].Key != "b" {
		t.Fatalf("entries = %+v", entries)
	}
	adopted := NewBroker(nil)
	adopted.Restore(entries)
	l, err := adopted.Resolve(context.Background(), "a")
	if err != nil || l.Digest != "d1" || len(l.Inline) != 1 {
		t.Errorf("restored resolve: %+v, %v", l, err)
	}
}

// TestConcurrentPutResolve hammers the broker from both sides; run with
// -race this doubles as the data-race check for the park/wake machinery.
func TestConcurrentPutResolve(t *testing.T) {
	var stats Stats
	b := NewBroker(&stats)
	const keys = 64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < keys; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := b.Resolve(ctx, key); err != nil {
				t.Errorf("resolve %q: %v", key, err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := b.Put(Loc{Key: key, Node: "n", Digest: key}); err != nil {
				t.Errorf("put %q: %v", key, err)
			}
		}()
	}
	wg.Wait()
	if s := stats.Snapshot(); s.Puts != keys || s.Resolves != keys {
		t.Errorf("stats %+v, want %d puts/resolves", s, keys)
	}
}
