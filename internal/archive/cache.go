package archive

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultCacheBytes bounds a node's blob cache when NewCache is used
// directly: enough for hundreds of real task archives, small enough that
// a long-lived TaskManager fed a fresh archive digest per CI run does not
// grow without bound.
const DefaultCacheBytes = 256 << 20

// entry is one cached blob: the raw content-addressed bytes, plus the
// parsed archive when the blob is a task archive. Shuffle outputs from the
// data plane cache with arch == nil; both kinds share the LRU and the byte
// budget, so hot shuffle traffic can evict cold archives and vice versa.
type entry struct {
	digest string
	raw    []byte
	arch   *Archive
}

// Cache is a content-addressed blob store keyed by digest — the
// TaskManager's node-local cache shared across tasks and jobs, holding both
// task archives and data-plane shuffle outputs. Two tasks (of the same job
// or of different jobs) referencing the same digest hit the same entry, so
// a node pays for each distinct blob at most once no matter how many tasks
// use it. The cache holds at most maxBytes of blob data, evicting the
// least-recently-used digests; an evicted digest is simply re-fetched on
// its next reference.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	byDigest map[string]*list.Element
	lru      *list.List // front = most recently used; values are *entry
	puts     int64
	hits     int64
	misses   int64
}

// NewCache returns an empty blob cache bounded by DefaultCacheBytes.
func NewCache() *Cache { return NewCacheSize(DefaultCacheBytes) }

// NewCacheSize returns an empty blob cache bounded by maxBytes
// (<= 0 selects DefaultCacheBytes).
func NewCacheSize(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		byDigest: make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// insert stores an entry under its digest, assuming c.mu is held. Storing
// the same content twice is an idempotent no-op; only the first insertion
// counts as a transfer. Inserting past the byte budget evicts
// least-recently-used entries (the new entry itself is always kept, even
// when it alone exceeds the budget).
func (c *Cache) insert(e *entry) {
	if el, ok := c.byDigest[e.digest]; ok {
		// An archive insert upgrades a raw-bytes entry so a later Get can
		// return the parsed form without re-parsing.
		if old := el.Value.(*entry); old.arch == nil && e.arch != nil {
			old.arch = e.arch
		}
		c.lru.MoveToFront(el)
		return
	}
	c.byDigest[e.digest] = c.lru.PushFront(e)
	c.curBytes += int64(len(e.raw))
	c.puts++
	for c.curBytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		victim := oldest.Value.(*entry)
		c.lru.Remove(oldest)
		delete(c.byDigest, victim.digest)
		c.curBytes -= int64(len(victim.raw))
	}
}

// Put stores an archive under its digest.
func (c *Cache) Put(a *Archive) error {
	if a == nil {
		return fmt.Errorf("archive: cache: nil archive")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(&entry{digest: a.Digest(), raw: a.Bytes(), arch: a})
	return nil
}

// PutBlob stores raw content-addressed bytes (a data-plane shuffle output)
// under their digest. The caller must have digest-verified raw and must not
// mutate it afterwards.
func (c *Cache) PutBlob(digest string, raw []byte) {
	if digest == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(&entry{digest: digest, raw: raw})
}

// Get returns the archive stored under digest, refreshing its recency.
// Blobs cached via PutBlob are not archives and miss here.
func (c *Cache) Get(digest string) (*Archive, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if !ok || el.Value.(*entry).arch == nil {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).arch, true
}

// GetBlob returns the raw bytes stored under digest — archive or shuffle
// blob alike — refreshing recency. The returned slice is shared; callers
// must not mutate it.
func (c *Cache) GetBlob(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).raw, true
}

// Has reports whether the digest is cached, counting a hit (and
// refreshing recency) when it is — the negotiation's "no transfer needed"
// outcome.
func (c *Cache) Has(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if ok {
		c.lru.MoveToFront(el)
		c.hits++
	}
	return ok
}

// RecentDigests returns up to max cached digests in most-recently-used
// order — the bounded locality sample a TaskManager advertises in its
// placement offers. The walk neither refreshes recency nor counts as a
// hit or miss: advertising a digest is not using it.
func (c *Cache) RecentDigests(max int) []string {
	if max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() == 0 {
		return nil
	}
	if max > c.lru.Len() {
		max = c.lru.Len()
	}
	out := make([]string, 0, max)
	for el := c.lru.Front(); el != nil && len(out) < max; el = el.Next() {
		out = append(out, el.Value.(*entry).digest)
	}
	return out
}

// Len returns the number of distinct blobs cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byDigest)
}

// SizeBytes returns the cached blobs' total size.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Transfers returns how many distinct blobs were ever inserted — the
// node's blob-bytes-on-the-wire figure benchmarks assert on.
func (c *Cache) Transfers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puts
}

// Hits returns how many lookups found their digest already cached.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many Get/GetBlob lookups found nothing cached.
func (c *Cache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}
