package archive

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultCacheBytes bounds a node's blob cache when NewCache is used
// directly: enough for hundreds of real task archives, small enough that
// a long-lived TaskManager fed a fresh archive digest per CI run does not
// grow without bound.
const DefaultCacheBytes = 256 << 20

// Cache is a content-addressed archive store keyed by digest — the
// TaskManager's node-local blob cache shared across tasks and jobs. Two
// tasks (of the same job or of different jobs) referencing the same digest
// hit the same entry, so a node pays for each distinct archive at most
// once no matter how many tasks use it. The cache holds at most maxBytes
// of serialized archive data, evicting the least-recently-used digests;
// an evicted digest is simply re-fetched on its next reference.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	byDigest map[string]*list.Element
	lru      *list.List // front = most recently used; values are *Archive
	puts     int64
	hits     int64
}

// NewCache returns an empty blob cache bounded by DefaultCacheBytes.
func NewCache() *Cache { return NewCacheSize(DefaultCacheBytes) }

// NewCacheSize returns an empty blob cache bounded by maxBytes
// (<= 0 selects DefaultCacheBytes).
func NewCacheSize(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		byDigest: make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Put stores an archive under its digest. Storing the same content twice
// is an idempotent no-op; only the first insertion counts as a transfer.
// Inserting past the byte budget evicts least-recently-used entries (the
// new entry itself is always kept, even when it alone exceeds the budget).
func (c *Cache) Put(a *Archive) error {
	if a == nil {
		return fmt.Errorf("archive: cache: nil archive")
	}
	d := a.Digest()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDigest[d]; ok {
		c.lru.MoveToFront(el)
		return nil
	}
	c.byDigest[d] = c.lru.PushFront(a)
	c.curBytes += int64(len(a.Bytes()))
	c.puts++
	for c.curBytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		victim := oldest.Value.(*Archive)
		c.lru.Remove(oldest)
		delete(c.byDigest, victim.Digest())
		c.curBytes -= int64(len(victim.Bytes()))
	}
	return nil
}

// Get returns the archive stored under digest, refreshing its recency.
func (c *Cache) Get(digest string) (*Archive, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*Archive), true
}

// Has reports whether the digest is cached, counting a hit (and
// refreshing recency) when it is — the negotiation's "no transfer needed"
// outcome.
func (c *Cache) Has(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if ok {
		c.lru.MoveToFront(el)
		c.hits++
	}
	return ok
}

// Len returns the number of distinct blobs cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byDigest)
}

// SizeBytes returns the cached archives' total serialized size.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Transfers returns how many distinct blobs were ever inserted — the
// node's archive-bytes-on-the-wire figure benchmarks assert on.
func (c *Cache) Transfers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puts
}

// Hits returns how many Has probes found their digest already cached.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
