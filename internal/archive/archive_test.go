package archive

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// newZip returns a zip writer over buf; split out so tests can fabricate
// malformed archives.
func newZip(buf io.Writer, t *testing.T) *zip.Writer {
	t.Helper()
	return zip.NewWriter(buf)
}

func buildSample(t *testing.T) *Archive {
	t.Helper()
	a, err := NewBuilder("tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask").
		Version("1.0").
		Attribute("Built-By", "cn").
		AddFile("data/readme.txt", []byte("worker task")).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return a
}

func TestBuildAndOpenRoundTrip(t *testing.T) {
	a := buildSample(t)
	if len(a.Bytes()) == 0 {
		t.Fatal("empty archive bytes")
	}
	b, err := Open("tctask.jar", a.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if b.Manifest.TaskClass != "org.jhpc.cn2.trnsclsrtask.TCTask" {
		t.Errorf("TaskClass = %q", b.Manifest.TaskClass)
	}
	if b.Manifest.Version != "1.0" {
		t.Errorf("Version = %q", b.Manifest.Version)
	}
	if b.Manifest.Attributes["Built-By"] != "cn" {
		t.Errorf("Attributes = %v", b.Manifest.Attributes)
	}
	content, err := b.File("data/readme.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "worker task" {
		t.Errorf("file content = %q", content)
	}
}

func TestDigestStableAndTamperEvident(t *testing.T) {
	a1 := buildSample(t)
	a2 := buildSample(t)
	// Deterministic builds may still differ via zip timestamps; digest must
	// at least be stable for the same Archive value.
	if a1.Digest() != a1.Digest() {
		t.Error("digest not stable")
	}
	_ = a2
	raw := append([]byte(nil), a1.Bytes()...)
	raw[len(raw)-1] ^= 0xff
	b, err := Open("tctask.jar", a1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	tampered := &Archive{Name: "t", raw: raw}
	if b.Digest() == tampered.Digest() {
		t.Error("tampered archive has identical digest")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("", "c.X").Build(); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewBuilder("a.jar", "").Build(); err == nil {
		t.Error("empty class should fail")
	}
	if _, err := NewBuilder("a.jar", "c.X").AddFile(ManifestName, []byte("x")).Build(); err == nil {
		t.Error("explicit manifest entry should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("bad.jar", []byte("this is not a zip")); err == nil {
		t.Error("non-zip bytes should fail")
	}
}

func TestOpenMissingManifest(t *testing.T) {
	// Build a zip without a manifest by hand.
	var buf bytes.Buffer
	zw := newZip(&buf, t)
	w, err := zw.Create("only.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("m.jar", buf.Bytes()); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("Open without manifest = %v", err)
	}
}

func TestManifestParseErrors(t *testing.T) {
	if _, err := parseManifest([]byte("NoColonHere\n")); err == nil {
		t.Error("malformed manifest line should fail")
	}
	if _, err := parseManifest([]byte("Archive-Version: 1\n")); err == nil {
		t.Error("manifest without Task-Class should fail")
	}
}

func TestArchiveFileMissing(t *testing.T) {
	a := buildSample(t)
	if _, err := a.File("absent.txt"); err == nil {
		t.Error("File of missing entry should fail")
	}
}

func TestAddFileCopiesContent(t *testing.T) {
	content := []byte("original")
	b := NewBuilder("a.jar", "c.X").AddFile("f", content)
	content[0] = 'X'
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := a.File("f")
	if string(got) != "original" {
		t.Errorf("AddFile did not copy: %q", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(class string, file string, content []byte) bool {
		if class == "" || file == "" || file == ManifestName ||
			strings.ContainsAny(class, "\n\r") || strings.Contains(class, ": ") ||
			strings.ContainsAny(file, "\n\r") {
			return true // skip inputs outside the format's domain
		}
		a, err := NewBuilder("p.jar", class).AddFile(file, content).Build()
		if err != nil {
			return false
		}
		b, err := Open("p.jar", a.Bytes())
		if err != nil {
			return false
		}
		got, err := b.File(file)
		if err != nil {
			return false
		}
		return b.Manifest.TaskClass == class && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheDedupAndLRUEviction(t *testing.T) {
	build := func(n int) *Archive {
		a, err := NewBuilder(fmt.Sprintf("a%d.jar", n), "cls").
			AddFile("payload", bytes.Repeat([]byte{byte(n)}, 1024)).Build()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2, a3 := build(1), build(2), build(3)
	budget := int64(len(a1.Bytes()) + len(a2.Bytes()) + 10)
	c := NewCacheSize(budget) // room for two entries

	if err := c.Put(a1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(a1); err != nil { // idempotent re-insert
		t.Fatal(err)
	}
	if c.Transfers() != 1 || c.Len() != 1 {
		t.Fatalf("transfers=%d len=%d after duplicate put", c.Transfers(), c.Len())
	}
	if err := c.Put(a2); err != nil {
		t.Fatal(err)
	}
	if !c.Has(a1.Digest()) { // refresh a1's recency; a2 is now LRU
		t.Fatal("a1 missing")
	}
	if err := c.Put(a3); err != nil { // exceeds budget -> evict a2
		t.Fatal(err)
	}
	if _, ok := c.Get(a2.Digest()); ok {
		t.Error("a2 survived eviction despite being least recently used")
	}
	if _, ok := c.Get(a1.Digest()); !ok {
		t.Error("a1 evicted despite recent use")
	}
	if _, ok := c.Get(a3.Digest()); !ok {
		t.Error("a3 (newest) evicted")
	}
	if c.SizeBytes() > budget {
		t.Errorf("size %d exceeds budget %d", c.SizeBytes(), budget)
	}
	// Re-inserting an evicted digest counts as a new transfer (it must be
	// re-fetched over the wire).
	if err := c.Put(a2); err != nil {
		t.Fatal(err)
	}
	if c.Transfers() != 4 {
		t.Errorf("transfers = %d, want 4", c.Transfers())
	}
}

func TestCacheRecentDigests(t *testing.T) {
	c := NewCache()
	if got := c.RecentDigests(8); got != nil {
		t.Errorf("empty cache reported digests %v", got)
	}
	c.PutBlob("d1", []byte{1})
	c.PutBlob("d2", []byte{2})
	c.PutBlob("d3", []byte{3})
	if got := c.RecentDigests(8); !reflect.DeepEqual(got, []string{"d3", "d2", "d1"}) {
		t.Errorf("MRU order = %v, want [d3 d2 d1]", got)
	}
	if got := c.RecentDigests(2); !reflect.DeepEqual(got, []string{"d3", "d2"}) {
		t.Errorf("bounded sample = %v, want [d3 d2]", got)
	}
	if got := c.RecentDigests(0); got != nil {
		t.Errorf("max 0 returned %v", got)
	}
	hits, misses := c.Hits(), c.Misses()
	c.RecentDigests(8)
	if c.Hits() != hits || c.Misses() != misses {
		t.Error("RecentDigests perturbed hit/miss counters")
	}
	// The walk must not refresh recency: d1 stays the eviction candidate.
	if !c.Has("d1") {
		t.Fatal("d1 missing")
	}
	if got := c.RecentDigests(1); !reflect.DeepEqual(got, []string{"d1"}) {
		t.Errorf("after Has(d1), MRU = %v, want [d1]", got)
	}
}
