// Package archive implements the CN task archive format — the stand-in for
// the paper's JAR files. "A Task is typically packaged as a self-sufficient
// JAR file that has a class that conforms to the Task interface"; here an
// archive is a zip file containing a MANIFEST naming the task class plus any
// resource files the task ships with. The JobManager uploads archive bytes
// to the chosen TaskManager, which verifies the digest and resolves the
// class against the process registry (Go cannot load code dynamically).
package archive

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ManifestName is the well-known path of the manifest entry inside an
// archive, mirroring Java's META-INF/MANIFEST.MF.
const ManifestName = "META-INF/MANIFEST.MF"

// Manifest describes the archive's deployable class, in the spirit of a JAR
// manifest's Main-Class attribute.
type Manifest struct {
	// TaskClass is the class name resolved against the task registry,
	// e.g. "org.jhpc.cn2.trnsclsrtask.TCTask".
	TaskClass string
	// Version is a free-form archive version string.
	Version string
	// Attributes holds additional key: value pairs.
	Attributes map[string]string
}

// encode renders the manifest in the classic "Key: value" line format.
func (m *Manifest) encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Task-Class: %s\n", m.TaskClass)
	if m.Version != "" {
		fmt.Fprintf(&b, "Archive-Version: %s\n", m.Version)
	}
	keys := make([]string, 0, len(m.Attributes))
	for k := range m.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, m.Attributes[k])
	}
	return b.Bytes()
}

// parseManifest parses the line format produced by encode.
func parseManifest(data []byte) (*Manifest, error) {
	m := &Manifest{Attributes: make(map[string]string)}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ": ")
		if !ok {
			return nil, fmt.Errorf("archive: manifest line %d malformed: %q", lineNo+1, line)
		}
		switch key {
		case "Task-Class":
			m.TaskClass = value
		case "Archive-Version":
			m.Version = value
		default:
			m.Attributes[key] = value
		}
	}
	if m.TaskClass == "" {
		return nil, fmt.Errorf("archive: manifest missing Task-Class")
	}
	return m, nil
}

// Archive is an in-memory task archive: a named bundle of bytes plus its
// parsed manifest. Name corresponds to the descriptor's jar="tctask.jar"
// attribute.
type Archive struct {
	// Name is the archive file name used in descriptors.
	Name string
	// Manifest is the parsed manifest.
	Manifest Manifest
	// Files maps entry path -> content for every non-manifest entry.
	Files map[string][]byte
	// raw holds the serialized zip bytes (the unit of upload).
	raw []byte
	// digest is the hex SHA-256 of raw, computed once at Build/Open time.
	digest string
}

// Builder assembles an archive.
type Builder struct {
	name     string
	manifest Manifest
	files    map[string][]byte
}

// NewBuilder starts an archive with the given file name and task class.
func NewBuilder(name, taskClass string) *Builder {
	return &Builder{
		name:     name,
		manifest: Manifest{TaskClass: taskClass, Attributes: make(map[string]string)},
		files:    make(map[string][]byte),
	}
}

// Version sets the archive version string.
func (b *Builder) Version(v string) *Builder {
	b.manifest.Version = v
	return b
}

// Attribute adds a manifest attribute.
func (b *Builder) Attribute(key, value string) *Builder {
	b.manifest.Attributes[key] = value
	return b
}

// AddFile adds a resource entry. Adding ManifestName explicitly is an error
// at Build time.
func (b *Builder) AddFile(path string, content []byte) *Builder {
	b.files[path] = append([]byte(nil), content...)
	return b
}

// Build serializes the archive to zip bytes and returns the Archive.
func (b *Builder) Build() (*Archive, error) {
	if b.name == "" {
		return nil, fmt.Errorf("archive: build: empty archive name")
	}
	if b.manifest.TaskClass == "" {
		return nil, fmt.Errorf("archive: build %q: empty task class", b.name)
	}
	if _, clash := b.files[ManifestName]; clash {
		return nil, fmt.Errorf("archive: build %q: %s must not be added explicitly", b.name, ManifestName)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create(ManifestName)
	if err != nil {
		return nil, fmt.Errorf("archive: build %q: %w", b.name, err)
	}
	if _, err := w.Write(b.manifest.encode()); err != nil {
		return nil, fmt.Errorf("archive: build %q: %w", b.name, err)
	}
	paths := make([]string, 0, len(b.files))
	for p := range b.files {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic archives -> stable digests
	for _, p := range paths {
		w, err := zw.Create(p)
		if err != nil {
			return nil, fmt.Errorf("archive: build %q: entry %q: %w", b.name, p, err)
		}
		if _, err := w.Write(b.files[p]); err != nil {
			return nil, fmt.Errorf("archive: build %q: entry %q: %w", b.name, p, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("archive: build %q: %w", b.name, err)
	}
	return &Archive{
		Name:     b.name,
		Manifest: b.manifest,
		Files:    b.files,
		raw:      buf.Bytes(),
		digest:   DigestBytes(buf.Bytes()),
	}, nil
}

// DigestBytes is the hex SHA-256 of serialized archive bytes — the
// content address used end to end by the distribution protocol.
func DigestBytes(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Bytes returns the serialized zip content — the unit the JobManager uploads
// to a TaskManager.
func (a *Archive) Bytes() []byte { return a.raw }

// Digest returns the hex SHA-256 of the serialized archive — its content
// address; the TaskManager verifies it after upload. Build and Open
// precompute it, so reads are safe from any goroutine.
func (a *Archive) Digest() string { return a.digest }

// File returns a resource entry's content, or an error if absent.
func (a *Archive) File(path string) ([]byte, error) {
	c, ok := a.Files[path]
	if !ok {
		return nil, fmt.Errorf("archive: %q has no entry %q", a.Name, path)
	}
	return c, nil
}

// Open parses serialized archive bytes back into an Archive.
func Open(name string, raw []byte) (*Archive, error) {
	zr, err := zip.NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("archive: open %q: %w", name, err)
	}
	a := &Archive{Name: name, Files: make(map[string][]byte), raw: append([]byte(nil), raw...)}
	a.digest = DigestBytes(a.raw)
	var sawManifest bool
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("archive: open %q: entry %q: %w", name, f.Name, err)
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("archive: open %q: entry %q: %w", name, f.Name, err)
		}
		if f.Name == ManifestName {
			m, err := parseManifest(content)
			if err != nil {
				return nil, fmt.Errorf("archive: open %q: %w", name, err)
			}
			a.Manifest = *m
			sawManifest = true
			continue
		}
		a.Files[f.Name] = content
	}
	if !sawManifest {
		return nil, fmt.Errorf("archive: open %q: missing %s", name, ManifestName)
	}
	return a, nil
}
