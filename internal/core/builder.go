package core

import (
	"fmt"
	"strconv"
)

// Builder is the fluent construction API for activity graphs — the
// programmatic equivalent of the paper's "CN Intelligent Object Editor"
// GUI. Errors are accumulated; Build reports the first one.
//
//	g, err := core.NewBuilder("transclosure").
//	    Initial("start").
//	    Action("split", core.Tags(core.TagJar, "tasksplit.jar", core.TagClass, "TaskSplit")).
//	    Fork("fork1").
//	    Action("w1", tags).Action("w2", tags).
//	    Join("join1").
//	    Action("join", joinTags).
//	    Final("end").
//	    Flow("start", "split").Flow("split", "fork1").
//	    Flow("fork1", "w1").Flow("fork1", "w2").
//	    Flow("w1", "join1").Flow("w2", "join1").
//	    Flow("join1", "join").Flow("join", "end").
//	    Build()
type Builder struct {
	g   *Graph
	err error
}

// NewBuilder starts building an activity graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: NewGraph(name)}
}

// Tags builds a TaggedValues map from alternating key/value strings;
// it panics on an odd argument count (programming error).
func Tags(kv ...string) TaggedValues {
	if len(kv)%2 != 0 {
		panic("core: Tags requires an even number of arguments")
	}
	tv := make(TaggedValues, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		tv[kv[i]] = kv[i+1]
	}
	return tv
}

// TaskTags builds the standard tag set for a CN task: archive, class,
// memory and run model, plus indexed parameters appended with AddParam.
func TaskTags(jar, class string, memoryMB int, runModel string) TaggedValues {
	return TaggedValues{
		TagJar:      jar,
		TagClass:    class,
		TagMemory:   strconv.Itoa(memoryMB),
		TagRunModel: runModel,
	}
}

func (b *Builder) add(n *Node) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.g.AddNode(n); err != nil {
		b.err = err
	}
	return b
}

// Initial adds the initial pseudostate.
func (b *Builder) Initial(name string) *Builder {
	return b.add(&Node{Name: name, Kind: KindInitial})
}

// Final adds a final state.
func (b *Builder) Final(name string) *Builder {
	return b.add(&Node{Name: name, Kind: KindFinal})
}

// Action adds an action state carrying tagged values.
func (b *Builder) Action(name string, tags TaggedValues) *Builder {
	return b.add(&Node{Name: name, Kind: KindAction, Tagged: tags.Clone()})
}

// DynamicAction adds a dynamic-invocation action state (Figure 5) with the
// given multiplicity ("*" or a number) and run-time argument expression.
func (b *Builder) DynamicAction(name string, tags TaggedValues, multiplicity, argExpr string) *Builder {
	if multiplicity == "" {
		multiplicity = "*"
	}
	return b.add(&Node{
		Name:         name,
		Kind:         KindAction,
		Tagged:       tags.Clone(),
		Dynamic:      true,
		Multiplicity: multiplicity,
		ArgExpr:      argExpr,
	})
}

// Fork adds a fork pseudostate.
func (b *Builder) Fork(name string) *Builder {
	return b.add(&Node{Name: name, Kind: KindFork})
}

// Join adds a join pseudostate.
func (b *Builder) Join(name string) *Builder {
	return b.add(&Node{Name: name, Kind: KindJoin})
}

// Flow adds a transition from -> to.
func (b *Builder) Flow(from, to string) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.g.AddTransition(from, to); err != nil {
		b.err = err
	}
	return b
}

// Flows adds a chain of transitions: Flows("a","b","c") == a->b, b->c.
func (b *Builder) Flows(names ...string) *Builder {
	for i := 0; i+1 < len(names); i++ {
		b.Flow(names[i], names[i+1])
	}
	return b
}

// FanOut adds transitions from one source to every listed target.
func (b *Builder) FanOut(from string, tos ...string) *Builder {
	for _, to := range tos {
		b.Flow(from, to)
	}
	return b
}

// FanIn adds transitions from every listed source to one target.
func (b *Builder) FanIn(to string, froms ...string) *Builder {
	for _, from := range froms {
		b.Flow(from, to)
	}
	return b
}

// Err returns the accumulated error without finishing the build.
func (b *Builder) Err() error { return b.err }

// Build validates and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build but panics on error; for tests and examples whose
// graphs are static.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// SplitWorkerJoin constructs the paper's canonical pattern (Figure 3): a
// splitter action, a fork, `workers` worker actions executing concurrently,
// a join, and a joiner action. Worker names are prefix1..prefixN and each
// worker receives its 1-based index as an Integer parameter, exactly like
// the TCTask workers ("whose parameter pvalue0 has value 2").
func SplitWorkerJoin(jobName string, split, join TaggedValues, workerPrefix string, worker TaggedValues, workers int) (*Graph, error) {
	if workers < 1 {
		return nil, fmt.Errorf("core: split/worker/join needs >= 1 worker, got %d", workers)
	}
	b := NewBuilder(jobName).
		Initial("initial").
		Action("split", split)
	workerNames := make([]string, workers)
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("%s%d", workerPrefix, i)
		workerNames[i-1] = name
		wt := worker.Clone()
		if wt == nil {
			wt = TaggedValues{}
		}
		wt.SetParam(0, "Integer", strconv.Itoa(i))
		b.Action(name, wt)
	}
	b.Action("join", join).Final("final").Flow("initial", "split")
	if workers == 1 {
		// A single worker needs no fork/join pseudostates.
		b.Flows("split", workerNames[0], "join", "final")
		return b.Build()
	}
	b.Fork("fork").
		Join("joinbar").
		Flow("split", "fork").
		FanOut("fork", workerNames...).
		FanIn("joinbar", workerNames...).
		Flows("joinbar", "join", "final")
	return b.Build()
}
