package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLayeredGraph builds a random valid activity graph: an initial node,
// L layers of action states with edges only flowing forward across layers,
// and a final node. Every generated graph is valid by construction, which
// lets properties quantify over a large structural space.
func randomLayeredGraph(rng *rand.Rand) *Graph {
	layers := 1 + rng.Intn(4)
	width := 1 + rng.Intn(4)
	b := NewBuilder("prop").Initial("initial")
	var prev []string
	names := make([][]string, layers)
	for l := 0; l < layers; l++ {
		w := 1 + rng.Intn(width)
		for i := 0; i < w; i++ {
			name := fmt.Sprintf("a%d_%d", l, i)
			names[l] = append(names[l], name)
			b.Action(name, Tags(TagClass, "P"))
		}
		prev = names[l]
	}
	b.Final("final")
	// Wire: initial feeds every layer-0 node; each node feeds >= 1 node of
	// the next layer (so everything reaches final); last layer feeds final.
	for _, n := range names[0] {
		b.Flow("initial", n)
	}
	for l := 0; l+1 < layers; l++ {
		for _, from := range names[l] {
			// at least one forward edge
			to := names[l+1][rng.Intn(len(names[l+1]))]
			b.Flow(from, to)
			// extra random forward edges
			for _, cand := range names[l+1] {
				if cand != to && rng.Intn(3) == 0 {
					b.Flow(from, cand)
				}
			}
		}
		// every next-layer node needs an incoming edge for reachability
		for _, to := range names[l+1] {
			from := names[l][rng.Intn(len(names[l]))]
			// duplicate edges are rejected by AddTransition; route through
			// a direct graph call to tolerate that.
			_ = b.g.AddTransition(from, to)
		}
	}
	for _, n := range prev {
		b.Flow(n, "final")
	}
	return b.g
}

func TestRandomLayeredGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		g := randomLayeredGraph(rand.New(rand.NewSource(seed)))
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TopoActionOrder is consistent with Dependencies — every task
// appears after all of its dependencies.
func TestTopoRespectsDependenciesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomLayeredGraph(rand.New(rand.NewSource(seed)))
		deps, err := g.Dependencies()
		if err != nil {
			return false
		}
		order, err := g.TopoActionOrder()
		if err != nil {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, n := range order {
			pos[n] = i
		}
		if len(order) != len(g.ActionStates()) {
			return false
		}
		for task, ds := range deps {
			for _, d := range ds {
				if pos[d] >= pos[task] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: dependencies only reference action states, never pseudostates,
// and never the task itself.
func TestDependenciesWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomLayeredGraph(rand.New(rand.NewSource(seed)))
		deps, err := g.Dependencies()
		if err != nil {
			return false
		}
		for task, ds := range deps {
			for _, d := range ds {
				n := g.Node(d)
				if n == nil || n.Kind != KindAction || d == task {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: expanding a graph with no dynamic states is an isomorphism
// (same node and edge counts, same dependencies).
func TestExpandIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomLayeredGraph(rand.New(rand.NewSource(seed)))
		out, err := ExpandDynamic(g, FixedArgs(3))
		if err != nil {
			return false
		}
		if len(out.Nodes()) != len(g.Nodes()) || len(out.Transitions()) != len(g.Transitions()) {
			return false
		}
		d1, err1 := g.Dependencies()
		d2, err2 := out.Dependencies()
		if err1 != nil || err2 != nil || len(d1) != len(d2) {
			return false
		}
		for k, v1 := range d1 {
			v2 := d2[k]
			if len(v1) != len(v2) {
				return false
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
