package core

import (
	"fmt"
	"strconv"
	"strings"

	"cn/internal/task"
)

// Dynamic invocation (paper Figure 5): "the number of concurrent
// invocations of a task [is left] open until run time, dependent on system
// load or other external factors. ... The number of concurrent invocations
// is determined by a run-time expression that evaluates to a set of actual
// argument lists, one for each invocation."
//
// ArgProvider is that run-time expression: given the expression name from
// the model (Node.ArgExpr), it returns one argument list per invocation.
type ArgProvider func(argExpr string) ([][]task.Param, error)

// FixedArgs returns an ArgProvider that ignores the expression and produces
// n invocations whose single argument is the 1-based invocation index — the
// common "one worker per row block" pattern of the guiding example.
func FixedArgs(n int) ArgProvider {
	return func(string) ([][]task.Param, error) {
		if n < 0 {
			return nil, fmt.Errorf("core: fixed args: negative count %d", n)
		}
		lists := make([][]task.Param, n)
		for i := range lists {
			lists[i] = []task.Param{{Type: task.TypeInteger, Value: strconv.Itoa(i + 1)}}
		}
		return lists, nil
	}
}

// ArgTable returns an ArgProvider backed by a static table of expression
// name -> argument lists.
func ArgTable(table map[string][][]task.Param) ArgProvider {
	return func(expr string) ([][]task.Param, error) {
		lists, ok := table[expr]
		if !ok {
			return nil, fmt.Errorf("core: argument expression %q not defined", expr)
		}
		return lists, nil
	}
}

// checkMultiplicity verifies that the invocation count n satisfies the
// node's multiplicity expression: "*" means zero or more, "1..*" one or
// more, and a bare integer an exact count.
func checkMultiplicity(mult string, n int) error {
	switch mult {
	case "", "*", "0..*":
		if n < 0 {
			return fmt.Errorf("core: negative invocation count %d", n)
		}
		return nil
	case "1..*":
		if n < 1 {
			return fmt.Errorf("core: multiplicity 1..* requires at least one invocation, got %d", n)
		}
		return nil
	default:
		want, err := strconv.Atoi(mult)
		if err != nil {
			return fmt.Errorf("core: unsupported multiplicity %q", mult)
		}
		if n != want {
			return fmt.Errorf("core: multiplicity %d but argument expression produced %d invocations", want, n)
		}
		return nil
	}
}

// ExpandDynamic rewrites g into a new graph in which every dynamic action
// state is replaced by the concrete invocations its argument expression
// yields at run time. Replacement preserves the original state's tagged
// values (each invocation's parameters are overridden by its argument
// list), and rewires incoming and outgoing transitions to all replicas —
// the fork/join semantics the diagram notation implies. A dynamic state
// expanding to zero invocations short-circuits: its predecessors connect
// directly to its successors.
func ExpandDynamic(g *Graph, provide ArgProvider) (*Graph, error) {
	if provide == nil {
		provide = FixedArgs(0)
	}
	out := NewGraph(g.Name)
	// First pass: copy static nodes, expand dynamic ones.
	replicas := make(map[string][]string) // dynamic node -> replica names
	for _, n := range g.Nodes() {
		if !n.Dynamic {
			cp := *n
			cp.Tagged = n.Tagged.Clone()
			if err := out.AddNode(&cp); err != nil {
				return nil, err
			}
			continue
		}
		lists, err := provide(n.ArgExpr)
		if err != nil {
			return nil, fmt.Errorf("core: expand %q: %w", n.Name, err)
		}
		if err := checkMultiplicity(n.Multiplicity, len(lists)); err != nil {
			return nil, fmt.Errorf("core: expand %q: %w", n.Name, err)
		}
		for i, args := range lists {
			name := fmt.Sprintf("%s%d", n.Name, i+1)
			tags := n.Tagged.Clone()
			if tags == nil {
				tags = TaggedValues{}
			}
			// Strip the template's own parameters, then apply this
			// invocation's argument list.
			for k := range tags {
				var idx int
				if _, err := fmt.Sscanf(k, TagPTypePrefix+"%d", &idx); err == nil {
					delete(tags, k)
				}
				if _, err := fmt.Sscanf(k, TagPValuePrefix+"%d", &idx); err == nil {
					delete(tags, k)
				}
			}
			for j, p := range args {
				tags.SetParam(j, string(p.Type), p.Value)
			}
			rep := &Node{Name: name, Kind: KindAction, Tagged: tags}
			if err := out.AddNode(rep); err != nil {
				return nil, err
			}
			replicas[n.Name] = append(replicas[n.Name], name)
		}
		if len(lists) == 0 {
			replicas[n.Name] = nil
		}
	}
	// Second pass: rewire transitions.
	expandEnds := func(name string) []string {
		if reps, ok := replicas[name]; ok {
			return reps
		}
		return []string{name}
	}
	for _, e := range g.Transitions() {
		froms := expandEnds(e.From)
		tos := expandEnds(e.To)
		// Zero-replica endpoints short-circuit through the dynamic state.
		if len(froms) == 0 {
			froms = nil
			for _, p := range g.Predecessors(e.From) {
				froms = append(froms, expandEnds(p)...)
			}
		}
		if len(tos) == 0 {
			tos = nil
			for _, s := range g.Successors(e.To) {
				tos = append(tos, expandEnds(s)...)
			}
		}
		for _, f := range froms {
			for _, t := range tos {
				if f == t {
					continue
				}
				if err := out.AddGuardedTransition(f, t, e.Guard); err != nil {
					// Duplicate edges can arise from short-circuiting; they
					// are harmless.
					if !isDuplicateEdge(err) {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

func isDuplicateEdge(err error) bool {
	return err != nil && strings.Contains(err.Error(), "duplicate")
}
