package core

import (
	"fmt"
	"sort"
	"strconv"

	"cn/internal/task"
)

// Well-known tagged-value keys (paper Figure 4: jar, class, memory,
// runmodel, ptypeN/pvalueN).
const (
	TagJar      = "jar"
	TagClass    = "class"
	TagMemory   = "memory"
	TagRunModel = "runmodel"
	// TagPTypePrefix and TagPValuePrefix are the prefixes of the indexed
	// parameter tags ptype0/pvalue0, ptype1/pvalue1, ...
	TagPTypePrefix  = "ptype"
	TagPValuePrefix = "pvalue"
)

// TaggedValues models UML tagged values on an action state: "UML's tagged
// values allow us to model all of the information present in a CN client
// descriptor, including the implementation class of each task, the archive
// containing the implementation class, as well as various other task
// configuration parameters."
type TaggedValues map[string]string

// Clone returns a copy of the tag map (nil stays nil).
func (tv TaggedValues) Clone() TaggedValues {
	if tv == nil {
		return nil
	}
	out := make(TaggedValues, len(tv))
	for k, v := range tv {
		out[k] = v
	}
	return out
}

// Get returns the tag value or "".
func (tv TaggedValues) Get(key string) string { return tv[key] }

// Keys returns all tag names, sorted.
func (tv TaggedValues) Keys() []string {
	keys := make([]string, 0, len(tv))
	for k := range tv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetParam sets the indexed parameter pair ptypeI/pvalueI.
func (tv TaggedValues) SetParam(i int, typ, value string) {
	tv[TagPTypePrefix+strconv.Itoa(i)] = typ
	tv[TagPValuePrefix+strconv.Itoa(i)] = value
}

// Params extracts the ordered parameter list from ptypeN/pvalueN pairs.
// Indices must be dense starting at 0; a pvalue without its ptype (or vice
// versa) is an error.
func (tv TaggedValues) Params() ([]task.Param, error) {
	var params []task.Param
	for i := 0; ; i++ {
		typ, hasType := tv[TagPTypePrefix+strconv.Itoa(i)]
		val, hasVal := tv[TagPValuePrefix+strconv.Itoa(i)]
		if !hasType && !hasVal {
			break
		}
		if !hasType || !hasVal {
			return nil, fmt.Errorf("core: tagged values: parameter %d has unpaired ptype/pvalue", i)
		}
		p, err := task.NewParam(typ, val)
		if err != nil {
			return nil, fmt.Errorf("core: tagged values: parameter %d: %w", i, err)
		}
		params = append(params, p)
	}
	// Detect gaps: any higher-indexed ptype after the dense prefix ended.
	for k := range tv {
		var idx int
		if _, err := fmt.Sscanf(k, TagPTypePrefix+"%d", &idx); err == nil && idx >= len(params) && k == TagPTypePrefix+strconv.Itoa(idx) {
			return nil, fmt.Errorf("core: tagged values: parameter index %d is not dense (have %d dense)", idx, len(params))
		}
	}
	return params, nil
}

// Requirements extracts the memory/runmodel requirement block, applying CN
// defaults for absent tags.
func (tv TaggedValues) Requirements() (task.Requirements, error) {
	req := task.DefaultRequirements()
	if m, ok := tv[TagMemory]; ok {
		n, err := strconv.Atoi(m)
		if err != nil {
			return req, fmt.Errorf("core: tagged values: memory %q: %w", m, err)
		}
		req.MemoryMB = n
	}
	if rm, ok := tv[TagRunModel]; ok {
		parsed, err := task.ParseRunModel(rm)
		if err != nil {
			return req, fmt.Errorf("core: tagged values: %w", err)
		}
		req.RunModel = parsed
	}
	return req, nil
}

// TaskSpec assembles the complete runtime task.Spec for an action state,
// combining its tagged values with the dependency list computed from the
// graph.
func (n *Node) TaskSpec(depends []string) (*task.Spec, error) {
	if n.Kind != KindAction {
		return nil, fmt.Errorf("core: node %q is %s, not an action state", n.Name, n.Kind)
	}
	class := n.Tagged.Get(TagClass)
	if class == "" {
		return nil, fmt.Errorf("core: action state %q missing %q tagged value", n.Name, TagClass)
	}
	params, err := n.Tagged.Params()
	if err != nil {
		return nil, fmt.Errorf("core: action state %q: %w", n.Name, err)
	}
	req, err := n.Tagged.Requirements()
	if err != nil {
		return nil, fmt.Errorf("core: action state %q: %w", n.Name, err)
	}
	s := &task.Spec{
		Name:      n.Name,
		Archive:   n.Tagged.Get(TagJar),
		Class:     class,
		DependsOn: append([]string(nil), depends...),
		Params:    params,
		Req:       req,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: action state %q: %w", n.Name, err)
	}
	return s, nil
}
