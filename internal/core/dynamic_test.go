package core

import (
	"strings"
	"testing"

	"cn/internal/task"
)

// fig5 builds the paper's Figure 5: transitive closure with a dynamic
// invocation worker state whose multiplicity is "*" and whose argument
// lists are supplied at run time.
func fig5(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder("transclosure-dynamic").
		Initial("initial").
		Action("split", TaskTags("tasksplit.jar", "org.jhpc.cn2.transcloser.TaskSplit", 1000, "RUN_AS_THREAD_IN_TM")).
		DynamicAction("tctask", TaskTags("tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask", 1000, "RUN_AS_THREAD_IN_TM"), "*", "rowBlocks").
		Action("join", TaskTags("taskjoin.jar", "org.jhpc.cn2.transcloser.TaskJoin", 1000, "RUN_AS_THREAD_IN_TM")).
		Final("final").
		Flows("initial", "split", "tctask", "join", "final").
		Build()
	if err != nil {
		t.Fatalf("fig5 build: %v", err)
	}
	return g
}

func TestFig5DynamicState(t *testing.T) {
	g := fig5(t)
	n := g.Node("tctask")
	if !n.Dynamic || n.Multiplicity != "*" || n.ArgExpr != "rowBlocks" {
		t.Errorf("dynamic state = %+v", n)
	}
}

func TestExpandDynamicFixed(t *testing.T) {
	g := fig5(t)
	expanded, err := ExpandDynamic(g, FixedArgs(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := expanded.Validate(); err != nil {
		t.Fatalf("expanded graph invalid: %v", err)
	}
	actions := expanded.ActionStates()
	if len(actions) != 6 { // split + 4 workers + join
		t.Fatalf("expanded actions = %d", len(actions))
	}
	deps, err := expanded.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		name := "tctask" + string(rune('0'+i))
		if got := deps[name]; len(got) != 1 || got[0] != "split" {
			t.Errorf("%s deps = %v", name, got)
		}
	}
	if got := deps["join"]; len(got) != 4 {
		t.Errorf("join deps = %v", got)
	}
	// Each replica carries its index as pvalue0 (Figure 4 convention).
	p, err := expanded.Node("tctask3").Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p[0].Int(); v != 3 {
		t.Errorf("tctask3 param = %v", p)
	}
	// Replicas are plain action states, not dynamic.
	if expanded.Node("tctask1").Dynamic {
		t.Error("replica still marked dynamic")
	}
}

func TestExpandDynamicArgTable(t *testing.T) {
	g := fig5(t)
	table := map[string][][]task.Param{
		"rowBlocks": {
			{{Type: task.TypeInteger, Value: "10"}, {Type: task.TypeString, Value: "blockA"}},
			{{Type: task.TypeInteger, Value: "20"}, {Type: task.TypeString, Value: "blockB"}},
		},
	}
	expanded, err := ExpandDynamic(g, ArgTable(table))
	if err != nil {
		t.Fatal(err)
	}
	p, err := expanded.Node("tctask2").Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0].Value != "20" || p[1].Value != "blockB" {
		t.Errorf("tctask2 params = %v", p)
	}
}

func TestExpandDynamicUnknownExpr(t *testing.T) {
	g := fig5(t)
	if _, err := ExpandDynamic(g, ArgTable(nil)); err == nil {
		t.Error("unknown argument expression accepted")
	}
}

func TestExpandDynamicZeroInvocationsShortCircuits(t *testing.T) {
	g := fig5(t)
	expanded, err := ExpandDynamic(g, FixedArgs(0))
	if err != nil {
		t.Fatal(err)
	}
	deps, err := expanded.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	// With zero workers, join depends directly on split.
	if got := deps["join"]; len(got) != 1 || got[0] != "split" {
		t.Errorf("join deps = %v, want [split]", got)
	}
}

func TestExpandDynamicStaticGraphUnchanged(t *testing.T) {
	g := NewBuilder("static").
		Initial("i").Action("a", Tags(TagClass, "A")).Final("f").
		Flows("i", "a", "f").MustBuild()
	out, err := ExpandDynamic(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes()) != 3 || len(out.Transitions()) != 2 {
		t.Errorf("static graph changed: %s", out)
	}
}

func TestExpandPreservesNonParamTags(t *testing.T) {
	g := fig5(t)
	expanded, err := ExpandDynamic(g, FixedArgs(2))
	if err != nil {
		t.Fatal(err)
	}
	n := expanded.Node("tctask1")
	if n.Tagged.Get(TagJar) != "tctask.jar" {
		t.Errorf("jar tag lost: %v", n.Tagged)
	}
	if n.Tagged.Get(TagClass) != "org.jhpc.cn2.trnsclsrtask.TCTask" {
		t.Errorf("class tag lost: %v", n.Tagged)
	}
}

func TestExpandOverridesTemplateParams(t *testing.T) {
	tags := TaskTags("w.jar", "W", 100, "RUN_AS_THREAD_IN_TM")
	tags.SetParam(0, "String", "template-param")
	g, err := NewBuilder("j").
		Initial("i").
		DynamicAction("w", tags, "*", "args").
		Final("f").
		Flows("i", "w", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := ExpandDynamic(g, FixedArgs(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := expanded.Node("w1").Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Value != "1" || p[0].Type != task.TypeInteger {
		t.Errorf("params = %v, want replaced by invocation args", p)
	}
}

func TestCheckMultiplicity(t *testing.T) {
	cases := []struct {
		mult string
		n    int
		ok   bool
	}{
		{"*", 0, true},
		{"*", 7, true},
		{"", 3, true},
		{"0..*", 0, true},
		{"1..*", 0, false},
		{"1..*", 1, true},
		{"4", 4, true},
		{"4", 3, false},
		{"x..y", 1, false},
		{"*", -1, false},
	}
	for _, c := range cases {
		err := checkMultiplicity(c.mult, c.n)
		if (err == nil) != c.ok {
			t.Errorf("checkMultiplicity(%q, %d) = %v, want ok=%v", c.mult, c.n, err, c.ok)
		}
	}
}

func TestExpandMultiplicityViolation(t *testing.T) {
	g, err := NewBuilder("j").
		Initial("i").
		DynamicAction("w", Tags(TagClass, "W"), "3", "args").
		Final("f").
		Flows("i", "w", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandDynamic(g, FixedArgs(2)); err == nil || !strings.Contains(err.Error(), "multiplicity") {
		t.Errorf("multiplicity violation = %v", err)
	}
}

func TestFixedArgsNegative(t *testing.T) {
	if _, err := FixedArgs(-1)(""); err == nil {
		t.Error("negative FixedArgs accepted")
	}
}
