// Package core implements the paper's primary contribution: modeling CN
// job/task composition as UML activity graphs.
//
// "An activity graph is a state machine whose states represent actions or
// subactivities and where transitions out of states are triggered by the
// completion of the corresponding actions." Each CN job is an activity,
// each task an action state, and dependencies among tasks are transitions
// between action states (paper §4). Fork and join pseudostates express
// explicit concurrency (Figure 3); dynamic invocation leaves the number of
// concurrent task invocations open until run time (Figure 5); tagged values
// carry the task configuration a CNX descriptor needs (Figure 4).
//
// The package provides the graph model, a fluent builder, structural
// validation, and the pseudostate-collapsing dependency analysis the
// XMI-to-CNX transformation relies on.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies activity-graph vertices.
type NodeKind int

// Vertex kinds. Initial/Final/Fork/Join are UML pseudostates (or final
// states); ActionState is the only kind that maps to a CN task.
const (
	// KindInvalid is the zero NodeKind.
	KindInvalid NodeKind = iota
	// KindInitial is the activity's initial pseudostate (exactly one).
	KindInitial
	// KindFinal is an activity final state.
	KindFinal
	// KindAction is an action state: one CN task.
	KindAction
	// KindFork is a fork pseudostate splitting control flow.
	KindFork
	// KindJoin is a join pseudostate synchronizing control flow.
	KindJoin
)

var kindNames = map[NodeKind]string{
	KindInvalid: "invalid",
	KindInitial: "initial",
	KindFinal:   "final",
	KindAction:  "action",
	KindFork:    "fork",
	KindJoin:    "join",
}

// String returns the lowercase kind name.
func (k NodeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one vertex of an activity graph.
type Node struct {
	// Name is unique within the graph (for action states it becomes the CN
	// task name).
	Name string
	// Kind classifies the vertex.
	Kind NodeKind
	// Tagged carries UML tagged values (only meaningful on action states).
	Tagged TaggedValues
	// Dynamic marks a dynamic-invocation action state (Figure 5): the
	// number of concurrent invocations is determined at run time.
	Dynamic bool
	// Multiplicity is the dynamic invocation multiplicity expression, e.g.
	// "*" (zero or more) or "4". Empty means "*" for dynamic states.
	Multiplicity string
	// ArgExpr names the run-time argument expression evaluated to a set of
	// actual argument lists, one per invocation.
	ArgExpr string
}

// IsPseudo reports whether the node is a non-action vertex.
func (n *Node) IsPseudo() bool { return n.Kind != KindAction }

// Transition is a directed edge; From and To are node names. Guard is an
// optional guard expression label (unused by CN but preserved round-trip).
type Transition struct {
	From, To string
	Guard    string
}

// Graph is a UML activity graph modeling one CN job (or a whole client when
// composed of nested activities; the paper composes multi-job clients as
// activities performing jobs in partial order — we model that as one graph
// per job plus a client-level ordering, see Client in this package).
type Graph struct {
	// Name is the activity name (job name).
	Name string

	nodes map[string]*Node
	order []string // insertion order for deterministic output
	out   map[string][]string
	in    map[string][]string
	edges []Transition
}

// NewGraph creates an empty activity graph.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:  name,
		nodes: make(map[string]*Node),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
}

// AddNode inserts a node; names must be unique and non-empty.
func (g *Graph) AddNode(n *Node) error {
	if n == nil || n.Name == "" {
		return errors.New("core: add node: empty name")
	}
	if n.Kind == KindInvalid {
		return fmt.Errorf("core: add node %q: invalid kind", n.Name)
	}
	if _, dup := g.nodes[n.Name]; dup {
		return fmt.Errorf("core: add node %q: duplicate name", n.Name)
	}
	g.nodes[n.Name] = n
	g.order = append(g.order, n.Name)
	return nil
}

// AddTransition inserts a directed edge between existing nodes.
func (g *Graph) AddTransition(from, to string) error {
	return g.AddGuardedTransition(from, to, "")
}

// AddGuardedTransition inserts a directed edge carrying a guard label.
func (g *Graph) AddGuardedTransition(from, to, guard string) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("core: transition %s->%s: unknown source", from, to)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("core: transition %s->%s: unknown target", from, to)
	}
	if from == to {
		return fmt.Errorf("core: transition %s->%s: self-loop", from, to)
	}
	for _, succ := range g.out[from] {
		if succ == to {
			return fmt.Errorf("core: transition %s->%s: duplicate", from, to)
		}
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.edges = append(g.edges, Transition{From: from, To: to, Guard: guard})
	return nil
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.nodes[n])
	}
	return out
}

// Transitions returns all edges in insertion order.
func (g *Graph) Transitions() []Transition {
	return append([]Transition(nil), g.edges...)
}

// ActionStates returns the action-state nodes in insertion order.
func (g *Graph) ActionStates() []*Node {
	var out []*Node
	for _, name := range g.order {
		if n := g.nodes[name]; n.Kind == KindAction {
			out = append(out, n)
		}
	}
	return out
}

// Successors returns the names of direct successors of the node.
func (g *Graph) Successors(name string) []string {
	return append([]string(nil), g.out[name]...)
}

// Predecessors returns the names of direct predecessors of the node.
func (g *Graph) Predecessors(name string) []string {
	return append([]string(nil), g.in[name]...)
}

// initial returns the unique initial node, or an error.
func (g *Graph) initial() (*Node, error) {
	var found *Node
	for _, name := range g.order {
		n := g.nodes[name]
		if n.Kind != KindInitial {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("core: graph %q: multiple initial nodes (%q, %q)", g.Name, found.Name, n.Name)
		}
		found = n
	}
	if found == nil {
		return nil, fmt.Errorf("core: graph %q: no initial node", g.Name)
	}
	return found, nil
}

// Validate checks the structural well-formedness rules the transformation
// relies on:
//
//   - exactly one initial node, at least one final node
//   - the initial node has no incoming edges; final nodes have no outgoing
//   - every node is reachable from the initial node
//   - a final node is reachable from every node (no dead ends)
//   - the graph is acyclic ("dependencies form a directed acyclic graph")
//   - fork nodes have >= 2 successors, join nodes >= 2 predecessors
//   - at least one action state exists
func (g *Graph) Validate() error {
	init, err := g.initial()
	if err != nil {
		return err
	}
	if len(g.in[init.Name]) != 0 {
		return fmt.Errorf("core: graph %q: initial node %q has incoming transitions", g.Name, init.Name)
	}

	var finals, actions int
	for _, name := range g.order {
		n := g.nodes[name]
		switch n.Kind {
		case KindFinal:
			finals++
			if len(g.out[name]) != 0 {
				return fmt.Errorf("core: graph %q: final node %q has outgoing transitions", g.Name, name)
			}
		case KindAction:
			actions++
		case KindFork:
			if len(g.out[name]) < 2 {
				return fmt.Errorf("core: graph %q: fork %q has %d successors (need >= 2)", g.Name, name, len(g.out[name]))
			}
		case KindJoin:
			if len(g.in[name]) < 2 {
				return fmt.Errorf("core: graph %q: join %q has %d predecessors (need >= 2)", g.Name, name, len(g.in[name]))
			}
		}
	}
	if finals == 0 {
		return fmt.Errorf("core: graph %q: no final node", g.Name)
	}
	if actions == 0 {
		return fmt.Errorf("core: graph %q: no action states", g.Name)
	}

	// Reachability from initial.
	reached := g.reachableFrom(init.Name)
	for _, name := range g.order {
		if !reached[name] {
			return fmt.Errorf("core: graph %q: node %q unreachable from initial node", g.Name, name)
		}
	}

	// Every node can reach a final node.
	canFinish := g.reverseReachableFromFinals()
	for _, name := range g.order {
		if !canFinish[name] {
			return fmt.Errorf("core: graph %q: node %q cannot reach a final node", g.Name, name)
		}
	}

	// Acyclicity.
	if cyc := g.findCycle(); cyc != "" {
		return fmt.Errorf("core: graph %q: cycle involving node %q", g.Name, cyc)
	}
	return nil
}

func (g *Graph) reachableFrom(start string) map[string]bool {
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.out[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func (g *Graph) reverseReachableFromFinals() map[string]bool {
	seen := map[string]bool{}
	var stack []string
	for _, name := range g.order {
		if g.nodes[name].Kind == KindFinal {
			seen[name] = true
			stack = append(stack, name)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.in[n] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// findCycle returns the name of a node on a cycle, or "".
func (g *Graph) findCycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.nodes))
	var found string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, s := range g.out[n] {
			switch color[s] {
			case gray:
				found = s
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, name := range g.order {
		if color[name] == white && visit(name) {
			return found
		}
	}
	return ""
}

// Dependencies computes, for every action state, the set of action states
// that must complete before it may start, collapsing transitions through
// pseudostates (initial, fork, join). This is the core of the XMI2CNX
// transformation: "the dependencies among tasks are represented as
// transitions between the action states", with forks/joins contributing
// multi-way dependencies. Results are sorted for determinism.
func (g *Graph) Dependencies() (map[string][]string, error) {
	if _, err := g.initial(); err != nil {
		return nil, err
	}
	deps := make(map[string][]string)
	for _, n := range g.ActionStates() {
		set := make(map[string]bool)
		// Walk backwards through pseudostates until action states (or the
		// initial node) are found.
		var walk func(name string) error
		seen := make(map[string]bool)
		walk = func(name string) error {
			if seen[name] {
				return nil
			}
			seen[name] = true
			for _, p := range g.in[name] {
				pn := g.nodes[p]
				switch pn.Kind {
				case KindAction:
					set[p] = true
				case KindInitial:
					// root task: no dependency from this path
				case KindFork, KindJoin:
					if err := walk(p); err != nil {
						return err
					}
				case KindFinal:
					return fmt.Errorf("core: graph %q: final node %q has outgoing flow", g.Name, p)
				}
			}
			return nil
		}
		if err := walk(n.Name); err != nil {
			return nil, err
		}
		list := make([]string, 0, len(set))
		for d := range set {
			list = append(list, d)
		}
		sort.Strings(list)
		deps[n.Name] = list
	}
	return deps, nil
}

// TopoActionOrder returns the action states in a deterministic dependency
// order (dependencies first).
func (g *Graph) TopoActionOrder() ([]string, error) {
	deps, err := g.Dependencies()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(deps))
	for n := range deps {
		names = append(names, n)
	}
	sort.Strings(names)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(deps))
	var order []string
	var visit func(n string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("core: graph %q: dependency cycle at %q", g.Name, n)
		case black:
			return nil
		}
		color[n] = gray
		for _, d := range deps[n] {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// String renders a compact description: nodes then edges.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "activity %q:", g.Name)
	for _, name := range g.order {
		n := g.nodes[name]
		fmt.Fprintf(&sb, " %s(%s)", name, n.Kind)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&sb, " %s->%s", e.From, e.To)
	}
	return sb.String()
}

// Client models a CN client composed of one or more jobs executed in a
// partial order ("a client consisting of more than one job is represented
// as an activity that performs the jobs in some partial order").
type Client struct {
	// Name is the client class name (e.g. "TransClosure").
	Name string
	// Log and Port mirror the CNX client attributes.
	Log  string
	Port int
	// Jobs holds one activity graph per job, in declaration order.
	Jobs []*Graph
	// JobDeps maps a job name to job names that must complete first
	// (empty for fully concurrent jobs).
	JobDeps map[string][]string
}

// NewClient creates a client with no jobs.
func NewClient(name string) *Client {
	return &Client{Name: name, JobDeps: make(map[string][]string)}
}

// AddJob appends a job activity.
func (c *Client) AddJob(g *Graph) error {
	if g == nil {
		return errors.New("core: add job: nil graph")
	}
	for _, j := range c.Jobs {
		if j.Name == g.Name {
			return fmt.Errorf("core: add job: duplicate job name %q", g.Name)
		}
	}
	c.Jobs = append(c.Jobs, g)
	return nil
}

// Job returns the named job graph, or nil.
func (c *Client) Job(name string) *Graph {
	for _, j := range c.Jobs {
		if j.Name == name {
			return j
		}
	}
	return nil
}

// Validate validates every job and the inter-job ordering.
func (c *Client) Validate() error {
	if c.Name == "" {
		return errors.New("core: client missing name")
	}
	if len(c.Jobs) == 0 {
		return fmt.Errorf("core: client %q has no jobs", c.Name)
	}
	for _, j := range c.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	for job, deps := range c.JobDeps {
		if c.Job(job) == nil {
			return fmt.Errorf("core: client %q: job ordering references unknown job %q", c.Name, job)
		}
		for _, d := range deps {
			if c.Job(d) == nil {
				return fmt.Errorf("core: client %q: job %q depends on unknown job %q", c.Name, job, d)
			}
			if d == job {
				return fmt.Errorf("core: client %q: job %q depends on itself", c.Name, job)
			}
		}
	}
	return nil
}
