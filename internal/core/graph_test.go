package core

import (
	"strings"
	"testing"

	"cn/internal/task"
)

// fig3 builds the paper's Figure 3 activity diagram: transitive closure
// with explicit concurrency — split, five workers between fork and join
// pseudostates, and a joiner.
func fig3(t *testing.T) *Graph {
	t.Helper()
	worker := TaskTags("tctask.jar", "org.jhpc.cn2.trnsclsrtask.TCTask", 1000, "RUN_AS_THREAD_IN_TM")
	g, err := SplitWorkerJoin("transclosure",
		TaskTags("tasksplit.jar", "org.jhpc.cn2.transcloser.TaskSplit", 1000, "RUN_AS_THREAD_IN_TM"),
		TaskTags("taskjoin.jar", "org.jhpc.cn2.transcloser.TaskJoin", 1000, "RUN_AS_THREAD_IN_TM"),
		"tctask", worker, 5)
	if err != nil {
		t.Fatalf("SplitWorkerJoin: %v", err)
	}
	return g
}

func TestFig3Structure(t *testing.T) {
	g := fig3(t)
	actions := g.ActionStates()
	if len(actions) != 7 { // split + 5 workers + join
		t.Fatalf("action states = %d, want 7", len(actions))
	}
	if g.Node("fork").Kind != KindFork || g.Node("joinbar").Kind != KindJoin {
		t.Error("fork/join pseudostates missing")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFig3Dependencies(t *testing.T) {
	g := fig3(t)
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps["split"]) != 0 {
		t.Errorf("split deps = %v", deps["split"])
	}
	for _, w := range []string{"tctask1", "tctask3", "tctask5"} {
		if len(deps[w]) != 1 || deps[w][0] != "split" {
			t.Errorf("%s deps = %v, want [split]", w, deps[w])
		}
	}
	want := []string{"tctask1", "tctask2", "tctask3", "tctask4", "tctask5"}
	got := deps["join"]
	if len(got) != len(want) {
		t.Fatalf("join deps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("join deps = %v, want %v", got, want)
		}
	}
}

func TestFig3WorkerParams(t *testing.T) {
	g := fig3(t)
	// Figure 4: TCTask2's pvalue0 is 2.
	n := g.Node("tctask2")
	params, err := n.Tagged.Params()
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 {
		t.Fatalf("params = %v", params)
	}
	if v, err := params[0].Int(); err != nil || v != 2 {
		t.Errorf("tctask2 param = %v, %v; want 2", v, err)
	}
}

func TestTopoActionOrder(t *testing.T) {
	g := fig3(t)
	order, err := g.TopoActionOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	if pos["split"] > pos["tctask1"] || pos["tctask1"] > pos["join"] {
		t.Errorf("order = %v", order)
	}
	if len(order) != 7 {
		t.Errorf("order has %d entries", len(order))
	}
}

func TestSingleWorkerNoPseudostates(t *testing.T) {
	g, err := SplitWorkerJoin("j", Tags(TagClass, "S"), Tags(TagClass, "J"), "w", Tags(TagClass, "W"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("fork") != nil || g.Node("joinbar") != nil {
		t.Error("single-worker graph should not contain fork/join")
	}
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps["w1"]) != 1 || deps["w1"][0] != "split" {
		t.Errorf("w1 deps = %v", deps["w1"])
	}
}

func TestSplitWorkerJoinRejectsZeroWorkers(t *testing.T) {
	if _, err := SplitWorkerJoin("j", nil, nil, "w", nil, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestAddNodeErrors(t *testing.T) {
	g := NewGraph("g")
	if err := g.AddNode(nil); err == nil {
		t.Error("nil node accepted")
	}
	if err := g.AddNode(&Node{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.AddNode(&Node{Name: "a"}); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := g.AddNode(&Node{Name: "a", Kind: KindAction}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{Name: "a", Kind: KindAction}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestAddTransitionErrors(t *testing.T) {
	g := NewGraph("g")
	if err := g.AddNode(&Node{Name: "a", Kind: KindAction}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{Name: "b", Kind: KindAction}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTransition("ghost", "a"); err == nil {
		t.Error("unknown source accepted")
	}
	if err := g.AddTransition("a", "ghost"); err == nil {
		t.Error("unknown target accepted")
	}
	if err := g.AddTransition("a", "a"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddTransition("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTransition("a", "b"); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestValidateRules(t *testing.T) {
	build := func(mutate func(b *Builder)) error {
		b := NewBuilder("g")
		mutate(b)
		_, err := b.Build()
		return err
	}

	if err := build(func(b *Builder) {
		b.Action("a", Tags(TagClass, "X")).Final("end").Flow("a", "end")
	}); err == nil || !strings.Contains(err.Error(), "no initial") {
		t.Errorf("missing initial: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i1").Initial("i2").Action("a", nil).Final("f").
			Flows("i1", "a", "f").Flow("i2", "a")
	}); err == nil || !strings.Contains(err.Error(), "multiple initial") {
		t.Errorf("multiple initial: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Flows("i", "a")
	}); err == nil || !strings.Contains(err.Error(), "no final") {
		t.Errorf("missing final: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Final("f").Flow("i", "f")
	}); err == nil || !strings.Contains(err.Error(), "no action") {
		t.Errorf("no actions: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Action("orphan", nil).Final("f").
			Flows("i", "a", "f").Flow("orphan", "f")
	}); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Action("deadend", nil).Final("f").
			Flows("i", "a", "f").Flow("a", "deadend")
	}); err == nil || !strings.Contains(err.Error(), "cannot reach a final") {
		t.Errorf("dead end: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Action("b", nil).Final("f").
			Flows("i", "a", "b", "f").Flow("b", "a")
	}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Fork("fk").Action("a", nil).Final("f").
			Flows("i", "fk", "a", "f")
	}); err == nil || !strings.Contains(err.Error(), "fork") {
		t.Errorf("degenerate fork: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Join("jn").Action("b", nil).Final("f").
			Flows("i", "a", "jn", "b", "f")
	}); err == nil || !strings.Contains(err.Error(), "join") {
		t.Errorf("degenerate join: %v", err)
	}

	if err := build(func(b *Builder) {
		b.Initial("i").Action("a", nil).Final("f").
			Flows("i", "a", "f").Flow("a", "i")
	}); err == nil {
		t.Error("initial with incoming accepted")
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	b := NewBuilder("g").Flow("x", "y") // error: nodes missing
	if b.Err() == nil {
		t.Fatal("expected accumulated error")
	}
	// Later calls are no-ops once an error is recorded.
	b.Initial("i").Action("a", nil).Final("f").Flows("i", "a", "f")
	if _, err := b.Build(); err == nil {
		t.Error("Build ignored accumulated error")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid graph")
		}
	}()
	NewBuilder("bad").MustBuild()
}

func TestTagsHelpers(t *testing.T) {
	tv := Tags("a", "1", "b", "2")
	if tv.Get("a") != "1" || tv.Get("b") != "2" {
		t.Errorf("Tags = %v", tv)
	}
	keys := tv.Keys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Errorf("Keys = %v", keys)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd Tags should panic")
		}
	}()
	Tags("only-key")
}

func TestTaggedValuesClone(t *testing.T) {
	tv := Tags("k", "v")
	c := tv.Clone()
	c["k"] = "changed"
	if tv["k"] != "v" {
		t.Error("Clone aliases original")
	}
	var nilTV TaggedValues
	if nilTV.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestTaggedParams(t *testing.T) {
	tv := TaggedValues{}
	tv.SetParam(0, "String", "matrix.txt")
	tv.SetParam(1, "Integer", "5")
	params, err := tv.Params()
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 2 || params[0].Value != "matrix.txt" {
		t.Errorf("Params = %v", params)
	}
	if n, _ := params[1].Int(); n != 5 {
		t.Errorf("param 1 = %v", params[1])
	}
}

func TestTaggedParamsErrors(t *testing.T) {
	unpaired := TaggedValues{"ptype0": "String"} // no pvalue0
	if _, err := unpaired.Params(); err == nil {
		t.Error("unpaired ptype accepted")
	}
	gap := TaggedValues{"ptype0": "String", "pvalue0": "x", "ptype2": "Integer", "pvalue2": "1"}
	if _, err := gap.Params(); err == nil {
		t.Error("non-dense parameter indices accepted")
	}
	badType := TaggedValues{"ptype0": "java.util.Map", "pvalue0": "x"}
	if _, err := badType.Params(); err == nil {
		t.Error("bad param type accepted")
	}
}

func TestTaggedRequirements(t *testing.T) {
	tv := Tags(TagMemory, "512", TagRunModel, "RUN_AS_PROCESS")
	req, err := tv.Requirements()
	if err != nil {
		t.Fatal(err)
	}
	if req.MemoryMB != 512 || req.RunModel != task.RunAsProcess {
		t.Errorf("req = %+v", req)
	}
	// Defaults apply when absent.
	req2, err := TaggedValues{}.Requirements()
	if err != nil {
		t.Fatal(err)
	}
	if req2 != task.DefaultRequirements() {
		t.Errorf("default req = %+v", req2)
	}
	if _, err := Tags(TagMemory, "lots").Requirements(); err == nil {
		t.Error("bad memory accepted")
	}
	if _, err := Tags(TagRunModel, "RUN_BACKWARDS").Requirements(); err == nil {
		t.Error("bad runmodel accepted")
	}
}

func TestNodeTaskSpec(t *testing.T) {
	g := fig3(t)
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	n := g.Node("tctask2")
	spec, err := n.TaskSpec(deps["tctask2"])
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "tctask2" || spec.Archive != "tctask.jar" ||
		spec.Class != "org.jhpc.cn2.trnsclsrtask.TCTask" {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.DependsOn) != 1 || spec.DependsOn[0] != "split" {
		t.Errorf("depends = %v", spec.DependsOn)
	}
	if spec.Req.MemoryMB != 1000 {
		t.Errorf("req = %+v", spec.Req)
	}
}

func TestTaskSpecErrors(t *testing.T) {
	pseudo := &Node{Name: "fork", Kind: KindFork}
	if _, err := pseudo.TaskSpec(nil); err == nil {
		t.Error("TaskSpec on pseudostate accepted")
	}
	noClass := &Node{Name: "a", Kind: KindAction, Tagged: Tags(TagJar, "a.jar")}
	if _, err := noClass.TaskSpec(nil); err == nil {
		t.Error("TaskSpec without class accepted")
	}
}

func TestGraphString(t *testing.T) {
	g := fig3(t)
	s := g.String()
	if !strings.Contains(s, "transclosure") || !strings.Contains(s, "fork") {
		t.Errorf("String = %q", s)
	}
}

func TestNodeKindString(t *testing.T) {
	if KindFork.String() != "fork" {
		t.Errorf("KindFork = %q", KindFork)
	}
	if NodeKind(42).String() != "NodeKind(42)" {
		t.Errorf("unknown = %q", NodeKind(42))
	}
}

func TestClientModel(t *testing.T) {
	c := NewClient("TransClosure")
	if err := c.AddJob(fig3(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Job("transclosure") == nil {
		t.Error("Job lookup failed")
	}
	if c.Job("absent") != nil {
		t.Error("absent job found")
	}
	if err := c.AddJob(fig3(t)); err == nil {
		t.Error("duplicate job name accepted")
	}
	if err := c.AddJob(nil); err == nil {
		t.Error("nil job accepted")
	}
}

func TestClientValidateErrors(t *testing.T) {
	c := NewClient("")
	if err := c.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	c = NewClient("C")
	if err := c.Validate(); err == nil {
		t.Error("no jobs accepted")
	}
	c = NewClient("C")
	if err := c.AddJob(fig3(t)); err != nil {
		t.Fatal(err)
	}
	c.JobDeps["ghost"] = []string{"transclosure"}
	if err := c.Validate(); err == nil {
		t.Error("unknown job in deps accepted")
	}
	c.JobDeps = map[string][]string{"transclosure": {"transclosure"}}
	if err := c.Validate(); err == nil {
		t.Error("self job dependency accepted")
	}
	c.JobDeps = map[string][]string{"transclosure": {"ghost"}}
	if err := c.Validate(); err == nil {
		t.Error("dep on unknown job accepted")
	}
}

func TestPipelineDependencies(t *testing.T) {
	// stage1 -> stage2 -> stage3, no pseudostates between actions.
	g := NewBuilder("pipe").
		Initial("i").
		Action("s1", Tags(TagClass, "A")).
		Action("s2", Tags(TagClass, "B")).
		Action("s3", Tags(TagClass, "C")).
		Final("f").
		Flows("i", "s1", "s2", "s3", "f").
		MustBuild()
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps["s1"]) != 0 || deps["s2"][0] != "s1" || deps["s3"][0] != "s2" {
		t.Errorf("deps = %v", deps)
	}
}

func TestNestedForkJoinDependencies(t *testing.T) {
	// fork -> (a, fork2 -> (b, c) -> join2 -> d) -> join
	g := NewBuilder("nested").
		Initial("i").
		Action("root", Tags(TagClass, "R")).
		Fork("f1").
		Action("a", Tags(TagClass, "A")).
		Fork("f2").
		Action("b", Tags(TagClass, "B")).
		Action("c", Tags(TagClass, "C")).
		Join("j2").
		Action("d", Tags(TagClass, "D")).
		Join("j1").
		Action("tail", Tags(TagClass, "T")).
		Final("end").
		Flows("i", "root", "f1").
		Flow("f1", "a").
		Flow("f1", "f2").
		Flow("f2", "b").Flow("f2", "c").
		Flow("b", "j2").Flow("c", "j2").
		Flow("j2", "d").
		Flow("a", "j1").Flow("d", "j1").
		Flows("j1", "tail", "end").
		MustBuild()
	deps, err := g.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	if got := deps["b"]; len(got) != 1 || got[0] != "root" {
		t.Errorf("b deps = %v (fork chain should collapse to root)", got)
	}
	if got := deps["d"]; len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("d deps = %v", got)
	}
	if got := deps["tail"]; len(got) != 2 || got[0] != "a" || got[1] != "d" {
		t.Errorf("tail deps = %v", got)
	}
}
