// Package xmi reads and writes UML 1.4 activity graphs in XMI 1.2, "an
// XML-based external representation of UML models" (paper §1, Figure 7).
// It supports exactly the subset the CN pipeline needs: a model owning tag
// definitions and activity graphs, whose composite state contains
// pseudostates (initial/fork/join), action states with tagged values and
// dynamic-invocation attributes, final states, and transitions.
//
// The writer produces documents in the same shape modeling tools of the
// paper's era exported (UML: namespace prefix, xmi.id/xmi.idref linkage,
// TaggedValue.type references to TagDefinition elements), so parser and
// writer round-trip and golden tests can compare against the paper's
// Figure 7 fragment.
package xmi

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Vertex kinds in an activity graph.
const (
	VertexInitial = "initial"
	VertexFork    = "fork"
	VertexJoin    = "join"
	VertexFinal   = "final"
	VertexAction  = "action"
)

// TagDef is a UML TagDefinition: the declaration a TaggedValue references
// by xmi.idref.
type TagDef struct {
	ID   string
	Name string
}

// TaggedValue is one tagged value on an action state: a dataValue plus the
// referenced tag definition id.
type TaggedValue struct {
	ID       string
	TagDefID string
	Value    string
}

// Vertex is one state-machine vertex.
type Vertex struct {
	ID   string
	Name string
	Kind string // one of the Vertex* constants
	// Dynamic invocation attributes (action states only).
	Dynamic      bool
	Multiplicity string // UML dynamicMultiplicity
	ArgExpr      string // UML dynamicArguments
	Tagged       []TaggedValue
}

// Transition is a directed edge between vertices, by xmi.id reference.
type Transition struct {
	ID       string
	SourceID string
	TargetID string
	Guard    string
}

// ActivityGraph is one UML activity graph (one CN job).
type ActivityGraph struct {
	ID          string
	Name        string
	Vertices    []Vertex
	Transitions []Transition
}

// Vertex returns the vertex with the given id, or nil.
func (g *ActivityGraph) Vertex(id string) *Vertex {
	for i := range g.Vertices {
		if g.Vertices[i].ID == id {
			return &g.Vertices[i]
		}
	}
	return nil
}

// Document is a parsed XMI file: one UML model with its tag definitions and
// activity graphs.
type Document struct {
	ModelID   string
	ModelName string
	TagDefs   []TagDef
	Graphs    []*ActivityGraph
}

// TagDefByID resolves a tag definition id to its name, or "".
func (d *Document) TagDefByID(id string) string {
	for _, td := range d.TagDefs {
		if td.ID == id {
			return td.Name
		}
	}
	return ""
}

// TagDefByName resolves a tag name to its id, or "".
func (d *Document) TagDefByName(name string) string {
	for _, td := range d.TagDefs {
		if td.Name == name {
			return td.ID
		}
	}
	return ""
}

// Graph returns the named activity graph, or nil.
func (d *Document) Graph(name string) *ActivityGraph {
	for _, g := range d.Graphs {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// attr fetches an attribute by local name (namespace-insensitive, matching
// how xmi.id / xmi.idref attributes appear).
func attr(se xml.StartElement, name string) string {
	for _, a := range se.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

// Parse decodes an XMI document.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	doc := &Document{}
	var (
		curGraph  *ActivityGraph
		curVertex *Vertex
		curTV     *TaggedValue
		curTrans  *Transition
		// element context stack of local names
		stack []string
	)
	push := func(n string) { stack = append(stack, n) }
	pop := func() {
		if len(stack) > 0 {
			stack = stack[:len(stack)-1]
		}
	}
	parent := func() string {
		if len(stack) == 0 {
			return ""
		}
		return stack[len(stack)-1]
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmi: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			local := t.Name.Local
			switch local {
			case "Model":
				doc.ModelID = attr(t, "xmi.id")
				doc.ModelName = attr(t, "name")
			case "TagDefinition":
				// Only definitions (with xmi.id) declare tags; references
				// inside TaggedValue.type carry xmi.idref.
				if id := attr(t, "xmi.id"); id != "" {
					doc.TagDefs = append(doc.TagDefs, TagDef{ID: id, Name: attr(t, "name")})
				} else if curTV != nil && parent() == "TaggedValue.type" {
					curTV.TagDefID = attr(t, "xmi.idref")
				}
			case "ActivityGraph":
				curGraph = &ActivityGraph{ID: attr(t, "xmi.id"), Name: attr(t, "name")}
				doc.Graphs = append(doc.Graphs, curGraph)
			case "Pseudostate":
				if curGraph != nil && attr(t, "xmi.id") != "" {
					kind := attr(t, "kind")
					if kind != VertexInitial && kind != VertexFork && kind != VertexJoin {
						return nil, fmt.Errorf("xmi: parse: unsupported pseudostate kind %q", kind)
					}
					curGraph.Vertices = append(curGraph.Vertices, Vertex{
						ID:   attr(t, "xmi.id"),
						Name: attr(t, "name"),
						Kind: kind,
					})
				} else if curTrans != nil {
					resolveEndpoint(curTrans, parent(), attr(t, "xmi.idref"))
				}
			case "FinalState":
				if curGraph != nil && attr(t, "xmi.id") != "" {
					curGraph.Vertices = append(curGraph.Vertices, Vertex{
						ID:   attr(t, "xmi.id"),
						Name: attr(t, "name"),
						Kind: VertexFinal,
					})
				} else if curTrans != nil {
					resolveEndpoint(curTrans, parent(), attr(t, "xmi.idref"))
				}
			case "ActionState":
				if curGraph != nil && attr(t, "xmi.id") != "" {
					curGraph.Vertices = append(curGraph.Vertices, Vertex{
						ID:           attr(t, "xmi.id"),
						Name:         attr(t, "name"),
						Kind:         VertexAction,
						Dynamic:      attr(t, "isDynamic") == "true",
						Multiplicity: attr(t, "dynamicMultiplicity"),
						ArgExpr:      attr(t, "dynamicArguments"),
					})
					curVertex = &curGraph.Vertices[len(curGraph.Vertices)-1]
				} else if curTrans != nil {
					resolveEndpoint(curTrans, parent(), attr(t, "xmi.idref"))
				}
			case "TaggedValue":
				if curVertex != nil {
					curVertex.Tagged = append(curVertex.Tagged, TaggedValue{
						ID:    attr(t, "xmi.id"),
						Value: attr(t, "dataValue"),
					})
					curTV = &curVertex.Tagged[len(curVertex.Tagged)-1]
				}
			case "Transition":
				if curGraph != nil && attr(t, "xmi.id") != "" && parent() == "StateMachine.transitions" {
					curGraph.Transitions = append(curGraph.Transitions, Transition{ID: attr(t, "xmi.id")})
					curTrans = &curGraph.Transitions[len(curGraph.Transitions)-1]
				}
				// Transition references inside StateVertex.outgoing/incoming
				// are redundant with the transitions list; ignored.
			case "Guard":
				if curTrans != nil {
					curTrans.Guard = attr(t, "name")
				}
			}
			push(local)
		case xml.EndElement:
			pop()
			switch t.Name.Local {
			case "ActionState":
				if curVertex != nil && parent() != "Transition.source" && parent() != "Transition.target" {
					curVertex = nil
				}
			case "TaggedValue":
				curTV = nil
			case "Transition":
				if parent() == "StateMachine.transitions" || parent() == "" {
					curTrans = nil
				}
			case "ActivityGraph":
				curGraph = nil
			}
		}
	}
	if err := doc.check(); err != nil {
		return nil, err
	}
	return doc, nil
}

func resolveEndpoint(tr *Transition, parent, idref string) {
	switch parent {
	case "Transition.source":
		tr.SourceID = idref
	case "Transition.target":
		tr.TargetID = idref
	}
}

// ParseString decodes an XMI document from a string.
func ParseString(s string) (*Document, error) { return Parse(strings.NewReader(s)) }

// check verifies referential integrity: transitions reference existing
// vertices, tagged values reference declared tag definitions.
func (d *Document) check() error {
	tagIDs := make(map[string]bool, len(d.TagDefs))
	for _, td := range d.TagDefs {
		if td.ID == "" {
			return fmt.Errorf("xmi: tag definition %q missing xmi.id", td.Name)
		}
		if tagIDs[td.ID] {
			return fmt.Errorf("xmi: duplicate tag definition id %q", td.ID)
		}
		tagIDs[td.ID] = true
	}
	for _, g := range d.Graphs {
		ids := make(map[string]bool, len(g.Vertices))
		for _, v := range g.Vertices {
			if v.ID == "" {
				return fmt.Errorf("xmi: graph %q: vertex %q missing xmi.id", g.Name, v.Name)
			}
			if ids[v.ID] {
				return fmt.Errorf("xmi: graph %q: duplicate vertex id %q", g.Name, v.ID)
			}
			ids[v.ID] = true
			for _, tv := range v.Tagged {
				if !tagIDs[tv.TagDefID] {
					return fmt.Errorf("xmi: graph %q: vertex %q tagged value references unknown tag definition %q", g.Name, v.Name, tv.TagDefID)
				}
			}
		}
		for _, tr := range g.Transitions {
			if !ids[tr.SourceID] {
				return fmt.Errorf("xmi: graph %q: transition %q has unresolved source %q", g.Name, tr.ID, tr.SourceID)
			}
			if !ids[tr.TargetID] {
				return fmt.Errorf("xmi: graph %q: transition %q has unresolved target %q", g.Name, tr.ID, tr.TargetID)
			}
		}
	}
	return nil
}

// esc XML-escapes an attribute value.
func esc(s string) string {
	var sb strings.Builder
	if err := xml.EscapeText(&sb, []byte(s)); err != nil {
		return s
	}
	return sb.String()
}

// Write renders the document as an XMI 1.2 file in the tool-export shape
// shown in the paper's Figure 7.
func (d *Document) Write(w io.Writer) error {
	if err := d.check(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<XMI xmi.version="1.2" xmlns:UML="org.omg.xmi.namespace.UML">` + "\n")
	b.WriteString("  <XMI.header>\n    <XMI.documentation>\n")
	b.WriteString("      <XMI.exporter>cn-go</XMI.exporter>\n")
	b.WriteString("    </XMI.documentation>\n  </XMI.header>\n")
	b.WriteString("  <XMI.content>\n")
	fmt.Fprintf(&b, "    <UML:Model xmi.id=%q name=%q isSpecification=\"false\">\n",
		esc(orDefault(d.ModelID, "m1")), esc(orDefault(d.ModelName, "model")))
	b.WriteString("      <UML:Namespace.ownedElement>\n")
	for _, td := range d.TagDefs {
		fmt.Fprintf(&b, "        <UML:TagDefinition xmi.id=%q name=%q isSpecification=\"false\"/>\n",
			esc(td.ID), esc(td.Name))
	}
	for _, g := range d.Graphs {
		fmt.Fprintf(&b, "        <UML:ActivityGraph xmi.id=%q name=%q isSpecification=\"false\">\n",
			esc(g.ID), esc(g.Name))
		b.WriteString("          <UML:StateMachine.top>\n")
		fmt.Fprintf(&b, "            <UML:CompositeState xmi.id=%q isConcurrent=\"false\">\n", esc(g.ID+".top"))
		b.WriteString("              <UML:CompositeState.subvertex>\n")
		for i := range g.Vertices {
			writeVertex(&b, &g.Vertices[i])
		}
		b.WriteString("              </UML:CompositeState.subvertex>\n")
		b.WriteString("            </UML:CompositeState>\n")
		b.WriteString("          </UML:StateMachine.top>\n")
		b.WriteString("          <UML:StateMachine.transitions>\n")
		for _, tr := range g.Transitions {
			src := g.Vertex(tr.SourceID)
			dst := g.Vertex(tr.TargetID)
			fmt.Fprintf(&b, "            <UML:Transition xmi.id=%q isSpecification=\"false\">\n", esc(tr.ID))
			if tr.Guard != "" {
				fmt.Fprintf(&b, "              <UML:Transition.guard><UML:Guard name=%q/></UML:Transition.guard>\n", esc(tr.Guard))
			}
			fmt.Fprintf(&b, "              <UML:Transition.source><UML:%s xmi.idref=%q/></UML:Transition.source>\n",
				elementFor(src), esc(tr.SourceID))
			fmt.Fprintf(&b, "              <UML:Transition.target><UML:%s xmi.idref=%q/></UML:Transition.target>\n",
				elementFor(dst), esc(tr.TargetID))
			b.WriteString("            </UML:Transition>\n")
		}
		b.WriteString("          </UML:StateMachine.transitions>\n")
		b.WriteString("        </UML:ActivityGraph>\n")
	}
	b.WriteString("      </UML:Namespace.ownedElement>\n")
	b.WriteString("    </UML:Model>\n")
	b.WriteString("  </XMI.content>\n")
	b.WriteString("</XMI>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeVertex(b *strings.Builder, v *Vertex) {
	switch v.Kind {
	case VertexInitial, VertexFork, VertexJoin:
		fmt.Fprintf(b, "                <UML:Pseudostate xmi.id=%q name=%q kind=%q isSpecification=\"false\"/>\n",
			esc(v.ID), esc(v.Name), v.Kind)
	case VertexFinal:
		fmt.Fprintf(b, "                <UML:FinalState xmi.id=%q name=%q isSpecification=\"false\"/>\n",
			esc(v.ID), esc(v.Name))
	case VertexAction:
		fmt.Fprintf(b, "                <UML:ActionState xmi.id=%q name=%q isSpecification=\"false\" isDynamic=%q",
			esc(v.ID), esc(v.Name), boolStr(v.Dynamic))
		if v.Multiplicity != "" {
			fmt.Fprintf(b, " dynamicMultiplicity=%q", esc(v.Multiplicity))
		}
		if v.ArgExpr != "" {
			fmt.Fprintf(b, " dynamicArguments=%q", esc(v.ArgExpr))
		}
		if len(v.Tagged) == 0 {
			b.WriteString("/>\n")
			return
		}
		b.WriteString(">\n")
		b.WriteString("                  <UML:ModelElement.taggedValue>\n")
		for _, tv := range v.Tagged {
			fmt.Fprintf(b, "                    <UML:TaggedValue xmi.id=%q isSpecification=\"false\" dataValue=%q>\n",
				esc(tv.ID), esc(tv.Value))
			b.WriteString("                      <UML:TaggedValue.type>\n")
			fmt.Fprintf(b, "                        <UML:TagDefinition xmi.idref=%q/>\n", esc(tv.TagDefID))
			b.WriteString("                      </UML:TaggedValue.type>\n")
			b.WriteString("                    </UML:TaggedValue>\n")
		}
		b.WriteString("                  </UML:ModelElement.taggedValue>\n")
		b.WriteString("                </UML:ActionState>\n")
	}
}

func elementFor(v *Vertex) string {
	if v == nil {
		return "StateVertex"
	}
	switch v.Kind {
	case VertexAction:
		return "ActionState"
	case VertexFinal:
		return "FinalState"
	default:
		return "Pseudostate"
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// WriteString renders the document to a string.
func (d *Document) WriteString() (string, error) {
	var sb strings.Builder
	if err := d.Write(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// IDAllocator hands out sequential xmi.id values in the tool style ("a1",
// "a2", ...), used when fabricating documents programmatically.
type IDAllocator struct {
	prefix string
	next   int
}

// NewIDAllocator creates an allocator with the given prefix (default "a").
func NewIDAllocator(prefix string) *IDAllocator {
	if prefix == "" {
		prefix = "a"
	}
	return &IDAllocator{prefix: prefix, next: 1}
}

// Next returns the next id.
func (a *IDAllocator) Next() string {
	id := fmt.Sprintf("%s%d", a.prefix, a.next)
	a.next++
	return id
}

// SortTagDefs orders tag definitions by name for deterministic output.
func (d *Document) SortTagDefs() {
	sort.Slice(d.TagDefs, func(i, j int) bool { return d.TagDefs[i].Name < d.TagDefs[j].Name })
}
