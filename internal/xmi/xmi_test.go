package xmi

import (
	"strings"
	"testing"
)

// fig7 is the paper's Figure 7 XMI fragment for TCTask2, embedded in the
// minimal enclosing document structure a modeling tool would export.
const fig7 = `<?xml version="1.0" encoding="UTF-8"?>
<XMI xmi.version="1.2" xmlns:UML="org.omg.xmi.namespace.UML">
 <XMI.content>
  <UML:Model xmi.id="m1" name="transclosure-model">
   <UML:Namespace.ownedElement>
    <UML:TagDefinition xmi.id="a7" name="jar"/>
    <UML:TagDefinition xmi.id="a10" name="class"/>
    <UML:TagDefinition xmi.id="a13" name="memory"/>
    <UML:TagDefinition xmi.id="a16" name="runmodel"/>
    <UML:ActivityGraph xmi.id="g1" name="transclosure">
     <UML:StateMachine.top>
      <UML:CompositeState xmi.id="top1">
       <UML:CompositeState.subvertex>
        <UML:Pseudostate xmi.id="a1" kind="initial"/>
        <UML:ActionState xmi.id="a80" name="TaskSplit" isSpecification="false" isDynamic="false"/>
        <UML:ActionState xmi.id="a89" name="TCTask2" isSpecification="false" isDynamic="false">
         <UML:ModelElement.taggedValue>
          <UML:TaggedValue xmi.id="a91" isSpecification="false" dataValue="1000">
           <UML:TaggedValue.type>
            <UML:TagDefinition xmi.idref="a13"/>
           </UML:TaggedValue.type>
          </UML:TaggedValue>
          <UML:TaggedValue xmi.id="a92" isSpecification="false" dataValue="RUN_AS_THREAD_IN_TM">
           <UML:TaggedValue.type>
            <UML:TagDefinition xmi.idref="a16"/>
           </UML:TaggedValue.type>
          </UML:TaggedValue>
          <UML:TaggedValue xmi.id="a93" isSpecification="false" dataValue="tctask.jar">
           <UML:TaggedValue.type>
            <UML:TagDefinition xmi.idref="a7"/>
           </UML:TaggedValue.type>
          </UML:TaggedValue>
          <UML:TaggedValue xmi.id="a94" isSpecification="false" dataValue="org.jhpc.cn2.trnsclsrtask.TCTask">
           <UML:TaggedValue.type>
            <UML:TagDefinition xmi.idref="a10"/>
           </UML:TaggedValue.type>
          </UML:TaggedValue>
         </UML:ModelElement.taggedValue>
        </UML:ActionState>
        <UML:FinalState xmi.id="a99"/>
       </UML:CompositeState.subvertex>
      </UML:CompositeState>
     </UML:StateMachine.top>
     <UML:StateMachine.transitions>
      <UML:Transition xmi.id="a78">
       <UML:Transition.source><UML:ActionState xmi.idref="a80"/></UML:Transition.source>
       <UML:Transition.target><UML:ActionState xmi.idref="a89"/></UML:Transition.target>
      </UML:Transition>
      <UML:Transition xmi.id="a95">
       <UML:Transition.source><UML:ActionState xmi.idref="a89"/></UML:Transition.source>
       <UML:Transition.target><UML:FinalState xmi.idref="a99"/></UML:Transition.target>
      </UML:Transition>
      <UML:Transition xmi.id="t0">
       <UML:Transition.source><UML:Pseudostate xmi.idref="a1"/></UML:Transition.source>
       <UML:Transition.target><UML:ActionState xmi.idref="a80"/></UML:Transition.target>
      </UML:Transition>
     </UML:StateMachine.transitions>
    </UML:ActivityGraph>
   </UML:Namespace.ownedElement>
  </UML:Model>
 </XMI.content>
</XMI>`

func parseFig7(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseString(fig7)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return doc
}

func TestParseFig7Structure(t *testing.T) {
	doc := parseFig7(t)
	if doc.ModelName != "transclosure-model" {
		t.Errorf("model name = %q", doc.ModelName)
	}
	if len(doc.TagDefs) != 4 {
		t.Fatalf("tag defs = %d", len(doc.TagDefs))
	}
	if doc.TagDefByID("a13") != "memory" {
		t.Errorf("a13 = %q", doc.TagDefByID("a13"))
	}
	if doc.TagDefByName("jar") != "a7" {
		t.Errorf("jar id = %q", doc.TagDefByName("jar"))
	}
	g := doc.Graph("transclosure")
	if g == nil {
		t.Fatal("graph not found")
	}
	if len(g.Vertices) != 4 {
		t.Fatalf("vertices = %d", len(g.Vertices))
	}
	if len(g.Transitions) != 3 {
		t.Fatalf("transitions = %d", len(g.Transitions))
	}
}

func TestParseFig7TaggedValues(t *testing.T) {
	doc := parseFig7(t)
	g := doc.Graphs[0]
	v := g.Vertex("a89")
	if v == nil || v.Name != "TCTask2" || v.Kind != VertexAction {
		t.Fatalf("a89 = %+v", v)
	}
	if len(v.Tagged) != 4 {
		t.Fatalf("tagged values = %d", len(v.Tagged))
	}
	// Exactly the paper's four tags, in document order.
	wantVals := []struct{ def, val string }{
		{"a13", "1000"},
		{"a16", "RUN_AS_THREAD_IN_TM"},
		{"a7", "tctask.jar"},
		{"a10", "org.jhpc.cn2.trnsclsrtask.TCTask"},
	}
	for i, w := range wantVals {
		got := v.Tagged[i]
		if got.TagDefID != w.def || got.Value != w.val {
			t.Errorf("tagged[%d] = %+v, want def=%s val=%s", i, got, w.def, w.val)
		}
	}
}

func TestParseFig7Transitions(t *testing.T) {
	doc := parseFig7(t)
	g := doc.Graphs[0]
	var incoming, outgoing int
	for _, tr := range g.Transitions {
		if tr.TargetID == "a89" {
			incoming++
			if tr.SourceID != "a80" {
				t.Errorf("incoming source = %q", tr.SourceID)
			}
		}
		if tr.SourceID == "a89" {
			outgoing++
			if tr.TargetID != "a99" {
				t.Errorf("outgoing target = %q", tr.TargetID)
			}
		}
	}
	if incoming != 1 || outgoing != 1 {
		t.Errorf("a89 incoming=%d outgoing=%d", incoming, outgoing)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	doc := parseFig7(t)
	out, err := doc.WriteString()
	if err != nil {
		t.Fatalf("WriteString: %v", err)
	}
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if len(doc2.TagDefs) != len(doc.TagDefs) {
		t.Errorf("tag defs lost: %d vs %d", len(doc2.TagDefs), len(doc.TagDefs))
	}
	g1, g2 := doc.Graphs[0], doc2.Graphs[0]
	if len(g2.Vertices) != len(g1.Vertices) || len(g2.Transitions) != len(g1.Transitions) {
		t.Fatalf("structure lost: %d/%d vertices, %d/%d transitions",
			len(g2.Vertices), len(g1.Vertices), len(g2.Transitions), len(g1.Transitions))
	}
	v1, v2 := g1.Vertex("a89"), g2.Vertex("a89")
	if len(v2.Tagged) != len(v1.Tagged) {
		t.Fatalf("tagged values lost")
	}
	for i := range v1.Tagged {
		if v1.Tagged[i].TagDefID != v2.Tagged[i].TagDefID || v1.Tagged[i].Value != v2.Tagged[i].Value {
			t.Errorf("tagged[%d] differs: %+v vs %+v", i, v1.Tagged[i], v2.Tagged[i])
		}
	}
}

func TestWriteOutputShape(t *testing.T) {
	doc := parseFig7(t)
	out, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	// The writer must produce the paper's Figure 7 element shapes.
	for _, want := range []string{
		`<UML:ActionState xmi.id="a89" name="TCTask2"`,
		`dataValue="1000"`,
		`<UML:TagDefinition xmi.idref="a13"/>`,
		`<UML:Transition.source><UML:ActionState xmi.idref="a80"/></UML:Transition.source>`,
		`xmlns:UML="org.omg.xmi.namespace.UML"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDynamicAttributes(t *testing.T) {
	doc := &Document{
		ModelName: "m",
		Graphs: []*ActivityGraph{{
			ID: "g1", Name: "dyn",
			Vertices: []Vertex{
				{ID: "v1", Kind: VertexInitial},
				{ID: "v2", Name: "worker", Kind: VertexAction, Dynamic: true, Multiplicity: "*", ArgExpr: "rows"},
				{ID: "v3", Kind: VertexFinal},
			},
			Transitions: []Transition{
				{ID: "t1", SourceID: "v1", TargetID: "v2"},
				{ID: "t2", SourceID: "v2", TargetID: "v3"},
			},
		}},
	}
	out, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `isDynamic="true"`) ||
		!strings.Contains(out, `dynamicMultiplicity="*"`) ||
		!strings.Contains(out, `dynamicArguments="rows"`) {
		t.Errorf("dynamic attributes missing:\n%s", out)
	}
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	v := doc2.Graphs[0].Vertex("v2")
	if !v.Dynamic || v.Multiplicity != "*" || v.ArgExpr != "rows" {
		t.Errorf("round trip dynamic = %+v", v)
	}
}

func TestGuardRoundTrip(t *testing.T) {
	doc := &Document{
		Graphs: []*ActivityGraph{{
			ID: "g", Name: "g",
			Vertices: []Vertex{
				{ID: "a", Kind: VertexAction, Name: "A"},
				{ID: "b", Kind: VertexAction, Name: "B"},
			},
			Transitions: []Transition{{ID: "t", SourceID: "a", TargetID: "b", Guard: "ok"}},
		}},
	}
	out, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Graphs[0].Transitions[0].Guard != "ok" {
		t.Errorf("guard lost: %+v", doc2.Graphs[0].Transitions[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"malformed xml", "<XMI><unclosed>"},
		{"bad pseudostate kind", `<XMI><XMI.content><UML:Model xmlns:UML="u">
			<UML:ActivityGraph xmi.id="g" name="g">
			<UML:Pseudostate xmi.id="p" kind="history"/>
			</UML:ActivityGraph></UML:Model></XMI.content></XMI>`},
		{"unresolved transition source", `<XMI><XMI.content><UML:Model xmlns:UML="u">
			<UML:ActivityGraph xmi.id="g" name="g">
			<UML:StateMachine.top><UML:CompositeState xmi.id="c"><UML:CompositeState.subvertex>
			<UML:ActionState xmi.id="a" name="A"/>
			</UML:CompositeState.subvertex></UML:CompositeState></UML:StateMachine.top>
			<UML:StateMachine.transitions>
			<UML:Transition xmi.id="t">
			<UML:Transition.source><UML:ActionState xmi.idref="ghost"/></UML:Transition.source>
			<UML:Transition.target><UML:ActionState xmi.idref="a"/></UML:Transition.target>
			</UML:Transition>
			</UML:StateMachine.transitions>
			</UML:ActivityGraph></UML:Model></XMI.content></XMI>`},
		{"unknown tagdef reference", `<XMI><XMI.content><UML:Model xmlns:UML="u">
			<UML:ActivityGraph xmi.id="g" name="g">
			<UML:StateMachine.top><UML:CompositeState xmi.id="c"><UML:CompositeState.subvertex>
			<UML:ActionState xmi.id="a" name="A">
			<UML:ModelElement.taggedValue>
			<UML:TaggedValue xmi.id="tv" dataValue="x">
			<UML:TaggedValue.type><UML:TagDefinition xmi.idref="nope"/></UML:TaggedValue.type>
			</UML:TaggedValue>
			</UML:ModelElement.taggedValue>
			</UML:ActionState>
			</UML:CompositeState.subvertex></UML:CompositeState></UML:StateMachine.top>
			</UML:ActivityGraph></UML:Model></XMI.content></XMI>`},
		{"duplicate vertex id", `<XMI><XMI.content><UML:Model xmlns:UML="u">
			<UML:ActivityGraph xmi.id="g" name="g">
			<UML:StateMachine.top><UML:CompositeState xmi.id="c"><UML:CompositeState.subvertex>
			<UML:ActionState xmi.id="a" name="A"/>
			<UML:ActionState xmi.id="a" name="B"/>
			</UML:CompositeState.subvertex></UML:CompositeState></UML:StateMachine.top>
			</UML:ActivityGraph></UML:Model></XMI.content></XMI>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteChecksIntegrity(t *testing.T) {
	doc := &Document{
		Graphs: []*ActivityGraph{{
			ID: "g", Name: "g",
			Vertices:    []Vertex{{ID: "a", Kind: VertexAction, Name: "A"}},
			Transitions: []Transition{{ID: "t", SourceID: "a", TargetID: "ghost"}},
		}},
	}
	if _, err := doc.WriteString(); err == nil {
		t.Error("Write accepted dangling transition")
	}
}

func TestEscaping(t *testing.T) {
	doc := &Document{
		TagDefs: []TagDef{{ID: "td1", Name: "note"}},
		Graphs: []*ActivityGraph{{
			ID: "g", Name: `weird "name" <&>`,
			Vertices: []Vertex{{
				ID: "a", Kind: VertexAction, Name: "A",
				Tagged: []TaggedValue{{ID: "tv1", TagDefID: "td1", Value: `x < y & "z"`}},
			}},
		}},
	}
	out, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse escaped: %v", err)
	}
	if doc2.Graphs[0].Name != `weird "name" <&>` {
		t.Errorf("name = %q", doc2.Graphs[0].Name)
	}
	if got := doc2.Graphs[0].Vertices[0].Tagged[0].Value; got != `x < y & "z"` {
		t.Errorf("value = %q", got)
	}
}

func TestIDAllocator(t *testing.T) {
	a := NewIDAllocator("")
	if a.Next() != "a1" || a.Next() != "a2" {
		t.Error("default allocator sequence wrong")
	}
	b := NewIDAllocator("t")
	if b.Next() != "t1" {
		t.Error("prefixed allocator wrong")
	}
}

func TestSortTagDefs(t *testing.T) {
	doc := &Document{TagDefs: []TagDef{{ID: "2", Name: "z"}, {ID: "1", Name: "a"}}}
	doc.SortTagDefs()
	if doc.TagDefs[0].Name != "a" {
		t.Errorf("not sorted: %v", doc.TagDefs)
	}
}

func TestMultipleGraphs(t *testing.T) {
	doc := &Document{
		Graphs: []*ActivityGraph{
			{ID: "g1", Name: "first", Vertices: []Vertex{{ID: "x", Kind: VertexAction, Name: "X"}}},
			{ID: "g2", Name: "second", Vertices: []Vertex{{ID: "y", Kind: VertexAction, Name: "Y"}}},
		},
	}
	out, err := doc.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc2.Graphs) != 2 || doc2.Graph("second") == nil {
		t.Errorf("graphs = %d", len(doc2.Graphs))
	}
	if doc2.Graph("second").Vertices[0].Name != "Y" {
		t.Error("second graph vertices wrong")
	}
}
