// Package taskmgr implements the CN TaskManager: the component that
// "executes the various Tasks of various Jobs and is transparent to the
// user". A TaskManager answers placement solicitations, accepts archive
// uploads, "sets up a message queue for each Task and then executes each
// Task in a separate thread when the User program requests to start the
// Task" (threads are goroutines here).
package taskmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cn/internal/archive"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// SendFunc delivers a message to a node; the CN server injects its
// endpoint's Send.
type SendFunc func(toNode string, m *msg.Message) error

// Config parametrizes a TaskManager.
type Config struct {
	// Node is the hosting node name.
	Node string
	// MemoryMB is the execution capacity tasks reserve against.
	MemoryMB int
	// Registry resolves task classes; nil selects task.Global.
	Registry *task.Registry
	// MailboxCap bounds each task mailbox (0 = default).
	MailboxCap int
	// Logf receives diagnostic lines; nil disables logging.
	Logf func(format string, args ...any)
}

// DefaultMemoryMB is the per-node capacity when Config.MemoryMB is 0,
// sized to hold a handful of the paper's 1000 MB tasks.
const DefaultMemoryMB = 8000

// assignment is one task assigned to this TaskManager.
type assignment struct {
	jobID      string
	jobManager string
	clientNode string
	spec       *task.Spec
	mailbox    *msg.Mailbox
	cancelled  atomic.Bool
	started    atomic.Bool
}

// TaskManager executes tasks on one node.
type TaskManager struct {
	cfg      Config
	send     SendFunc
	registry *task.Registry
	archives *archive.Store

	mu       sync.Mutex
	freeMB   int
	assigned map[string]*assignment // key: jobID + "/" + task name
	running  int
	closed   bool
	wg       sync.WaitGroup
}

// New creates a TaskManager.
func New(cfg Config, send SendFunc) *TaskManager {
	if cfg.MemoryMB <= 0 {
		cfg.MemoryMB = DefaultMemoryMB
	}
	reg := cfg.Registry
	if reg == nil {
		reg = task.Global
	}
	return &TaskManager{
		cfg:      cfg,
		send:     send,
		registry: reg,
		archives: archive.NewStore(),
		assigned: make(map[string]*assignment),
		freeMB:   cfg.MemoryMB,
	}
}

func (tm *TaskManager) logf(format string, args ...any) {
	if tm.cfg.Logf != nil {
		tm.cfg.Logf("[tm %s] "+format, append([]any{tm.cfg.Node}, args...)...)
	}
}

func key(jobID, taskName string) string { return jobID + "/" + taskName }

// FreeMemoryMB returns the unreserved capacity.
func (tm *TaskManager) FreeMemoryMB() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.freeMB
}

// RunningTasks returns the number of currently executing tasks.
func (tm *TaskManager) RunningTasks() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.running
}

// HandleSolicit answers a KindTaskSolicit: the TaskManager is willing when
// it has enough free memory and knows (or will receive) the task class.
// It returns nil when unwilling — multicast solicitations are simply not
// answered in that case, like the paper's protocol.
func (tm *TaskManager) HandleSolicit(m *msg.Message) *msg.Message {
	var req protocol.TaskSolicitReq
	if err := protocol.Decode(m, &req); err != nil {
		tm.logf("bad solicit: %v", err)
		return nil
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.closed || tm.freeMB < req.Spec.Req.MemoryMB {
		return nil
	}
	offer := protocol.TMOffer{
		Node:         tm.cfg.Node,
		FreeMemoryMB: tm.freeMB,
		RunningTasks: tm.running,
	}
	return m.Reply(msg.KindTaskOffer, msg.MustEncode(offer))
}

// HandleAssign processes a KindUploadJar: verify the archive, check the
// class is loadable, reserve memory, and set up the task's message queue.
func (tm *TaskManager) HandleAssign(m *msg.Message) *msg.Message {
	var req protocol.AssignTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: false, Reason: err.Error()}))
	}
	reject := func(reason string) *msg.Message {
		tm.logf("reject %s: %s", key(req.JobID, req.Spec.Name), reason)
		return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: false, Reason: reason}))
	}
	if len(req.Archive) > 0 {
		a, err := archive.Open(req.ArchiveName, req.Archive)
		if err != nil {
			return reject(fmt.Sprintf("bad archive: %v", err))
		}
		if req.Digest != "" && a.Digest() != req.Digest {
			return reject("archive digest mismatch")
		}
		if a.Manifest.TaskClass != req.Spec.Class {
			return reject(fmt.Sprintf("archive manifest class %q does not match spec class %q",
				a.Manifest.TaskClass, req.Spec.Class))
		}
		if err := tm.archives.Put(a); err != nil {
			return reject(err.Error())
		}
	}
	if !tm.registry.Has(req.Spec.Class) {
		return reject(fmt.Sprintf("class %q not deployable on this node", req.Spec.Class))
	}

	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.closed {
		return reject("task manager shut down")
	}
	k := key(req.JobID, req.Spec.Name)
	if _, dup := tm.assigned[k]; dup {
		return reject("task already assigned")
	}
	if tm.freeMB < req.Spec.Req.MemoryMB {
		return reject(fmt.Sprintf("insufficient memory: need %d MB, free %d MB", req.Spec.Req.MemoryMB, tm.freeMB))
	}
	tm.freeMB -= req.Spec.Req.MemoryMB
	tm.assigned[k] = &assignment{
		jobID:      req.JobID,
		jobManager: req.JobManager,
		clientNode: req.ClientNode,
		spec:       req.Spec,
		mailbox:    msg.NewMailbox(tm.cfg.MailboxCap),
	}
	tm.logf("assigned %s (class %s, %d MB)", k, req.Spec.Class, req.Spec.Req.MemoryMB)
	return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: true}))
}

// HandleStart processes a KindStartTask from the JobManager for one task.
func (tm *TaskManager) HandleStart(jobID, taskName string) error {
	tm.mu.Lock()
	a, ok := tm.assigned[key(jobID, taskName)]
	closed := tm.closed
	tm.mu.Unlock()
	if closed {
		return fmt.Errorf("taskmgr %s: shut down", tm.cfg.Node)
	}
	if !ok {
		return fmt.Errorf("taskmgr %s: task %s not assigned", tm.cfg.Node, key(jobID, taskName))
	}
	if !a.started.CompareAndSwap(false, true) {
		return fmt.Errorf("taskmgr %s: task %s already started", tm.cfg.Node, key(jobID, taskName))
	}
	tm.mu.Lock()
	tm.running++
	tm.wg.Add(1)
	tm.mu.Unlock()
	go tm.execute(a)
	return nil
}

// execute runs one task to completion on its own goroutine (the paper's
// "separate thread"), reporting lifecycle events to the JobManager.
func (tm *TaskManager) execute(a *assignment) {
	defer tm.wg.Done()
	from := msg.Address{Node: tm.cfg.Node, Job: a.jobID, Task: a.spec.Name}
	jmAddr := msg.Address{Node: a.jobManager, Job: a.jobID}

	tm.event(msg.KindTaskStarted, a, "")

	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				// Both run models confine panics: a crashing task must not
				// take down the server. RUN_AS_PROCESS semantics (paper's
				// isolation) are the default in Go's goroutine model.
				runErr = fmt.Errorf("task panic: %v", r)
			}
		}()
		t, err := tm.registry.New(a.spec.Class)
		if err != nil {
			runErr = err
			return
		}
		ctx := &execContext{tm: tm, a: a, self: from, jm: jmAddr}
		runErr = t.Run(ctx)
	}()

	tm.mu.Lock()
	tm.running--
	tm.freeMB += a.spec.Req.MemoryMB
	delete(tm.assigned, key(a.jobID, a.spec.Name))
	tm.mu.Unlock()
	a.mailbox.Close()

	if runErr != nil {
		tm.event(msg.KindTaskFailed, a, runErr.Error())
		return
	}
	tm.event(msg.KindTaskCompleted, a, "")
}

// event reports a lifecycle event to the JobManager.
func (tm *TaskManager) event(kind msg.Kind, a *assignment, errText string) {
	ev := protocol.TaskEvent{JobID: a.jobID, Task: a.spec.Name, Node: tm.cfg.Node, Err: errText}
	m := protocol.Body(kind,
		msg.Address{Node: tm.cfg.Node, Job: a.jobID, Task: a.spec.Name},
		msg.Address{Node: a.jobManager, Job: a.jobID},
		ev)
	if err := tm.send(a.jobManager, m); err != nil {
		tm.logf("event %s for %s: %v", kind, key(a.jobID, a.spec.Name), err)
	}
}

// HandleUser routes an inbound user message to the target task's mailbox.
// Delivery never blocks the caller: when a mailbox is at capacity the put
// falls back to a goroutine, sacrificing order only under backpressure.
func (tm *TaskManager) HandleUser(m *msg.Message) error {
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return fmt.Errorf("taskmgr %s: bad user payload: %w", tm.cfg.Node, err)
	}
	tm.mu.Lock()
	a, ok := tm.assigned[key(p.JobID, p.ToTask)]
	tm.mu.Unlock()
	if !ok {
		return fmt.Errorf("taskmgr %s: user message for unknown task %s", tm.cfg.Node, key(p.JobID, p.ToTask))
	}
	err := a.mailbox.TryPut(m)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, msg.ErrFull):
		go func() {
			if err := a.mailbox.Put(m); err != nil {
				tm.logf("deliver to %s: %v", p.ToTask, err)
			}
		}()
		return nil
	default:
		return fmt.Errorf("taskmgr %s: deliver to %s: %w", tm.cfg.Node, p.ToTask, err)
	}
}

// HandleCancel cancels all of a job's tasks on this node: mailboxes close
// (Recv returns ErrStopped) and Done() turns true so tasks can exit.
func (tm *TaskManager) HandleCancel(jobID string) {
	tm.mu.Lock()
	var toCancel []*assignment
	for _, a := range tm.assigned {
		if a.jobID == jobID {
			toCancel = append(toCancel, a)
		}
	}
	tm.mu.Unlock()
	for _, a := range toCancel {
		a.cancelled.Store(true)
		a.mailbox.Close()
	}
	// Unstarted assignments release their reservation immediately.
	tm.mu.Lock()
	for k, a := range tm.assigned {
		if a.jobID == jobID && !a.started.Load() {
			tm.freeMB += a.spec.Req.MemoryMB
			delete(tm.assigned, k)
		}
	}
	tm.mu.Unlock()
}

// Close stops accepting work and waits for running tasks to finish; their
// mailboxes are closed first so blocked Recv calls unblock.
func (tm *TaskManager) Close() {
	tm.mu.Lock()
	if tm.closed {
		tm.mu.Unlock()
		return
	}
	tm.closed = true
	for _, a := range tm.assigned {
		a.cancelled.Store(true)
		a.mailbox.Close()
	}
	tm.mu.Unlock()
	tm.wg.Wait()
}

// execContext implements task.Context for one running task.
type execContext struct {
	tm   *TaskManager
	a    *assignment
	self msg.Address
	jm   msg.Address
}

// TaskName implements task.Context.
func (c *execContext) TaskName() string { return c.a.spec.Name }

// JobID implements task.Context.
func (c *execContext) JobID() string { return c.a.jobID }

// NodeName implements task.Context.
func (c *execContext) NodeName() string { return c.tm.cfg.Node }

// Params implements task.Context.
func (c *execContext) Params() []task.Param {
	return append([]task.Param(nil), c.a.spec.Params...)
}

// send routes a user payload through the JobManager conduit.
func (c *execContext) send(kind msg.Kind, toTask string, payload []byte) error {
	if c.a.cancelled.Load() {
		return task.ErrStopped
	}
	p := protocol.UserPayload{
		JobID:    c.a.jobID,
		FromTask: c.a.spec.Name,
		ToTask:   toTask,
		Data:     payload,
	}
	m := protocol.Body(kind, c.self, msg.Address{Node: c.jm.Node, Job: c.a.jobID, Task: toTask}, p)
	if err := c.tm.send(c.jm.Node, m); err != nil {
		return fmt.Errorf("task %s: send to %s: %w", c.a.spec.Name, toTask, err)
	}
	return nil
}

// Send implements task.Context.
func (c *execContext) Send(toTask string, payload []byte) error {
	if toTask == "" {
		return fmt.Errorf("task %s: send: empty destination", c.a.spec.Name)
	}
	return c.send(msg.KindUser, toTask, payload)
}

// SendClient implements task.Context.
func (c *execContext) SendClient(payload []byte) error {
	return c.send(msg.KindUser, protocol.ClientTaskName, payload)
}

// Broadcast implements task.Context.
func (c *execContext) Broadcast(payload []byte) error {
	return c.send(msg.KindBroadcast, "", payload)
}

// Recv implements task.Context.
func (c *execContext) Recv() (string, []byte, error) {
	m, err := c.a.mailbox.Get()
	if err != nil {
		return "", nil, task.ErrStopped
	}
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return "", nil, fmt.Errorf("task %s: recv: %w", c.a.spec.Name, err)
	}
	return p.FromTask, p.Data, nil
}

// Logf implements task.Context.
func (c *execContext) Logf(format string, args ...any) {
	c.tm.logf("task %s: "+format, append([]any{key(c.a.jobID, c.a.spec.Name)}, args...)...)
}

// Done implements task.Context.
func (c *execContext) Done() bool { return c.a.cancelled.Load() }
