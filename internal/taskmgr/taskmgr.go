// Package taskmgr implements the CN TaskManager: the component that
// "executes the various Tasks of various Jobs and is transparent to the
// user". A TaskManager answers placement solicitations, accepts archive
// uploads, "sets up a message queue for each Task and then executes each
// Task in a separate thread when the User program requests to start the
// Task" (threads are goroutines here).
package taskmgr

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/archive"
	"cn/internal/health"
	"cn/internal/logging"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/tuplespace"
)

// SendFunc delivers a message to a node; the CN server injects its
// endpoint's Send.
type SendFunc func(toNode string, m *msg.Message) error

// FetchFunc pulls archive blobs from a JobManager by digest — the pull
// side of the content-addressed distribution protocol. The CN server wires
// a KindFetchBlob call in; nil disables fetching (assignments referencing
// uncached digests are rejected).
type FetchFunc func(jmNode, jobID string, digests []string) (map[string][]byte, error)

// CallFunc performs one request/response round trip to a node. The CN
// server wires its transport caller in; tasks' tuple-space operations
// route through it to the JobManager hosting the job's space. nil
// disables tuple-space operations.
type CallFunc func(ctx context.Context, toNode string, m *msg.Message) (*msg.Message, error)

// Config parametrizes a TaskManager.
type Config struct {
	// Node is the hosting node name.
	Node string
	// MemoryMB is the execution capacity tasks reserve against.
	MemoryMB int
	// Registry resolves task classes; nil selects task.Global.
	Registry *task.Registry
	// MailboxCap bounds each task mailbox (0 = default).
	MailboxCap int
	// Fetch pulls missing archive blobs from the assigning JobManager.
	Fetch FetchFunc
	// Call performs request/response round trips (tuple-space operations
	// to the hosting JobManager); nil disables tuple-space access.
	Call CallFunc
	// HeartbeatEvery is the cadence of HEARTBEAT messages to JobManagers
	// holding assignments here (0 = health.DefaultInterval; negative
	// disables heartbeating, the pre-failure-detection behavior).
	HeartbeatEvery time.Duration
	// Logf receives diagnostic lines; nil disables logging.
	Logf func(format string, args ...any)
	// Log is the structured logger; when nil, records are bridged through
	// Logf (or discarded when that is nil too).
	Log *slog.Logger
	// Tracer records this TaskManager's spans (task exec, shuffle pulls)
	// into its local store; terminal task events drain them to the
	// JobManager's timeline. Nil disables TM-side span recording.
	Tracer *trace.Tracer
}

// DefaultMemoryMB is the per-node capacity when Config.MemoryMB is 0,
// sized to hold a handful of the paper's 1000 MB tasks.
const DefaultMemoryMB = 8000

// assignment is one task assigned to this TaskManager.
type assignment struct {
	jobID string
	// jobManager is the node whose JobManager currently owns the job. It
	// is re-pointed by HandleAdopt when a surviving JobManager re-homes a
	// dead peer's job, and read from the heartbeat, event, and tuple-space
	// paths concurrently — hence the atomic.
	jobManager atomic.Pointer[string]
	clientNode string
	spec       *task.Spec
	mailbox    *msg.Mailbox
	cancelled  atomic.Bool
	started    atomic.Bool
	// stopped is closed when the assignment is cancelled, so in-flight
	// blocking calls (a tuple-space In parked on the JobManager) abort
	// promptly instead of waiting out their window.
	stopped  chan struct{}
	stopOnce sync.Once
	// progress is the task's monotonic activity counter, bumped on every
	// message the task sends or receives; heartbeats carry it to the
	// JobManager as the straggler-detection signal.
	progress atomic.Uint64
	// trace is the context the exec dispatch carried in; set once in
	// HandleStart before the execute goroutine launches and read only
	// there. Zero when the job is untraced.
	trace trace.Context
	// Stall bookkeeping, guarded by the TaskManager's mu: the progress
	// value the last beat observed and when it last changed. A running task
	// whose counter sits still for stallBeats heartbeat intervals counts
	// into the TMOffer's StalledTasks figure.
	lastProgress   uint64
	lastProgressAt time.Time
}

// jm returns the node of the JobManager currently owning the assignment.
func (a *assignment) jm() string { return *a.jobManager.Load() }

// setJM re-points the assignment at a new owning JobManager.
func (a *assignment) setJM(node string) { a.jobManager.Store(&node) }

// cancel marks the assignment cancelled and releases its waiters: the
// mailbox closes (Recv returns ErrStopped) and the stopped channel wakes
// any in-flight tuple-space call.
func (a *assignment) cancel() {
	a.cancelled.Store(true)
	a.stopOnce.Do(func() { close(a.stopped) })
	a.mailbox.Close()
}

// TaskManager executes tasks on one node.
type TaskManager struct {
	cfg      Config
	send     SendFunc
	log      *slog.Logger
	tracer   *trace.Tracer
	registry *task.Registry
	blobs    *archive.Cache
	stop     chan struct{}
	hbSeq    atomic.Uint64
	// lastJMs is the JobManager set served by the previous beat round;
	// only the heartbeat goroutine touches it. JobManagers that drop out
	// of the set get one final empty beat — the "goodbye" that releases
	// this node's liveness lease so an idle node is not mistaken for a
	// dead one.
	lastJMs map[string]bool
	// beatScratch is beatOnce's grouping map, reused across rounds (the
	// heartbeat ticks forever on every node; rebuilding the map and its
	// slices each round was steady-state garbage). Between rounds its keys
	// are exactly the actively-beaten JobManagers, values truncated but
	// with capacity retained. Only the heartbeat goroutine touches it.
	beatScratch map[string][]protocol.TaskBeat

	mu       sync.Mutex
	freeMB   int
	assigned map[string]*assignment // key: jobID + "/" + task name
	running  int
	closed   bool
	wg       sync.WaitGroup

	// Data-plane byte counters: payloads served to peer TaskManagers
	// (producer side) and pulled from them (consumer side).
	dataServedBytes  atomic.Int64
	dataFetchedBytes atomic.Int64
}

// New creates a TaskManager and starts its heartbeat loop (unless
// Config.HeartbeatEvery is negative).
func New(cfg Config, send SendFunc) *TaskManager {
	if cfg.MemoryMB <= 0 {
		cfg.MemoryMB = DefaultMemoryMB
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = health.DefaultInterval
	}
	reg := cfg.Registry
	if reg == nil {
		reg = task.Global
	}
	tm := &TaskManager{
		cfg:         cfg,
		send:        send,
		log:         logging.Component(logging.Pick(cfg.Log, cfg.Logf), "taskmgr", cfg.Node),
		tracer:      cfg.Tracer,
		registry:    reg,
		blobs:       archive.NewCache(),
		stop:        make(chan struct{}),
		assigned:    make(map[string]*assignment),
		freeMB:      cfg.MemoryMB,
		lastJMs:     make(map[string]bool),
		beatScratch: make(map[string][]protocol.TaskBeat),
	}
	if cfg.HeartbeatEvery > 0 {
		tm.wg.Add(1)
		go tm.heartbeatLoop()
	}
	return tm
}

// heartbeatLoop streams HEARTBEAT messages to every JobManager holding
// assignments on this node, on the configured cadence.
func (tm *TaskManager) heartbeatLoop() {
	defer tm.wg.Done()
	ticker := time.NewTicker(tm.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-tm.stop:
			return
		case <-ticker.C:
			tm.beatOnce()
		}
	}
}

// beatOnce snapshots the assignment table, groups it by owning JobManager,
// and sends each one a Heartbeat: the lease renewal plus the per-task
// progress sync. JobManagers this node no longer hosts tasks for receive
// one final empty beat so they stop expecting renewals.
func (tm *TaskManager) beatOnce() {
	now := time.Now()
	// Reuse the scratch map across rounds: truncate each surviving entry so
	// appends below refill in place. Entering this round, keys are exactly
	// the JobManagers beaten last round (== tm.lastJMs), so any key left
	// empty after the fill is owed a goodbye.
	byJM := tm.beatScratch
	for jm, beats := range byJM {
		byJM[jm] = beats[:0]
	}
	tm.mu.Lock()
	for _, a := range tm.assigned {
		jmNode := a.jm()
		p := a.progress.Load()
		if p != a.lastProgress || a.lastProgressAt.IsZero() {
			a.lastProgress, a.lastProgressAt = p, now
		}
		byJM[jmNode] = append(byJM[jmNode], protocol.TaskBeat{
			JobID:    a.jobID,
			Task:     a.spec.Name,
			Running:  a.started.Load() && !a.cancelled.Load(),
			Progress: p,
		})
	}
	tm.mu.Unlock()
	seq := tm.hbSeq.Add(1)
	for jm, beats := range byJM {
		// Deterministic beat order keeps the wire payload stable for tests
		// and logs.
		sort.Slice(beats, func(a, b int) bool {
			if beats[a].JobID != beats[b].JobID {
				return beats[a].JobID < beats[b].JobID
			}
			return beats[a].Task < beats[b].Task
		})
		payload := beats
		if len(beats) == 0 {
			payload = nil // goodbye beat: releases the liveness lease
		}
		hb := protocol.Body(msg.KindHeartbeat,
			msg.Address{Node: tm.cfg.Node},
			msg.Address{Node: jm},
			protocol.Heartbeat{Node: tm.cfg.Node, Seq: seq, Beats: payload})
		if err := tm.send(jm, hb); err != nil {
			tm.logf("heartbeat to %s: %v", jm, err)
		}
	}
	// Re-establish the invariant for the next round: lastJMs and the
	// scratch keys are the JobManagers that got a real (non-goodbye) beat.
	clear(tm.lastJMs)
	for jm, beats := range byJM {
		if len(beats) > 0 {
			tm.lastJMs[jm] = true
		} else {
			delete(byJM, jm) // goodbye delivered; retire the entry
		}
	}
}

// HandleHeartbeatAck processes the JobManager's beat acknowledgement. Jobs
// the JobManager no longer tracks (evicted tombstones, forgotten abandons)
// have their local assignments cancelled so their reservations do not
// outlive the job.
func (tm *TaskManager) HandleHeartbeatAck(m *msg.Message) {
	var ack protocol.HeartbeatAck
	if err := protocol.Decode(m, &ack); err != nil {
		tm.logf("bad heartbeat ack: %v", err)
		return
	}
	for _, jobID := range ack.UnknownJobs {
		tm.logf("job %s unknown to %s; releasing its assignments", jobID, ack.Node)
		tm.HandleCancel(jobID)
	}
}

// BlobCache exposes the node's digest-keyed archive cache (metrics, tests).
func (tm *TaskManager) BlobCache() *archive.Cache { return tm.blobs }

func (tm *TaskManager) logf(format string, args ...any) {
	if tm.cfg.Logf != nil {
		tm.cfg.Logf("[tm %s] "+format, append([]any{tm.cfg.Node}, args...)...)
	}
}

func key(jobID, taskName string) string { return jobID + "/" + taskName }

// FreeMemoryMB returns the unreserved capacity.
func (tm *TaskManager) FreeMemoryMB() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.freeMB
}

// RunningTasks returns the number of currently executing tasks.
func (tm *TaskManager) RunningTasks() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.running
}

// HandleSolicit answers a KindTaskSolicit: the TaskManager is willing when
// it has enough free memory and knows (or will receive) the task class.
// It returns nil when unwilling — multicast solicitations are simply not
// answered in that case, like the paper's protocol.
func (tm *TaskManager) HandleSolicit(m *msg.Message) *msg.Message {
	var req protocol.TaskSolicitReq
	if err := protocol.Decode(m, &req); err != nil {
		tm.logf("bad solicit: %v", err)
		return nil
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.closed || tm.freeMB < req.Spec.Req.MemoryMB {
		return nil
	}
	offer := protocol.TMOffer{
		Node:            tm.cfg.Node,
		FreeMemoryMB:    tm.freeMB,
		RunningTasks:    tm.running,
		ResidentDigests: tm.blobs.RecentDigests(protocol.MaxOfferDigests),
		StalledTasks:    tm.stalledLocked(time.Now()),
	}
	return m.Reply(msg.KindTaskOffer, msg.MustEncode(offer))
}

// stallBeats is how many silent heartbeat intervals a running task's
// progress counter must sit still before the task counts as stalled in
// this node's placement offers.
const stallBeats = 3

// stalledLocked counts running assignments whose progress counter has not
// advanced for stallBeats heartbeat intervals. Callers hold tm.mu. With
// heartbeating disabled the counter is never observed, so nothing ever
// reports as stalled.
func (tm *TaskManager) stalledLocked(now time.Time) int {
	if tm.cfg.HeartbeatEvery <= 0 {
		return 0
	}
	cutoff := now.Add(-stallBeats * tm.cfg.HeartbeatEvery)
	stalled := 0
	for _, a := range tm.assigned {
		if a.started.Load() && !a.cancelled.Load() &&
			!a.lastProgressAt.IsZero() && a.lastProgressAt.Before(cutoff) {
			stalled++
		}
	}
	return stalled
}

// HandleAssign processes a KindUploadJar — the per-task assignment path
// kept for protocol compatibility: verify the inline archive (or resolve a
// digest-only reference against the blob cache), check the class is
// loadable, reserve memory, and set up the task's message queue.
func (tm *TaskManager) HandleAssign(m *msg.Message) *msg.Message {
	var req protocol.AssignTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: false, Reason: err.Error()}))
	}
	reject := func(reason string) *msg.Message {
		tm.logf("reject %s: %s", key(req.JobID, req.Spec.Name), reason)
		return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: false, Reason: reason}))
	}
	ref := protocol.ArchiveRef{Name: req.ArchiveName, Digest: req.Digest}
	if len(req.Archive) > 0 {
		a, err := archive.Open(req.ArchiveName, req.Archive)
		if err != nil {
			return reject(fmt.Sprintf("bad archive: %v", err))
		}
		if req.Digest != "" && a.Digest() != req.Digest {
			return reject("archive digest mismatch")
		}
		ref.Digest = a.Digest()
		if err := tm.blobs.Put(a); err != nil {
			return reject(err.Error())
		}
	} else if req.ArchiveName != "" && req.Digest == "" {
		// A name with neither bytes nor digest cannot be resolved.
		ref = protocol.ArchiveRef{}
	}
	item := protocol.TaskCreate{Spec: req.Spec, Archive: ref}
	if _, err := tm.ensureBlobs(req.JobManager, req.JobID, []protocol.TaskCreate{item}); err != nil {
		return reject(err.Error())
	}
	if reason := tm.assignOne(req.JobID, req.JobManager, req.ClientNode, item); reason != "" {
		return reject(reason)
	}
	return m.Reply(msg.KindJarUploaded, msg.MustEncode(protocol.AssignTaskResp{OK: true}))
}

// HandleAssignBatch processes a KindAssignTasks: a batch assignment whose
// items carry content-addressed archive references only. Missing blobs are
// fetched from the JobManager once per digest; every item is then verified
// and reserved individually, so one oversubscribed task rejects alone
// instead of failing the batch.
func (tm *TaskManager) HandleAssignBatch(m *msg.Message) *msg.Message {
	var req protocol.AssignTasksReq
	if err := protocol.Decode(m, &req); err != nil {
		return m.Reply(msg.KindTasksAssigned, msg.MustEncode(protocol.AssignTasksResp{
			Rejected: map[string]string{protocol.BatchRejected: err.Error()},
		}))
	}
	resp := protocol.AssignTasksResp{Rejected: make(map[string]string)}
	fetched, err := tm.ensureBlobs(req.JobManager, req.JobID, req.Items)
	if err != nil {
		// The blobs could not be negotiated; reject only the items that
		// reference digests still missing from the cache.
		for _, it := range req.Items {
			if !it.Archive.IsZero() && !tm.blobs.Has(it.Archive.Digest) {
				resp.Rejected[it.Spec.Name] = err.Error()
			}
		}
	}
	resp.Fetched = fetched
	for _, it := range req.Items {
		if _, done := resp.Rejected[it.Spec.Name]; done {
			continue
		}
		if reason := tm.assignOne(req.JobID, req.JobManager, req.ClientNode, it); reason != "" {
			resp.Rejected[it.Spec.Name] = reason
			tm.logf("reject %s: %s", key(req.JobID, it.Spec.Name), reason)
		}
	}
	return m.Reply(msg.KindTasksAssigned, msg.MustEncode(resp))
}

// ensureBlobs makes every digest referenced by items resident in the blob
// cache, pulling missing ones from the JobManager in a single fetch. It
// returns how many blobs were transferred. Digest verification happens
// here: a fetched blob whose bytes do not hash to the requested digest is
// discarded.
func (tm *TaskManager) ensureBlobs(jmNode, jobID string, items []protocol.TaskCreate) (int, error) {
	names := make(map[string]string) // digest -> archive name
	var need []string
	for _, it := range items {
		ref := it.Archive
		if ref.IsZero() || ref.Digest == "" {
			continue
		}
		if _, seen := names[ref.Digest]; seen {
			continue
		}
		names[ref.Digest] = ref.Name
		if !tm.blobs.Has(ref.Digest) {
			need = append(need, ref.Digest)
		}
	}
	if len(need) == 0 {
		return 0, nil
	}
	if tm.cfg.Fetch == nil {
		return 0, fmt.Errorf("archive blob not cached and no fetch path configured")
	}
	blobs, err := tm.cfg.Fetch(jmNode, jobID, need)
	if err != nil {
		return 0, fmt.Errorf("fetch archive blobs: %v", err)
	}
	stored := 0
	for _, digest := range need {
		raw, ok := blobs[digest]
		if !ok {
			err = fmt.Errorf("archive blob %.12s… unavailable from %s", digest, jmNode)
			continue
		}
		a, openErr := archive.Open(names[digest], raw)
		if openErr != nil {
			err = fmt.Errorf("bad archive: %v", openErr)
			continue
		}
		if a.Digest() != digest {
			err = fmt.Errorf("archive digest mismatch for %.12s…", digest)
			continue
		}
		if putErr := tm.blobs.Put(a); putErr != nil {
			err = putErr
			continue
		}
		stored++
	}
	return stored, err
}

// assignOne validates and reserves a single task whose archive (if any) is
// already resident. It returns "" on success or the rejection reason.
func (tm *TaskManager) assignOne(jobID, jobManager, clientNode string, it protocol.TaskCreate) string {
	sp := it.Spec
	if !it.Archive.IsZero() && it.Archive.Digest != "" {
		a, ok := tm.blobs.Get(it.Archive.Digest)
		if !ok {
			return fmt.Sprintf("archive blob %.12s… unavailable", it.Archive.Digest)
		}
		if a.Manifest.TaskClass != sp.Class {
			return fmt.Sprintf("archive manifest class %q does not match spec class %q",
				a.Manifest.TaskClass, sp.Class)
		}
	}
	if !tm.registry.Has(sp.Class) {
		return fmt.Sprintf("class %q not deployable on this node", sp.Class)
	}

	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.closed {
		return "task manager shut down"
	}
	k := key(jobID, sp.Name)
	if _, dup := tm.assigned[k]; dup {
		return "task already assigned"
	}
	if tm.freeMB < sp.Req.MemoryMB {
		return fmt.Sprintf("insufficient memory: need %d MB, free %d MB", sp.Req.MemoryMB, tm.freeMB)
	}
	tm.freeMB -= sp.Req.MemoryMB
	a := &assignment{
		jobID:      jobID,
		clientNode: clientNode,
		spec:       sp,
		mailbox:    msg.NewMailbox(tm.cfg.MailboxCap),
		stopped:    make(chan struct{}),
	}
	a.setJM(jobManager)
	tm.assigned[k] = a
	tm.log.Info("task assigned", "job", jobID, "task", sp.Name, "class", sp.Class, "mem_mb", sp.Req.MemoryMB)
	return ""
}

// ReleaseIfUnstarted drops a single assignment and frees its memory
// reservation, but only when the task never began executing — the exec
// dispatch failure path, where a reported TaskFailed would otherwise leave
// the reservation held until the whole job is cancelled. Started tasks are
// left alone (their reservation is released by execute's epilogue).
func (tm *TaskManager) ReleaseIfUnstarted(jobID, taskName string) bool {
	tm.mu.Lock()
	k := key(jobID, taskName)
	a, ok := tm.assigned[k]
	if !ok || a.started.Load() {
		tm.mu.Unlock()
		return false
	}
	tm.freeMB += a.spec.Req.MemoryMB
	delete(tm.assigned, k)
	tm.mu.Unlock()
	a.cancel()
	tm.logf("released unstarted %s (%d MB)", k, a.spec.Req.MemoryMB)
	return true
}

// ErrAlreadyStarted reports a duplicate exec for a task that is already
// running. Under at-least-once re-dispatch (recovery re-exec, failover
// adoption) duplicates are expected and benign: the running copy will
// report its own terminal event.
var ErrAlreadyStarted = errors.New("task already started")

// HandleStart processes a KindStartTask from the JobManager for one task.
// tc is the trace context the exec dispatch carried (zero when untraced);
// the execute goroutine parents its spans to it.
func (tm *TaskManager) HandleStart(jobID, taskName string, tc trace.Context) error {
	tm.mu.Lock()
	a, ok := tm.assigned[key(jobID, taskName)]
	closed := tm.closed
	tm.mu.Unlock()
	if closed {
		return fmt.Errorf("taskmgr %s: shut down", tm.cfg.Node)
	}
	if !ok {
		return fmt.Errorf("taskmgr %s: task %s not assigned", tm.cfg.Node, key(jobID, taskName))
	}
	if !a.started.CompareAndSwap(false, true) {
		return fmt.Errorf("taskmgr %s: task %s: %w", tm.cfg.Node, key(jobID, taskName), ErrAlreadyStarted)
	}
	a.trace = tc
	tm.mu.Lock()
	tm.running++
	tm.wg.Add(1)
	tm.mu.Unlock()
	go tm.execute(a)
	return nil
}

// execute runs one task to completion on its own goroutine (the paper's
// "separate thread"), reporting lifecycle events to the JobManager.
func (tm *TaskManager) execute(a *assignment) {
	defer tm.wg.Done()
	from := msg.Address{Node: tm.cfg.Node, Job: a.jobID, Task: a.spec.Name}

	tm.event(msg.KindTaskStarted, a, "")

	ea := tm.tracer.StartSpan(a.trace, "tm.exec").SetJob(a.jobID).SetTask(a.spec.Name)
	tc := ea.Context()
	if tc.IsZero() {
		// Tracer-less node on a traced job: pass the dispatch context
		// through unchanged so downstream calls stay connected.
		tc = a.trace
	}
	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				// Both run models confine panics: a crashing task must not
				// take down the server. RUN_AS_PROCESS semantics (paper's
				// isolation) are the default in Go's goroutine model.
				runErr = fmt.Errorf("task panic: %v", r)
			}
		}()
		t, err := tm.registry.New(a.spec.Class)
		if err != nil {
			runErr = err
			return
		}
		ctx := &execContext{tm: tm, a: a, self: from, trace: tc}
		runErr = t.Run(ctx)
	}()
	ea.End(runErr)

	tm.mu.Lock()
	tm.running--
	tm.freeMB += a.spec.Req.MemoryMB
	delete(tm.assigned, key(a.jobID, a.spec.Name))
	tm.mu.Unlock()
	a.mailbox.Close()

	if runErr != nil {
		tm.event(msg.KindTaskFailed, a, runErr.Error())
		return
	}
	tm.event(msg.KindTaskCompleted, a, "")
}

// event reports a lifecycle event to the JobManager. The owning manager is
// resolved at send time: an assignment adopted mid-run reports its terminal
// event to the survivor, not the dead origin. Terminal events drain the
// task's locally recorded spans into the payload so they join the
// JobManager's per-job timeline exactly once.
func (tm *TaskManager) event(kind msg.Kind, a *assignment, errText string) {
	jmNode := a.jm()
	ev := protocol.TaskEvent{JobID: a.jobID, Task: a.spec.Name, Node: tm.cfg.Node, Err: errText}
	if kind == msg.KindTaskCompleted || kind == msg.KindTaskFailed {
		ev.Spans = tm.tracer.Store().Take(a.jobID, a.spec.Name)
	}
	m := protocol.Body(kind,
		msg.Address{Node: tm.cfg.Node, Job: a.jobID, Task: a.spec.Name},
		msg.Address{Node: jmNode, Job: a.jobID},
		ev)
	m.Trace = a.trace
	if err := tm.send(jmNode, m); err != nil {
		tm.logf("event %s for %s: %v", kind, key(a.jobID, a.spec.Name), err)
	}
}

// HandleAdopt processes a KindJMAdopt from a surviving JobManager that is
// re-homing a dead peer's job: every assignment of the job is re-pointed at
// the new manager and the reply lists which of the checkpointed tasks are
// still held here. Last adopter wins — a split-brain double adoption
// converges on whichever survivor re-points last, and the loser's
// heartbeat ack marks the job unknown, releasing nothing it still owns.
func (tm *TaskManager) HandleAdopt(m *msg.Message) *msg.Message {
	var req protocol.JMAdoptReq
	if err := protocol.Decode(m, &req); err != nil {
		tm.logf("bad adopt: %v", err)
		return m.Reply(msg.KindJMAdopt, msg.MustEncode(protocol.JMAdoptResp{Node: tm.cfg.Node}))
	}
	resp := protocol.JMAdoptResp{Node: tm.cfg.Node}
	tm.mu.Lock()
	for _, a := range tm.assigned {
		if a.jobID != req.JobID {
			continue
		}
		a.setJM(req.NewManager)
		resp.Present = append(resp.Present, protocol.TaskBeat{
			JobID:    a.jobID,
			Task:     a.spec.Name,
			Running:  a.started.Load() && !a.cancelled.Load(),
			Progress: a.progress.Load(),
		})
	}
	tm.mu.Unlock()
	sort.Slice(resp.Present, func(i, j int) bool { return resp.Present[i].Task < resp.Present[j].Task })
	tm.log.Info("job re-pointed at new manager", "job", req.JobID, "manager", req.NewManager, "assignments", len(resp.Present))
	return m.Reply(msg.KindJMAdopt, msg.MustEncode(resp))
}

// HandleUser routes an inbound user message to the target task's mailbox.
// Delivery never blocks the caller: when a mailbox is at capacity the put
// falls back to a goroutine, sacrificing order only under backpressure.
func (tm *TaskManager) HandleUser(m *msg.Message) error {
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return fmt.Errorf("taskmgr %s: bad user payload: %w", tm.cfg.Node, err)
	}
	tm.mu.Lock()
	a, ok := tm.assigned[key(p.JobID, p.ToTask)]
	tm.mu.Unlock()
	if !ok {
		return fmt.Errorf("taskmgr %s: user message for unknown task %s", tm.cfg.Node, key(p.JobID, p.ToTask))
	}
	err := a.mailbox.TryPut(m)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, msg.ErrFull):
		go func() {
			if err := a.mailbox.Put(m); err != nil {
				tm.logf("deliver to %s: %v", p.ToTask, err)
			}
		}()
		return nil
	default:
		return fmt.Errorf("taskmgr %s: deliver to %s: %w", tm.cfg.Node, p.ToTask, err)
	}
}

// HandleCancel cancels a job's tasks on this node: mailboxes close (Recv
// returns ErrStopped) and Done() turns true so tasks can exit. An empty
// tasks list cancels every task of the job; a non-empty list cancels only
// the named ones (a batch rollback must not touch the job's other
// assignments).
func (tm *TaskManager) HandleCancel(jobID string, tasks ...string) {
	only := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		only[t] = true
	}
	match := func(a *assignment) bool {
		return a.jobID == jobID && (len(only) == 0 || only[a.spec.Name])
	}
	tm.mu.Lock()
	var toCancel []*assignment
	for _, a := range tm.assigned {
		if match(a) {
			toCancel = append(toCancel, a)
		}
	}
	tm.mu.Unlock()
	for _, a := range toCancel {
		a.cancel()
	}
	// Unstarted assignments release their reservation immediately.
	tm.mu.Lock()
	for k, a := range tm.assigned {
		if match(a) && !a.started.Load() {
			tm.freeMB += a.spec.Req.MemoryMB
			delete(tm.assigned, k)
		}
	}
	tm.mu.Unlock()
}

// Close stops accepting work and waits for running tasks to finish; their
// mailboxes are closed first so blocked Recv calls unblock.
func (tm *TaskManager) Close() {
	tm.mu.Lock()
	if tm.closed {
		tm.mu.Unlock()
		return
	}
	tm.closed = true
	for _, a := range tm.assigned {
		a.cancel()
	}
	tm.mu.Unlock()
	close(tm.stop)
	tm.wg.Wait()
}

// execContext implements task.Context for one running task. The owning
// JobManager's node is resolved per operation (never cached) so an adopted
// assignment's messages and tuple-space calls follow the job to its new
// manager.
type execContext struct {
	tm   *TaskManager
	a    *assignment
	self msg.Address
	// trace is the context the task's outbound calls carry: the tm.exec
	// span when this node records spans, else the dispatch context as-is
	// (so a traced job stays connected even on tracer-less nodes).
	trace trace.Context
}

// TaskName implements task.Context.
func (c *execContext) TaskName() string { return c.a.spec.Name }

// JobID implements task.Context.
func (c *execContext) JobID() string { return c.a.jobID }

// NodeName implements task.Context.
func (c *execContext) NodeName() string { return c.tm.cfg.Node }

// Params implements task.Context.
func (c *execContext) Params() []task.Param {
	return append([]task.Param(nil), c.a.spec.Params...)
}

// send routes a user payload through the JobManager conduit.
func (c *execContext) send(kind msg.Kind, toTask string, payload []byte) error {
	if c.a.cancelled.Load() {
		return task.ErrStopped
	}
	p := protocol.UserPayload{
		JobID:    c.a.jobID,
		FromTask: c.a.spec.Name,
		ToTask:   toTask,
		Data:     payload,
	}
	jmNode := c.a.jm()
	m := protocol.Body(kind, c.self, msg.Address{Node: jmNode, Job: c.a.jobID, Task: toTask}, p)
	if err := c.tm.send(jmNode, m); err != nil {
		return fmt.Errorf("task %s: send to %s: %w", c.a.spec.Name, toTask, err)
	}
	c.a.progress.Add(1)
	return nil
}

// Send implements task.Context.
func (c *execContext) Send(toTask string, payload []byte) error {
	if toTask == "" {
		return fmt.Errorf("task %s: send: empty destination", c.a.spec.Name)
	}
	return c.send(msg.KindUser, toTask, payload)
}

// SendClient implements task.Context.
func (c *execContext) SendClient(payload []byte) error {
	return c.send(msg.KindUser, protocol.ClientTaskName, payload)
}

// Broadcast implements task.Context.
func (c *execContext) Broadcast(payload []byte) error {
	return c.send(msg.KindBroadcast, "", payload)
}

// Recv implements task.Context.
func (c *execContext) Recv() (string, []byte, error) {
	m, err := c.a.mailbox.Get()
	if err != nil {
		return "", nil, task.ErrStopped
	}
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return "", nil, fmt.Errorf("task %s: recv: %w", c.a.spec.Name, err)
	}
	c.a.progress.Add(1)
	return p.FromTask, p.Data, nil
}

// tsDo performs one tuple-space wire call to the job's hosting JobManager
// through the shared protocol.TSWire contract — re-placed tasks carry the
// same jobManager, so a recovered instance transparently reconnects to
// the same space. Each call is bounded by TSCallTimeout (a dead
// JobManager fails the operation instead of hanging the task) and
// aborted early when the task is cancelled or the TaskManager shuts
// down, so a parked In never outlives its node.
func (c *execContext) tsDo(kind msg.Kind, req protocol.TSOpReq) (*protocol.TSOpResp, error) {
	if c.tm.cfg.Call == nil {
		return nil, fmt.Errorf("task %s: tuple space unavailable: no call path configured", c.a.spec.Name)
	}
	if c.a.cancelled.Load() {
		return nil, task.ErrStopped
	}
	wire := &protocol.TSWire{
		JobID:    c.a.jobID,
		FromTask: c.a.spec.Name,
		From:     c.self,
		To:       msg.Address{Node: c.a.jm(), Job: c.a.jobID},
		Trace:    c.trace,
		Call:     c.tm.cfg.Call,
		Send:     c.tm.send,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-c.tm.stop:
			cancel()
		case <-c.a.stopped:
			cancel()
		case <-ctx.Done():
		}
	}()
	resp, err := wire.Do(ctx, kind, req)
	if err != nil {
		if c.a.cancelled.Load() {
			return nil, task.ErrStopped
		}
		return nil, fmt.Errorf("task %s: %w", c.a.spec.Name, err)
	}
	c.a.progress.Add(1)
	return resp, nil
}

// Out implements task.Context.
func (c *execContext) Out(t tuplespace.Tuple) error {
	return protocol.TSOut(c.tsDo, t)
}

// In implements task.Context.
func (c *execContext) In(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSBlocking(c.tsDo, msg.KindTSIn, tpl)
}

// Rd implements task.Context.
func (c *execContext) Rd(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSBlocking(c.tsDo, msg.KindTSRd, tpl)
}

// InP implements task.Context.
func (c *execContext) InP(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSProbe(c.tsDo, msg.KindTSInP, tpl)
}

// RdP implements task.Context.
func (c *execContext) RdP(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSProbe(c.tsDo, msg.KindTSRdP, tpl)
}

// Logf implements task.Context.
func (c *execContext) Logf(format string, args ...any) {
	c.tm.logf("task %s: "+format, append([]any{key(c.a.jobID, c.a.spec.Name)}, args...)...)
}

// Done implements task.Context.
func (c *execContext) Done() bool { return c.a.cancelled.Load() }
