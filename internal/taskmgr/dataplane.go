// TaskManager side of the direct task-to-task data plane.
//
// Put publishes a task's output into the node's content-addressed blob
// cache and advertises the location to the job's JobManager (KindDataPut);
// Get resolves a key (KindDataResolve) and pulls the bytes straight from
// the producing TaskManager with KindDataFetch chunk pulls — the same
// framing as the archive BLOB_CHUNK stream, digest-verified on reassembly.
// The JobManager never relays payloads; at most it serves the inline copies
// small adverts carry.

package taskmgr

import (
	"context"
	"fmt"
	"time"

	"cn/internal/archive"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// dataFetchTimeout bounds one TM→TM chunk-pull round trip.
const dataFetchTimeout = 5 * time.Second

// HandleDataFetch answers a peer TaskManager's pull for one chunk of a
// data-plane blob held in this node's cache. The reply aliases the cached
// bytes (cache entries are immutable), so serving costs no copy.
func (tm *TaskManager) HandleDataFetch(m *msg.Message) *msg.Message {
	ack := func(resp protocol.BlobChunkResp) *msg.Message {
		return m.Reply(msg.KindBlobChunkAck, msg.MustEncode(resp))
	}
	var req protocol.BlobChunkReq
	if err := protocol.Decode(m, &req); err != nil {
		return ack(protocol.BlobChunkResp{Err: "bad data-fetch request: " + err.Error()})
	}
	raw, ok := tm.blobs.GetBlob(req.Digest)
	if !ok {
		return ack(protocol.BlobChunkResp{Digest: req.Digest,
			Err: fmt.Sprintf("blob %.12s… not cached on %s", req.Digest, tm.cfg.Node)})
	}
	max := req.MaxBytes
	if max <= 0 || max > protocol.BlobChunkBytes {
		max = protocol.BlobChunkBytes
	}
	total := int64(len(raw))
	if req.Offset < 0 || req.Offset >= total {
		return ack(protocol.BlobChunkResp{Digest: req.Digest, Total: total,
			Err: fmt.Sprintf("offset %d out of range (blob is %d bytes)", req.Offset, total)})
	}
	end := req.Offset + max
	if end > total {
		end = total
	}
	tm.dataServedBytes.Add(end - req.Offset)
	return ack(protocol.BlobChunkResp{Digest: req.Digest, Offset: req.Offset, Total: total, Data: raw[req.Offset:end]})
}

// fetchData chunk-pulls one content-addressed data-plane blob from a peer
// TaskManager and digest-verifies the reassembly, mirroring the server's
// archive pull loop.
func (tm *TaskManager) fetchData(ctx context.Context, node, jobID, digest string, size int64) ([]byte, error) {
	if size <= 0 || size > protocol.MaxBlobBytes {
		return nil, fmt.Errorf("advertised blob size %d out of bounds", size)
	}
	data := make([]byte, 0, size)
	for int64(len(data)) < size {
		req := protocol.BlobChunkReq{
			JobID:    jobID,
			Digest:   digest,
			Offset:   int64(len(data)),
			MaxBytes: protocol.BlobChunkBytes,
		}
		m := protocol.Body(msg.KindDataFetch,
			msg.Address{Node: tm.cfg.Node, Job: jobID},
			msg.Address{Node: node, Job: jobID},
			req)
		cctx, cancel := context.WithTimeout(ctx, dataFetchTimeout)
		reply, err := tm.cfg.Call(cctx, node, m)
		cancel()
		if err != nil {
			return nil, err
		}
		var chunk protocol.BlobChunkResp
		if err := protocol.Decode(reply, &chunk); err != nil {
			return nil, err
		}
		if chunk.Err != "" {
			return nil, fmt.Errorf("chunk at %d: %s", len(data), chunk.Err)
		}
		if chunk.Offset != int64(len(data)) || len(chunk.Data) == 0 || chunk.Total != size {
			return nil, fmt.Errorf("chunk reply out of step: offset %d len %d total %d (have %d of %d)",
				chunk.Offset, len(chunk.Data), chunk.Total, len(data), size)
		}
		data = append(data, chunk.Data...)
	}
	if got := archive.DigestBytes(data); got != digest {
		return nil, fmt.Errorf("reassembled blob hashes to %.12s…, want %.12s…", got, digest)
	}
	tm.dataFetchedBytes.Add(size)
	return data, nil
}

// DataServedBytes returns how many data-plane payload bytes this node served
// to peer TaskManagers (the producer side of TM→TM transfers).
func (tm *TaskManager) DataServedBytes() int64 { return tm.dataServedBytes.Load() }

// DataFetchedBytes returns how many data-plane payload bytes this node
// pulled from peer TaskManagers (the consumer side).
func (tm *TaskManager) DataFetchedBytes() int64 { return tm.dataFetchedBytes.Load() }

// dataWire builds the running task's wire attachment to its job's
// data-plane broker, aimed at the JobManager owning the job right now —
// resolved per attempt so adopted assignments follow the job.
func (c *execContext) dataWire(jmNode string) *protocol.DataWire {
	return &protocol.DataWire{
		JobID:    c.a.jobID,
		FromTask: c.a.spec.Name,
		From:     c.self,
		To:       msg.Address{Node: jmNode, Job: c.a.jobID},
		Trace:    c.trace,
		Call:     c.tm.cfg.Call,
	}
}

// dataCtx derives a context that additionally aborts when the task is
// cancelled or the TaskManager shuts down, so a parked resolve never
// outlives its node.
func (c *execContext) dataCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	dctx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-c.tm.stop:
			cancel()
		case <-c.a.stopped:
			cancel()
		case <-dctx.Done():
		}
	}()
	return dctx, cancel
}

// Put implements task.Context: publish payload under key. The bytes land in
// the node's blob cache (where peer fetches are served from) and only the
// content-addressed location travels to the JobManager; payloads at most
// protocol.DataInlineMax ride along inline so the advert itself can answer
// consumers. A traced task records the whole publish as a tm.shuffle.put
// span.
func (c *execContext) Put(key string, payload []byte) error {
	pa := c.tm.tracer.StartSpan(c.trace, "tm.shuffle.put").SetJob(c.a.jobID).SetTask(c.a.spec.Name)
	err := c.put(key, payload)
	pa.End(err)
	return err
}

func (c *execContext) put(key string, payload []byte) error {
	if key == "" {
		return fmt.Errorf("task %s: put: empty key", c.a.spec.Name)
	}
	if c.tm.cfg.Call == nil {
		return fmt.Errorf("task %s: data plane unavailable: no call path configured", c.a.spec.Name)
	}
	if c.a.cancelled.Load() {
		return task.ErrStopped
	}
	if int64(len(payload)) > protocol.MaxBlobBytes {
		return fmt.Errorf("task %s: put %q: payload %d bytes exceeds max %d",
			c.a.spec.Name, key, len(payload), int64(protocol.MaxBlobBytes))
	}
	// Own copy: the caller may reuse its buffer, but the cache entry (and
	// the chunks served from it) must stay immutable.
	data := append([]byte(nil), payload...)
	digest := archive.DigestBytes(data)
	c.tm.blobs.PutBlob(digest, data)
	var inline []byte
	if len(data) > 0 && len(data) <= protocol.DataInlineMax {
		inline = data
	}
	ctx, cancel := c.dataCtx(context.Background())
	defer cancel()
	for {
		jmNode := c.a.jm()
		err := c.dataWire(jmNode).Put(ctx, key, digest, int64(len(data)), inline)
		if err == nil {
			c.a.progress.Add(1)
			return nil
		}
		if c.a.cancelled.Load() {
			return task.ErrStopped
		}
		if ctx.Err() == nil && c.a.jm() != jmNode {
			continue // the job was adopted mid-call; retry at the survivor
		}
		return fmt.Errorf("task %s: %w", c.a.spec.Name, err)
	}
}

// Get implements task.Context: resolve key at the JobManager and pull its
// payload. Inline answers and locally cached digests return without a
// TM→TM round trip; otherwise the bytes are chunk-pulled from the
// producing node. A fetch that fails (the producer died under the advert)
// re-resolves with a stale hint — the JobManager drops the dead location
// and parks the resolve until the recovered producer re-publishes. A traced
// task records the whole resolve+pull as a tm.shuffle.get span.
func (c *execContext) Get(ctx context.Context, key string) ([]byte, error) {
	ga := c.tm.tracer.StartSpan(c.trace, "tm.shuffle.get").SetJob(c.a.jobID).SetTask(c.a.spec.Name)
	data, err := c.get(ctx, key)
	ga.End(err)
	return data, err
}

func (c *execContext) get(ctx context.Context, key string) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("task %s: get: empty key", c.a.spec.Name)
	}
	if c.tm.cfg.Call == nil {
		return nil, fmt.Errorf("task %s: data plane unavailable: no call path configured", c.a.spec.Name)
	}
	if c.a.cancelled.Load() {
		return nil, task.ErrStopped
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dctx, cancel := c.dataCtx(ctx)
	defer cancel()

	staleNode, staleDigest := "", ""
	for {
		jmNode := c.a.jm()
		resp, err := c.dataWire(jmNode).Resolve(dctx, key, staleNode, staleDigest)
		if err != nil {
			if c.a.cancelled.Load() {
				return nil, task.ErrStopped
			}
			if dctx.Err() == nil && c.a.jm() != jmNode {
				continue // the job was adopted mid-call; retry at the survivor
			}
			return nil, fmt.Errorf("task %s: %w", c.a.spec.Name, err)
		}
		staleNode, staleDigest = "", ""
		if resp.Size == 0 {
			c.a.progress.Add(1)
			return []byte{}, nil
		}
		if len(resp.Data) > 0 {
			// Inline answer (from the advert or a JM-held survivor copy).
			data := append([]byte(nil), resp.Data...)
			if archive.DigestBytes(data) != resp.Digest {
				return nil, fmt.Errorf("task %s: get %q: inline payload digest mismatch", c.a.spec.Name, key)
			}
			c.tm.blobs.PutBlob(resp.Digest, data)
			c.a.progress.Add(1)
			return data, nil
		}
		if raw, ok := c.tm.blobs.GetBlob(resp.Digest); ok {
			c.a.progress.Add(1)
			return raw, nil
		}
		if resp.Node == "" {
			return nil, fmt.Errorf("task %s: get %q: advert has no serving node", c.a.spec.Name, key)
		}
		raw, err := c.tm.fetchData(dctx, resp.Node, c.a.jobID, resp.Digest, resp.Size)
		if err != nil {
			if dctx.Err() != nil {
				if c.a.cancelled.Load() {
					return nil, task.ErrStopped
				}
				return nil, fmt.Errorf("task %s: get %q: %w", c.a.spec.Name, key, dctx.Err())
			}
			c.tm.logf("task %s/%s: fetch %q (%.12s…) from %s failed (%v); re-resolving",
				c.a.jobID, c.a.spec.Name, key, resp.Digest, resp.Node, err)
			staleNode, staleDigest = resp.Node, resp.Digest
			continue
		}
		c.tm.blobs.PutBlob(resp.Digest, raw)
		c.a.progress.Add(1)
		return raw, nil
	}
}
