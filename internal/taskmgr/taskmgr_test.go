package taskmgr

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cn/internal/archive"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// sink collects messages a TaskManager sends out.
type sink struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (s *sink) send(toNode string, m *msg.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, m)
	return nil
}

func (s *sink) waitKind(t *testing.T, kind msg.Kind) *msg.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		for _, m := range s.msgs {
			if m.Kind == kind {
				s.mu.Unlock()
				return m
			}
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no %v message seen", kind)
	return nil
}

func registry(t *testing.T) *task.Registry {
	t.Helper()
	r := task.NewRegistry()
	r.MustRegister("tm.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}

func solicitMsg(spec *task.Spec) *msg.Message {
	return protocol.Body(msg.KindTaskSolicit,
		msg.Address{Node: "jm", Job: "j1"}, msg.Address{},
		protocol.TaskSolicitReq{JobID: "j1", Spec: spec})
}

func assignMsg(spec *task.Spec, ar *archive.Archive) *msg.Message {
	req := protocol.AssignTaskReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client", Spec: spec,
	}
	if ar != nil {
		req.ArchiveName = ar.Name
		req.Archive = ar.Bytes()
		req.Digest = ar.Digest()
	}
	return protocol.Body(msg.KindUploadJar,
		msg.Address{Node: "jm", Job: "j1"}, msg.Address{Node: "tm1"}, req)
}

func spec(name string, memMB int) *task.Spec {
	return &task.Spec{Name: name, Class: "tm.Noop",
		Req: task.Requirements{MemoryMB: memMB, RunModel: task.RunAsThreadInTM}}
}

func TestSolicitRespectsMemory(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 500, Registry: registry(t)}, s.send)
	defer tm.Close()
	if r := tm.HandleSolicit(solicitMsg(spec("big", 1000))); r != nil {
		t.Error("over-capacity solicit answered")
	}
	r := tm.HandleSolicit(solicitMsg(spec("fits", 400)))
	if r == nil {
		t.Fatal("fitting solicit unanswered")
	}
	var offer protocol.TMOffer
	if err := protocol.Decode(r, &offer); err != nil {
		t.Fatal(err)
	}
	if offer.Node != "tm1" || offer.FreeMemoryMB != 500 {
		t.Errorf("offer = %+v", offer)
	}
}

func TestAssignReservesAndReleasesMemory(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send)
	defer tm.Close()
	sp := spec("t1", 400)
	r := tm.HandleAssign(assignMsg(sp, nil))
	var resp protocol.AssignTaskResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("assign rejected: %s", resp.Reason)
	}
	if tm.FreeMemoryMB() != 600 {
		t.Errorf("free = %d after reservation", tm.FreeMemoryMB())
	}
	if err := tm.HandleStart("j1", "t1"); err != nil {
		t.Fatal(err)
	}
	s.waitKind(t, msg.KindTaskCompleted)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && tm.FreeMemoryMB() != 1000 {
		time.Sleep(time.Millisecond)
	}
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after completion, want 1000", tm.FreeMemoryMB())
	}
}

func TestAssignRejections(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 500, Registry: registry(t)}, s.send)
	defer tm.Close()

	check := func(m *msg.Message, wantReason string) {
		t.Helper()
		var resp protocol.AssignTaskResp
		if err := protocol.Decode(tm.HandleAssign(m), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.OK {
			t.Fatalf("assign accepted, wanted rejection %q", wantReason)
		}
		if !strings.Contains(resp.Reason, wantReason) {
			t.Errorf("reason = %q, want %q", resp.Reason, wantReason)
		}
	}

	check(assignMsg(spec("big", 900), nil), "insufficient memory")
	check(assignMsg(&task.Spec{Name: "x", Class: "tm.Unknown",
		Req: task.Requirements{MemoryMB: 10}}, nil), "not deployable")

	// Duplicate assignment.
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("dup", 10), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	check(assignMsg(spec("dup", 10), nil), "already assigned")

	// Archive whose manifest class does not match the spec.
	bad, err := archive.NewBuilder("bad.jar", "tm.SomethingElse").Build()
	if err != nil {
		t.Fatal(err)
	}
	check(assignMsg(spec("pkg", 10), bad), "does not match")

	// Digest mismatch.
	good, err := archive.NewBuilder("good.jar", "tm.Noop").Build()
	if err != nil {
		t.Fatal(err)
	}
	m := assignMsg(spec("dig", 10), good)
	var req protocol.AssignTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		t.Fatal(err)
	}
	req.Digest = "wrong"
	check(protocol.Body(msg.KindUploadJar, m.From, m.To, req), "digest mismatch")
}

func TestStartErrors(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	defer tm.Close()
	if err := tm.HandleStart("j1", "ghost"); err == nil {
		t.Error("starting unassigned task accepted")
	}
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("t", 10), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	if err := tm.HandleStart("j1", "t"); err != nil {
		t.Fatal(err)
	}
	if err := tm.HandleStart("j1", "t"); err == nil {
		t.Error("double start accepted")
	}
	s.waitKind(t, msg.KindTaskCompleted)
}

func TestCancelReleasesUnstarted(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send)
	defer tm.Close()
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("idle", 300), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	if tm.FreeMemoryMB() != 700 {
		t.Fatalf("free = %d", tm.FreeMemoryMB())
	}
	tm.HandleCancel("j1")
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after cancel, want 1000", tm.FreeMemoryMB())
	}
}

func TestUserDeliveryUnknownTask(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	defer tm.Close()
	m := protocol.Body(msg.KindUser, msg.Address{}, msg.Address{},
		protocol.UserPayload{JobID: "j1", ToTask: "ghost"})
	if err := tm.HandleUser(m); err == nil {
		t.Error("delivery to unknown task accepted")
	}
}

func TestCloseIdempotentAndRejectsWork(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	tm.Close()
	tm.Close()
	if r := tm.HandleSolicit(solicitMsg(spec("t", 10))); r != nil {
		t.Error("closed TM answered solicit")
	}
	if err := tm.HandleStart("j1", "t"); err == nil {
		t.Error("closed TM started task")
	}
}
