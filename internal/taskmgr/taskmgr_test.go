package taskmgr

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cn/internal/archive"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
)

// sink collects messages a TaskManager sends out.
type sink struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (s *sink) send(toNode string, m *msg.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, m)
	return nil
}

func (s *sink) waitKind(t *testing.T, kind msg.Kind) *msg.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		for _, m := range s.msgs {
			if m.Kind == kind {
				s.mu.Unlock()
				return m
			}
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no %v message seen", kind)
	return nil
}

func registry(t *testing.T) *task.Registry {
	t.Helper()
	r := task.NewRegistry()
	r.MustRegister("tm.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}

func solicitMsg(spec *task.Spec) *msg.Message {
	return protocol.Body(msg.KindTaskSolicit,
		msg.Address{Node: "jm", Job: "j1"}, msg.Address{},
		protocol.TaskSolicitReq{JobID: "j1", Spec: spec})
}

func assignMsg(spec *task.Spec, ar *archive.Archive) *msg.Message {
	req := protocol.AssignTaskReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client", Spec: spec,
	}
	if ar != nil {
		req.ArchiveName = ar.Name
		req.Archive = ar.Bytes()
		req.Digest = ar.Digest()
	}
	return protocol.Body(msg.KindUploadJar,
		msg.Address{Node: "jm", Job: "j1"}, msg.Address{Node: "tm1"}, req)
}

func spec(name string, memMB int) *task.Spec {
	return &task.Spec{Name: name, Class: "tm.Noop",
		Req: task.Requirements{MemoryMB: memMB, RunModel: task.RunAsThreadInTM}}
}

func TestSolicitRespectsMemory(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 500, Registry: registry(t)}, s.send)
	defer tm.Close()
	if r := tm.HandleSolicit(solicitMsg(spec("big", 1000))); r != nil {
		t.Error("over-capacity solicit answered")
	}
	r := tm.HandleSolicit(solicitMsg(spec("fits", 400)))
	if r == nil {
		t.Fatal("fitting solicit unanswered")
	}
	var offer protocol.TMOffer
	if err := protocol.Decode(r, &offer); err != nil {
		t.Fatal(err)
	}
	if offer.Node != "tm1" || offer.FreeMemoryMB != 500 {
		t.Errorf("offer = %+v", offer)
	}
}

func TestAssignReservesAndReleasesMemory(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send)
	defer tm.Close()
	sp := spec("t1", 400)
	r := tm.HandleAssign(assignMsg(sp, nil))
	var resp protocol.AssignTaskResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("assign rejected: %s", resp.Reason)
	}
	if tm.FreeMemoryMB() != 600 {
		t.Errorf("free = %d after reservation", tm.FreeMemoryMB())
	}
	if err := tm.HandleStart("j1", "t1", trace.Context{}); err != nil {
		t.Fatal(err)
	}
	s.waitKind(t, msg.KindTaskCompleted)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && tm.FreeMemoryMB() != 1000 {
		time.Sleep(time.Millisecond)
	}
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after completion, want 1000", tm.FreeMemoryMB())
	}
}

func TestAssignRejections(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 500, Registry: registry(t)}, s.send)
	defer tm.Close()

	check := func(m *msg.Message, wantReason string) {
		t.Helper()
		var resp protocol.AssignTaskResp
		if err := protocol.Decode(tm.HandleAssign(m), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.OK {
			t.Fatalf("assign accepted, wanted rejection %q", wantReason)
		}
		if !strings.Contains(resp.Reason, wantReason) {
			t.Errorf("reason = %q, want %q", resp.Reason, wantReason)
		}
	}

	check(assignMsg(spec("big", 900), nil), "insufficient memory")
	check(assignMsg(&task.Spec{Name: "x", Class: "tm.Unknown",
		Req: task.Requirements{MemoryMB: 10}}, nil), "not deployable")

	// Duplicate assignment.
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("dup", 10), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	check(assignMsg(spec("dup", 10), nil), "already assigned")

	// Archive whose manifest class does not match the spec.
	bad, err := archive.NewBuilder("bad.jar", "tm.SomethingElse").Build()
	if err != nil {
		t.Fatal(err)
	}
	check(assignMsg(spec("pkg", 10), bad), "does not match")

	// Digest mismatch.
	good, err := archive.NewBuilder("good.jar", "tm.Noop").Build()
	if err != nil {
		t.Fatal(err)
	}
	m := assignMsg(spec("dig", 10), good)
	var req protocol.AssignTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		t.Fatal(err)
	}
	req.Digest = "wrong"
	check(protocol.Body(msg.KindUploadJar, m.From, m.To, req), "digest mismatch")
}

func TestStartErrors(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	defer tm.Close()
	if err := tm.HandleStart("j1", "ghost", trace.Context{}); err == nil {
		t.Error("starting unassigned task accepted")
	}
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("t", 10), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	if err := tm.HandleStart("j1", "t", trace.Context{}); err != nil {
		t.Fatal(err)
	}
	if err := tm.HandleStart("j1", "t", trace.Context{}); err == nil {
		t.Error("double start accepted")
	}
	s.waitKind(t, msg.KindTaskCompleted)
}

func TestCancelReleasesUnstarted(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send)
	defer tm.Close()
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("idle", 300), nil)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}
	if tm.FreeMemoryMB() != 700 {
		t.Fatalf("free = %d", tm.FreeMemoryMB())
	}
	tm.HandleCancel("j1")
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after cancel, want 1000", tm.FreeMemoryMB())
	}
}

// countingFetch serves blobs from a map and counts calls and digests.
type countingFetch struct {
	mu      sync.Mutex
	blobs   map[string][]byte
	calls   int
	digests []string
}

func (f *countingFetch) fetch(jmNode, jobID string, digests []string) (map[string][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	f.digests = append(f.digests, digests...)
	out := make(map[string][]byte, len(digests))
	for _, d := range digests {
		if raw, ok := f.blobs[d]; ok {
			out[d] = raw
		}
	}
	return out, nil
}

func batchMsg(req protocol.AssignTasksReq) *msg.Message {
	return protocol.Body(msg.KindAssignTasks,
		msg.Address{Node: "jm", Job: req.JobID}, msg.Address{Node: "tm1"}, req)
}

func TestBatchAssignSharedDigestFetchesOnce(t *testing.T) {
	// Two tasks referencing the same digest on one node must trigger
	// exactly one blob transfer.
	ar, err := archive.NewBuilder("shared.jar", "tm.Noop").Build()
	if err != nil {
		t.Fatal(err)
	}
	fetch := &countingFetch{blobs: map[string][]byte{ar.Digest(): ar.Bytes()}}
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t), Fetch: fetch.fetch}, s.send)
	defer tm.Close()

	ref := protocol.ArchiveRef{Name: ar.Name, Digest: ar.Digest()}
	r := tm.HandleAssignBatch(batchMsg(protocol.AssignTasksReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client",
		Items: []protocol.TaskCreate{
			{Spec: spec("t1", 100), Archive: ref},
			{Spec: spec("t2", 100), Archive: ref},
		},
	}))
	var resp protocol.AssignTasksResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rejected) != 0 {
		t.Fatalf("rejections: %v", resp.Rejected)
	}
	if resp.Fetched != 1 {
		t.Errorf("fetched = %d blobs, want 1 for a shared digest", resp.Fetched)
	}
	if fetch.calls != 1 || len(fetch.digests) != 1 {
		t.Errorf("fetch calls = %d digests = %v, want one call for one digest", fetch.calls, fetch.digests)
	}
	if tm.BlobCache().Transfers() != 1 {
		t.Errorf("cache transfers = %d, want 1", tm.BlobCache().Transfers())
	}

	// A later batch (another job) reusing the digest costs zero transfers.
	r = tm.HandleAssignBatch(batchMsg(protocol.AssignTasksReq{
		JobID: "j2", JobManager: "jm", ClientNode: "client",
		Items: []protocol.TaskCreate{{Spec: spec("t1", 100), Archive: ref}},
	}))
	var again protocol.AssignTasksResp
	if err := protocol.Decode(r, &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Rejected) != 0 || again.Fetched != 0 {
		t.Errorf("cross-job reuse: rejected=%v fetched=%d, want clean cache hit", again.Rejected, again.Fetched)
	}
	if fetch.calls != 1 {
		t.Errorf("fetch calls = %d after cross-job reuse, want still 1", fetch.calls)
	}
}

func TestCacheHitAssignmentWithRefOnlyExecutes(t *testing.T) {
	// An assignment carrying only an ArchiveRef — no bytes, no fetch path —
	// must execute correctly when the blob is already cached.
	ar, err := archive.NewBuilder("cached.jar", "tm.Noop").Build()
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send) // no Fetch configured
	defer tm.Close()

	// Seed the cache through the legacy inline-upload path.
	if err := protocol.Decode(tm.HandleAssign(assignMsg(spec("seed", 10), ar)), new(protocol.AssignTaskResp)); err != nil {
		t.Fatal(err)
	}

	// Ref-only assignment of a second task sharing the digest.
	r := tm.HandleAssignBatch(batchMsg(protocol.AssignTasksReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client",
		Items: []protocol.TaskCreate{
			{Spec: spec("hit", 10), Archive: protocol.ArchiveRef{Name: ar.Name, Digest: ar.Digest()}},
		},
	}))
	var resp protocol.AssignTasksResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rejected) != 0 || resp.Fetched != 0 {
		t.Fatalf("ref-only assignment: rejected=%v fetched=%d, want cache hit", resp.Rejected, resp.Fetched)
	}
	if tm.BlobCache().Transfers() != 1 {
		t.Errorf("transfers = %d, want 1 (seed upload only)", tm.BlobCache().Transfers())
	}
	if err := tm.HandleStart("j1", "hit", trace.Context{}); err != nil {
		t.Fatal(err)
	}
	s.waitKind(t, msg.KindTaskCompleted)
}

func TestBatchAssignRejectsIndividually(t *testing.T) {
	// One oversubscribed task must reject alone; the rest of the batch
	// lands.
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 500, Registry: registry(t)}, s.send)
	defer tm.Close()
	r := tm.HandleAssignBatch(batchMsg(protocol.AssignTasksReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client",
		Items: []protocol.TaskCreate{
			{Spec: spec("fits", 400)},
			{Spec: spec("nofit", 400)},
			{Spec: &task.Spec{Name: "badclass", Class: "tm.Unknown", Req: task.Requirements{MemoryMB: 10}}},
		},
	}))
	var resp protocol.AssignTasksResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Rejected["fits"]; ok {
		t.Errorf("fits rejected: %v", resp.Rejected)
	}
	if reason := resp.Rejected["nofit"]; !strings.Contains(reason, "insufficient memory") {
		t.Errorf("nofit reason = %q", reason)
	}
	if reason := resp.Rejected["badclass"]; !strings.Contains(reason, "not deployable") {
		t.Errorf("badclass reason = %q", reason)
	}
	if tm.FreeMemoryMB() != 100 {
		t.Errorf("free = %d, want 100 after one 400 MB reservation", tm.FreeMemoryMB())
	}
}

func TestBatchAssignMissingBlobRejectsOnlyAffected(t *testing.T) {
	// No fetch path and an uncached digest: only the referencing task is
	// rejected; archive-less tasks in the same batch still land.
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t)}, s.send)
	defer tm.Close()
	r := tm.HandleAssignBatch(batchMsg(protocol.AssignTasksReq{
		JobID: "j1", JobManager: "jm", ClientNode: "client",
		Items: []protocol.TaskCreate{
			{Spec: spec("plain", 10)},
			{Spec: spec("needsblob", 10), Archive: protocol.ArchiveRef{Name: "x.jar", Digest: "feedfacedeadbeef"}},
		},
	}))
	var resp protocol.AssignTasksResp
	if err := protocol.Decode(r, &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Rejected["plain"]; ok {
		t.Errorf("plain rejected: %v", resp.Rejected)
	}
	if _, ok := resp.Rejected["needsblob"]; !ok {
		t.Error("needsblob accepted without its blob")
	}
}

func TestUserDeliveryUnknownTask(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	defer tm.Close()
	m := protocol.Body(msg.KindUser, msg.Address{}, msg.Address{},
		protocol.UserPayload{JobID: "j1", ToTask: "ghost"})
	if err := tm.HandleUser(m); err == nil {
		t.Error("delivery to unknown task accepted")
	}
}

func TestCloseIdempotentAndRejectsWork(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", Registry: registry(t)}, s.send)
	tm.Close()
	tm.Close()
	if r := tm.HandleSolicit(solicitMsg(spec("t", 10))); r != nil {
		t.Error("closed TM answered solicit")
	}
	if err := tm.HandleStart("j1", "t", trace.Context{}); err == nil {
		t.Error("closed TM started task")
	}
}

func TestHeartbeatCarriesTaskBeats(t *testing.T) {
	s := &sink{}
	tm := New(Config{
		Node: "tm1", MemoryMB: 1000, Registry: registry(t),
		HeartbeatEvery: 5 * time.Millisecond,
	}, s.send)
	defer tm.Close()
	if r := tm.HandleAssign(assignMsg(spec("t1", 100), nil)); r == nil {
		t.Fatal("assign not answered")
	}
	m := s.waitKind(t, msg.KindHeartbeat)
	var hb protocol.Heartbeat
	if err := protocol.Decode(m, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Node != "tm1" {
		t.Errorf("heartbeat node = %q", hb.Node)
	}
	if m.To.Node != "jm" {
		t.Errorf("heartbeat addressed to %q, want the assigning JobManager", m.To.Node)
	}
	// Wait for a beat that includes the assignment (the first beat may have
	// raced the assign call).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		found := false
		for _, mm := range s.msgs {
			if mm.Kind != msg.KindHeartbeat {
				continue
			}
			var b protocol.Heartbeat
			if protocol.Decode(mm, &b) == nil {
				for _, tb := range b.Beats {
					if tb.JobID == "j1" && tb.Task == "t1" && !tb.Running {
						found = true
					}
				}
			}
		}
		s.mu.Unlock()
		if found {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no heartbeat carried the assignment's beat")
}

func TestGoodbyeBeatAfterLastAssignment(t *testing.T) {
	s := &sink{}
	tm := New(Config{
		Node: "tm1", MemoryMB: 1000, Registry: registry(t),
		HeartbeatEvery: 5 * time.Millisecond,
	}, s.send)
	defer tm.Close()
	if r := tm.HandleAssign(assignMsg(spec("t1", 100), nil)); r == nil {
		t.Fatal("assign not answered")
	}
	s.waitKind(t, msg.KindHeartbeat)
	tm.HandleCancel("j1") // releases the only assignment
	// An empty (goodbye) heartbeat must follow.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		goodbye := false
		for _, mm := range s.msgs {
			if mm.Kind != msg.KindHeartbeat {
				continue
			}
			var b protocol.Heartbeat
			if protocol.Decode(mm, &b) == nil && len(b.Beats) == 0 {
				goodbye = true
			}
		}
		s.mu.Unlock()
		if goodbye {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no goodbye beat after the last assignment was released")
}

func TestHeartbeatAckUnknownJobReleasesAssignments(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t), HeartbeatEvery: -1}, s.send)
	defer tm.Close()
	if r := tm.HandleAssign(assignMsg(spec("t1", 400), nil)); r == nil {
		t.Fatal("assign not answered")
	}
	if tm.FreeMemoryMB() != 600 {
		t.Fatalf("free = %d after reservation", tm.FreeMemoryMB())
	}
	ack := protocol.Body(msg.KindHeartbeatAck,
		msg.Address{Node: "jm"}, msg.Address{Node: "tm1"},
		protocol.HeartbeatAck{Node: "jm", UnknownJobs: []string{"j1"}})
	tm.HandleHeartbeatAck(ack)
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after unknown-job ack, want 1000", tm.FreeMemoryMB())
	}
}

func TestReleaseIfUnstarted(t *testing.T) {
	s := &sink{}
	tm := New(Config{Node: "tm1", MemoryMB: 1000, Registry: registry(t), HeartbeatEvery: -1}, s.send)
	defer tm.Close()
	if r := tm.HandleAssign(assignMsg(spec("t1", 400), nil)); r == nil {
		t.Fatal("assign not answered")
	}
	if !tm.ReleaseIfUnstarted("j1", "t1") {
		t.Fatal("release of an unstarted assignment refused")
	}
	if tm.FreeMemoryMB() != 1000 {
		t.Errorf("free = %d after release, want 1000", tm.FreeMemoryMB())
	}
	// Unknown and started tasks are left alone.
	if tm.ReleaseIfUnstarted("j1", "t1") {
		t.Error("double release succeeded")
	}
	if r := tm.HandleAssign(assignMsg(spec("t2", 400), nil)); r == nil {
		t.Fatal("assign not answered")
	}
	if err := tm.HandleStart("j1", "t2", trace.Context{}); err != nil {
		t.Fatal(err)
	}
	if tm.ReleaseIfUnstarted("j1", "t2") {
		t.Error("release of a started task succeeded")
	}
	s.waitKind(t, msg.KindTaskCompleted)
}
