package taskmgr

import (
	"fmt"
	"testing"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// beatBench builds a TaskManager with no heartbeat loop and a no-op send,
// so beatOnce can be driven by hand.
func beatBench(t *testing.T) *TaskManager {
	t.Helper()
	tm := New(Config{Node: "tm0", HeartbeatEvery: -1},
		func(string, *msg.Message) error { return nil })
	t.Cleanup(tm.Close)
	return tm
}

// addFakeAssignment plants a minimal assignment owned by jm — just enough
// state for beatOnce to snapshot.
func addFakeAssignment(tm *TaskManager, jm, jobID, name string) {
	a := &assignment{
		jobID:   jobID,
		spec:    &task.Spec{Name: name},
		mailbox: msg.NewMailbox(1),
		stopped: make(chan struct{}),
	}
	a.setJM(jm)
	tm.mu.Lock()
	tm.assigned[jobID+"/"+name] = a
	tm.mu.Unlock()
}

// TestBeatOnceIdleAllocFree: an idle TaskManager heartbeats forever on
// every node; its beat must settle to zero allocations per tick (it used
// to build two fresh maps every round).
func TestBeatOnceIdleAllocFree(t *testing.T) {
	tm := beatBench(t)
	tm.beatOnce() // warm up: one-time lazy state
	if avg := testing.AllocsPerRun(100, tm.beatOnce); avg != 0 {
		t.Errorf("idle beatOnce allocates %.1f objects/tick, want 0", avg)
	}
}

// TestBeatOnceSteadyStateAllocsBounded: with a live assignment table the
// beat still allocates (messages go on the wire), but the per-tick cost
// must be bounded and stable — the grouping map and its slices are reused,
// so allocations must not scale with how long the manager has been up.
func TestBeatOnceSteadyStateAllocsBounded(t *testing.T) {
	tm := beatBench(t)
	for jm := 0; jm < 3; jm++ {
		for i := 0; i < 4; i++ {
			addFakeAssignment(tm, fmt.Sprintf("jm%d", jm), fmt.Sprintf("job%d", jm), fmt.Sprintf("t%d", i))
		}
	}
	tm.beatOnce() // warm up: scratch map keys and slice capacity
	first := testing.AllocsPerRun(50, tm.beatOnce)
	second := testing.AllocsPerRun(50, tm.beatOnce)
	if first != second {
		t.Errorf("beatOnce allocations drift: %.1f then %.1f objects/tick", first, second)
	}
	// 3 heartbeat messages/tick; the budget covers message + payload
	// construction (protocol.Body serializes each heartbeat) but NOT a
	// rebuilt grouping map, which would add a map, slice headers, and
	// growth reallocations on top every tick.
	const budget = 40.0
	if perJM := first / 3; perJM > budget {
		t.Errorf("beatOnce allocates %.1f objects per heartbeat, want <= %.0f", perJM, budget)
	}
}

// TestBeatOnceGoodbyeSemanticsSurviveReuse: the scratch-map reuse must not
// change the goodbye protocol — a JobManager that loses its last task gets
// exactly one empty beat, then silence.
func TestBeatOnceGoodbyeSemanticsSurviveReuse(t *testing.T) {
	type beat struct {
		jm    string
		tasks int
	}
	var sent []beat
	tm := New(Config{Node: "tm0", HeartbeatEvery: -1},
		func(to string, m *msg.Message) error {
			var hb protocol.Heartbeat
			if err := protocol.Decode(m, &hb); err != nil {
				t.Fatalf("decode heartbeat: %v", err)
			}
			sent = append(sent, beat{jm: to, tasks: len(hb.Beats)})
			return nil
		})
	defer tm.Close()

	addFakeAssignment(tm, "jm1", "job1", "t1")
	tm.beatOnce()
	if len(sent) != 1 || sent[0] != (beat{"jm1", 1}) {
		t.Fatalf("first beat = %v, want one 1-task beat to jm1", sent)
	}

	// The task finishes; the next beat is the goodbye (empty), and after
	// that jm1 hears nothing.
	tm.mu.Lock()
	delete(tm.assigned, "job1/t1")
	tm.mu.Unlock()
	sent = nil
	tm.beatOnce()
	if len(sent) != 1 || sent[0] != (beat{"jm1", 0}) {
		t.Fatalf("post-removal beat = %v, want one goodbye (0 tasks) to jm1", sent)
	}
	sent = nil
	tm.beatOnce()
	tm.beatOnce()
	if len(sent) != 0 {
		t.Fatalf("beats after goodbye = %v, want none", sent)
	}

	// Reappearing assignments resume normal beats on the reused scratch.
	addFakeAssignment(tm, "jm1", "job2", "t9")
	sent = nil
	tm.beatOnce()
	if len(sent) != 1 || sent[0] != (beat{"jm1", 1}) {
		t.Fatalf("beat after re-assignment = %v, want one 1-task beat to jm1", sent)
	}
}
