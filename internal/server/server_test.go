package server_test

import (
	"context"
	"testing"
	"time"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/server"
	"cn/internal/task"
	"cn/internal/transport"
)

func testRegistry() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("srv.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}

// startServer boots one CN server plus a raw protocol client endpoint.
func startServer(t *testing.T) (*server.Server, *transport.Caller) {
	t.Helper()
	net := transport.NewIdealNetwork()
	t.Cleanup(func() { net.Close() })
	srv, err := server.Start(net, server.Config{Node: "n1", Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var caller *transport.Caller
	ep, err := net.Attach("raw-client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = transport.NewCaller(ep)
	return srv, caller
}

func call(t *testing.T, caller *transport.Caller, kind msg.Kind, body any) *msg.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := protocol.Body(kind,
		msg.Address{Node: "raw-client", Task: protocol.ClientTaskName},
		msg.Address{Node: "n1"}, body)
	reply, err := caller.Call(ctx, "n1", m)
	if err != nil {
		t.Fatalf("call %v: %v", kind, err)
	}
	return reply
}

func TestServerAccessors(t *testing.T) {
	srv, _ := startServer(t)
	if srv.Node() != "n1" {
		t.Errorf("Node = %q", srv.Node())
	}
	if srv.JobManager() == nil || srv.TaskManager() == nil {
		t.Error("manager accessors nil")
	}
}

func TestPingPong(t *testing.T) {
	_, caller := startServer(t)
	reply := call(t, caller, msg.KindPing, struct{}{})
	if reply.Kind != msg.KindPong {
		t.Errorf("reply = %v", reply.Kind)
	}
}

func TestRawProtocolJobLifecycle(t *testing.T) {
	// Drive the wire protocol directly: create job, create task, start,
	// observe the terminal state. This pins the message formats the API
	// client relies on.
	srv, caller := startServer(t)

	reply := call(t, caller, msg.KindCreateJob, protocol.CreateJobReq{
		Name: "raw", ClientNode: "raw-client",
	})
	if reply.Kind != msg.KindJobCreated {
		t.Fatalf("create job reply = %v", reply.Kind)
	}
	var created protocol.CreateJobResp
	if err := protocol.Decode(reply, &created); err != nil {
		t.Fatal(err)
	}
	if created.JobID == "" {
		t.Fatal("empty job id")
	}

	spec := &task.Spec{Name: "t", Class: "srv.Noop",
		Req: task.Requirements{MemoryMB: 10, RunModel: task.RunAsThreadInTM}}
	reply = call(t, caller, msg.KindCreateTask, protocol.CreateTaskReq{
		JobID: created.JobID, Spec: spec,
	})
	if reply.Kind != msg.KindTaskAccepted {
		t.Fatalf("create task reply = %v", reply.Kind)
	}
	var placed protocol.CreateTaskResp
	if err := protocol.Decode(reply, &placed); err != nil {
		t.Fatal(err)
	}
	if placed.Placement != "n1" {
		t.Errorf("placement = %q", placed.Placement)
	}

	reply = call(t, caller, msg.KindStartTask, protocol.StartJobReq{JobID: created.JobID})
	if reply.Kind != msg.KindPong {
		t.Fatalf("start reply = %v", reply.Kind)
	}
	// The JOB_COMPLETED event arrives as a non-correlated message; the
	// JobManager's active-job count dropping to zero marks completion.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.JobManager().ActiveJobs() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job never completed; active jobs = %d", srv.JobManager().ActiveJobs())
}

func TestSolicitUnwillingWhenOverMemory(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	srv, err := server.Start(net, server.Config{Node: "tiny", MemoryMB: 100, Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var caller *transport.Caller
	ep, err := net.Attach("probe", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = transport.NewCaller(ep)

	// Solicit with requirements beyond the node's capacity: silence.
	m := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: "probe", Task: protocol.ClientTaskName},
		msg.Address{}, protocol.JobRequirements{MinMemoryMB: 10_000})
	if err := ep.Join(""); err == nil {
		t.Error("empty group join accepted")
	}
	replies, err := caller.Gather(protocol.GroupJobManagers, m, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 0 {
		t.Errorf("over-memory solicit got %d replies", len(replies))
	}

	// Within capacity: one offer.
	m2 := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: "probe", Task: protocol.ClientTaskName},
		msg.Address{}, protocol.JobRequirements{MinMemoryMB: 50})
	replies, err = caller.Gather(protocol.GroupJobManagers, m2, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 {
		t.Errorf("solicit got %d replies, want 1", len(replies))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	srv, err := server.Start(net, server.Config{Node: "x", Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsEmptyNode(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	if _, err := server.Start(net, server.Config{Registry: testRegistry()}); err == nil {
		t.Error("empty node name accepted")
	}
}
