package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cn/internal/archive"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/server"
	"cn/internal/task"
	"cn/internal/transport"
)

func testRegistry() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("srv.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	return r
}

// startServer boots one CN server plus a raw protocol client endpoint.
func startServer(t *testing.T) (*server.Server, *transport.Caller) {
	t.Helper()
	net := transport.NewIdealNetwork()
	t.Cleanup(func() { net.Close() })
	srv, err := server.Start(net, server.Config{Node: "n1", Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var caller *transport.Caller
	ep, err := net.Attach("raw-client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = transport.NewCaller(ep)
	return srv, caller
}

func call(t *testing.T, caller *transport.Caller, kind msg.Kind, body any) *msg.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := protocol.Body(kind,
		msg.Address{Node: "raw-client", Task: protocol.ClientTaskName},
		msg.Address{Node: "n1"}, body)
	reply, err := caller.Call(ctx, "n1", m)
	if err != nil {
		t.Fatalf("call %v: %v", kind, err)
	}
	return reply
}

func TestServerAccessors(t *testing.T) {
	srv, _ := startServer(t)
	if srv.Node() != "n1" {
		t.Errorf("Node = %q", srv.Node())
	}
	if srv.JobManager() == nil || srv.TaskManager() == nil {
		t.Error("manager accessors nil")
	}
}

func TestPingPong(t *testing.T) {
	_, caller := startServer(t)
	reply := call(t, caller, msg.KindPing, struct{}{})
	if reply.Kind != msg.KindPong {
		t.Errorf("reply = %v", reply.Kind)
	}
}

func TestRawProtocolJobLifecycle(t *testing.T) {
	// Drive the wire protocol directly: create job, create task, start,
	// observe the terminal state. This pins the message formats the API
	// client relies on.
	srv, caller := startServer(t)

	reply := call(t, caller, msg.KindCreateJob, protocol.CreateJobReq{
		Name: "raw", ClientNode: "raw-client",
	})
	if reply.Kind != msg.KindJobCreated {
		t.Fatalf("create job reply = %v", reply.Kind)
	}
	var created protocol.CreateJobResp
	if err := protocol.Decode(reply, &created); err != nil {
		t.Fatal(err)
	}
	if created.JobID == "" {
		t.Fatal("empty job id")
	}

	spec := &task.Spec{Name: "t", Class: "srv.Noop",
		Req: task.Requirements{MemoryMB: 10, RunModel: task.RunAsThreadInTM}}
	reply = call(t, caller, msg.KindCreateTask, protocol.CreateTaskReq{
		JobID: created.JobID, Spec: spec,
	})
	if reply.Kind != msg.KindTaskAccepted {
		t.Fatalf("create task reply = %v", reply.Kind)
	}
	var placed protocol.CreateTaskResp
	if err := protocol.Decode(reply, &placed); err != nil {
		t.Fatal(err)
	}
	if placed.Placement != "n1" {
		t.Errorf("placement = %q", placed.Placement)
	}

	reply = call(t, caller, msg.KindStartTask, protocol.StartJobReq{JobID: created.JobID})
	if reply.Kind != msg.KindPong {
		t.Fatalf("start reply = %v", reply.Kind)
	}
	// The JOB_COMPLETED event arrives as a non-correlated message; the
	// JobManager's active-job count dropping to zero marks completion.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.JobManager().ActiveJobs() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job never completed; active jobs = %d", srv.JobManager().ActiveJobs())
}

func TestSolicitUnwillingWhenOverMemory(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	srv, err := server.Start(net, server.Config{Node: "tiny", MemoryMB: 100, Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var caller *transport.Caller
	ep, err := net.Attach("probe", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = transport.NewCaller(ep)

	// Solicit with requirements beyond the node's capacity: silence.
	m := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: "probe", Task: protocol.ClientTaskName},
		msg.Address{}, protocol.JobRequirements{MinMemoryMB: 10_000})
	if err := ep.Join(""); err == nil {
		t.Error("empty group join accepted")
	}
	replies, err := caller.Gather(protocol.GroupJobManagers, m, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 0 {
		t.Errorf("over-memory solicit got %d replies", len(replies))
	}

	// Within capacity: one offer.
	m2 := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: "probe", Task: protocol.ClientTaskName},
		msg.Address{}, protocol.JobRequirements{MinMemoryMB: 50})
	replies, err = caller.Gather(protocol.GroupJobManagers, m2, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 {
		t.Errorf("solicit got %d replies, want 1", len(replies))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	srv, err := server.Start(net, server.Config{Node: "x", Registry: testRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsEmptyNode(t *testing.T) {
	net := transport.NewIdealNetwork()
	defer net.Close()
	if _, err := server.Start(net, server.Config{Registry: testRegistry()}); err == nil {
		t.Error("empty node name accepted")
	}
}

// startMany boots n CN servers on one fabric plus a raw client caller.
func startMany(t *testing.T, n int, cfg server.Config) ([]*server.Server, *transport.Caller) {
	t.Helper()
	net := transport.NewIdealNetwork()
	t.Cleanup(func() { net.Close() })
	servers := make([]*server.Server, n)
	for i := range servers {
		c := cfg
		c.Node = fmt.Sprintf("n%d", i+1)
		if c.Registry == nil {
			c.Registry = testRegistry()
		}
		srv, err := server.Start(net, c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
	}
	var caller *transport.Caller
	ep, err := net.Attach("raw-client", func(m *msg.Message) { caller.Handle(m) })
	if err != nil {
		t.Fatal(err)
	}
	caller = transport.NewCaller(ep)
	return servers, caller
}

func TestBatchCreateTasksPlacesAndDedupsArchives(t *testing.T) {
	reg := testRegistry()
	reg.MustRegister("srv.Pkg", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	servers, caller := startMany(t, 3, server.Config{MemoryMB: 1000, Registry: reg})

	reply := call(t, caller, msg.KindCreateJob, protocol.CreateJobReq{Name: "batch", ClientNode: "raw-client"})
	var created protocol.CreateJobResp
	if err := protocol.Decode(reply, &created); err != nil {
		t.Fatal(err)
	}

	ar, err := archive.NewBuilder("pkg.jar", "srv.Pkg").AddFile("data", []byte("payload")).Build()
	if err != nil {
		t.Fatal(err)
	}
	req := protocol.CreateTasksReq{
		JobID: created.JobID,
		Blobs: map[string][]byte{ar.Digest(): ar.Bytes()},
	}
	const tasks = 9
	for i := 0; i < tasks; i++ {
		req.Tasks = append(req.Tasks, protocol.TaskCreate{
			Spec: &task.Spec{Name: fmt.Sprintf("t%d", i), Class: "srv.Pkg",
				Req: task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM}},
			Archive: protocol.ArchiveRef{Name: ar.Name, Digest: ar.Digest()},
		})
	}
	reply = call(t, caller, msg.KindCreateTasks, req)
	if reply.Kind != msg.KindTasksAccepted {
		t.Fatalf("create tasks reply = %v: %s", reply.Kind, reply.Payload)
	}
	var resp protocol.CreateTasksResp
	if err := protocol.Decode(reply, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Placements) != tasks {
		t.Fatalf("placements = %v", resp.Placements)
	}

	// Content addressing: each node holds the blob at most once however
	// many of the nine tasks landed on it.
	var transfers int64
	usedNodes := make(map[string]bool)
	for _, n := range resp.Placements {
		usedNodes[n] = true
	}
	for _, srv := range servers {
		n := srv.TaskManager().BlobCache().Transfers()
		if n > 1 {
			t.Errorf("node %s transferred the blob %d times", srv.Node(), n)
		}
		if n == 1 && !usedNodes[srv.Node()] {
			t.Errorf("node %s holds the blob but hosts no task", srv.Node())
		}
		transfers += n
	}
	if transfers < 1 || transfers > int64(len(usedNodes)) {
		t.Errorf("cluster transfers = %d for %d used nodes", transfers, len(usedNodes))
	}

	// One batched admission must not have cost one solicitation round per
	// task.
	var rounds int64
	for _, srv := range servers {
		rounds += srv.JobManager().PlacementStats().SolicitRounds
	}
	if rounds > 2 {
		t.Errorf("solicit rounds = %d for one batch, want <= 2", rounds)
	}

	// The batch executes to completion.
	reply = call(t, caller, msg.KindStartTask, protocol.StartJobReq{JobID: created.JobID})
	if reply.Kind != msg.KindPong {
		t.Fatalf("start reply = %v", reply.Kind)
	}
	host := servers[0].JobManager()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if host.ActiveJobs() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("batched job never completed")
}

func TestTombstoneEvictionAndActiveJobCount(t *testing.T) {
	servers, caller := startMany(t, 1, server.Config{TombstoneTTL: 50 * time.Millisecond})
	jm := servers[0].JobManager()

	reply := call(t, caller, msg.KindCreateJob, protocol.CreateJobReq{Name: "tomb", ClientNode: "raw-client"})
	var created protocol.CreateJobResp
	if err := protocol.Decode(reply, &created); err != nil {
		t.Fatal(err)
	}
	spec := &task.Spec{Name: "t", Class: "srv.Noop",
		Req: task.Requirements{MemoryMB: 10, RunModel: task.RunAsThreadInTM}}
	call(t, caller, msg.KindCreateTask, protocol.CreateTaskReq{JobID: created.JobID, Spec: spec})
	call(t, caller, msg.KindStartTask, protocol.StartJobReq{JobID: created.JobID})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && jm.ActiveJobs() != 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if jm.ActiveJobs() != 0 {
		t.Fatal("job never completed")
	}
	// The finished job lingers as a tombstone, then the janitor evicts it
	// and progress queries stop resolving.
	for time.Now().Before(deadline) {
		if _, ok := jm.JobProgress(created.JobID); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("tombstone never evicted")
}

func TestOfferCountsOnlyLiveJobs(t *testing.T) {
	servers, caller := startMany(t, 1, server.Config{TombstoneTTL: -1}) // keep tombstones
	jm := servers[0].JobManager()

	// Run one job to completion so a tombstone exists.
	reply := call(t, caller, msg.KindCreateJob, protocol.CreateJobReq{Name: "done", ClientNode: "raw-client"})
	var created protocol.CreateJobResp
	if err := protocol.Decode(reply, &created); err != nil {
		t.Fatal(err)
	}
	spec := &task.Spec{Name: "t", Class: "srv.Noop",
		Req: task.Requirements{MemoryMB: 10, RunModel: task.RunAsThreadInTM}}
	call(t, caller, msg.KindCreateTask, protocol.CreateTaskReq{JobID: created.JobID, Spec: spec})
	call(t, caller, msg.KindStartTask, protocol.StartJobReq{JobID: created.JobID})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && jm.ActiveJobs() != 0 {
		time.Sleep(2 * time.Millisecond)
	}

	// A JobManager offer must advertise zero active jobs, not the
	// tombstone count.
	sm := protocol.Body(msg.KindJobManagerSolicit,
		msg.Address{Node: "raw-client", Task: protocol.ClientTaskName},
		msg.Address{}, protocol.JobRequirements{})
	replies, err := caller.Gather(protocol.GroupJobManagers, sm, 1, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 {
		t.Fatalf("got %d offers", len(replies))
	}
	var offer protocol.JMOffer
	if err := protocol.Decode(replies[0], &offer); err != nil {
		t.Fatal(err)
	}
	if offer.ActiveJobs != 0 {
		t.Errorf("offer.ActiveJobs = %d, want 0 (tombstones excluded)", offer.ActiveJobs)
	}
}
