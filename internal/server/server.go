// Package server implements CNServer, the servant process of the paper:
// "JobManager and the TaskManager are part of the same process, CNServer,
// which is a servant (since it acts as a client and a server)." A CNServer
// binds one JobManager and one TaskManager to a node's transport endpoint
// and joins the cluster's multicast groups.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"cn/internal/archive"
	"cn/internal/jobmgr"
	"cn/internal/metrics"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/taskmgr"
	"cn/internal/trace"
	"cn/internal/transport"
)

// Config parametrizes one CN server node.
type Config struct {
	// Node is the cluster-unique node name.
	Node string
	// MemoryMB is the task execution capacity (0 = taskmgr default).
	MemoryMB int
	// MaxJobs caps hosted jobs (0 = jobmgr default).
	MaxJobs int
	// Registry resolves task classes (nil = task.Global).
	Registry *task.Registry
	// PlacementTTL bounds the JobManager's cached TaskManager offers
	// (0 = placement default; negative disables offer caching).
	PlacementTTL time.Duration
	// AssignTimeout bounds the JobManager's batch-assignment round trips
	// (0 = jobmgr default).
	AssignTimeout time.Duration
	// TombstoneTTL bounds finished-job tombstone retention in the
	// JobManager (0 = jobmgr default; negative keeps tombstones forever).
	TombstoneTTL time.Duration
	// HeartbeatInterval is the TaskManager beat cadence and the
	// JobManager's lease sizing basis (0 = health default; negative
	// disables heartbeating and failure detection).
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter override the JobManager's lease windows
	// (0 = 3× / 6× the heartbeat interval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// MaxTaskRetries bounds per-task re-placement by the recovery engine
	// (0 = jobmgr default; negative disables recovery).
	MaxTaskRetries int
	// StragglerAfter enables speculative execution of running tasks whose
	// progress sync stalls this long (0 = disabled).
	StragglerAfter time.Duration
	// CheckpointEvery is the JobManager's peer-checkpoint cadence (0 =
	// follow HeartbeatInterval; negative disables checkpointing and
	// JobManager failover).
	CheckpointEvery time.Duration
	// Logf receives diagnostics from both managers; nil disables logging.
	Logf func(format string, args ...any)
	// Log is the structured logger both managers attach their component
	// and node attributes to; when nil, records are bridged through Logf
	// (or discarded when that is nil too).
	Log *slog.Logger
	// TraceSample is the node tracer's root-sampling probability
	// (0 = trace.DefaultSample; negative disables tracing on this node
	// entirely, the pre-observability behavior).
	TraceSample float64
	// Tracer overrides the node's tracer (tests); when nil one is built
	// from TraceSample.
	Tracer *trace.Tracer
	// Metrics is the registry STATS_PULL scrapes report; nil creates a
	// per-node registry.
	Metrics *metrics.Registry
}

// Server is one CN node: endpoint + JobManager + TaskManager.
type Server struct {
	cfg    Config
	ep     transport.Endpoint
	caller *transport.Caller
	jm     *jobmgr.JobManager
	tm     *taskmgr.TaskManager
	tracer *trace.Tracer
	reg    *metrics.Registry
	closed chan struct{}
}

// Start attaches a CN server to the network and joins the JobManager and
// TaskManager multicast groups.
func Start(net transport.Network, cfg Config) (*Server, error) {
	if cfg.Node == "" {
		return nil, fmt.Errorf("server: empty node name")
	}
	s := &Server{cfg: cfg, closed: make(chan struct{})}
	ep, err := net.Attach(cfg.Node, s.handle)
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", cfg.Node, err)
	}
	s.ep = ep
	s.caller = transport.NewCaller(ep)
	s.tracer = cfg.Tracer
	if s.tracer == nil && cfg.TraceSample >= 0 {
		s.tracer = trace.New(trace.Config{Node: cfg.Node, Sample: cfg.TraceSample})
	}
	s.reg = cfg.Metrics
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}

	send := func(toNode string, m *msg.Message) error { return ep.Send(toNode, m) }
	s.tm = taskmgr.New(taskmgr.Config{
		Node:           cfg.Node,
		MemoryMB:       cfg.MemoryMB,
		Registry:       cfg.Registry,
		Fetch:          s.fetchBlobs,
		Call:           s.caller.Call,
		HeartbeatEvery: cfg.HeartbeatInterval,
		Logf:           cfg.Logf,
		Log:            cfg.Log,
		Tracer:         s.tracer,
	}, send)
	s.jm = jobmgr.New(jobmgr.Config{
		Node:              cfg.Node,
		MaxJobs:           cfg.MaxJobs,
		MemoryMB:          cfg.MemoryMB,
		PlacementTTL:      cfg.PlacementTTL,
		AssignTimeout:     cfg.AssignTimeout,
		TombstoneTTL:      cfg.TombstoneTTL,
		HeartbeatInterval: cfg.HeartbeatInterval,
		SuspectAfter:      cfg.SuspectAfter,
		DeadAfter:         cfg.DeadAfter,
		MaxTaskRetries:    cfg.MaxTaskRetries,
		StragglerAfter:    cfg.StragglerAfter,
		CheckpointEvery:   cfg.CheckpointEvery,
		Logf:              cfg.Logf,
		Log:               cfg.Log,
		Tracer:            s.tracer,
	}, send, s.caller, s.tm.FreeMemoryMB)

	if err := ep.Join(protocol.GroupJobManagers); err != nil {
		ep.Close()
		return nil, fmt.Errorf("server %s: %w", cfg.Node, err)
	}
	if err := ep.Join(protocol.GroupTaskManagers); err != nil {
		ep.Close()
		return nil, fmt.Errorf("server %s: %w", cfg.Node, err)
	}
	return s, nil
}

// blobCallTimeout bounds one blob-negotiation round trip (the FetchBlob
// announcement and each individual chunk pull).
const blobCallTimeout = 5 * time.Second

// fetchBlobs is the TaskManager's pull path for archive blobs it lacks: a
// KindFetchBlob call to the assigning JobManager's node. Small blobs ride
// inline in the reply; blobs the JobManager announces by size only are
// streamed chunk by chunk with KindBlobChunk, reassembled here, and
// digest-verified before the TaskManager ever sees them — so a large
// archive never balloons a single frame and a corrupted stream is caught
// at the node boundary.
func (s *Server) fetchBlobs(jmNode, jobID string, digests []string) (map[string][]byte, error) {
	fm := protocol.Body(msg.KindFetchBlob,
		msg.Address{Node: s.cfg.Node},
		msg.Address{Node: jmNode, Job: jobID},
		protocol.FetchBlobReq{JobID: jobID, Digests: digests})
	ctx, cancel := context.WithTimeout(context.Background(), blobCallTimeout)
	defer cancel()
	reply, err := s.caller.Call(ctx, jmNode, fm)
	if err != nil {
		return nil, err
	}
	var resp protocol.FetchBlobResp
	if err := protocol.Decode(reply, &resp); err != nil {
		return nil, err
	}
	out := resp.Blobs
	if out == nil && len(resp.Sizes) > 0 {
		out = make(map[string][]byte, len(resp.Sizes))
	}
	for digest, size := range resp.Sizes {
		raw, err := s.pullBlobChunks(jmNode, jobID, digest, size)
		if err != nil {
			return out, fmt.Errorf("pull blob %.12s…: %w", digest, err)
		}
		out[digest] = raw
	}
	return out, nil
}

// pullBlobChunks streams one announced blob from the JobManager in
// protocol.BlobChunkBytes pieces and verifies the reassembly's digest.
func (s *Server) pullBlobChunks(jmNode, jobID, digest string, size int64) ([]byte, error) {
	if size <= 0 || size > protocol.MaxBlobBytes {
		return nil, fmt.Errorf("announced blob size %d out of bounds", size)
	}
	data := make([]byte, 0, size)
	for int64(len(data)) < size {
		cm := protocol.Body(msg.KindBlobChunk,
			msg.Address{Node: s.cfg.Node},
			msg.Address{Node: jmNode, Job: jobID},
			protocol.BlobChunkReq{
				JobID:    jobID,
				Digest:   digest,
				Offset:   int64(len(data)),
				MaxBytes: protocol.BlobChunkBytes,
			})
		ctx, cancel := context.WithTimeout(context.Background(), blobCallTimeout)
		reply, err := s.caller.Call(ctx, jmNode, cm)
		cancel()
		if err != nil {
			return nil, err
		}
		var chunk protocol.BlobChunkResp
		if err := protocol.Decode(reply, &chunk); err != nil {
			return nil, err
		}
		if chunk.Err != "" {
			return nil, fmt.Errorf("chunk at %d: %s", len(data), chunk.Err)
		}
		if chunk.Offset != int64(len(data)) || len(chunk.Data) == 0 || chunk.Total != size {
			return nil, fmt.Errorf("chunk reply out of step: offset %d len %d total %d (have %d of %d)",
				chunk.Offset, len(chunk.Data), chunk.Total, len(data), size)
		}
		data = append(data, chunk.Data...)
	}
	if got := archive.DigestBytes(data); got != digest {
		return nil, fmt.Errorf("reassembled blob hashes to %.12s…, want %.12s…", got, digest)
	}
	return data, nil
}

// Node returns the server's node name.
func (s *Server) Node() string { return s.cfg.Node }

// TaskManager exposes the node's TaskManager (for tests and metrics).
func (s *Server) TaskManager() *taskmgr.TaskManager { return s.tm }

// JobManager exposes the node's JobManager (for tests and metrics).
func (s *Server) JobManager() *jobmgr.JobManager { return s.jm }

// Tracer exposes the node's span recorder; nil when tracing is disabled.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics exposes the node's metrics registry — the unit STATS_PULL
// scrapes report.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// handleStatsPull answers a KindStatsPull scrape: refresh the registry's
// point-in-time gauges from the managers' live counters, then report the
// whole snapshot plus the span-store depth.
func (s *Server) handleStatsPull(m *msg.Message) *msg.Message {
	var req protocol.StatsPullReq
	if err := protocol.Decode(m, &req); err != nil {
		return nil
	}
	s.reg.Gauge("tm_free_memory_mb").Set(int64(s.tm.FreeMemoryMB()))
	s.reg.Gauge("tm_running_tasks").Set(int64(s.tm.RunningTasks()))
	s.reg.Gauge("data_served_bytes").Set(s.tm.DataServedBytes())
	s.reg.Gauge("data_fetched_bytes").Set(s.tm.DataFetchedBytes())
	s.reg.Gauge("blob_cache_hits").Set(s.tm.BlobCache().Hits())
	s.reg.Gauge("blob_cache_misses").Set(s.tm.BlobCache().Misses())
	s.reg.Gauge("blob_cache_transfers").Set(s.tm.BlobCache().Transfers())
	resp := protocol.StatsReportResp{
		Node:    s.cfg.Node,
		Metrics: s.reg.Snapshot(),
		Spans:   s.tracer.Store().Len(),
	}
	return m.Reply(msg.KindStatsReport, msg.MustEncode(resp))
}

// handle is the endpoint dispatch entry point. Replies to this server's own
// outstanding calls are consumed inline; all other protocol handling runs on
// a fresh goroutine because several handlers (task placement, user routing)
// perform blocking calls of their own and the dispatch loop must stay live.
func (s *Server) handle(m *msg.Message) {
	if s.caller.Handle(m) {
		return
	}
	select {
	case <-s.closed:
		return
	default:
	}
	// Job-scoped traffic is enqueued inline so per-job FIFO order is
	// preserved from the endpoint into the JobManager's serial worker;
	// routed user messages are final TaskManager deliveries.
	switch m.Kind {
	case msg.KindTaskStarted, msg.KindTaskCompleted, msg.KindTaskFailed:
		s.jm.Enqueue(m)
		return
	case msg.KindUser, msg.KindBroadcast:
		if m.Header(protocol.HeaderRouted) != "" {
			if err := s.tm.HandleUser(m); err != nil && s.cfg.Logf != nil {
				s.cfg.Logf("[server %s] deliver user message: %v", s.cfg.Node, err)
			}
			return
		}
		s.jm.Enqueue(m)
		return
	}
	go s.dispatch(m)
}

// dispatch routes one inbound message to the right manager.
func (s *Server) dispatch(m *msg.Message) {
	switch m.Kind {
	// --- JobManager role ---
	case msg.KindJobManagerSolicit:
		s.replyIfAny(m, s.jm.HandleSolicit(m))
	case msg.KindCreateJob:
		s.replyIfAny(m, s.jm.HandleCreateJob(m))
	case msg.KindCreateTask:
		s.replyIfAny(m, s.jm.HandleCreateTask(m))
	case msg.KindCreateTasks:
		s.replyIfAny(m, s.jm.HandleCreateTasks(m))
	case msg.KindFetchBlob:
		s.replyIfAny(m, s.jm.HandleFetchBlob(m))
	case msg.KindBlobChunk:
		s.replyIfAny(m, s.jm.HandleBlobChunk(m))
	case msg.KindTSOut, msg.KindTSIn, msg.KindTSRd, msg.KindTSInP, msg.KindTSRdP:
		// Tuple-space ops against this node's hosted job spaces. Blocking
		// In/Rd park inside the handler; dispatch already runs each
		// message on its own goroutine, so parking never stalls the loop.
		r := s.jm.HandleTSOp(m)
		if r == nil {
			return
		}
		if err := s.ep.Send(m.From.Node, r); err != nil {
			// The requester is gone (a stale parked waiter woken after its
			// node died): a destructively taken tuple must go back into the
			// space or it is lost to the live workers.
			s.jm.ReturnTSTuple(m, r)
			if s.cfg.Logf != nil {
				s.cfg.Logf("[server %s] ts reply to %s: %v", s.cfg.Node, m.From.Node, err)
			}
		}
	case msg.KindTSCancel:
		s.jm.HandleTSCancel(m)
	case msg.KindDataPut:
		s.replyIfAny(m, s.jm.HandleDataPut(m))
	case msg.KindDataResolve:
		// Resolves for unpublished keys park inside the handler; dispatch
		// already runs each message on its own goroutine.
		s.replyIfAny(m, s.jm.HandleDataResolve(m))
	case msg.KindStartTask:
		s.replyIfAny(m, s.jm.HandleStartJob(m))
	case msg.KindCancelJob:
		// From clients this is a request expecting an ack; from a peer
		// JobManager it is a TaskManager-scoped cancellation.
		if m.From.Task == protocol.ClientTaskName {
			s.replyIfAny(m, s.jm.HandleCancel(m))
			return
		}
		var req protocol.CancelJobReq
		if err := protocol.Decode(m, &req); err == nil {
			s.tm.HandleCancel(req.JobID, req.Tasks...)
		}

	// --- TaskManager role ---
	case msg.KindTaskSolicit:
		s.replyIfAny(m, s.tm.HandleSolicit(m))
	case msg.KindDataFetch:
		s.replyIfAny(m, s.tm.HandleDataFetch(m))
	case msg.KindUploadJar:
		s.replyIfAny(m, s.tm.HandleAssign(m))
	case msg.KindAssignTasks:
		s.replyIfAny(m, s.tm.HandleAssignBatch(m))
	case msg.KindExecTask:
		var req protocol.ExecTaskReq
		if err := protocol.Decode(m, &req); err != nil {
			return
		}
		if err := s.tm.HandleStart(req.JobID, req.Task, m.Trace); err != nil {
			if errors.Is(err, taskmgr.ErrAlreadyStarted) {
				// A duplicate dispatch (recovery re-exec or failover
				// adoption) raced the running copy; it reports its own
				// terminal event, so there is nothing to fail here.
				return
			}
			// Report the failure as a task event so the job does not hang,
			// and release the assignment's memory reservation — a task that
			// can never start must not hold capacity until job teardown.
			s.tm.ReleaseIfUnstarted(req.JobID, req.Task)
			ev := protocol.TaskEvent{JobID: req.JobID, Task: req.Task, Node: s.cfg.Node, Err: err.Error()}
			fm := protocol.Body(msg.KindTaskFailed,
				msg.Address{Node: s.cfg.Node, Job: req.JobID, Task: req.Task},
				m.From, ev)
			if serr := s.ep.Send(m.From.Node, fm); serr != nil && s.cfg.Logf != nil {
				s.cfg.Logf("[server %s] report exec failure: %v", s.cfg.Node, serr)
			}
		}

	// --- JobManager durability ---
	case msg.KindJMCheckpoint:
		s.jm.HandleCheckpoint(m)
	case msg.KindJMAdopt:
		s.replyIfAny(m, s.tm.HandleAdopt(m))

	// --- Observability ---
	case msg.KindStatsPull:
		s.replyIfAny(m, s.handleStatsPull(m))

	// --- Health ---
	case msg.KindPing:
		s.replyIfAny(m, m.Reply(msg.KindPong, nil))
	case msg.KindHeartbeat:
		s.replyIfAny(m, s.jm.HandleHeartbeat(m))
	case msg.KindHeartbeatAck:
		s.tm.HandleHeartbeatAck(m)
	}
}

func (s *Server) replyIfAny(m *msg.Message, r *msg.Message) {
	if r == nil {
		return
	}
	if err := s.ep.Send(m.From.Node, r); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("[server %s] reply to %s: %v", s.cfg.Node, m.From.Node, err)
	}
}

// Close shuts the server down: leave groups, stop managers, detach.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
		close(s.closed)
	}
	s.jm.Close()
	s.tm.Close()
	return s.ep.Close()
}

// Kill power-cuts the server (failure injection): the endpoint detaches
// FIRST, so nothing the dying managers produce — cancellation-induced task
// failures, heartbeats, late replies — escapes to the cluster, exactly
// like a machine losing power mid-send. The managers are then stopped to
// reclaim the process's goroutines.
func (s *Server) Kill() error {
	select {
	case <-s.closed:
		return nil
	default:
		close(s.closed)
	}
	err := s.ep.Close()
	s.jm.Close()
	s.tm.Close()
	return err
}
