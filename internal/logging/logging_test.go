package logging

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestNewLevelsAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := Component(New(&buf, slog.LevelInfo), "jobmgr", "node1")
	log.Debug("hidden")
	log.Info("job created", "job", "node1-job1")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug record passed an info-level handler: %q", out)
	}
	for _, want := range []string{"job created", "component=jobmgr", "node=node1", "job=node1-job1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

func TestDiscard(t *testing.T) {
	log := Discard()
	log.Info("nothing") // must not panic
	if log.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

func TestFromLogfBridge(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	log := Component(FromLogf(logf), "taskmgr", "n2")
	log.Debug("chatter")
	log.Info("assigned", "job", "j1", "task", "t1")
	if len(lines) != 1 {
		t.Fatalf("bridge produced %d lines, want 1 (debug suppressed): %v", len(lines), lines)
	}
	for _, want := range []string{"assigned", "component=taskmgr", "node=n2", "job=j1", "task=t1"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	if FromLogf(nil).Enabled(nil, slog.LevelError) {
		t.Error("FromLogf(nil) not discarded")
	}
}

func TestLogfAdapter(t *testing.T) {
	var buf bytes.Buffer
	logf := Logf(New(&buf, slog.LevelInfo))
	logf("count=%d", 7)
	if !strings.Contains(buf.String(), "count=7") {
		t.Errorf("adapter output %q", buf.String())
	}
	if Logf(nil) != nil {
		t.Error("Logf(nil) should be nil")
	}
}

func TestPick(t *testing.T) {
	var buf bytes.Buffer
	explicit := New(&buf, slog.LevelInfo)
	if Pick(explicit, nil) != explicit {
		t.Error("explicit logger not picked")
	}
	if Pick(nil, nil).Enabled(nil, slog.LevelError) {
		t.Error("Pick(nil, nil) not discarded")
	}
	var lines int
	Pick(nil, func(string, ...any) { lines++ }).Info("x")
	if lines != 1 {
		t.Errorf("bridged pick wrote %d lines, want 1", lines)
	}
}
