// Package logging centralizes CN's structured logging on log/slog. Every
// component logs through a *slog.Logger carrying component/node attrs
// (plus job/task attrs per record), leveled and flag-configurable from
// the cmds. The legacy printf seam (Config.Logf) is bridged in both
// directions so existing tests and harnesses keep working: a component
// given only a Logf sink still emits structured records through it, and
// code that wants a printf function can wrap a logger.
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logging: unknown level %q (want debug, info, warn, or error)", s)
}

// New creates a text-handler logger writing to w at the given level.
func New(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Default creates the cmds' standard logger: text on stderr at level.
func Default(level slog.Leveler) *slog.Logger { return New(os.Stderr, level) }

// Discard returns a logger that drops every record.
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Component returns log with the standard component/node attrs attached.
func Component(log *slog.Logger, component, node string) *slog.Logger {
	if log == nil {
		return Discard()
	}
	return log.With(slog.String("component", component), slog.String("node", node))
}

// FromLogf bridges a legacy printf sink into slog: records render as one
// line of "msg k=v k=v" through logf. Used by components whose Config
// carries only the old Logf seam (tests passing t.Logf, the cluster
// harness); a nil logf yields a discard logger.
func FromLogf(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return Discard()
	}
	return slog.New(&logfHandler{logf: logf})
}

// logfHandler renders records through a printf sink. Attrs accumulated
// via With are replayed ahead of per-record attrs.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	mu    sync.Mutex
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	// The legacy seam had no levels; keep debug chatter out of it.
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	appendAttr := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		appendAttr(a)
	}
	rec.Attrs(appendAttr)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{logf: h.logf, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// Logf wraps a logger back into the legacy printf seam at Info level, for
// call sites (sub-components, the transport) that still take a printf
// function.
func Logf(log *slog.Logger) func(format string, args ...any) {
	if log == nil {
		return nil
	}
	return func(format string, args ...any) {
		log.Info(fmt.Sprintf(format, args...))
	}
}

// Pick resolves a component's effective logger from its Config seams:
// an explicit structured logger wins, else the legacy printf sink is
// bridged, else everything is discarded.
func Pick(log *slog.Logger, logf func(format string, args ...any)) *slog.Logger {
	if log != nil {
		return log
	}
	return FromLogf(logf)
}
