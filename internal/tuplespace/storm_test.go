package tuplespace

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStormNoTupleLostOrDuplicated floods one space from N producers
// while M consumers take with overlapping templates: every tuple must be
// delivered exactly once — destructive In semantics under full contention.
// Run under -race this also audits the waiter bookkeeping.
func TestStormNoTupleLostOrDuplicated(t *testing.T) {
	const (
		producers = 8
		consumers = 8
		perProd   = 200
	)
	total := producers * perProd
	s := New()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := s.Out(Tuple{"item", p*perProd + i}); err != nil {
					t.Errorf("out: %v", err)
					return
				}
			}
		}(p)
	}

	// Consumers alternate overlapping templates: the fully wild one and
	// the typed one both match every produced tuple.
	templates := []Template{
		{"item", Wildcard},
		{"item", TypeOf(0)},
	}
	got := make(chan int, total)
	var cg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			for {
				tu, err := s.In(ctx, templates[c%len(templates)])
				if err != nil {
					return // context: the drain is complete
				}
				v := tu[1].(int)
				if v < 0 {
					return // poison
				}
				got <- v
			}
		}(c)
	}

	wg.Wait()
	seen := make(map[int]bool, total)
	for i := 0; i < total; i++ {
		select {
		case v := <-got:
			if seen[v] {
				t.Fatalf("tuple %d delivered twice", v)
			}
			seen[v] = true
		case <-ctx.Done():
			t.Fatalf("drained %d of %d tuples: storm lost tuples", len(seen), total)
		}
	}
	for c := 0; c < consumers; c++ {
		if err := s.Out(Tuple{"item", -1}); err != nil {
			t.Fatal(err)
		}
	}
	cg.Wait()
	// No stray deliveries: the channel holds only unconsumed poison.
	select {
	case v := <-got:
		t.Fatalf("extra delivery %d after full drain", v)
	default:
	}
}

// TestCloseDuringStormFailsAllWaiters closes the space while producers
// are racing blocked consumers: every blocked In must fail with ErrClosed
// (not hang, not receive), and late Outs must fail with ErrClosed too.
func TestCloseDuringStormFailsAllWaiters(t *testing.T) {
	const consumers = 16
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	results := make(chan error, consumers)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			// Template no Out below ever matches: these waiters can only be
			// released by Close.
			_, err := s.In(ctx, Template{"never", c})
			results <- err
		}(c)
	}

	// Concurrent non-matching traffic keeps the waiter list churning
	// while Close lands mid-storm.
	var pg sync.WaitGroup
	for p := 0; p < 4; p++ {
		pg.Add(1)
		go func(p int) {
			defer pg.Done()
			for i := 0; ; i++ {
				if err := s.Out(Tuple{"noise", p, i}); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("out after close: %v", err)
					}
					return
				}
			}
		}(p)
	}

	time.Sleep(5 * time.Millisecond) // let waiters park and noise flow
	s.Close()
	pg.Wait()
	cg.Wait()
	for c := 0; c < consumers; c++ {
		if err := <-results; !errors.Is(err, ErrClosed) {
			t.Errorf("blocked waiter got %v, want ErrClosed", err)
		}
	}
	if err := s.Out(Tuple{"late"}); !errors.Is(err, ErrClosed) {
		t.Errorf("out on closed space: %v, want ErrClosed", err)
	}
	if _, err := s.InP(Template{"any"}); !errors.Is(err, ErrClosed) {
		t.Errorf("probe on closed space: %v, want ErrClosed", err)
	}
}
