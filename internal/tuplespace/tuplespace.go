// Package tuplespace implements Linda-style tuple spaces, the second
// coordination mechanism the paper mentions: "the tasks coordinate among
// themselves using the CNAPI for intertask communication (CN also supports
// communication via tuple spaces...)".
//
// A Space stores ordered tuples of scalar fields. Producers Out tuples;
// consumers In (destructive) or Rd (non-destructive) tuples matching a
// template, blocking until one is available. InP/RdP are the non-blocking
// probes. Templates match field-by-field: a concrete value matches by
// equality, the Wildcard matches any value of any type, and a TypeOf
// placeholder matches any value of one concrete type.
package tuplespace

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
)

// ErrClosed is returned once the space has been closed.
var ErrClosed = errors.New("tuplespace: closed")

// ErrNoMatch is returned by the non-blocking probes when no tuple matches.
var ErrNoMatch = errors.New("tuplespace: no matching tuple")

// Tuple is an ordered sequence of scalar fields (strings, numbers, bools,
// byte slices...).
type Tuple []any

// String renders the tuple for logs, e.g. ("row", 3, 1.5).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, f := range t {
		parts[i] = fmt.Sprintf("%v", f)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// clone returns a shallow copy of the tuple so callers cannot mutate stored
// state.
func (t Tuple) clone() Tuple {
	return append(Tuple(nil), t...)
}

// wildcard is the sentinel type of Wildcard.
type wildcard struct{}

// Wildcard matches any field value of any type in a template.
var Wildcard = wildcard{}

// typeOf matches any value of a concrete dynamic type.
type typeOf struct{ rt reflect.Type }

// TypeOf returns a template placeholder matching any value with the same
// dynamic type as sample (e.g. TypeOf(0) matches any int).
func TypeOf(sample any) any { return typeOf{reflect.TypeOf(sample)} }

// Template is a tuple pattern: concrete values, Wildcard, or TypeOf
// placeholders.
type Template []any

// Matches reports whether tpl matches tuple t: same arity and each field
// accepted by the corresponding pattern element.
func (tpl Template) Matches(t Tuple) bool {
	if len(tpl) != len(t) {
		return false
	}
	for i, p := range tpl {
		switch pat := p.(type) {
		case wildcard:
			// matches anything
		case typeOf:
			if reflect.TypeOf(t[i]) != pat.rt {
				return false
			}
		default:
			if !fieldEqual(p, t[i]) {
				return false
			}
		}
	}
	return true
}

// fieldEqual compares two field values, handling byte slices specially
// (slices are not comparable with ==).
func fieldEqual(a, b any) bool {
	if ab, ok := a.([]byte); ok {
		bb, ok := b.([]byte)
		if !ok || len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

// waiter represents one blocked In/Rd call.
type waiter struct {
	tpl  Template
	take bool // destructive (In) vs read (Rd)
	ch   chan Tuple
}

// Space is a concurrent tuple space.
type Space struct {
	mu      sync.Mutex
	tuples  []Tuple
	waiters []*waiter
	closed  bool
}

// New creates an empty space.
func New() *Space { return &Space{} }

// Len returns the number of stored tuples.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// Out stores a tuple in the space, waking at most one blocked In and any
// number of blocked Rd calls whose templates match.
func (s *Space) Out(t Tuple) error {
	if len(t) == 0 {
		return fmt.Errorf("tuplespace: out: empty tuple")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t = t.clone()
	// Readers all observe the tuple; the first matching taker consumes it.
	taken := false
	remaining := s.waiters[:0]
	for _, w := range s.waiters {
		if (taken && w.take) || !w.tpl.Matches(t) {
			remaining = append(remaining, w)
			continue
		}
		w.ch <- t.clone()
		if w.take {
			taken = true
		}
	}
	s.waiters = remaining
	if !taken {
		s.tuples = append(s.tuples, t)
	}
	return nil
}

// findLocked returns the index of the first tuple matching tpl, or -1.
func (s *Space) findLocked(tpl Template) int {
	for i, t := range s.tuples {
		if tpl.Matches(t) {
			return i
		}
	}
	return -1
}

// InP removes and returns the first matching tuple without blocking.
func (s *Space) InP(tpl Template) (Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	i := s.findLocked(tpl)
	if i < 0 {
		return nil, ErrNoMatch
	}
	t := s.tuples[i]
	s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
	return t.clone(), nil
}

// RdP returns (without removing) the first matching tuple without blocking.
func (s *Space) RdP(tpl Template) (Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	i := s.findLocked(tpl)
	if i < 0 {
		return nil, ErrNoMatch
	}
	return s.tuples[i].clone(), nil
}

// In removes and returns a tuple matching tpl, blocking until one is
// available or ctx is done.
func (s *Space) In(ctx context.Context, tpl Template) (Tuple, error) {
	return s.wait(ctx, tpl, true)
}

// Rd returns (without removing) a tuple matching tpl, blocking until one is
// available or ctx is done.
func (s *Space) Rd(ctx context.Context, tpl Template) (Tuple, error) {
	return s.wait(ctx, tpl, false)
}

func (s *Space) wait(ctx context.Context, tpl Template, take bool) (Tuple, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if i := s.findLocked(tpl); i >= 0 {
		t := s.tuples[i]
		if take {
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
		}
		s.mu.Unlock()
		return t.clone(), nil
	}
	w := &waiter{tpl: tpl, take: take, ch: make(chan Tuple, 1)}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case t, ok := <-w.ch:
		if !ok {
			return nil, ErrClosed
		}
		return t, nil
	case <-ctx.Done():
		s.removeWaiter(w)
		// A racing Out may have satisfied the waiter between ctx firing and
		// removal; prefer delivering the tuple over losing it.
		select {
		case t, ok := <-w.ch:
			if ok {
				return t, nil
			}
		default:
		}
		return nil, fmt.Errorf("tuplespace: %s: %w", opName(take), ctx.Err())
	}
}

func opName(take bool) string {
	if take {
		return "in"
	}
	return "rd"
}

func (s *Space) removeWaiter(w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Count returns the number of stored tuples matching tpl.
func (s *Space) Count(tpl Template) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tuples {
		if tpl.Matches(t) {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of all stored tuples (diagnostics and tests).
func (s *Space) Snapshot() []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Tuple, len(s.tuples))
	for i, t := range s.tuples {
		out[i] = t.clone()
	}
	return out
}

// Close shuts the space down, failing all blocked and future operations.
func (s *Space) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.waiters {
		close(w.ch)
	}
	s.waiters = nil
	s.tuples = nil
}
