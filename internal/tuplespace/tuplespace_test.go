package tuplespace

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestOutInP(t *testing.T) {
	s := New()
	if err := s.Out(Tuple{"row", 3, "data"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.InP(Template{"row", 3, Wildcard})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != "data" {
		t.Errorf("got %v", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after destructive In", s.Len())
	}
}

func TestRdPNonDestructive(t *testing.T) {
	s := New()
	if err := s.Out(Tuple{"k", 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RdP(Template{"k", Wildcard}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Rd removed the tuple")
	}
}

func TestProbesNoMatch(t *testing.T) {
	s := New()
	if _, err := s.InP(Template{"absent"}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("InP = %v", err)
	}
	if _, err := s.RdP(Template{"absent"}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("RdP = %v", err)
	}
}

func TestOutEmptyTuple(t *testing.T) {
	s := New()
	if err := s.Out(Tuple{}); err == nil {
		t.Error("empty tuple accepted")
	}
}

func TestTemplateMatching(t *testing.T) {
	cases := []struct {
		tpl   Template
		tuple Tuple
		want  bool
	}{
		{Template{"a", 1}, Tuple{"a", 1}, true},
		{Template{"a", 1}, Tuple{"a", 2}, false},
		{Template{"a", Wildcard}, Tuple{"a", 99}, true},
		{Template{Wildcard, Wildcard}, Tuple{"x", "y"}, true},
		{Template{"a"}, Tuple{"a", 1}, false}, // arity mismatch
		{Template{TypeOf(0)}, Tuple{5}, true},
		{Template{TypeOf(0)}, Tuple{"5"}, false},
		{Template{TypeOf("")}, Tuple{"s"}, true},
		{Template{[]byte{1, 2}}, Tuple{[]byte{1, 2}}, true},
		{Template{[]byte{1, 2}}, Tuple{[]byte{1, 3}}, false},
		{Template{[]byte{1, 2}}, Tuple{"not bytes"}, false},
		{Template{1.5}, Tuple{1.5}, true},
		{Template{1}, Tuple{int64(1)}, false}, // type-strict equality
	}
	for i, c := range cases {
		if got := c.tpl.Matches(c.tuple); got != c.want {
			t.Errorf("case %d: Matches(%v, %v) = %v, want %v", i, c.tpl, c.tuple, got, c.want)
		}
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	s := New()
	got := make(chan Tuple, 1)
	go func() {
		tu, err := s.In(context.Background(), Template{"job", Wildcard})
		if err != nil {
			t.Errorf("In: %v", err)
			return
		}
		got <- tu
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("In returned before Out")
	default:
	}
	if err := s.Out(Tuple{"job", 42}); err != nil {
		t.Fatal(err)
	}
	select {
	case tu := <-got:
		if tu[1] != 42 {
			t.Errorf("got %v", tu)
		}
	case <-time.After(time.Second):
		t.Fatal("In did not unblock")
	}
}

func TestInContextCancel(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.In(ctx, Template{"never"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("In = %v", err)
	}
	// The cancelled waiter must be removed so it does not steal later tuples.
	if err := s.Out(Tuple{"never"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("tuple stolen by cancelled waiter; Len = %d", s.Len())
	}
}

func TestOneOutWakesOneTakerManyReaders(t *testing.T) {
	s := New()
	const readers = 3
	var wg sync.WaitGroup
	readerGot := make(chan Tuple, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tu, err := s.Rd(context.Background(), Template{"x"})
			if err != nil {
				t.Errorf("Rd: %v", err)
				return
			}
			readerGot <- tu
		}()
	}
	takerGot := make(chan Tuple, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tu, err := s.In(context.Background(), Template{"x"})
		if err != nil {
			t.Errorf("In: %v", err)
			return
		}
		takerGot <- tu
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.Out(Tuple{"x"}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(readerGot) != readers {
		t.Errorf("%d readers woke, want %d", len(readerGot), readers)
	}
	if len(takerGot) != 1 {
		t.Errorf("taker did not get the tuple")
	}
	if s.Len() != 0 {
		t.Errorf("tuple left behind: Len = %d", s.Len())
	}
}

func TestSecondTakerKeepsWaiting(t *testing.T) {
	s := New()
	results := make(chan Tuple, 2)
	for i := 0; i < 2; i++ {
		go func() {
			tu, err := s.In(context.Background(), Template{"once", Wildcard})
			if err != nil {
				return
			}
			results <- tu
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Out(Tuple{"once", 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-results:
	case <-time.After(time.Second):
		t.Fatal("no taker woke")
	}
	select {
	case tu := <-results:
		t.Fatalf("both takers woke for one tuple: %v", tu)
	case <-time.After(50 * time.Millisecond):
	}
	// Second Out satisfies the remaining taker.
	if err := s.Out(Tuple{"once", 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-results:
	case <-time.After(time.Second):
		t.Fatal("second taker never woke")
	}
}

func TestCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.Out(Tuple{"n", i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Out(Tuple{"other"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(Template{"n", Wildcard}); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := s.Count(Template{"n", 3}); got != 1 {
		t.Errorf("Count exact = %d, want 1", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New()
	if err := s.Out(Tuple{"a", 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	snap[0][0] = "mutated"
	got, err := s.RdP(Template{Wildcard, Wildcard})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "a" {
		t.Error("Snapshot aliases internal storage")
	}
}

func TestOutReturnsCopies(t *testing.T) {
	s := New()
	tu := Tuple{"k", 1}
	if err := s.Out(tu); err != nil {
		t.Fatal(err)
	}
	tu[1] = 999 // mutate caller's slice after Out
	got, err := s.InP(Template{"k", Wildcard})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Errorf("stored tuple aliased caller slice: %v", got)
	}
}

func TestFIFOWithinMatches(t *testing.T) {
	s := New()
	for i := 0; i < 3; i++ {
		if err := s.Out(Tuple{"seq", i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		got, err := s.InP(Template{"seq", Wildcard})
		if err != nil {
			t.Fatal(err)
		}
		if got[1] != i {
			t.Errorf("InP order: got %v at step %d", got, i)
		}
	}
}

func TestClose(t *testing.T) {
	s := New()
	blocked := make(chan error, 1)
	go func() {
		_, err := s.In(context.Background(), Template{"x"})
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked In after Close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock In")
	}
	if err := s.Out(Tuple{"x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Out after Close = %v", err)
	}
	if _, err := s.InP(Template{"x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("InP after Close = %v", err)
	}
	if _, err := s.Rd(context.Background(), Template{"x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Rd after Close = %v", err)
	}
	s.Close() // idempotent
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s := New()
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := s.Out(Tuple{"work", p, i}); err != nil {
					t.Errorf("Out: %v", err)
				}
			}
		}(p)
	}
	consumed := make(chan Tuple, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				tu, err := s.In(ctx, Template{"work", Wildcard, Wildcard})
				cancel()
				if err != nil {
					return
				}
				consumed <- tu
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(consumed) != producers*perProducer {
		t.Errorf("consumed %d tuples, want %d", len(consumed), producers*perProducer)
	}
	if s.Len() != 0 {
		t.Errorf("%d tuples left", s.Len())
	}
}

func TestMatchReflexiveProperty(t *testing.T) {
	// Any tuple of supported scalars matches a template equal to itself and
	// a template of all wildcards.
	f := func(a int, b string, c bool) bool {
		tu := Tuple{a, b, c}
		if !(Template{a, b, c}).Matches(tu) {
			return false
		}
		return (Template{Wildcard, Wildcard, Wildcard}).Matches(tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	s := Tuple{"a", 1}.String()
	if s != "(a, 1)" {
		t.Errorf("String = %q", s)
	}
}
