// Wire introspection helpers: the protocol layer encodes tuples and
// templates field-by-field, and template placeholders (Wildcard, TypeOf)
// are unexported types it cannot inspect directly. These accessors expose
// just enough structure to round-trip a template without widening the
// package's matching semantics.

package tuplespace

import "reflect"

// IsWildcard reports whether a template element is the Wildcard
// placeholder.
func IsWildcard(v any) bool {
	_, ok := v.(wildcard)
	return ok
}

// TypeName returns the canonical wire name of a TypeOf placeholder's type
// and true, or ("", false) when v is not a TypeOf placeholder. Only the
// scalar field types the wire codec supports have names; other TypeOf
// placeholders yield ("", true) and cannot cross the wire.
func TypeName(v any) (string, bool) {
	p, ok := v.(typeOf)
	if !ok {
		return "", false
	}
	return scalarTypeName(p.rt), true
}

// TypeFromName reconstructs a TypeOf placeholder from a wire name produced
// by TypeName; ok is false for unknown names.
func TypeFromName(name string) (any, bool) {
	switch name {
	case "string":
		return TypeOf(""), true
	case "int":
		return TypeOf(0), true
	case "int64":
		return TypeOf(int64(0)), true
	case "float64":
		return TypeOf(float64(0)), true
	case "bool":
		return TypeOf(false), true
	case "[]byte":
		return TypeOf([]byte(nil)), true
	}
	return nil, false
}

// scalarTypeName maps a reflect.Type onto its wire name, or "" for types
// the codec does not carry.
func scalarTypeName(rt reflect.Type) string {
	switch rt {
	case reflect.TypeOf(""):
		return "string"
	case reflect.TypeOf(0):
		return "int"
	case reflect.TypeOf(int64(0)):
		return "int64"
	case reflect.TypeOf(float64(0)):
		return "float64"
	case reflect.TypeOf(false):
		return "bool"
	case reflect.TypeOf([]byte(nil)):
		return "[]byte"
	}
	return ""
}
