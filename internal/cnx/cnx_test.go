package cnx

import (
	"strings"
	"testing"

	"cn/internal/task"
)

// fig2 is the paper's Figure 2 client descriptor for transitive closure,
// with the paper's typo fixed (tctask1 listed depends="tctask1" which is a
// self-dependency; the surrounding text and tctask5 show the intent was
// depends="tctask0").
const fig2 = `<?xml version="1.0"?>
<cn2>
<client class="TransClosure" log="CN_Client1047909210005.log" port="5666">
<job>
<task name="tctask0" jar="tasksplit.jar"
class="org.jhpc.cn2.transcloser.TaskSplit" depends="">
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
<param type="String">matrix.txt</param>
</task>
<task name="tctask1" jar="tctask.jar"
class="org.jhpc.cn2.trnsclsrtask.TCTask" depends="tctask0">
<param type="Integer">1</param>
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
</task>
<task name="tctask5" jar="tctask.jar"
class="org.jhpc.cn2.trnsclsrtask.TCTask" depends="tctask0">
<param type="Integer">5</param>
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
</task>
<task name="tctask999" jar="taskjoin.jar"
class="org.jhpc.cn2.transcloser.TaskJoin"
depends="tctask1,tctask5">
<task-req>
<memory>1000</memory>
<runmodel>RUN_AS_THREAD_IN_TM</runmodel>
</task-req>
<param type="String">matrix.txt</param>
</task>
</job>
</client>
</cn2>`

func parseFig2(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseString(fig2)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return doc
}

func TestParseFig2(t *testing.T) {
	doc := parseFig2(t)
	if doc.Client.Class != "TransClosure" {
		t.Errorf("client class = %q", doc.Client.Class)
	}
	if doc.Client.Port != 5666 {
		t.Errorf("port = %d", doc.Client.Port)
	}
	if doc.Client.Log != "CN_Client1047909210005.log" {
		t.Errorf("log = %q", doc.Client.Log)
	}
	if len(doc.Client.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(doc.Client.Jobs))
	}
	job := &doc.Client.Jobs[0]
	if len(job.Tasks) != 4 {
		t.Fatalf("tasks = %d", len(job.Tasks))
	}
	split := job.Task("tctask0")
	if split == nil || split.Jar != "tasksplit.jar" || split.Class != "org.jhpc.cn2.transcloser.TaskSplit" {
		t.Errorf("tctask0 = %+v", split)
	}
	if len(split.DependsList()) != 0 {
		t.Errorf("tctask0 depends = %v", split.DependsList())
	}
	join := job.Task("tctask999")
	if got := join.DependsList(); len(got) != 2 || got[0] != "tctask1" || got[1] != "tctask5" {
		t.Errorf("join depends = %v", got)
	}
}

func TestFig2Validate(t *testing.T) {
	doc := parseFig2(t)
	if err := doc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if doc.Client.Jobs[0].Name != "job0" {
		t.Errorf("unnamed job assigned %q", doc.Client.Jobs[0].Name)
	}
}

func TestFig2Specs(t *testing.T) {
	doc := parseFig2(t)
	specs, err := doc.Client.Jobs[0].Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	w := specs[1]
	if w.Name != "tctask1" || w.Class != "org.jhpc.cn2.trnsclsrtask.TCTask" {
		t.Errorf("spec = %+v", w)
	}
	if w.Req.MemoryMB != 1000 || w.Req.RunModel != task.RunAsThreadInTM {
		t.Errorf("req = %+v", w.Req)
	}
	if n, err := w.Params[0].Int(); err != nil || n != 1 {
		t.Errorf("param = %v, %v", n, err)
	}
}

func TestRoundTrip(t *testing.T) {
	doc := parseFig2(t)
	s, err := doc.EncodeString()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if doc2.Client.Class != doc.Client.Class || len(doc2.Client.Jobs[0].Tasks) != 4 {
		t.Error("round trip lost structure")
	}
	j2 := &doc2.Client.Jobs[0]
	if got := j2.Task("tctask1").Params[0]; got.Type != "Integer" || strings.TrimSpace(got.Value) != "1" {
		t.Errorf("param after round trip = %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("not xml at all <"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no class", `<cn2><client><job><task name="a" class="X"/></job></client></cn2>`},
		{"no jobs", `<cn2><client class="C"></client></cn2>`},
		{"no tasks", `<cn2><client class="C"><job></job></client></cn2>`},
		{"no task name", `<cn2><client class="C"><job><task class="X"/></job></client></cn2>`},
		{"dup task", `<cn2><client class="C"><job><task name="a" class="X"/><task name="a" class="Y"/></job></client></cn2>`},
		{"no task class", `<cn2><client class="C"><job><task name="a"/></job></client></cn2>`},
		{"self dep", `<cn2><client class="C"><job><task name="a" class="X" depends="a"/></job></client></cn2>`},
		{"unknown dep", `<cn2><client class="C"><job><task name="a" class="X" depends="ghost"/></job></client></cn2>`},
		{"cycle", `<cn2><client class="C"><job><task name="a" class="X" depends="b"/><task name="b" class="Y" depends="a"/></job></client></cn2>`},
	}
	for _, c := range cases {
		doc, err := ParseString(c.doc)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if err := doc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid document", c.name)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	doc := parseFig2(t)
	job := &doc.Client.Jobs[0]
	order, err := job.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	if pos["tctask0"] > pos["tctask1"] || pos["tctask0"] > pos["tctask5"] {
		t.Errorf("split not before workers: %v", order)
	}
	if pos["tctask1"] > pos["tctask999"] || pos["tctask5"] > pos["tctask999"] {
		t.Errorf("workers not before join: %v", order)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	doc := parseFig2(t)
	job := &doc.Client.Jobs[0]
	a, err := job.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := job.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("orders differ: %v vs %v", a, b)
			}
		}
	}
}

func TestRootsAndLeaves(t *testing.T) {
	doc := parseFig2(t)
	job := &doc.Client.Jobs[0]
	roots := job.Roots()
	if len(roots) != 1 || roots[0] != "tctask0" {
		t.Errorf("Roots = %v", roots)
	}
	leaves := job.Leaves()
	if len(leaves) != 1 || leaves[0] != "tctask999" {
		t.Errorf("Leaves = %v", leaves)
	}
}

func TestArchiveNames(t *testing.T) {
	doc := parseFig2(t)
	got := doc.Client.Jobs[0].ArchiveNames()
	want := []string{"tasksplit.jar", "taskjoin.jar", "tctask.jar"}
	if len(got) != 3 {
		t.Fatalf("ArchiveNames = %v", got)
	}
	// sorted
	if got[0] != "taskjoin.jar" || got[1] != "tasksplit.jar" || got[2] != "tctask.jar" {
		t.Errorf("ArchiveNames = %v, want sorted %v", got, want)
	}
}

func TestDependsListWhitespace(t *testing.T) {
	d := TaskDecl{Depends: " a , b ,, c "}
	got := d.DependsList()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("DependsList = %v", got)
	}
}

func TestSpecDefaultsWhenNoReq(t *testing.T) {
	d := TaskDecl{Name: "t", Class: "c.X"}
	s, err := d.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s.Req != task.DefaultRequirements() {
		t.Errorf("req = %+v", s.Req)
	}
}

func TestSpecBadRunModel(t *testing.T) {
	d := TaskDecl{Name: "t", Class: "c.X", Req: &ReqXML{RunModel: "RUN_ON_MARS"}}
	if _, err := d.Spec(); err == nil {
		t.Error("bad run model accepted")
	}
}

func TestSpecBadParamType(t *testing.T) {
	d := TaskDecl{Name: "t", Class: "c.X", Params: []Param{{Type: "java.util.List", Value: "x"}}}
	if _, err := d.Spec(); err == nil {
		t.Error("bad param type accepted")
	}
}

func TestFromSpecRoundTrip(t *testing.T) {
	s := &task.Spec{
		Name:      "w1",
		Archive:   "w.jar",
		Class:     "c.W",
		DependsOn: []string{"split"},
		Params:    []task.Param{{Type: task.TypeInteger, Value: "3"}},
		Req:       task.Requirements{MemoryMB: 512, RunModel: task.RunAsProcess},
	}
	d := FromSpec(s)
	s2, err := d.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != s.Name || s2.Class != s.Class || s2.Archive != s.Archive {
		t.Errorf("round trip: %+v", s2)
	}
	if len(s2.DependsOn) != 1 || s2.DependsOn[0] != "split" {
		t.Errorf("depends: %v", s2.DependsOn)
	}
	if s2.Req.MemoryMB != 512 || s2.Req.RunModel != task.RunAsProcess {
		t.Errorf("req: %+v", s2.Req)
	}
	if n, _ := s2.Params[0].Int(); n != 3 {
		t.Errorf("param: %+v", s2.Params)
	}
}

func TestMultiJobDocument(t *testing.T) {
	src := `<cn2><client class="C">
	  <job name="first"><task name="a" class="X"/></job>
	  <job><task name="b" class="Y"/></job>
	</client></cn2>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Client.Jobs[0].Name != "first" {
		t.Errorf("job0 name = %q", doc.Client.Jobs[0].Name)
	}
	if doc.Client.Jobs[1].Name != "job1" {
		t.Errorf("job1 assigned name = %q", doc.Client.Jobs[1].Name)
	}
}

func TestDiamondTopo(t *testing.T) {
	src := `<cn2><client class="C"><job>
	  <task name="top" class="X"/>
	  <task name="l" class="X" depends="top"/>
	  <task name="r" class="X" depends="top"/>
	  <task name="bottom" class="X" depends="l,r"/>
	</job></client></cn2>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := doc.Client.Jobs[0].TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "top" || order[len(order)-1] != "bottom" {
		t.Errorf("diamond order = %v", order)
	}
}
