// Package cnx implements CNX, the paper's XML compositional language:
// "CNX (XML) is a compositional language that captures the details of the
// client program." A CNX document (see the paper's Figure 2) declares a
// client, its jobs, and each job's tasks with their archives, classes,
// dependencies, resource requirements and typed parameters.
//
// The package provides the document model, XML encoding/decoding, semantic
// validation (unique names, resolvable dependencies, acyclicity), and the
// dependency DAG used by the JobManager to start tasks in order.
package cnx

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"cn/internal/task"
)

// Document is the root of a CNX descriptor (<cn2> element).
type Document struct {
	XMLName xml.Name `xml:"cn2"`
	Client  Client   `xml:"client"`
}

// Client describes the client program composed of one or more jobs.
// Figure 2: <client class="TransClosure" log="..." port="5666">.
type Client struct {
	Class string `xml:"class,attr"`
	Log   string `xml:"log,attr,omitempty"`
	Port  int    `xml:"port,attr,omitempty"`
	Jobs  []Job  `xml:"job"`
}

// Job is a collection of tasks (paper: "A Job is defined as a collection of
// Task objects").
type Job struct {
	// Name is optional in the paper's examples; unnamed jobs are assigned
	// job0, job1, ... during validation.
	Name  string     `xml:"name,attr,omitempty"`
	Tasks []TaskDecl `xml:"task"`
}

// TaskDecl is one <task> element.
type TaskDecl struct {
	Name    string  `xml:"name,attr"`
	Jar     string  `xml:"jar,attr"`
	Class   string  `xml:"class,attr"`
	Depends string  `xml:"depends,attr"`
	Req     *ReqXML `xml:"task-req"`
	Params  []Param `xml:"param"`
}

// ReqXML is the <task-req> element.
type ReqXML struct {
	Memory   int    `xml:"memory"`
	RunModel string `xml:"runmodel"`
}

// Param is a <param type="T">value</param> element.
type Param struct {
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

// DependsList splits the comma-separated depends attribute, dropping empty
// entries (the paper writes depends="" for root tasks).
func (t *TaskDecl) DependsList() []string {
	if strings.TrimSpace(t.Depends) == "" {
		return nil
	}
	parts := strings.Split(t.Depends, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Spec converts the declaration into the runtime task.Spec.
func (t *TaskDecl) Spec() (*task.Spec, error) {
	s := &task.Spec{
		Name:      t.Name,
		Archive:   t.Jar,
		Class:     t.Class,
		DependsOn: t.DependsList(),
		Req:       task.DefaultRequirements(),
	}
	if t.Req != nil {
		if t.Req.Memory != 0 {
			s.Req.MemoryMB = t.Req.Memory
		}
		if t.Req.RunModel != "" {
			rm, err := task.ParseRunModel(t.Req.RunModel)
			if err != nil {
				return nil, fmt.Errorf("cnx: task %q: %w", t.Name, err)
			}
			s.Req.RunModel = rm
		}
	}
	for i, p := range t.Params {
		tp, err := task.NewParam(p.Type, strings.TrimSpace(p.Value))
		if err != nil {
			return nil, fmt.Errorf("cnx: task %q param %d: %w", t.Name, i, err)
		}
		s.Params = append(s.Params, tp)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("cnx: %w", err)
	}
	return s, nil
}

// FromSpec converts a runtime spec back into a declaration (used by the
// model-to-CNX transform).
func FromSpec(s *task.Spec) TaskDecl {
	d := TaskDecl{
		Name:    s.Name,
		Jar:     s.Archive,
		Class:   s.Class,
		Depends: strings.Join(s.DependsOn, ","),
		Req: &ReqXML{
			Memory:   s.Req.MemoryMB,
			RunModel: s.Req.RunModel.String(),
		},
	}
	for _, p := range s.Params {
		d.Params = append(d.Params, Param{Type: string(p.Type), Value: p.Value})
	}
	return d
}

// Parse decodes a CNX document from XML.
func Parse(r io.Reader) (*Document, error) {
	var doc Document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cnx: parse: %w", err)
	}
	return &doc, nil
}

// ParseString decodes a CNX document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// Encode renders the document as indented XML with the standard header.
func (d *Document) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("cnx: encode: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("cnx: encode: %w", err)
	}
	if err := enc.Close(); err != nil {
		return fmt.Errorf("cnx: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// EncodeString renders the document as a string.
func (d *Document) EncodeString() (string, error) {
	var sb strings.Builder
	if err := d.Encode(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Validate checks the whole document: client class present, at least one
// job, per-job task-name uniqueness, resolvable dependencies, and an acyclic
// dependency graph. Unnamed jobs receive generated names.
func (d *Document) Validate() error {
	if d.Client.Class == "" {
		return fmt.Errorf("cnx: client missing class attribute")
	}
	if len(d.Client.Jobs) == 0 {
		return fmt.Errorf("cnx: client %q has no jobs", d.Client.Class)
	}
	for ji := range d.Client.Jobs {
		job := &d.Client.Jobs[ji]
		if job.Name == "" {
			job.Name = fmt.Sprintf("job%d", ji)
		}
		if len(job.Tasks) == 0 {
			return fmt.Errorf("cnx: job %q has no tasks", job.Name)
		}
		seen := make(map[string]bool, len(job.Tasks))
		for i := range job.Tasks {
			t := &job.Tasks[i]
			if t.Name == "" {
				return fmt.Errorf("cnx: job %q: task %d missing name", job.Name, i)
			}
			if seen[t.Name] {
				return fmt.Errorf("cnx: job %q: duplicate task name %q", job.Name, t.Name)
			}
			seen[t.Name] = true
			if t.Class == "" {
				return fmt.Errorf("cnx: job %q: task %q missing class", job.Name, t.Name)
			}
		}
		for i := range job.Tasks {
			t := &job.Tasks[i]
			for _, dep := range t.DependsList() {
				if dep == t.Name {
					return fmt.Errorf("cnx: job %q: task %q depends on itself", job.Name, t.Name)
				}
				if !seen[dep] {
					return fmt.Errorf("cnx: job %q: task %q depends on unknown task %q", job.Name, t.Name, dep)
				}
			}
		}
		if _, err := job.TopoOrder(); err != nil {
			return err
		}
	}
	return nil
}

// Graph returns the job's dependency adjacency: task name -> names it
// depends on.
func (j *Job) Graph() map[string][]string {
	g := make(map[string][]string, len(j.Tasks))
	for i := range j.Tasks {
		g[j.Tasks[i].Name] = j.Tasks[i].DependsList()
	}
	return g
}

// TopoOrder returns a deterministic topological ordering of the job's tasks
// (dependencies first). It fails on cycles, naming one task on the cycle.
func (j *Job) TopoOrder() ([]string, error) {
	g := j.Graph()
	// Deterministic iteration: sort names.
	names := make([]string, 0, len(g))
	for n := range g {
		names = append(names, n)
	}
	sort.Strings(names)

	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	color := make(map[string]int, len(g))
	var order []string
	var visit func(n string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("cnx: job %q: dependency cycle involving task %q", j.Name, n)
		case black:
			return nil
		}
		color[n] = gray
		deps := append([]string(nil), g[n]...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := g[d]; !ok {
				continue // unknown deps are caught by Validate
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Roots returns tasks with no dependencies, sorted.
func (j *Job) Roots() []string {
	var roots []string
	for i := range j.Tasks {
		if len(j.Tasks[i].DependsList()) == 0 {
			roots = append(roots, j.Tasks[i].Name)
		}
	}
	sort.Strings(roots)
	return roots
}

// Leaves returns tasks no other task depends on, sorted.
func (j *Job) Leaves() []string {
	depended := make(map[string]bool)
	for i := range j.Tasks {
		for _, d := range j.Tasks[i].DependsList() {
			depended[d] = true
		}
	}
	var leaves []string
	for i := range j.Tasks {
		if !depended[j.Tasks[i].Name] {
			leaves = append(leaves, j.Tasks[i].Name)
		}
	}
	sort.Strings(leaves)
	return leaves
}

// Task returns the named task declaration, or nil.
func (j *Job) Task(name string) *TaskDecl {
	for i := range j.Tasks {
		if j.Tasks[i].Name == name {
			return &j.Tasks[i]
		}
	}
	return nil
}

// Specs converts every task declaration in the job to runtime specs, in
// declaration order.
func (j *Job) Specs() ([]*task.Spec, error) {
	specs := make([]*task.Spec, 0, len(j.Tasks))
	for i := range j.Tasks {
		s, err := j.Tasks[i].Spec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// ArchiveNames returns the distinct archive (jar) names referenced by the
// job, sorted.
func (j *Job) ArchiveNames() []string {
	set := make(map[string]bool)
	for i := range j.Tasks {
		if j.Tasks[i].Jar != "" {
			set[j.Tasks[i].Jar] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
