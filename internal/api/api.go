// Package api implements the client-side CN API, the factory façade the
// paper lists (§3):
//
//   - Initialize CN API (using the factory)      -> Initialize
//   - Create Job in JobManager                    -> Client.CreateJob
//   - Create Tasks for the Job                    -> Job.CreateTask
//   - Start the Tasks                             -> Job.Start
//   - Get Messages from Tasks                     -> Job.GetMessage / GetEvent
//   - Send Messages to Tasks                      -> Job.SendMessage
//
// "The user is responsible, usually toward the beginning of the parallel
// program, to acquire a reference to the CN API."
package api

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/archive"
	"cn/internal/discovery"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/transport"
)

// Errors returned by the client API.
var (
	// ErrJobFinished is returned for operations on a job that already
	// reached a terminal state.
	ErrJobFinished = errors.New("api: job already finished")
)

var clientSeq atomic.Int64

// Options configures Initialize.
type Options struct {
	// ClientName overrides the generated client node name.
	ClientName string
	// DiscoveryWindow bounds JobManager discovery (0 = 200ms).
	DiscoveryWindow time.Duration
	// Policy selects among JobManager offers (nil = BestFit).
	Policy discovery.Policy
	// CallTimeout bounds individual request/response calls (0 = 10s).
	CallTimeout time.Duration
	// Logf receives diagnostics; nil disables logging.
	Logf func(format string, args ...any)
	// Tracer makes this client a trace root: job submission opens the
	// trace (sampling decided there) and every job call carries its
	// context on the wire. Nil leaves jobs untraced from the client side
	// (a JobManager may still self-sample them).
	Tracer *trace.Tracer
}

// Client is an initialized CN API handle bound to one cluster network.
type Client struct {
	opts   Options
	node   string
	ep     transport.Endpoint
	caller *transport.Caller

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
}

// Initialize attaches a client to the cluster fabric and returns the API
// handle (the paper's factory acquisition step).
func Initialize(net transport.Network, opts Options) (*Client, error) {
	name := opts.ClientName
	if name == "" {
		name = fmt.Sprintf("client-%d", clientSeq.Add(1))
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 10 * time.Second
	}
	c := &Client{opts: opts, node: name, jobs: make(map[string]*Job)}
	ep, err := net.Attach(name, c.handle)
	if err != nil {
		return nil, fmt.Errorf("api: initialize: %w", err)
	}
	c.ep = ep
	c.caller = transport.NewCaller(ep)
	return c, nil
}

// Node returns the client's node name on the fabric.
func (c *Client) Node() string { return c.node }

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf("[client %s] "+format, append([]any{c.node}, args...)...)
	}
}

// handle is the client's endpoint dispatch: replies feed the caller, user
// messages and events feed the owning job.
func (c *Client) handle(m *msg.Message) {
	if c.caller.Handle(m) {
		return
	}
	switch m.Kind {
	case msg.KindUser:
		var p protocol.UserPayload
		if err := protocol.Decode(m, &p); err != nil {
			c.logf("bad user payload: %v", err)
			return
		}
		if j := c.job(p.JobID); j != nil {
			if err := j.inbox.TryPut(m); err != nil {
				c.logf("inbox full, dropping message from %s", p.FromTask)
			}
		}
	case msg.KindTaskStarted, msg.KindTaskCompleted, msg.KindTaskFailed, msg.KindTaskRetried:
		var ev protocol.TaskEvent
		if err := protocol.Decode(m, &ev); err != nil {
			return
		}
		if j := c.job(ev.JobID); j != nil {
			j.recordEvent(m.Kind, &ev)
		}
	case msg.KindJobCompleted, msg.KindJobFailed:
		var ev protocol.JobEvent
		if err := protocol.Decode(m, &ev); err != nil {
			return
		}
		if j := c.job(ev.JobID); j != nil {
			j.finish(&ev)
		}
	case msg.KindJMAdopt:
		// A surviving JobManager adopted the job after its original manager
		// died; re-point the handle so future calls reach the survivor.
		var req protocol.JMAdoptReq
		if err := protocol.Decode(m, &req); err != nil {
			return
		}
		if j := c.job(req.JobID); j != nil && req.NewManager != "" {
			j.setManager(req.NewManager)
			c.logf("job %s re-homed to %s", req.JobID, req.NewManager)
		}
	}
}

func (c *Client) job(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// Scrape pulls one node's metrics registry snapshot and span-store depth
// over the wire (KindStatsPull) — the primitive cluster-wide metrics
// aggregation is built from.
func (c *Client) Scrape(ctx context.Context, node string) (*protocol.StatsReportResp, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
	defer cancel()
	m := protocol.Body(msg.KindStatsPull,
		msg.Address{Node: c.node, Task: protocol.ClientTaskName},
		msg.Address{Node: node},
		protocol.StatsPullReq{Scraper: c.node})
	reply, err := c.caller.Call(cctx, node, m)
	if err != nil {
		return nil, fmt.Errorf("api: scrape %s: %w", node, err)
	}
	var resp protocol.StatsReportResp
	if err := protocol.Decode(reply, &resp); err != nil {
		return nil, fmt.Errorf("api: scrape %s: %w", node, err)
	}
	return &resp, nil
}

// Discover performs one JobManager discovery round without creating a job.
func (c *Client) Discover(req protocol.JobRequirements) (protocol.JMOffer, []protocol.JMOffer, error) {
	return c.DiscoverWith(c.opts.Policy, req)
}

// DiscoverWith is Discover under an explicit selection policy.
func (c *Client) DiscoverWith(policy discovery.Policy, req protocol.JobRequirements) (protocol.JMOffer, []protocol.JMOffer, error) {
	return discovery.Discover(c.caller, c.node, discovery.Options{
		Window:       c.opts.DiscoveryWindow,
		Policy:       policy,
		Requirements: req,
	})
}

// CreateJob discovers a willing JobManager and creates a job on it.
func (c *Client) CreateJob(name string, req protocol.JobRequirements) (*Job, error) {
	offer, _, err := c.Discover(req)
	if err != nil {
		return nil, fmt.Errorf("api: create job %q: %w", name, err)
	}
	return c.CreateJobOn(offer.Node, name, req)
}

// CreateJobOn creates a job on a specific JobManager node (used when the
// caller already discovered or statically knows the manager).
func (c *Client) CreateJobOn(jmNode, name string, req protocol.JobRequirements) (*Job, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.CallTimeout)
	defer cancel()
	// The trace is born here: the submit span is the root every other
	// span of the job — JM scheduling, task exec, shuffle pulls — hangs
	// off, and its context rides the create message's envelope.
	ra := c.opts.Tracer.StartRoot("job.submit", "")
	cm := protocol.Body(msg.KindCreateJob,
		msg.Address{Node: c.node, Task: protocol.ClientTaskName},
		msg.Address{Node: jmNode},
		protocol.CreateJobReq{Name: name, Req: req, ClientNode: c.node})
	cm.Trace = ra.Context()
	reply, err := c.caller.Call(ctx, jmNode, cm)
	if err != nil {
		ra.End(err)
		return nil, fmt.Errorf("api: create job %q on %s: %w", name, jmNode, err)
	}
	if reply.Kind == msg.KindJobFailed {
		err := replyError("create job", reply)
		ra.End(err)
		return nil, err
	}
	var resp protocol.CreateJobResp
	if err := protocol.Decode(reply, &resp); err != nil {
		ra.End(err)
		return nil, fmt.Errorf("api: create job %q: %w", name, err)
	}
	ra.SetJob(resp.JobID).End(nil)
	j := &Job{
		client: c,
		ID:     resp.JobID,
		Name:   name,
		JMNode: jmNode,
		trace:  ra.Context(),
		inbox:  msg.NewMailbox(0),
		events: msg.NewMailbox(0),
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	c.jobs[j.ID] = j
	c.mu.Unlock()
	c.logf("job %s created on %s", j.ID, jmNode)
	return j, nil
}

func replyError(op string, reply *msg.Message) error {
	var ev protocol.JobEvent
	if err := protocol.Decode(reply, &ev); err == nil && ev.Err != "" {
		return fmt.Errorf("api: %s: %s", op, ev.Err)
	}
	return fmt.Errorf("api: %s: request refused", op)
}

// Close detaches the client from the fabric. Jobs in flight are abandoned.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		j.inbox.Close()
		j.events.Close()
	}
	return c.ep.Close()
}

// Job is a handle on one CN job hosted by a JobManager.
type Job struct {
	client *Client
	// ID is the JobManager-assigned job id.
	ID string
	// Name is the user-assigned job name.
	Name string
	// JMNode is the hosting JobManager's node. It is re-pointed when a
	// surviving JobManager adopts the job after a manager death; calls
	// read it through manager() so in-flight handles follow the move.
	JMNode string
	// trace is the job's root trace context (zero when the submit was not
	// sampled); set once at creation, read-only after.
	trace trace.Context

	inbox  *msg.Mailbox // user messages addressed to the client
	events *msg.Mailbox // task lifecycle events

	// pushMu serializes chunked blob uploads from this handle: the
	// JobManager stages one sequential upload per (node, digest), so two
	// goroutines pushing concurrently — same digest or not — must not
	// interleave their chunk sequences.
	pushMu sync.Mutex

	mu       sync.Mutex
	started  bool
	finished bool
	result   *Result
	done     chan struct{}
	prog     Progress
}

// Progress counts task lifecycle events as observed by the client — the
// cheap, client-local complement to the JobManager's schedule census.
type Progress struct {
	// Tasks is how many tasks were successfully created on the job.
	Tasks int `json:"tasks"`
	// Started/Completed/Failed count the respective lifecycle events. A
	// recovered task restarts, so Started can exceed Tasks on jobs that
	// survived node failures.
	Started   int `json:"started"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Retried counts TASK_RETRIED events: re-placements after a node
	// death, a failed dispatch, or straggler speculation.
	Retried int `json:"retried"`
}

// Result is a job's terminal status.
type Result struct {
	JobID    string
	Failed   bool
	Err      string
	TaskErrs map[string]string
}

// Event is one task lifecycle notification.
type Event struct {
	Kind msg.Kind
	Task string
	Node string
	Err  string
	// Attempt is the task's re-placement count when the event fired (0 for
	// the original placement).
	Attempt int
	// Speculative marks a TASK_RETRIED raised by straggler speculation
	// rather than failure recovery.
	Speculative bool
}

// Manager returns the node currently hosting the job's JobManager — the
// original host, or the adopting survivor after a failover.
func (j *Job) Manager() string { return j.manager() }

// manager returns the node currently hosting the job's JobManager.
func (j *Job) manager() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.JMNode
}

// setManager re-points the handle at an adopting JobManager.
func (j *Job) setManager(node string) {
	j.mu.Lock()
	j.JMNode = node
	j.mu.Unlock()
}

// CreateTask registers a single task with the job; ar carries the task's
// archive (may be nil when the class is pre-deployed on all nodes). It is
// a one-element CreateTasks.
func (j *Job) CreateTask(spec *task.Spec, ar *archive.Archive) error {
	var archives map[string]*archive.Archive
	if ar != nil {
		if spec.Archive == "" {
			spec.Archive = ar.Name
		}
		// Key by the spec's archive name: the explicitly passed archive
		// always ships with this task, even when spec.Archive was preset
		// to a name other than ar.Name.
		archives = map[string]*archive.Archive{spec.Archive: ar}
	}
	_, err := j.CreateTasks([]*task.Spec{spec}, archives)
	return err
}

// CreateTasks registers a whole task set with the job in one round trip —
// "Create Tasks for the Job" as a batch. The JobManager places the entire
// set in one solicitation round and distributes archives by digest, so N
// tasks sharing an archive cost one blob transfer per chosen node instead
// of N uploads.
//
// archives maps archive file names (each spec's Archive field) to built
// archives; specs whose archive name is absent run against pre-deployed
// classes. The result maps task name -> executing node.
func (j *Job) CreateTasks(specs []*task.Spec, archives map[string]*archive.Archive) (map[string]string, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("api: create tasks: empty task set")
	}
	req := protocol.CreateTasksReq{
		JobID: j.ID,
		Tasks: make([]protocol.TaskCreate, 0, len(specs)),
	}
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("api: create tasks: %w", err)
		}
		item := protocol.TaskCreate{Spec: spec}
		if ar := archives[spec.Archive]; ar != nil {
			digest := ar.Digest()
			item.Archive = protocol.ArchiveRef{Name: ar.Name, Digest: digest}
			if req.Blobs == nil {
				req.Blobs = make(map[string][]byte)
			}
			if _, dup := req.Blobs[digest]; !dup {
				req.Blobs[digest] = ar.Bytes()
			}
		}
		req.Tasks = append(req.Tasks, item)
	}
	// Large archives never ride inside the create-tasks message: they are
	// streamed to the JobManager chunk by chunk first (digest-verified on
	// arrival), and the batch then carries content-addressed references
	// only, so no single frame approaches the transport limit. The budget
	// is aggregate: many small archives that together would overflow a
	// frame are chunk-streamed too (digests iterated in sorted order so
	// the inline/push split is deterministic).
	digests := make([]string, 0, len(req.Blobs))
	for digest := range req.Blobs {
		digests = append(digests, digest)
	}
	sort.Strings(digests)
	inlined := 0
	for _, digest := range digests {
		raw := req.Blobs[digest]
		if len(raw) <= protocol.MaxInlineBlob && inlined+len(raw) <= protocol.MaxInlinePerMessage {
			inlined += len(raw)
			continue
		}
		if err := j.pushBlob(digest, raw); err != nil {
			return nil, fmt.Errorf("api: create tasks: upload archive %.12s…: %w", digest, err)
		}
		delete(req.Blobs, digest)
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.client.opts.CallTimeout)
	defer cancel()
	jmNode := j.manager()
	ca := j.client.opts.Tracer.StartSpan(j.trace, "job.create_tasks").SetJob(j.ID)
	cm := protocol.Body(msg.KindCreateTasks,
		msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
		msg.Address{Node: jmNode, Job: j.ID},
		req)
	cm.Trace = j.trace
	reply, err := j.client.caller.Call(ctx, jmNode, cm)
	if err != nil {
		ca.End(err)
		return nil, fmt.Errorf("api: create %d tasks: %w", len(specs), err)
	}
	if reply.Kind == msg.KindJobFailed {
		err := replyError(fmt.Sprintf("create %d tasks", len(specs)), reply)
		ca.End(err)
		return nil, err
	}
	var resp protocol.CreateTasksResp
	if err := protocol.Decode(reply, &resp); err != nil {
		ca.End(err)
		return nil, fmt.Errorf("api: create tasks: %w", err)
	}
	ca.End(nil)
	j.mu.Lock()
	j.prog.Tasks += len(specs)
	j.mu.Unlock()
	return resp.Placements, nil
}

// pushBlob streams one archive's bytes to the hosting JobManager in
// protocol.BlobChunkBytes pieces. Each chunk is an acknowledged round
// trip; the JobManager digest-verifies the reassembled blob before making
// it available for TaskManager fetches.
func (j *Job) pushBlob(digest string, raw []byte) error {
	j.pushMu.Lock()
	defer j.pushMu.Unlock()
	total := int64(len(raw))
	for off := int64(0); off < total; {
		end := off + protocol.BlobChunkBytes
		if end > total {
			end = total
		}
		jmNode := j.manager()
		cm := protocol.Body(msg.KindBlobChunk,
			msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
			msg.Address{Node: jmNode, Job: j.ID},
			protocol.BlobChunkReq{
				JobID:  j.ID,
				Digest: digest,
				Offset: off,
				Total:  total,
				Data:   raw[off:end],
			})
		ctx, cancel := context.WithTimeout(context.Background(), j.client.opts.CallTimeout)
		reply, err := j.client.caller.Call(ctx, jmNode, cm)
		cancel()
		if err != nil {
			return err
		}
		var resp protocol.BlobChunkResp
		if err := protocol.Decode(reply, &resp); err != nil {
			return err
		}
		if resp.Err != "" {
			return fmt.Errorf("chunk at %d: %s", off, resp.Err)
		}
		if resp.Offset <= off {
			return fmt.Errorf("chunk at %d: upload did not advance (ack offset %d)", off, resp.Offset)
		}
		off = resp.Offset
	}
	return nil
}

// Progress returns the client-observed lifecycle census for the job.
func (j *Job) Progress() Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prog
}

// Start begins execution. With no arguments the whole job runs in
// dependency order; otherwise only the named tasks (and their scheduling
// graph) run.
func (j *Job) Start(taskNames ...string) error {
	j.mu.Lock()
	if j.started {
		j.mu.Unlock()
		return fmt.Errorf("api: job %s already started", j.ID)
	}
	j.started = true
	j.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), j.client.opts.CallTimeout)
	defer cancel()
	jmNode := j.manager()
	// Drain the client-side spans of this trace (submit, task creation)
	// into the start request: the JobManager folds them into the per-job
	// timeline it assembles, so the client never needs scraping.
	sm := protocol.Body(msg.KindStartTask,
		msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
		msg.Address{Node: jmNode, Job: j.ID},
		protocol.StartJobReq{
			JobID:     j.ID,
			TaskNames: taskNames,
			Spans:     j.client.opts.Tracer.Store().Take(j.ID, ""),
		})
	sm.Trace = j.trace
	reply, err := j.client.caller.Call(ctx, jmNode, sm)
	if err != nil {
		return fmt.Errorf("api: start job %s: %w", j.ID, err)
	}
	if reply.Kind == msg.KindJobFailed {
		return replyError("start job", reply)
	}
	return nil
}

// recordEvent queues a lifecycle event.
func (j *Job) recordEvent(kind msg.Kind, ev *protocol.TaskEvent) {
	j.mu.Lock()
	switch kind {
	case msg.KindTaskStarted:
		j.prog.Started++
	case msg.KindTaskCompleted:
		j.prog.Completed++
	case msg.KindTaskFailed:
		j.prog.Failed++
	case msg.KindTaskRetried:
		j.prog.Retried++
	}
	j.mu.Unlock()
	m := protocol.Body(kind, msg.Address{}, msg.Address{}, *ev)
	if err := j.events.TryPut(m); err != nil {
		// Events are advisory; dropping under pressure is acceptable.
		return
	}
}

// finish records the terminal job event and releases waiters.
func (j *Job) finish(ev *protocol.JobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	j.result = &Result{JobID: ev.JobID, Failed: ev.Failed, Err: ev.Err, TaskErrs: ev.TaskErrs}
	close(j.done)
}

// Done returns a channel closed once the job reaches a terminal state.
// Any user messages sent before termination are already queued when the
// channel closes (the JobManager forwards per-job traffic in order).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("api: wait job %s: %w", j.ID, ctx.Err())
	}
}

// Run is Start followed by Wait.
func (j *Job) Run(ctx context.Context) (*Result, error) {
	if err := j.Start(); err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// SendMessage delivers a user payload to a task ("Send Messages to Tasks").
func (j *Job) SendMessage(toTask string, data []byte) error {
	j.mu.Lock()
	finished := j.finished
	j.mu.Unlock()
	if finished {
		return ErrJobFinished
	}
	p := protocol.UserPayload{
		JobID:    j.ID,
		FromTask: protocol.ClientTaskName,
		ToTask:   toTask,
		Data:     data,
	}
	jmNode := j.manager()
	m := protocol.Body(msg.KindUser,
		msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
		msg.Address{Node: jmNode, Job: j.ID, Task: toTask},
		p)
	if err := j.client.ep.Send(jmNode, m); err != nil {
		return fmt.Errorf("api: send to %s: %w", toTask, err)
	}
	return nil
}

// GetMessage blocks for the next user message from any task ("Get Messages
// from Tasks"), returning the sending task's name and the payload.
func (j *Job) GetMessage(ctx context.Context) (string, []byte, error) {
	m, err := j.inbox.GetContext(ctx)
	if err != nil {
		return "", nil, fmt.Errorf("api: get message: %w", err)
	}
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return "", nil, fmt.Errorf("api: get message: %w", err)
	}
	return p.FromTask, p.Data, nil
}

// TryGetMessage is GetMessage without blocking; ok is false when no message
// is queued.
func (j *Job) TryGetMessage() (from string, data []byte, ok bool, err error) {
	m, err := j.inbox.TryGet()
	if errors.Is(err, msg.ErrEmpty) {
		return "", nil, false, nil
	}
	if err != nil {
		return "", nil, false, fmt.Errorf("api: get message: %w", err)
	}
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return "", nil, false, fmt.Errorf("api: get message: %w", err)
	}
	return p.FromTask, p.Data, true, nil
}

// GetEvent blocks for the next task lifecycle event.
func (j *Job) GetEvent(ctx context.Context) (*Event, error) {
	m, err := j.events.GetContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("api: get event: %w", err)
	}
	var ev protocol.TaskEvent
	if err := protocol.Decode(m, &ev); err != nil {
		return nil, fmt.Errorf("api: get event: %w", err)
	}
	return &Event{
		Kind: m.Kind, Task: ev.Task, Node: ev.Node, Err: ev.Err,
		Attempt: ev.Attempt, Speculative: ev.Speculative,
	}, nil
}

// Cancel abandons the job.
func (j *Job) Cancel(reason string) error {
	ctx, cancel := context.WithTimeout(context.Background(), j.client.opts.CallTimeout)
	defer cancel()
	jmNode := j.manager()
	cm := protocol.Body(msg.KindCancelJob,
		msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
		msg.Address{Node: jmNode, Job: j.ID},
		protocol.CancelJobReq{JobID: j.ID, Reason: reason})
	reply, err := j.client.caller.Call(ctx, jmNode, cm)
	if err != nil {
		return fmt.Errorf("api: cancel job %s: %w", j.ID, err)
	}
	if reply.Kind == msg.KindJobFailed {
		return replyError("cancel job", reply)
	}
	j.finish(&protocol.JobEvent{JobID: j.ID, Failed: true, Err: "cancelled: " + reason})
	return nil
}
