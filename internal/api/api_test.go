package api_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/archive"
	"cn/internal/cluster"
	"cn/internal/discovery"
	"cn/internal/protocol"
	"cn/internal/task"
)

// testRegistry holds the task classes the integration suite deploys.
var testRegistry = func() *task.Registry {
	r := task.NewRegistry()
	r.MustRegister("test.Noop", func() task.Task {
		return task.Func(func(task.Context) error { return nil })
	})
	r.MustRegister("test.EchoName", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	r.MustRegister("test.Fail", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			return errors.New("deliberate failure")
		})
	})
	r.MustRegister("test.Panic", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			panic("deliberate panic")
		})
	})
	r.MustRegister("test.Pinger", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			peer, err := task.StringParam(ctx.Params(), 0)
			if err != nil {
				return err
			}
			if err := ctx.Send(peer, []byte("ping")); err != nil {
				return err
			}
			from, data, err := ctx.Recv()
			if err != nil {
				return err
			}
			return ctx.SendClient([]byte(fmt.Sprintf("got %s from %s", data, from)))
		})
	})
	r.MustRegister("test.Ponger", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			from, data, err := ctx.Recv()
			if err != nil {
				return err
			}
			if string(data) != "ping" {
				return fmt.Errorf("unexpected payload %q", data)
			}
			return ctx.Send(from, []byte("pong"))
		})
	})
	r.MustRegister("test.Broadcaster", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			return ctx.Broadcast([]byte("hello-all"))
		})
	})
	r.MustRegister("test.BroadcastListener", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			from, data, err := ctx.Recv()
			if err != nil {
				return err
			}
			return ctx.SendClient([]byte(ctx.TaskName() + " heard " + string(data) + " from " + from))
		})
	})
	r.MustRegister("test.EchoClient", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			_, data, err := ctx.Recv()
			if err != nil {
				return err
			}
			return ctx.SendClient(append([]byte("echo:"), data...))
		})
	})
	r.MustRegister("test.Sleeper", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			for !ctx.Done() {
				time.Sleep(time.Millisecond)
			}
			return nil
		})
	})
	r.MustRegister("test.LogAndRun", func() task.Task {
		return task.Func(func(ctx task.Context) error {
			ctx.Logf("running on %s with %d params", ctx.NodeName(), len(ctx.Params()))
			if ctx.JobID() == "" {
				return errors.New("empty job id")
			}
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	return r
}()

// start boots a cluster plus an initialized client.
func start(t *testing.T, nodes int) (*cluster.Cluster, *api.Client) {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: nodes, Registry: testRegistry})
	if err != nil {
		t.Fatalf("cluster start: %v", err)
	}
	t.Cleanup(c.Stop)
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("api initialize: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return c, cl
}

func spec(name, class string, deps []string, params ...task.Param) *task.Spec {
	return &task.Spec{
		Name:      name,
		Class:     class,
		DependsOn: deps,
		Params:    params,
		Req:       task.Requirements{MemoryMB: 100, RunModel: task.RunAsThreadInTM},
	}
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSingleTaskJobCompletes(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("single", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("only", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Errorf("job failed: %+v", res)
	}
}

func TestDependencyOrdering(t *testing.T) {
	_, cl := start(t, 3)
	j, err := cl.CreateJob("chain", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*task.Spec{
		spec("a", "test.EchoName", nil),
		spec("b", "test.EchoName", []string{"a"}),
		spec("c", "test.EchoName", []string{"b"}),
	} {
		if err := j.CreateTask(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	var order []string
	ctx := ctxT(t)
	for len(order) < 3 {
		from, _, err := j.GetMessage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, from)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFanOutFanIn(t *testing.T) {
	_, cl := start(t, 4)
	j, err := cl.CreateJob("fan", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("split", "test.EchoName", nil), nil); err != nil {
		t.Fatal(err)
	}
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	for _, w := range workers {
		if err := j.CreateTask(spec(w, "test.EchoName", []string{"split"}), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.CreateTask(spec("join", "test.EchoName", workers), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	seen := make(map[string]int)
	var sequence []string
	for i := 0; i < 7; i++ {
		from, _, err := j.GetMessage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[from]++
		sequence = append(sequence, from)
	}
	if sequence[0] != "split" {
		t.Errorf("split did not run first: %v", sequence)
	}
	if sequence[6] != "join" {
		t.Errorf("join did not run last: %v", sequence)
	}
	for _, w := range workers {
		if seen[w] != 1 {
			t.Errorf("worker %s ran %d times", w, seen[w])
		}
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestTaskFailureFailsJob(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("failing", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("boom", "test.Fail", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("after", "test.Noop", []string{"boom"}), nil); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("job should have failed")
	}
	if !strings.Contains(res.TaskErrs["boom"], "deliberate failure") {
		t.Errorf("TaskErrs = %v", res.TaskErrs)
	}
}

func TestPanicConfined(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("panicky", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("kaboom", "test.Panic", nil), nil); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || !strings.Contains(res.TaskErrs["kaboom"], "panic") {
		t.Errorf("res = %+v", res)
	}
	// The cluster must still work after a task panicked.
	j2, err := cl.CreateJob("after-panic", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.CreateTask(spec("fine", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Run(ctxT(t))
	if err != nil || res2.Failed {
		t.Fatalf("post-panic job: res=%+v err=%v", res2, err)
	}
}

func TestIntertaskMessaging(t *testing.T) {
	_, cl := start(t, 3)
	j, err := cl.CreateJob("pingpong", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("ponger", "test.Ponger", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("pinger", "test.Pinger", nil,
		task.Param{Type: task.TypeString, Value: "ponger"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	from, data, err := j.GetMessage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != "pinger" || string(data) != "got pong from ponger" {
		t.Errorf("message = %q from %s", data, from)
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestBroadcast(t *testing.T) {
	_, cl := start(t, 3)
	j, err := cl.CreateJob("bcast", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	listeners := []string{"l1", "l2", "l3"}
	for _, l := range listeners {
		if err := j.CreateTask(spec(l, "test.BroadcastListener", nil), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.CreateTask(spec("caster", "test.Broadcaster", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	heard := make(map[string]bool)
	for i := 0; i < len(listeners); i++ {
		from, data, err := j.GetMessage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "heard hello-all from caster") {
			t.Errorf("listener message = %q", data)
		}
		heard[from] = true
	}
	for _, l := range listeners {
		if !heard[l] {
			t.Errorf("listener %s never heard the broadcast", l)
		}
	}
	res, err := j.Wait(ctx)
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestClientSendMessage(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("echo", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("echoer", "test.EchoClient", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	if err := j.SendMessage("echoer", []byte("hello task")); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	from, data, err := j.GetMessage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != "echoer" || string(data) != "echo:hello task" {
		t.Errorf("echo = %q from %s", data, from)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCancelJob(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("cancel-me", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("sleepy", "test.Sleeper", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := j.Cancel("test over"); err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Error("cancelled job should report failed")
	}
}

func TestLifecycleEvents(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("events", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("only", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	ev1, err := j.GetEvent(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := j.GetEvent(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Task != "only" || ev2.Task != "only" {
		t.Errorf("events = %+v, %+v", ev1, ev2)
	}
	if ev1.Kind.String() != "TASK_STARTED" || ev2.Kind.String() != "TASK_COMPLETED" {
		t.Errorf("event kinds = %v, %v", ev1.Kind, ev2.Kind)
	}
}

func TestArchiveUploadAndVerification(t *testing.T) {
	_, cl := start(t, 2)
	ar, err := archive.NewBuilder("noop.jar", "test.Noop").
		AddFile("doc.txt", []byte("docs")).Build()
	if err != nil {
		t.Fatal(err)
	}
	j, err := cl.CreateJob("with-archive", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("pkg", "test.Noop", nil), ar); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// A manifest class mismatch must be rejected at placement time.
	bad, err := archive.NewBuilder("bad.jar", "test.SomethingElse").Build()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := cl.CreateJob("bad-archive", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.CreateTask(spec("pkg", "test.Noop", nil), bad); err == nil {
		t.Error("mismatched archive accepted")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("unknown-class", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("ghost", "test.NotRegistered", nil), nil); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestInsufficientMemoryRejected(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("oom", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	s := spec("big", "test.Noop", nil)
	s.Req.MemoryMB = 1 << 20 // 1 TB: no node offers
	if err := j.CreateTask(s, nil); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestDiscoveryPolicies(t *testing.T) {
	c, cl := start(t, 4)
	for _, policy := range []discovery.Policy{
		discovery.FirstResponder{},
		discovery.BestFit{},
		discovery.LeastLoaded{},
		discovery.NewRandom(7),
	} {
		offer, offers, err := cl.DiscoverWith(policy, protocol.JobRequirements{})
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if offer.Node == "" {
			t.Errorf("%s: empty selection", policy.Name())
		}
		if _, first := policy.(discovery.FirstResponder); !first && len(offers) != len(c.Nodes()) {
			t.Errorf("%s: %d offers from %d nodes", policy.Name(), len(offers), len(c.Nodes()))
		}
	}
}

func TestDiscoveryNoOffers(t *testing.T) {
	_, cl := start(t, 2)
	// Demand more memory than any node has.
	_, _, err := cl.Discover(protocol.JobRequirements{MinMemoryMB: 1 << 30})
	if !errors.Is(err, discovery.ErrNoOffers) {
		t.Errorf("Discover = %v, want ErrNoOffers", err)
	}
}

func TestConcurrentJobs(t *testing.T) {
	_, cl := start(t, 4)
	const jobs = 6
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := cl.CreateJob(fmt.Sprintf("conc%d", i), protocol.JobRequirements{})
			if err != nil {
				errs[i] = err
				return
			}
			for _, s := range []*task.Spec{
				spec("a", "test.Noop", nil),
				spec("b", "test.Noop", []string{"a"}),
			} {
				if err := j.CreateTask(s, nil); err != nil {
					errs[i] = err
					return
				}
			}
			res, err := j.Run(ctxT(t))
			if err != nil {
				errs[i] = err
				return
			}
			if res.Failed {
				errs[i] = fmt.Errorf("job %d failed: %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestTCPTransportSmoke(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		Nodes:     2,
		Transport: cluster.TransportTCP,
		Registry:  testRegistry,
	})
	if err != nil {
		t.Fatalf("tcp cluster: %v", err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	j, err := cl.CreateJob("tcp", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.EchoName", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	from, _, err := j.GetMessage(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if from != "a" {
		t.Errorf("from = %q", from)
	}
	res, err := j.Wait(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestLossyNetworkStillCompletes(t *testing.T) {
	// Low loss plus protocol retries: the job should still finish. The CN
	// protocol's request/response calls time out and the test accepts
	// either success or a placement error, but never a hang.
	c, err := cluster.Start(cluster.Config{
		Nodes:    3,
		Registry: testRegistry,
		Latency:  100 * time.Microsecond,
		Jitter:   200 * time.Microsecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	j, err := cl.CreateJob("jittery", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestStartTwiceRejected(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("twice", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err == nil {
		t.Error("second Start accepted")
	}
}

func TestDuplicateTaskRejected(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("dup", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.Noop", nil), nil); err == nil {
		t.Error("duplicate task accepted")
	}
}

func TestKillNodeFailsPlacement(t *testing.T) {
	c, cl := start(t, 2)
	// Kill one node; the survivor still hosts jobs.
	if err := c.KillNode(c.Nodes()[1]); err != nil {
		t.Fatal(err)
	}
	j, err := cl.CreateJob("survivor", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("a", "test.Noop", nil), nil); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestContextAccessors(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("ctx", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateTask(spec("lr", "test.LogAndRun", nil,
		task.Param{Type: task.TypeString, Value: "x"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err != nil {
		t.Fatal(err)
	}
	from, _, err := j.GetMessage(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if from != "lr" {
		t.Errorf("from = %q", from)
	}
}

func TestCreateTasksBatch(t *testing.T) {
	c, cl := start(t, 3)
	ar, err := archive.NewBuilder("batch.jar", "test.EchoName").
		AddFile("data.bin", []byte(strings.Repeat("x", 4096))).Build()
	if err != nil {
		t.Fatal(err)
	}
	j, err := cl.CreateJob("batch", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	var specs []*task.Spec
	for i := 0; i < 8; i++ {
		s := spec(fmt.Sprintf("t%d", i), "test.EchoName", nil)
		s.Archive = ar.Name
		specs = append(specs, s)
	}
	placements, err := j.CreateTasks(specs, map[string]*archive.Archive{ar.Name: ar})
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != len(specs) {
		t.Fatalf("placements = %v", placements)
	}
	for name, node := range placements {
		if node == "" {
			t.Errorf("task %s placed nowhere", name)
		}
	}
	if got := j.Progress().Tasks; got != len(specs) {
		t.Errorf("progress tasks = %d, want %d", got, len(specs))
	}
	// Batch admission costs one solicitation round, and the shared
	// archive travels at most once per node.
	if st := c.PlacementStats(); st.SolicitRounds > 2 {
		t.Errorf("solicit rounds = %d for one batch, want <= 2", st.SolicitRounds)
	}
	if tr := c.BlobTransfers(); tr < 1 || tr > 3 {
		t.Errorf("blob transfers = %d, want between 1 and node count", tr)
	}
	res, err := j.Run(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestCreateTasksEmptyAndInvalid(t *testing.T) {
	_, cl := start(t, 2)
	j, err := cl.CreateJob("empty-batch", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.CreateTasks(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := j.CreateTasks([]*task.Spec{{Name: "", Class: "test.Noop"}}, nil); err == nil {
		t.Error("invalid spec accepted")
	}
	// A batch with a duplicate task name is rejected atomically.
	dup := []*task.Spec{spec("same", "test.Noop", nil), spec("same", "test.Noop", nil)}
	if _, err := j.CreateTasks(dup, nil); err == nil {
		t.Error("duplicate-name batch accepted")
	}
}

func TestFailedBatchReleasesReservations(t *testing.T) {
	// A batch that cannot be fully placed must not leak the memory its
	// accepted tasks reserved on TaskManagers.
	c, err := cluster.Start(cluster.Config{Nodes: 1, MemoryMB: 500, Registry: testRegistry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	j, err := cl.CreateJob("partial", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	big := func(name string) *task.Spec {
		s := spec(name, "test.Noop", nil)
		s.Req.MemoryMB = 400 // two of these cannot share the 500 MB node
		return s
	}
	if _, err := j.CreateTasks([]*task.Spec{big("a"), big("b")}, nil); err == nil {
		t.Fatal("oversubscribed batch accepted")
	}
	tm := c.Server(c.Nodes()[0]).TaskManager()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && tm.FreeMemoryMB() != 500 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := tm.FreeMemoryMB(); got != 500 {
		t.Errorf("free = %d MB after failed batch, want 500 (reservation released)", got)
	}
}

func TestCreateTaskShipsArchiveDespiteNameMismatch(t *testing.T) {
	// An explicitly passed archive must reach the node even when the
	// spec's Archive field was preset to a different name.
	_, cl := start(t, 2)
	ar, err := archive.NewBuilder("real.jar", "test.Noop").Build()
	if err != nil {
		t.Fatal(err)
	}
	j, err := cl.CreateJob("mismatch", protocol.JobRequirements{})
	if err != nil {
		t.Fatal(err)
	}
	s := spec("pkg", "test.Noop", nil)
	s.Archive = "alias.jar" // preset, differs from ar.Name
	if err := j.CreateTask(s, ar); err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(ctxT(t))
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
