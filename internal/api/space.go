// Client-side view of a job's coordination tuple space. The space itself
// lives with the hosting JobManager; this handle routes every operation
// over the wire, so the client coordinates with the job's tasks through
// the same space they use among themselves — seeding a bag of tasks,
// collecting results, posting poison pills.

package api

import (
	"context"
	"fmt"
	"time"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/tuplespace"
)

// Space is the client's handle on a job's tuple space. Obtain one with
// Job.Space; it stays valid for the life of the job and fails operations
// with tuplespace.ErrClosed once the job reaches a terminal state.
type Space struct {
	job *Job
}

// Space returns the handle on the job's coordination tuple space.
func (j *Job) Space() *Space { return &Space{job: j} }

// tsParkMargin is how much of the caller's remaining deadline a blocking
// request must leave unspent: the server answers Retry at park end and
// the reply still has to cross the wire before ctx fires. A request that
// parked past the caller's deadline would become a stale waiter whose
// answer nobody consumes — for In, destroying the matched tuple.
const tsParkMargin = 500 * time.Millisecond

// wire builds the job's shared protocol.TSWire attachment. The manager
// node is resolved at build time; do() rebuilds the wire per attempt so
// blocking retries follow a mid-operation job adoption to the survivor.
func (s *Space) wire() *protocol.TSWire {
	j := s.job
	return &protocol.TSWire{
		JobID:    j.ID,
		FromTask: protocol.ClientTaskName,
		From:     msg.Address{Node: j.client.node, Job: j.ID, Task: protocol.ClientTaskName},
		To:       msg.Address{Node: j.manager(), Job: j.ID},
		Call:     j.client.caller.Call,
		Send:     j.client.ep.Send,
	}
}

// do performs one tuple-space wire call under ctx; each attempt is also
// bounded by TSCallTimeout so a dead JobManager fails the operation.
func (s *Space) do(ctx context.Context) protocol.TSDoFunc {
	return func(kind msg.Kind, req protocol.TSOpReq) (*protocol.TSOpResp, error) {
		w := s.wire()
		if req.ParkMS > 0 {
			if dl, ok := ctx.Deadline(); ok {
				// A truncated 0 would read as "use the default window"
				// server-side, so anything under a whole millisecond is
				// already too late to park.
				ms := (time.Until(dl) - tsParkMargin).Milliseconds()
				if ms < 1 {
					// Don't issue a park the caller cannot wait out.
					return nil, fmt.Errorf("api: tuple-space %s: %w", kind, context.DeadlineExceeded)
				}
				if ms < req.ParkMS {
					req.ParkMS = ms
				}
			}
		}
		resp, err := w.Do(ctx, kind, req)
		if err != nil {
			return nil, fmt.Errorf("api: %w", err)
		}
		return resp, nil
	}
}

// opCtx bounds non-blocking operations by the client's call timeout
// (Initialize already normalized it to a positive value).
func (s *Space) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.job.client.opts.CallTimeout)
}

// Out stores a tuple in the job's space.
func (s *Space) Out(t tuplespace.Tuple) error {
	ctx, cancel := s.opCtx()
	defer cancel()
	return protocol.TSOut(s.do(ctx), t)
}

// In removes and returns a tuple matching tpl, blocking until one is
// available, ctx is done, or the space closes (tuplespace.ErrClosed).
func (s *Space) In(ctx context.Context, tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSBlocking(s.do(ctx), msg.KindTSIn, tpl)
}

// Rd is In without removal.
func (s *Space) Rd(ctx context.Context, tpl tuplespace.Template) (tuplespace.Tuple, error) {
	return protocol.TSBlocking(s.do(ctx), msg.KindTSRd, tpl)
}

// InP removes and returns a matching tuple without blocking;
// tuplespace.ErrNoMatch when none is stored.
func (s *Space) InP(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	ctx, cancel := s.opCtx()
	defer cancel()
	return protocol.TSProbe(s.do(ctx), msg.KindTSInP, tpl)
}

// RdP is InP without removal.
func (s *Space) RdP(tpl tuplespace.Template) (tuplespace.Tuple, error) {
	ctx, cancel := s.opCtx()
	defer cancel()
	return protocol.TSProbe(s.do(ctx), msg.KindTSRdP, tpl)
}
