package jobmgr

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/transport"
)

// SendFunc delivers a message to a node.
type SendFunc func(toNode string, m *msg.Message) error

// Config parametrizes a JobManager.
type Config struct {
	// Node is the hosting node name.
	Node string
	// MaxJobs caps concurrently hosted jobs (0 = 16).
	MaxJobs int
	// MemoryMB is the node capacity advertised in offers (the TaskManager
	// tracks actual reservations; the JobManager reports the figure).
	MemoryMB int
	// SolicitWindow bounds how long task placement solicitations wait for
	// offers (0 = 200ms).
	SolicitWindow time.Duration
	// SolicitRetries is how many times placement is retried when no
	// TaskManager offers or the chosen one rejects (0 = 3).
	SolicitRetries int
	// Logf receives diagnostic lines; nil disables logging.
	Logf func(format string, args ...any)
}

// FreeMemFunc reports the node's current free task-execution memory; the
// server wires the TaskManager's gauge in so JM offers are truthful.
type FreeMemFunc func() int

// jobState is one hosted job.
type jobState struct {
	id         string
	name       string
	clientNode string

	// queue serializes the job's event and user-message processing: the
	// endpoint delivers in arrival order and a single worker goroutine
	// drains the queue, so causally ordered messages (a task's output
	// before its completion event) are forwarded in order.
	queue *msg.Mailbox

	mu        sync.Mutex
	specs     map[string]*task.Spec
	placement map[string]string // task -> node
	schedule  *Schedule
	started   bool
	notified  bool
	taskErrs  map[string]string
}

// JobManager hosts jobs on one node.
type JobManager struct {
	cfg     Config
	send    SendFunc
	caller  *transport.Caller
	freeMem FreeMemFunc

	mu     sync.Mutex
	jobs   map[string]*jobState
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// jobQueueCap bounds each job's serial processing queue.
const jobQueueCap = 16384

// New creates a JobManager. The caller is used for TaskManager
// solicitations and archive uploads; freeMem supplies offer data.
func New(cfg Config, send SendFunc, caller *transport.Caller, freeMem FreeMemFunc) *JobManager {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 16
	}
	if cfg.SolicitWindow <= 0 {
		cfg.SolicitWindow = 200 * time.Millisecond
	}
	if cfg.SolicitRetries <= 0 {
		cfg.SolicitRetries = 3
	}
	if freeMem == nil {
		freeMem = func() int { return cfg.MemoryMB }
	}
	return &JobManager{
		cfg:     cfg,
		send:    send,
		caller:  caller,
		freeMem: freeMem,
		jobs:    make(map[string]*jobState),
	}
}

func (jm *JobManager) logf(format string, args ...any) {
	if jm.cfg.Logf != nil {
		jm.cfg.Logf("[jm %s] "+format, append([]any{jm.cfg.Node}, args...)...)
	}
}

// ActiveJobs returns the number of hosted jobs that have not finished.
// Finished jobs are kept as tombstones so late user messages from their
// tasks still route (message handling is concurrent, so a task's final
// message can arrive after its completion event).
func (jm *JobManager) ActiveJobs() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.activeLocked()
}

func (jm *JobManager) activeLocked() int {
	n := 0
	for _, j := range jm.jobs {
		j.mu.Lock()
		if !j.notified {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// JobProgress reports the named job's schedule census; ok is false for
// unknown jobs. A job created but not yet started reports every registered
// task as pending. Finished jobs stay queryable through their tombstones.
func (jm *JobManager) JobProgress(jobID string) (Progress, bool) {
	jm.mu.Lock()
	j, ok := jm.jobs[jobID]
	jm.mu.Unlock()
	if !ok {
		return Progress{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.schedule == nil {
		n := len(j.specs)
		return Progress{Total: n, Pending: n}, true
	}
	return j.schedule.Progress(), true
}

// HandleSolicit answers a KindJobManagerSolicit multicast: "JobManagers
// respond to multicast requests for JobManagers if they have free resources
// and are willing to be JobManagers." Returns nil when unwilling.
func (jm *JobManager) HandleSolicit(m *msg.Message) *msg.Message {
	var req protocol.JobRequirements
	if err := protocol.Decode(m, &req); err != nil {
		jm.logf("bad jm solicit: %v", err)
		return nil
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed || jm.activeLocked() >= jm.cfg.MaxJobs {
		return nil
	}
	free := jm.freeMem()
	if req.MinMemoryMB > 0 && free < req.MinMemoryMB {
		return nil
	}
	offer := protocol.JMOffer{Node: jm.cfg.Node, FreeMemoryMB: free, ActiveJobs: len(jm.jobs)}
	return m.Reply(msg.KindJobManagerOffer, msg.MustEncode(offer))
}

// HandleCreateJob processes KindCreateJob: "The Job is subsequently created
// in the selected JobManager."
func (jm *JobManager) HandleCreateJob(m *msg.Message) *msg.Message {
	var req protocol.CreateJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad create-job request: %v", err))
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return jm.errReply(m, "job manager shut down")
	}
	if jm.activeLocked() >= jm.cfg.MaxJobs {
		return jm.errReply(m, "job manager at capacity")
	}
	jm.nextID++
	id := fmt.Sprintf("%s-job%d", jm.cfg.Node, jm.nextID)
	j := &jobState{
		id:         id,
		name:       req.Name,
		clientNode: req.ClientNode,
		queue:      msg.NewMailbox(jobQueueCap),
		specs:      make(map[string]*task.Spec),
		placement:  make(map[string]string),
		taskErrs:   make(map[string]string),
	}
	jm.jobs[id] = j
	jm.wg.Add(1)
	go jm.jobWorker(j)
	jm.logf("created job %s (%q) for client %s", id, req.Name, req.ClientNode)
	return m.Reply(msg.KindJobCreated, msg.MustEncode(protocol.CreateJobResp{JobID: id}))
}

// errReply produces a KindJobFailed response carrying the error text, used
// as the uniform failure answer for job-scoped requests.
func (jm *JobManager) errReply(m *msg.Message, text string) *msg.Message {
	r := m.Reply(msg.KindJobFailed, msg.MustEncode(protocol.JobEvent{Failed: true, Err: text}))
	return r
}

func (jm *JobManager) job(id string) (*jobState, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobmgr %s: unknown job %q", jm.cfg.Node, id)
	}
	return j, nil
}

// HandleCreateTask processes KindCreateTask: solicit TaskManagers via
// multicast, pick one, upload the archive, record the placement. It blocks
// on the solicitation round trips and must run outside the endpoint's
// dispatch goroutine.
func (jm *JobManager) HandleCreateTask(m *msg.Message) *msg.Message {
	var req protocol.CreateTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad create-task request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	if err := req.Spec.Validate(); err != nil {
		return jm.errReply(m, err.Error())
	}
	j.mu.Lock()
	if j.notified {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already finished", j.id))
	}
	if j.started {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already started", j.id))
	}
	if _, dup := j.specs[req.Spec.Name]; dup {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("task %q already created", req.Spec.Name))
	}
	j.mu.Unlock()

	node, err := jm.place(j, &req)
	if err != nil {
		return jm.errReply(m, err.Error())
	}

	j.mu.Lock()
	j.specs[req.Spec.Name] = req.Spec
	j.placement[req.Spec.Name] = node
	j.mu.Unlock()
	jm.logf("job %s: task %q placed on %s", j.id, req.Spec.Name, node)
	return m.Reply(msg.KindTaskAccepted, msg.MustEncode(protocol.CreateTaskResp{Placement: node}))
}

// place solicits TaskManagers and uploads the archive to the best offer:
// "The JobManager solicits TaskManager for the Tasks ... If a willing
// TaskManager is found the JobManager will upload the JAR file to that
// TaskManager."
func (jm *JobManager) place(j *jobState, req *protocol.CreateTaskReq) (string, error) {
	solicit := protocol.TaskSolicitReq{JobID: j.id, Spec: req.Spec}
	var lastErr error
	for attempt := 0; attempt < jm.cfg.SolicitRetries; attempt++ {
		sm := protocol.Body(msg.KindTaskSolicit,
			msg.Address{Node: jm.cfg.Node, Job: j.id},
			msg.Address{},
			solicit)
		replies, err := jm.caller.GatherGroup(protocol.GroupTaskManagers, sm, jm.cfg.SolicitWindow)
		if err != nil {
			return "", fmt.Errorf("jobmgr %s: solicit task managers: %w", jm.cfg.Node, err)
		}
		offers := make([]protocol.TMOffer, 0, len(replies))
		for _, r := range replies {
			var o protocol.TMOffer
			if err := protocol.Decode(r, &o); err == nil {
				offers = append(offers, o)
			}
		}
		if len(offers) == 0 {
			lastErr = fmt.Errorf("jobmgr %s: no TaskManager offered to run task %q", jm.cfg.Node, req.Spec.Name)
			continue
		}
		// Best fit: most free memory, ties broken by fewest running tasks,
		// then by node name for determinism.
		sort.Slice(offers, func(a, b int) bool {
			if offers[a].FreeMemoryMB != offers[b].FreeMemoryMB {
				return offers[a].FreeMemoryMB > offers[b].FreeMemoryMB
			}
			if offers[a].RunningTasks != offers[b].RunningTasks {
				return offers[a].RunningTasks < offers[b].RunningTasks
			}
			return offers[a].Node < offers[b].Node
		})
		for _, offer := range offers {
			assign := protocol.AssignTaskReq{
				JobID:       j.id,
				JobManager:  jm.cfg.Node,
				ClientNode:  j.clientNode,
				Spec:        req.Spec,
				ArchiveName: req.ArchiveName,
				Archive:     req.Archive,
				Digest:      req.Digest,
			}
			am := protocol.Body(msg.KindUploadJar,
				msg.Address{Node: jm.cfg.Node, Job: j.id},
				msg.Address{Node: offer.Node},
				assign)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			reply, err := jm.caller.Call(ctx, offer.Node, am)
			cancel()
			if err != nil {
				lastErr = err
				continue
			}
			var resp protocol.AssignTaskResp
			if err := protocol.Decode(reply, &resp); err != nil {
				lastErr = err
				continue
			}
			if !resp.OK {
				lastErr = fmt.Errorf("jobmgr %s: %s rejected task %q: %s", jm.cfg.Node, offer.Node, req.Spec.Name, resp.Reason)
				continue
			}
			return offer.Node, nil
		}
	}
	return "", fmt.Errorf("jobmgr %s: placement of %q failed: %w", jm.cfg.Node, req.Spec.Name, lastErr)
}

// HandleStartJob processes KindStartTask from the client: build the
// dependency schedule and dispatch every ready task.
func (jm *JobManager) HandleStartJob(m *msg.Message) *msg.Message {
	var req protocol.StartJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad start request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	j.mu.Lock()
	if j.notified {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already finished", j.id))
	}
	if j.started {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already started", j.id))
	}
	if len(j.specs) == 0 {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s has no tasks", j.id))
	}
	specs := make([]*task.Spec, 0, len(j.specs))
	if len(req.TaskNames) > 0 {
		for _, name := range req.TaskNames {
			sp, ok := j.specs[name]
			if !ok {
				j.mu.Unlock()
				return jm.errReply(m, fmt.Sprintf("job %s has no task %q", j.id, name))
			}
			specs = append(specs, sp)
		}
	} else {
		for _, sp := range j.specs {
			specs = append(specs, sp)
		}
	}
	sched, err := NewSchedule(specs)
	if err != nil {
		j.mu.Unlock()
		return jm.errReply(m, err.Error())
	}
	j.schedule = sched
	j.started = true
	ready := sched.Ready()
	for _, name := range ready {
		if err := sched.MarkRunning(name); err != nil {
			j.mu.Unlock()
			return jm.errReply(m, err.Error())
		}
	}
	j.mu.Unlock()

	for _, name := range ready {
		jm.execTask(j, name)
	}
	jm.logf("job %s started: %d tasks, %d roots", j.id, sched.Len(), len(ready))
	return m.Reply(msg.KindPong, nil)
}

// execTask dispatches one task to its TaskManager.
func (jm *JobManager) execTask(j *jobState, name string) {
	j.mu.Lock()
	node := j.placement[name]
	j.mu.Unlock()
	em := protocol.Body(msg.KindExecTask,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: node, Job: j.id, Task: name},
		protocol.ExecTaskReq{JobID: j.id, Task: name})
	if err := jm.send(node, em); err != nil {
		jm.logf("job %s: exec %q on %s: %v", j.id, name, node, err)
		jm.onTaskEvent(msg.KindTaskFailed, &protocol.TaskEvent{
			JobID: j.id, Task: name, Node: node, Err: fmt.Sprintf("dispatch: %v", err),
		})
	}
}

// Enqueue places a job-scoped message (task lifecycle event or user
// message) on the owning job's serial queue. The job id is taken from the
// destination address so no payload decoding happens on the endpoint's
// dispatch goroutine. Unknown jobs and overflow drop the message, matching
// the fabric's at-most-once semantics.
func (jm *JobManager) Enqueue(m *msg.Message) {
	jobID := m.To.Job
	if jobID == "" {
		jobID = m.From.Job
	}
	jm.mu.Lock()
	j, ok := jm.jobs[jobID]
	jm.mu.Unlock()
	if !ok {
		jm.logf("message %s for unknown job %q dropped", m.Kind, jobID)
		return
	}
	if err := j.queue.TryPut(m); err != nil {
		jm.logf("job %s: queue full, dropping %s", j.id, m.Kind)
	}
}

// jobWorker drains one job's queue in arrival order.
func (jm *JobManager) jobWorker(j *jobState) {
	defer jm.wg.Done()
	for {
		m, err := j.queue.Get()
		if err != nil {
			return
		}
		switch m.Kind {
		case msg.KindTaskStarted, msg.KindTaskCompleted, msg.KindTaskFailed:
			jm.HandleTaskEvent(m.Kind, m)
		case msg.KindUser, msg.KindBroadcast:
			if err := jm.HandleUser(m.Kind, m); err != nil {
				jm.logf("route user message: %v", err)
			}
		default:
			jm.logf("job %s: unexpected queued kind %s", j.id, m.Kind)
		}
	}
}

// HandleTaskEvent processes lifecycle events from TaskManagers and drives
// the schedule forward.
func (jm *JobManager) HandleTaskEvent(kind msg.Kind, m *msg.Message) {
	var ev protocol.TaskEvent
	if err := protocol.Decode(m, &ev); err != nil {
		jm.logf("bad task event: %v", err)
		return
	}
	jm.onTaskEvent(kind, &ev)
}

func (jm *JobManager) onTaskEvent(kind msg.Kind, ev *protocol.TaskEvent) {
	j, err := jm.job(ev.JobID)
	if err != nil {
		jm.logf("event %s for unknown job %s", kind, ev.JobID)
		return
	}
	// Forward every lifecycle event to the client ("Get Messages from
	// Tasks" includes lifecycle notifications).
	jm.forwardToClient(j, kind, ev)

	var toStart []string
	var jobDone, jobFailed bool
	j.mu.Lock()
	if j.schedule == nil || j.notified {
		j.mu.Unlock()
		return
	}
	switch kind {
	case msg.KindTaskStarted:
		// informational only
	case msg.KindTaskCompleted:
		newly, err := j.schedule.Complete(ev.Task)
		if err != nil {
			jm.logf("job %s: %v", j.id, err)
		}
		for _, name := range newly {
			if err := j.schedule.MarkRunning(name); err == nil {
				toStart = append(toStart, name)
			}
		}
	case msg.KindTaskFailed:
		j.taskErrs[ev.Task] = ev.Err
		if err := j.schedule.Fail(ev.Task); err != nil {
			jm.logf("job %s: %v", j.id, err)
		}
	}
	if j.schedule.Done() || j.schedule.Failed() {
		jobDone = true
		jobFailed = j.schedule.Failed()
		j.notified = true
	}
	j.mu.Unlock()

	for _, name := range toStart {
		jm.execTask(j, name)
	}
	if jobDone {
		jm.finishJob(j, jobFailed)
	}
}

// finishJob cancels remaining tasks (on failure), notifies the client, and
// forgets the job.
func (jm *JobManager) finishJob(j *jobState, failed bool) {
	j.mu.Lock()
	nodes := make(map[string]bool)
	for _, n := range j.placement {
		nodes[n] = true
	}
	errs := make(map[string]string, len(j.taskErrs))
	for k, v := range j.taskErrs {
		errs[k] = v
	}
	client := j.clientNode
	j.mu.Unlock()

	if failed {
		for node := range nodes {
			cm := protocol.Body(msg.KindCancelJob,
				msg.Address{Node: jm.cfg.Node, Job: j.id},
				msg.Address{Node: node, Job: j.id},
				protocol.CancelJobReq{JobID: j.id, Reason: "job failed"})
			if err := jm.send(node, cm); err != nil {
				jm.logf("job %s: cancel on %s: %v", j.id, node, err)
			}
		}
	}

	kind := msg.KindJobCompleted
	var errText string
	if failed {
		kind = msg.KindJobFailed
		errText = "one or more tasks failed"
	}
	ev := protocol.JobEvent{JobID: j.id, Failed: failed, Err: errText, TaskErrs: errs}
	em := protocol.Body(kind,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: client, Job: j.id, Task: protocol.ClientTaskName},
		ev)
	if err := jm.send(client, em); err != nil {
		jm.logf("job %s: notify client: %v", j.id, err)
	}
	// The job record stays as a tombstone so late user messages still route.
	jm.logf("job %s finished (failed=%v)", j.id, failed)
}

// forwardToClient relays a task lifecycle event to the owning client.
func (jm *JobManager) forwardToClient(j *jobState, kind msg.Kind, ev *protocol.TaskEvent) {
	m := protocol.Body(kind,
		msg.Address{Node: jm.cfg.Node, Job: j.id, Task: ev.Task},
		msg.Address{Node: j.clientNode, Job: j.id, Task: protocol.ClientTaskName},
		*ev)
	if err := jm.send(j.clientNode, m); err != nil {
		jm.logf("job %s: forward %s to client: %v", j.id, kind, err)
	}
}

// HandleUser routes a user message through the conduit: to the client when
// addressed to "client", to every sibling for broadcasts, otherwise to the
// hosting TaskManager of the destination task.
func (jm *JobManager) HandleUser(kind msg.Kind, m *msg.Message) error {
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return fmt.Errorf("jobmgr %s: bad user payload: %w", jm.cfg.Node, err)
	}
	j, err := jm.job(p.JobID)
	if err != nil {
		return err
	}
	if kind == msg.KindBroadcast {
		j.mu.Lock()
		targets := make(map[string]string, len(j.placement))
		for t, node := range j.placement {
			if t != p.FromTask {
				targets[t] = node
			}
		}
		j.mu.Unlock()
		for t, node := range targets {
			fp := p
			fp.ToTask = t
			fm := protocol.Body(msg.KindUser,
				m.From,
				msg.Address{Node: node, Job: j.id, Task: t},
				fp).SetHeader(protocol.HeaderRouted, "1")
			if err := jm.send(node, fm); err != nil {
				jm.logf("job %s: broadcast to %s/%s: %v", j.id, node, t, err)
			}
		}
		return nil
	}
	if p.ToTask == protocol.ClientTaskName {
		j.mu.Lock()
		client := j.clientNode
		j.mu.Unlock()
		fm := protocol.Body(msg.KindUser, m.From,
			msg.Address{Node: client, Job: j.id, Task: protocol.ClientTaskName}, p).
			SetHeader(protocol.HeaderRouted, "1")
		return jm.send(client, fm)
	}
	j.mu.Lock()
	node, ok := j.placement[p.ToTask]
	j.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobmgr %s: job %s has no task %q", jm.cfg.Node, j.id, p.ToTask)
	}
	fm := protocol.Body(msg.KindUser, m.From,
		msg.Address{Node: node, Job: j.id, Task: p.ToTask}, p).
		SetHeader(protocol.HeaderRouted, "1")
	return jm.send(node, fm)
}

// HandleCancel processes a client-initiated KindCancelJob.
func (jm *JobManager) HandleCancel(m *msg.Message) *msg.Message {
	var req protocol.CancelJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad cancel request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	j.mu.Lock()
	if j.schedule != nil {
		j.schedule.CancelAll()
	}
	j.notified = true
	j.mu.Unlock()
	jm.finishJobCancelled(j, req.Reason)
	return m.Reply(msg.KindPong, nil)
}

func (jm *JobManager) finishJobCancelled(j *jobState, reason string) {
	j.mu.Lock()
	nodes := make(map[string]bool)
	for _, n := range j.placement {
		nodes[n] = true
	}
	j.mu.Unlock()
	for node := range nodes {
		cm := protocol.Body(msg.KindCancelJob,
			msg.Address{Node: jm.cfg.Node, Job: j.id},
			msg.Address{Node: node, Job: j.id},
			protocol.CancelJobReq{JobID: j.id, Reason: reason})
		if err := jm.send(node, cm); err != nil {
			jm.logf("job %s: cancel on %s: %v", j.id, node, err)
		}
	}
	jm.logf("job %s cancelled: %s", j.id, reason)
}

// Close marks the JobManager unwilling to host further jobs and stops the
// per-job workers.
func (jm *JobManager) Close() {
	jm.mu.Lock()
	jm.closed = true
	for _, j := range jm.jobs {
		j.queue.Close()
	}
	jm.mu.Unlock()
	jm.wg.Wait()
}
